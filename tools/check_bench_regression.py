#!/usr/bin/env python3
"""Bench-regression gate: a fresh (smoke-scale) bench run must agree with
the committed BENCH_*.json trajectory.

Two kinds of checks, both robust to smoke-scale iteration counts:

* Deterministic counters (wire bytes, message counts, fanout targets,
  accept/reject totals) are fixed by the seeds and the protocol — they do
  not depend on the machine or on --benchmark_min_time. A fresh run must
  reproduce the committed value within a small tolerance band; drifting
  outside it means the protocol's cost model changed without the
  trajectory being regenerated.

* Ratio invariants (the cached conformance check beats the uncached one,
  the inverted index beats the per-peer scan at 10^5 subscribers, the
  batched session row stays under the cold protocol's storm bytes) are
  the perf claims ROADMAP.md leans on, stated as wide-margin ratios so
  scheduler noise cannot flip them.

Usage:
    tools/check_bench_regression.py <fresh_dir> [--baseline <dir>]
                                    [--tolerance 0.10]

<fresh_dir> holds the just-produced BENCH_<name>.json files (run_benches.sh
--smoke writes them); --baseline defaults to the repo root (the committed
trajectory). Exits nonzero on the first report after printing one
"bench_regression: PASS/FAIL" line per check.
"""

import argparse
import json
import os
import sys

# (file, benchmark name, counter) triples whose values are deterministic
# functions of the fixed seeds — the committed trajectory pins them.
DETERMINISTIC = [
    ("BENCH_transport.json", "BM_Protocol/0/100", "wire_bytes"),
    ("BENCH_transport.json", "BM_Protocol/0/100", "messages"),
    ("BENCH_transport.json", "BM_Protocol/1/100", "wire_bytes"),
    ("BENCH_transport.json", "BM_ProtocolRejection/0", "wire_bytes"),
    ("BENCH_transport.json", "BM_ProtocolRejection/1", "wire_bytes"),
    ("BENCH_scale.json", "BM_IndexFanout/10000", "targets"),
    ("BENCH_scale.json", "BM_IndexFanout/100000", "targets"),
    ("BENCH_scale.json", "BM_ScenarioPublishStorm/1000/0", "accepts"),
    ("BENCH_scale.json", "BM_ScenarioPublishStorm/1000/2", "accepts"),
    ("BENCH_scale.json", "BM_ScenarioPublishStorm/16000/0", "net_bytes"),
    ("BENCH_scale.json", "BM_ScenarioPublishStorm/16000/3", "net_bytes"),
    ("BENCH_conformance.json", "BM_ImplicitCheckCached", "cache_hit_rate"),
    ("BENCH_conformance.json", "BM_ImplicitCheckCached", "allocs_per_iter"),
]

# (file, numerator bench, denominator bench, metric, max ratio): the fresh
# run's numerator/denominator must stay BELOW the bound. Bounds leave wide
# margin over the committed trajectory so smoke-scale noise cannot trip
# them, while a real inversion (cache slower than cold, scan beating the
# index, batching costing bytes) still fails loudly.
RATIO_BELOW = [
    # The cached conformance check is ~two orders faster than the uncached
    # walk; even heavily perturbed it must stay well under half.
    ("BENCH_conformance.json", "BM_ImplicitCheckCached", "BM_ImplicitCheckUncached",
     "real_time", 0.5),
    # Index fanout vs the O(population) per-peer scan at 10^5 subscribers.
    ("BENCH_scale.json", "BM_IndexFanout/100000", "BM_PerPeerScanFanout/100000",
     "real_time", 0.5),
    # The batched-session cold-heavy storm moves no more bytes than the
    # cold protocol (deterministic counters — the bound is exact).
    ("BENCH_scale.json", "BM_ScenarioPublishStorm/16000/3",
     "BM_ScenarioPublishStorm/16000/0", "net_bytes", 1.0),
]

failures = []


def report(ok, message):
    print(f"bench_regression: {'PASS' if ok else 'FAIL'} {message}")
    if not ok:
        failures.append(message)


def load(directory, filename):
    path = os.path.join(directory, filename)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def metric(row, key):
    value = row.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh_dir", help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--baseline", default=".",
                        help="committed trajectory directory (default: repo root)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", 0.10)),
                        help="relative band for deterministic counters (default 0.10)")
    args = parser.parse_args()

    caches = {}

    def rows(directory, filename):
        key = (directory, filename)
        if key not in caches:
            caches[key] = load(directory, filename)
        return caches[key]

    for filename, bench, counter in DETERMINISTIC:
        fresh = rows(args.fresh_dir, filename)
        base = rows(args.baseline, filename)
        if fresh is None:
            report(False, f"{filename} missing from fresh run")
            continue
        if base is None or bench not in base:
            # A row not yet in the committed trajectory (new bench): nothing
            # to regress against until the trajectory is regenerated.
            print(f"bench_regression: SKIP {filename}:{bench}:{counter} (no baseline row)")
            continue
        if bench not in fresh:
            report(False, f"{filename}:{bench} missing from fresh run")
            continue
        fresh_value = metric(fresh[bench], counter)
        base_value = metric(base[bench], counter)
        if fresh_value is None or base_value is None:
            report(False, f"{filename}:{bench}:{counter} not recorded")
            continue
        band = args.tolerance * max(abs(base_value), 1.0)
        ok = abs(fresh_value - base_value) <= band
        report(ok, f"{filename}:{bench}:{counter} fresh={fresh_value:g} "
                   f"baseline={base_value:g} (band ±{band:g})")

    for filename, numerator, denominator, key, bound in RATIO_BELOW:
        fresh = rows(args.fresh_dir, filename)
        if fresh is None:
            report(False, f"{filename} missing from fresh run")
            continue
        if numerator not in fresh or denominator not in fresh:
            report(False, f"{filename}: {numerator} / {denominator} missing from fresh run")
            continue
        num = metric(fresh[numerator], key)
        den = metric(fresh[denominator], key)
        if not num or not den:
            report(False, f"{filename}:{numerator}:{key} not recorded")
            continue
        ratio = num / den
        report(ratio <= bound,
               f"{filename}: {numerator}/{denominator} {key} ratio "
               f"{ratio:.3f} <= {bound:g}")

    if failures:
        print(f"bench_regression: {len(failures)} check(s) FAILED")
        return 1
    print("bench_regression: ALL GREEN")
    return 0


if __name__ == "__main__":
    sys.exit(main())
