#!/usr/bin/env bash
# The full local gate in one command: builds the debug and tsan presets,
# runs ctest on both, then the clang-format check. Usage:
#
#   tools/run_checks.sh          # everything (what CI would run)
#   FAST=1 tools/run_checks.sh   # tsan ctest restricted to the concurrency-
#                                # sensitive suites (transport/concurrency/
#                                # fuzz) — the ones instrumentation is for
#
# Exits nonzero on the first failing stage.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== [1/5] configure + build: debug preset =="
cmake --preset debug > /dev/null
cmake --build --preset debug

echo "== [2/5] ctest: debug preset =="
ctest --preset debug

echo "== [3/5] configure + build: tsan preset =="
cmake --preset tsan > /dev/null
cmake --build --preset tsan

echo "== [4/5] ctest: tsan preset =="
if [[ "${FAST:-0}" == "1" ]]; then
  ctest --preset tsan -R 'test_concurrency|test_transport|test_protocol_fuzz'
else
  ctest --preset tsan
fi

echo "== [5/5] clang-format gate =="
tools/check_format.sh

echo "run_checks: ALL GREEN"
