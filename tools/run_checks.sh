#!/usr/bin/env bash
# The full gate in one command — the same stages CI runs, fail-fast, with
# one PASS/FAIL summary line per stage and a distinct exit code per stage
# so automation can tell *what* broke without parsing logs. Usage:
#
#   tools/run_checks.sh            # everything (what CI runs)
#   FAST=1 tools/run_checks.sh     # tsan ctest restricted to the concurrency-
#                                  # sensitive suites (transport/concurrency/
#                                  # fuzz/socket) — the ones instrumentation
#                                  # is for
#   ASAN=1 tools/run_checks.sh     # also build + run the asan preset
#   SOAK=1 tools/run_checks.sh     # also run the adversarial soak gate
#                                  # (tools/run_soak.sh — minutes, not
#                                  # seconds; see SOAK_SECONDS there)
#
# Parallelism: CMAKE_BUILD_PARALLEL_LEVEL and CTEST_PARALLEL_LEVEL are
# honored when set (otherwise the presets' defaults apply).
#
# Exit codes (fail-fast: the first failing stage's code is returned):
#   10 debug configure/build   20 debug ctest
#   30 tsan  configure/build   40 tsan  ctest
#   50 asan  configure/build   60 asan  ctest    (ASAN=1 only)
#   70 clang-format gate       80 adversarial soak gate (SOAK=1 only)
#   90 megasim scale smoke (10^4-peer deterministic scenario, Release,
#      wall-clock ceiling SCALE_SMOKE_SECONDS, default 300)
#   95 session equivalence gate (Release: the differential session suite +
#      the session fuzz/socket/megasim equivalence sweeps, batched paths
#      included)
#   97 bench regression gate (smoke-scale bench run; deterministic
#      counters compared against the committed BENCH_*.json trajectory)
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_JOBS=()
if [[ -n "${CMAKE_BUILD_PARALLEL_LEVEL:-}" ]]; then
  BUILD_JOBS=(-j "$CMAKE_BUILD_PARALLEL_LEVEL")
fi
CTEST_JOBS=()
if [[ -n "${CTEST_PARALLEL_LEVEL:-}" ]]; then
  CTEST_JOBS=(-j "$CTEST_PARALLEL_LEVEL")
fi

# stage <exit-code> <name> <command...>: runs the command, prints exactly
# one "run_checks: PASS/FAIL <name>" line, exits with <exit-code> on
# failure (fail-fast).
stage() {
  local code=$1 name=$2
  shift 2
  echo "== ${name} =="
  if "$@"; then
    echo "run_checks: PASS ${name}"
  else
    echo "run_checks: FAIL ${name} (exit code ${code})"
    exit "${code}"
  fi
}

build_preset() {
  local preset=$1
  cmake --preset "${preset}" > /dev/null && \
    cmake --build --preset "${preset}" "${BUILD_JOBS[@]}"
}

TSAN_FILTER=()
if [[ "${FAST:-0}" == "1" ]]; then
  TSAN_FILTER=(-R 'test_concurrency|test_transport|test_protocol_fuzz|test_socket_transport|test_frame_codec|test_governance|test_soak|test_session')
fi

stage 10 "configure + build: debug preset" build_preset debug
stage 20 "ctest: debug preset" ctest --preset debug "${CTEST_JOBS[@]}"
stage 30 "configure + build: tsan preset" build_preset tsan
stage 40 "ctest: tsan preset" ctest --preset tsan "${CTEST_JOBS[@]}" "${TSAN_FILTER[@]}"
if [[ "${ASAN:-0}" == "1" ]]; then
  stage 50 "configure + build: asan preset" build_preset asan
  stage 60 "ctest: asan preset" ctest --preset asan "${CTEST_JOBS[@]}"
fi
stage 70 "clang-format gate" tools/check_format.sh
if [[ "${SOAK:-0}" == "1" ]]; then
  stage 80 "adversarial soak gate" tools/run_soak.sh
fi

# The megasim scale gate: a fixed-seed 10^4-peer scenario, run twice in
# Release, must produce byte-identical digests inside the wall-clock
# ceiling. The nightly soak sweeps the same test at 10^5 (tsan) and 10^6
# (release); this stage keeps the per-push cost honest. PTI_SIM_PEERS
# overrides the population, SCALE_SMOKE_SECONDS the ceiling.
scale_smoke() {
  cmake --preset release > /dev/null && \
    cmake --build --preset release "${BUILD_JOBS[@]}" --target test_sim && \
    PTI_SIM_PEERS="${PTI_SIM_PEERS:-10000}" PTI_SIM_RUNS=2 \
      timeout "${SCALE_SMOKE_SECONDS:-300}" \
      build-bench/test_sim --gtest_filter='SimScale.*'
}
stage 90 "megasim scale smoke (10^4 peers, deterministic)" scale_smoke

# The session equivalence gate: the session layer must produce the same
# verdict/delivery stream as the cold protocol — in Release, where timing
# differs most from the sanitizer builds above. Runs the differential
# session suite plus every session-tagged equivalence sweep (fixed-seed
# fuzz, sockets-vs-simulator, megasim digests).
session_equivalence() {
  cmake --preset release > /dev/null && \
    cmake --build --preset release "${BUILD_JOBS[@]}" \
      --target test_session test_protocol_fuzz test_socket_transport test_sim && \
    build-bench/test_session && \
    build-bench/test_protocol_fuzz --gtest_filter='ProtocolFuzz.SessionModeAgreesWithColdProtocol:ProtocolFuzz.BatchedSessionAgreesWithColdProtocol' && \
    build-bench/test_socket_transport --gtest_filter='SocketTransportEquivalence.Session*' && \
    build-bench/test_sim --gtest_filter='ScenarioEquivalence.SessionModeAgreesWhileWireCostCollapses:ScenarioEquivalence.BatchedSessionsReproduceTheVerdictStream:ScenarioEquivalence.SharedIntrosBeatColdOnAColdHeavyStorm'
}
stage 95 "session equivalence gate (Release differential suite)" session_equivalence

# The bench-regression gate: every bench binary runs end to end at smoke
# iteration counts and tools/check_bench_regression.py compares the
# deterministic counters against the committed BENCH_*.json trajectory
# (and re-asserts the headline ratio claims). Same command CI's
# bench-smoke job runs.
stage 97 "bench regression gate (smoke counters vs trajectory)" tools/run_benches.sh --smoke

echo "run_checks: ALL GREEN"
