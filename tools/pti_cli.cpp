// pti — command-line front end to the conformance machinery.
//
// Usage:
//   pti describe <decl-file>                 print XML descriptions
//   pti check <decl-file> <source> <target>  conformance verdict + plan
//   pti matrix <decl-file>                   pairwise conformance matrix
//   pti demo                                 run `matrix` on a built-in
//                                            two-team Person universe
//
// <decl-file> uses the textual type-declaration language documented in
// src/reflect/type_parser.hpp. Options (before the subcommand):
//   --exact-members      member names must match exactly
//   --allow-wildcards    '*'/'?' allowed in target names
//   --name-distance=N    Levenshtein budget for type names (default 0)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "conform/conformance_checker.hpp"
#include "conform/explain.hpp"
#include "reflect/type_parser.hpp"
#include "reflect/type_registry.hpp"
#include "serial/typedesc_xml.hpp"
#include "util/error.hpp"

namespace {

constexpr const char* kDemoDeclarations = R"(
// Built-in demo universe: the paper's Section 3.1 scenario.
namespace teamA;

class Person {
  private string name;
  Person(string name);
  string getName();
  void setName(string name);
}

namespace teamB;

class Person {
  private string name;
  Person(string personName);
  string getPersonName();
  void setPersonName(string personName);
}

namespace bank;

class Account {
  private string owner;
  private float64 balance;
  Account(string owner);
  string getOwner();
  float64 getBalance();
}
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw pti::Error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: pti [options] describe <decl-file>\n"
               "       pti [options] check <decl-file> <source> <target>\n"
               "       pti [options] matrix <decl-file>\n"
               "       pti [options] demo\n"
               "options: --exact-members --allow-wildcards --name-distance=N\n");
  return 2;
}

int run_describe(pti::reflect::TypeRegistry& registry) {
  for (const pti::reflect::TypeDescription* d : registry.user_types()) {
    std::printf("%s\n\n", pti::serial::type_description_to_string(*d, true).c_str());
  }
  return 0;
}

int run_check(pti::conform::ConformanceChecker& checker, const std::string& source,
              const std::string& target) {
  const auto result = checker.check(source, target);
  std::printf("%s", pti::conform::explain(result).c_str());
  return result.conformant ? 0 : 1;
}

int run_matrix(pti::reflect::TypeRegistry& registry,
               pti::conform::ConformanceChecker& checker) {
  const auto types = registry.user_types();
  std::size_t width = 0;
  for (const auto* t : types) width = std::max(width, t->qualified_name().size());
  std::printf("%-*s", static_cast<int>(width + 2), "source \\ target");
  for (const auto* t : types) std::printf(" %-*s", static_cast<int>(width), t->name().c_str());
  std::printf("\n");
  for (const auto* source : types) {
    std::printf("%-*s", static_cast<int>(width + 2), source->qualified_name().c_str());
    for (const auto* target : types) {
      const auto result = checker.check(*source, *target);
      const char* cell = "-";
      if (result.conformant) {
        switch (result.plan.kind()) {
          case pti::conform::ConformanceKind::Identity: cell = "id"; break;
          case pti::conform::ConformanceKind::Equivalent: cell = "eq"; break;
          case pti::conform::ConformanceKind::Explicit: cell = "sub"; break;
          case pti::conform::ConformanceKind::ImplicitStructural: cell = "IS"; break;
        }
      }
      std::printf(" %-*s", static_cast<int>(width), cell);
    }
    std::printf("\n");
  }
  std::printf("\nid=identity  eq=equivalent  sub=explicit subtype  "
              "IS=implicit structural  -=not conformant\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pti::conform::ConformanceOptions options;
  int arg = 1;
  for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--exact-members") {
      options.member_name_rule = pti::conform::MemberNameRule::Exact;
    } else if (flag == "--allow-wildcards") {
      options.allow_wildcards = true;
    } else if (flag.rfind("--name-distance=", 0) == 0) {
      options.max_name_distance =
          static_cast<std::uint32_t>(std::atoi(flag.data() + 16));
    } else {
      return usage();
    }
  }
  if (arg >= argc) return usage();
  const std::string_view command = argv[arg++];

  try {
    pti::reflect::TypeRegistry registry;
    pti::conform::ConformanceChecker checker(registry, options);

    if (command == "demo") {
      pti::reflect::declare_types(registry, kDemoDeclarations);
      return run_matrix(registry, checker);
    }
    if (arg >= argc) return usage();
    pti::reflect::declare_types(registry, read_file(argv[arg++]));

    if (command == "describe") return run_describe(registry);
    if (command == "matrix") return run_matrix(registry, checker);
    if (command == "check") {
      if (arg + 1 >= argc) return usage();
      return run_check(checker, argv[arg], argv[arg + 1]);
    }
    return usage();
  } catch (const pti::Error& e) {
    std::fprintf(stderr, "pti: %s\n", e.what());
    return 2;
  }
}
