#!/usr/bin/env bash
# clang-format gate over the formatted directories (src/ tests/ bench/,
# plus examples/ and tools/*.cpp). Usage:
#
#   tools/check_format.sh          # check only; nonzero exit on violations
#   FIX=1 tools/check_format.sh    # rewrite files in place
#
# Uses the repo's .clang-format. Skips (exit 0, loud notice) when no
# clang-format binary is installed, so minimal CI images still pass the
# rest of the pipeline.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT=${CLANG_FORMAT:-}
if [[ -z "$CLANG_FORMAT" ]]; then
  for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15 clang-format-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      CLANG_FORMAT=$candidate
      break
    fi
  done
fi
if [[ -z "$CLANG_FORMAT" ]]; then
  echo "check_format: SKIPPED — no clang-format binary found (set CLANG_FORMAT=...)"
  exit 0
fi

mapfile -t files < <(find src tests bench examples tools \
  \( -name '*.cpp' -o -name '*.hpp' \) -type f | sort)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: FAILED — file list is empty (directory layout changed?)"
  exit 1
fi
echo "check_format: ${#files[@]} files with $($CLANG_FORMAT --version)"

if [[ "${FIX:-0}" == "1" ]]; then
  "$CLANG_FORMAT" -i --style=file "${files[@]}"
  echo "check_format: rewrote in place"
  exit 0
fi

# --dry-run -Werror makes clang-format exit nonzero on any deviation.
if ! "$CLANG_FORMAT" --dry-run -Werror --style=file "${files[@]}"; then
  echo ""
  echo "check_format: FAILED — run 'FIX=1 tools/check_format.sh' to fix"
  exit 1
fi
echo "check_format: OK"
