#!/usr/bin/env bash
# Adversarial soak runner — builds the debug preset and drives test_soak
# at soak scale: minutes of hostile churn (name floods, near-cap frame
# replay, endpoint churn, partition/heal) with the RSS and interned-name
# ceilings tightened well below the short ctest defaults. The scheduled
# CI job runs this nightly; ctest runs the same binary for ~2 s per push.
#
#   tools/run_soak.sh                     # 10 minutes, gate ceilings
#   SOAK_SECONDS=3600 tools/run_soak.sh   # longer churn
#
# Knobs (all optional):
#   SOAK_SECONDS       churn duration          (default 600)
#   SOAK_MAX_RSS_MB    RSS ceiling in MiB      (default 512)
#   SOAK_MAX_INTERNED  interned-name ceiling   (default 200000)
#   SOAK_REPORT        JSON metrics out        (default BENCH_soak.json)
set -euo pipefail

cd "$(dirname "$0")/.."

SOAK_SECONDS="${SOAK_SECONDS:-600}"
SOAK_MAX_RSS_MB="${SOAK_MAX_RSS_MB:-512}"
SOAK_MAX_INTERNED="${SOAK_MAX_INTERNED:-200000}"
SOAK_REPORT="${SOAK_REPORT:-BENCH_soak.json}"

BUILD_JOBS=()
if [[ -n "${CMAKE_BUILD_PARALLEL_LEVEL:-}" ]]; then
  BUILD_JOBS=(-j "$CMAKE_BUILD_PARALLEL_LEVEL")
fi

cmake --preset debug > /dev/null
cmake --build --preset debug "${BUILD_JOBS[@]}" --target test_soak

echo "soak: ${SOAK_SECONDS}s of hostile churn" \
     "(ceilings: ${SOAK_MAX_RSS_MB} MiB RSS, ${SOAK_MAX_INTERNED} names)"
PTI_SOAK_SECONDS="${SOAK_SECONDS}" \
PTI_SOAK_MAX_RSS_MB="${SOAK_MAX_RSS_MB}" \
PTI_SOAK_MAX_INTERNED="${SOAK_MAX_INTERNED}" \
PTI_SOAK_REPORT="${SOAK_REPORT}" \
  ./build/test_soak

echo "soak: metrics written to ${SOAK_REPORT}"
cat "${SOAK_REPORT}"
