#!/usr/bin/env bash
# Builds the benchmark binaries in Release and records their results as
# BENCH_<name>.json at the repo root — the bench trajectory consumed by
# ROADMAP.md's performance notes. Usage:
#
#   tools/run_benches.sh                # conformance + typedesc + concurrent + api + transport + scale
#   tools/run_benches.sh all            # every bench binary
#   tools/run_benches.sh --smoke        # CI mode: every binary, tiny iteration
#                                       # counts, JSON validated, nothing at the
#                                       # repo root overwritten
#   BENCH_MIN_TIME=0.5 tools/run_benches.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
MIN_TIME=${BENCH_MIN_TIME:-0.2}
SMOKE=0

# The single source of truth for "every bench binary" — both `all` and
# `--smoke` use it, so a new bench cannot be added to one and silently
# escape the other.
ALL_BENCHES=(conformance typedesc concurrent api envelope invocation object_serial transport ablation scale)

if [[ "${1:-}" == "--smoke" ]]; then
  # Smoke mode exists so bench code cannot bit-rot: every binary must run
  # end to end and emit parseable JSON, at iteration counts small enough
  # for a CI job. Results are scratch — they never touch BENCH_*.json.
  SMOKE=1
  MIN_TIME=0.01
  BENCHES=("${ALL_BENCHES[@]}")
elif [[ "${1:-}" == "all" ]]; then
  BENCHES=("${ALL_BENCHES[@]}")
else
  BENCHES=(conformance typedesc concurrent api transport scale)
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
targets=()
for b in "${BENCHES[@]}"; do targets+=("bench_$b"); done
cmake --build "$BUILD_DIR" -j --target "${targets[@]}"

OUT_DIR=.
if [[ "$SMOKE" == "1" ]]; then
  # SMOKE_OUT_DIR lets CI keep the smoke JSONs (artifact upload); without
  # it they land in a scratch dir that vanishes on exit.
  if [[ -n "${SMOKE_OUT_DIR:-}" ]]; then
    OUT_DIR=$SMOKE_OUT_DIR
    mkdir -p "$OUT_DIR"
  else
    OUT_DIR=$(mktemp -d)
    trap 'rm -rf "$OUT_DIR"' EXIT
  fi
fi

# Validates that a bench emitted well-formed JSON with a nonempty
# "benchmarks" array. Prefers python3; falls back to a structural grep so
# minimal images still get a (weaker) check.
check_json() {
  local file=$1
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$file" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
benches = doc.get("benchmarks")
if not isinstance(benches, list) or not benches:
    sys.exit(f"{sys.argv[1]}: no benchmarks recorded")
EOF
  else
    grep -q '"benchmarks"' "$file" && grep -q '"name"' "$file"
  fi
}

# Console table for the human; the JSON trajectory file is written by the
# library itself (the "# paper: ..." banners only go to stdout, so the JSON
# stays clean).
for b in "${BENCHES[@]}"; do
  echo "== bench_$b =="
  "$BUILD_DIR/bench_$b" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT_DIR/BENCH_$b.json" \
    --benchmark_out_format=json
  if [[ "$SMOKE" == "1" ]]; then
    if check_json "$OUT_DIR/BENCH_$b.json"; then
      echo "run_benches: PASS bench_$b (valid JSON)"
    else
      echo "run_benches: FAIL bench_$b (invalid or empty JSON)"
      exit 1
    fi
  fi
done

if [[ "$SMOKE" == "1" ]]; then
  # Regression gate: the smoke run's deterministic counters (wire bytes,
  # message counts, fanout targets) must match the committed BENCH_*.json
  # trajectory, and the headline ratio claims must still hold.
  if command -v python3 > /dev/null 2>&1; then
    python3 tools/check_bench_regression.py "$OUT_DIR" --baseline .
  else
    echo "run_benches: SKIP bench-regression gate (python3 unavailable)"
  fi
  echo "run_benches: SMOKE GREEN (${#BENCHES[@]} binaries)"
else
  echo "Wrote: $(ls BENCH_*.json | tr '\n' ' ')"
fi
