#!/usr/bin/env bash
# Builds the benchmark binaries in Release and records their results as
# BENCH_<name>.json at the repo root — the bench trajectory consumed by
# ROADMAP.md's performance notes. Usage:
#
#   tools/run_benches.sh                # conformance + typedesc + concurrent + api + transport
#   tools/run_benches.sh all            # every bench binary
#   BENCH_MIN_TIME=0.5 tools/run_benches.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
MIN_TIME=${BENCH_MIN_TIME:-0.2}

if [[ "${1:-}" == "all" ]]; then
  BENCHES=(conformance typedesc concurrent api envelope invocation object_serial transport ablation)
else
  BENCHES=(conformance typedesc concurrent api transport)
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
targets=()
for b in "${BENCHES[@]}"; do targets+=("bench_$b"); done
cmake --build "$BUILD_DIR" -j --target "${targets[@]}"

# Console table for the human; the JSON trajectory file is written by the
# library itself (the "# paper: ..." banners only go to stdout, so the JSON
# stays clean).
for b in "${BENCHES[@]}"; do
  echo "== bench_$b =="
  "$BUILD_DIR/bench_$b" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="BENCH_$b.json" \
    --benchmark_out_format=json
done

echo "Wrote: $(ls BENCH_*.json | tr '\n' ' ')"
