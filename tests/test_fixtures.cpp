// Contract tests for the shared fixture universe: every assembly loads,
// every type instantiates and behaves as documented, and the documented
// conformance matrix holds. Benchmarks and examples rely on these
// properties silently; this suite pins them.
#include <gtest/gtest.h>

#include "conform/conformance_checker.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"

namespace pti::fixtures {
namespace {

using conform::ConformanceChecker;
using reflect::Domain;
using reflect::Value;

class FixtureTest : public ::testing::Test {
 protected:
  FixtureTest() : checker_(domain_.registry()) {
    domain_.load_assembly(team_a_people());
    domain_.load_assembly(team_b_people());
    domain_.load_assembly(team_evil_people());
    domain_.load_assembly(planner_meetings());
    domain_.load_assembly(agenda_meetings());
    domain_.load_assembly(bank_accounts());
    domain_.load_assembly(lists_a());
    domain_.load_assembly(lists_b());
    domain_.load_assembly(tagged_a());
    domain_.load_assembly(tagged_b());
    domain_.load_assembly(print_shop());
    domain_.load_assembly(office_devices());
  }

  bool conforms(std::string_view src, std::string_view tgt) {
    return checker_.check(src, tgt).conformant;
  }

  Domain domain_;
  ConformanceChecker checker_;
};

TEST_F(FixtureTest, EveryClassInstantiates) {
  const Value name[] = {Value("n")};
  const Value addr[] = {Value("s"), Value(std::int32_t{1})};
  const Value meeting_a[] = {Value("t"), Value(std::int64_t{1})};
  const Value meeting_b[] = {Value(std::int64_t{1}), Value("t")};
  const Value node[] = {Value(std::int32_t{1})};
  const Value point[] = {Value(std::int32_t{1}), Value(std::int32_t{2})};

  EXPECT_NO_THROW((void)domain_.instantiate("teamA.Person", name));
  EXPECT_NO_THROW((void)domain_.instantiate("teamA.Address", addr));
  EXPECT_NO_THROW((void)domain_.instantiate("teamB.Person", name));
  EXPECT_NO_THROW((void)domain_.instantiate("teamB.Address", addr));
  EXPECT_NO_THROW((void)domain_.instantiate("evilC.Person", name));
  EXPECT_NO_THROW((void)domain_.instantiate("planner.Meeting", meeting_a));
  EXPECT_NO_THROW((void)domain_.instantiate("agenda.Meeting", meeting_b));
  EXPECT_NO_THROW((void)domain_.instantiate("bank.Account", name));
  EXPECT_NO_THROW((void)domain_.instantiate("listsA.Node", node));
  EXPECT_NO_THROW((void)domain_.instantiate("listsB.Node", node));
  EXPECT_NO_THROW((void)domain_.instantiate("taggedA.Point", point));
  EXPECT_NO_THROW((void)domain_.instantiate("shopA.Printer", name));
  EXPECT_NO_THROW((void)domain_.instantiate("officeB.Printer", name));
}

TEST_F(FixtureTest, DocumentedConformanceMatrixHolds) {
  // The Person pair is mutually conformant; the impostor too.
  EXPECT_TRUE(conforms("teamB.Person", "teamA.Person"));
  EXPECT_TRUE(conforms("teamA.Person", "teamB.Person"));
  EXPECT_TRUE(conforms("evilC.Person", "teamA.Person"));
  // Meetings conform across permuted signatures, both ways.
  EXPECT_TRUE(conforms("agenda.Meeting", "planner.Meeting"));
  EXPECT_TRUE(conforms("planner.Meeting", "agenda.Meeting"));
  // Printers conform (the borrow/lend pairing).
  EXPECT_TRUE(conforms("shopA.Printer", "officeB.Printer"));
  // Nodes conform recursively.
  EXPECT_TRUE(conforms("listsB.Node", "listsA.Node"));
  // Accounts conform to none of the above.
  EXPECT_FALSE(conforms("bank.Account", "teamA.Person"));
  EXPECT_FALSE(conforms("bank.Account", "planner.Meeting"));
  EXPECT_FALSE(conforms("bank.Account", "shopA.Printer"));
  // Cross-module pairs do not conform.
  EXPECT_FALSE(conforms("teamA.Person", "planner.Meeting"));
  EXPECT_FALSE(conforms("listsA.Node", "teamA.Person"));
}

TEST_F(FixtureTest, MethodBehaviourMatchesDocs) {
  const Value args[] = {Value("Ada")};
  auto a = domain_.instantiate("teamA.Person", args);
  auto b = domain_.instantiate("teamB.Person", args);
  auto evil = domain_.instantiate("evilC.Person", args);

  EXPECT_EQ(domain_.invoke(*a, "getName").as_string(), "Ada");
  EXPECT_EQ(domain_.invoke(*b, "getPersonName").as_string(), "Ada");
  EXPECT_EQ(domain_.invoke(*evil, "getName").as_string(), "adA");  // reversed!

  const Value hello[] = {Value("Hi")};
  EXPECT_EQ(domain_.invoke(*a, "greet", hello).as_string(), "Hi, Ada!");
  EXPECT_EQ(domain_.invoke(*b, "greet", hello).as_string(), "Hi, Ada!");
  EXPECT_NE(domain_.invoke(*evil, "greet", hello).as_string(), "Hi, Ada!");
}

TEST_F(FixtureTest, LinkedNodeSumsWalkTheChain) {
  const Value v1[] = {Value(std::int32_t{1})};
  const Value v2[] = {Value(std::int32_t{2})};
  const Value v3[] = {Value(std::int32_t{4})};
  auto n1 = domain_.instantiate("listsA.Node", v1);
  auto n2 = domain_.instantiate("listsA.Node", v2);
  auto n3 = domain_.instantiate("listsA.Node", v3);
  const Value next2[] = {Value(n2)};
  const Value next3[] = {Value(n3)};
  domain_.invoke(*n1, "setNext", next2);
  domain_.invoke(*n2, "setNext", next3);
  EXPECT_EQ(domain_.invoke(*n1, "sum").as_int32(), 7);
  EXPECT_EQ(domain_.invoke(*n2, "sum").as_int32(), 6);
}

TEST_F(FixtureTest, PrinterAccounting) {
  const Value name[] = {Value("p")};
  auto printer = domain_.instantiate("shopA.Printer", name);
  const Value doc[] = {Value(std::string(42, 'x'))};
  EXPECT_EQ(domain_.invoke(*printer, "print", doc).as_int32(), 5);
  EXPECT_EQ(domain_.invoke(*printer, "print", doc).as_int32(), 5);
  EXPECT_EQ(domain_.invoke(*printer, "getQueueLength").as_int32(), 10);
}

TEST_F(FixtureTest, WideTypeGeneratorIsDeterministicAndSized) {
  const auto w1 = wide_type("g", "W", 5, 7);
  const auto w2 = wide_type("g", "W", 5, 7);
  const reflect::NativeType* t1 = w1->find_type("g.W");
  const reflect::NativeType* t2 = w2->find_type("g.W");
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->fields().size(), 5u);
  EXPECT_EQ(t1->methods().size(), 7u);
  EXPECT_EQ(t1->guid(), t2->guid());  // deterministic identity

  auto obj = t1->instantiate();
  EXPECT_EQ(t1->invoke(*obj, "getF0", {}).as_int32(), 0);
  EXPECT_EQ(t1->invoke(*obj, "getF1", {}).as_string(), "");
}

TEST_F(FixtureTest, DeepChainGeneratorShape) {
  const auto chain = deep_type_chain("g", 3);
  EXPECT_EQ(chain->types().size(), 3u);
  const reflect::NativeType* t0 = chain->find_type("g.T0");
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(t0->fields()[0].type_name, "g.T1");
  const reflect::NativeType* leaf = chain->find_type("g.T2");
  EXPECT_EQ(leaf->fields()[0].name, "payload");
}

TEST_F(FixtureTest, TaggedFixturesCarryTheirTags) {
  EXPECT_TRUE(domain_.registry().find("taggedA.Point")->structural_tag());
  EXPECT_TRUE(domain_.registry().find("taggedB.Point")->structural_tag());
  EXPECT_FALSE(domain_.registry().find("taggedB.PlainPoint")->structural_tag());
}

}  // namespace
}  // namespace pti::fixtures
