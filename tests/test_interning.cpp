// Semantics of the interned-identity layer: SymbolTable folding and
// collision behavior, TypeDescription ids and fingerprints, registry
// resolution over interned keys, and conformance-cache statistics across
// interned lookups.
#include <gtest/gtest.h>

#include <string>

#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/reflect_error.hpp"
#include "reflect/type_registry.hpp"
#include "util/byte_buffer.hpp"
#include "util/interning.hpp"

namespace pti {
namespace {

using reflect::TypeDescription;
using reflect::TypeKind;
using util::InternedName;
using util::SymbolTable;

// --- SymbolTable -------------------------------------------------------------

TEST(SymbolTable, CaseInsensitiveCollision) {
  SymbolTable table;
  const InternedName a = table.intern("teamA.Person");
  const InternedName b = table.intern("TEAMA.PERSON");
  const InternedName c = table.intern("teama.person");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(table.folded(a), "teama.person");

  const InternedName other = table.intern("teamB.Person");
  EXPECT_NE(a, other);
}

TEST(SymbolTable, FindNeverInserts) {
  SymbolTable table;
  EXPECT_FALSE(table.find("never.interned").valid());
  EXPECT_EQ(table.size(), 0u);

  const InternedName id = table.intern("Known");
  EXPECT_EQ(table.find("known"), id);
  EXPECT_EQ(table.find("KNOWN"), id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTable, QualifiedFormsAgreeWithConcatenation) {
  SymbolTable table;
  const InternedName joined = table.intern("ns.Type");
  EXPECT_EQ(table.intern_qualified("NS", "TYPE"), joined);
  EXPECT_EQ(table.find_qualified("ns", "type"), joined);
  // Empty namespace degenerates to the bare name.
  const InternedName bare = table.intern("Type");
  EXPECT_EQ(table.intern_qualified("", "Type"), bare);
  EXPECT_EQ(table.find_qualified("", "tYpE"), bare);
  EXPECT_NE(bare, joined);
}

TEST(SymbolTable, InvalidIdIsHarmless) {
  SymbolTable table;
  const InternedName invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(table.folded(invalid), "");
  EXPECT_EQ(table.hash(invalid), 0u);
}

TEST(SymbolTable, PairKeyIsOrderSensitive) {
  SymbolTable table;
  const InternedName a = table.intern("a");
  const InternedName b = table.intern("b");
  EXPECT_NE(util::pair_key(a, b), util::pair_key(b, a));
  EXPECT_EQ(util::pair_key(a, b), util::pair_key(a, b));
}

// --- TypeDescription ids & fingerprints --------------------------------------

TEST(InternedIdentity, DescriptionIdsFoldCase) {
  const TypeDescription a("teamA", "Person", TypeKind::Class);
  const TypeDescription b("TEAMA", "PERSON", TypeKind::Class);
  const TypeDescription c("teamB", "Person", TypeKind::Class);
  EXPECT_EQ(a.name_id(), b.name_id());
  EXPECT_NE(a.name_id(), c.name_id());
  // Simple-name ids fold too, and are shared across namespaces.
  EXPECT_EQ(a.simple_name_id(), c.simple_name_id());
}

TEST(InternedIdentity, FingerprintIgnoresCaseAndNamespace) {
  TypeDescription a("nsa", "Point", TypeKind::Class);
  a.add_field({"x", "int32", reflect::Visibility::Public, false});
  TypeDescription b("nsb", "POINT", TypeKind::Class);
  b.add_field({"X", "INT32", reflect::Visibility::Public, false});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_TRUE(a.structurally_equal(b));
}

TEST(InternedIdentity, FingerprintTracksMutation) {
  TypeDescription d("ns", "Point", TypeKind::Class);
  const std::uint64_t before = d.fingerprint();
  d.add_field({"x", "int32", reflect::Visibility::Public, false});
  EXPECT_NE(d.fingerprint(), before);
  // Non-structural provenance does not perturb the fingerprint.
  const std::uint64_t structural = d.fingerprint();
  d.set_assembly_name("ns.points");
  d.set_download_path("net://peer/ns.points");
  EXPECT_EQ(d.fingerprint(), structural);
}

TEST(InternedIdentity, FingerprintSeparatesFieldBoundaries) {
  TypeDescription a("ns", "T", TypeKind::Class);
  a.add_field({"ab", "c", reflect::Visibility::Public, false});
  TypeDescription b("ns", "T", TypeKind::Class);
  b.add_field({"a", "bc", reflect::Visibility::Public, false});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- TypeRegistry over interned keys -----------------------------------------

TEST(InternedRegistry, ReRegisteringStructurallyEqualDedups) {
  reflect::TypeRegistry registry;
  TypeDescription d("teamA", "Person", TypeKind::Class);
  d.add_field({"name", "string", reflect::Visibility::Public, false});
  const TypeDescription& first = registry.add(d);

  // Same structure under a differently-cased name: still the same entry.
  TypeDescription again("TEAMA", "PERSON", TypeKind::Class);
  again.add_field({"NAME", "STRING", reflect::Visibility::Public, false});
  const TypeDescription& second = registry.add(again);
  EXPECT_EQ(&first, &second);

  // A conflicting structure under the same (folded) name is rejected.
  TypeDescription conflict("teama", "person", TypeKind::Class);
  conflict.add_field({"age", "int32", reflect::Visibility::Public, false});
  EXPECT_THROW(registry.add(conflict), reflect::ReflectError);
}

TEST(InternedRegistry, SimpleNameAmbiguityResolution) {
  reflect::TypeRegistry registry;
  TypeDescription a("teamA", "Person", TypeKind::Class);
  a.add_field({"name", "string", reflect::Visibility::Public, false});
  registry.add(a);

  // Unique simple name resolves from any (or no) referrer namespace.
  EXPECT_NE(registry.find("Person"), nullptr);
  EXPECT_NE(registry.resolve("person", "elsewhere"), nullptr);

  // A second Person in another namespace makes the bare name ambiguous...
  TypeDescription b("teamB", "Person", TypeKind::Class);
  b.add_field({"fullName", "string", reflect::Visibility::Public, false});
  registry.add(b);
  EXPECT_EQ(registry.find("Person"), nullptr);

  // ...but referrer-namespace qualification still picks the right one.
  const TypeDescription* resolved = registry.resolve("Person", "teamB");
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->qualified_name(), "teamB.Person");

  // Qualified lookups are exact and case-insensitive.
  EXPECT_NE(registry.find("TEAMA.person"), nullptr);
  EXPECT_EQ(registry.find("teamC.Person"), nullptr);
}

TEST(InternedRegistry, FindByIdMatchesFind) {
  reflect::TypeRegistry registry;
  TypeDescription d("teamA", "Person", TypeKind::Class);
  const TypeDescription& stored = registry.add(d);
  EXPECT_EQ(registry.find_by_id(stored.name_id()), &stored);
  EXPECT_EQ(registry.find_by_id(InternedName{}), nullptr);
}

// --- ConformanceCache over interned keys -------------------------------------

TEST(InternedCache, HitMissStatsAcrossInternedLookups) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  domain.load_assembly(fixtures::team_b_people());
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker(domain.registry(), {}, &cache);

  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");

  EXPECT_TRUE(checker.check(source, target).conformant);
  const auto misses_after_first = cache.stats().misses;
  EXPECT_GT(cache.stats().insertions, 0u);

  // Repeat checks are pure hits regardless of entry point (full check or
  // verdict-only), and the verdicts agree.
  const auto hits_before = cache.stats().hits;
  EXPECT_TRUE(checker.check(source, target).conformant);
  EXPECT_TRUE(checker.conforms(source, target));
  EXPECT_EQ(cache.stats().misses, misses_after_first);
  EXPECT_GE(cache.stats().hits, hits_before + 2);
  EXPECT_GT(cache.stats().hit_rate(), 0.0);
}

TEST(InternedCache, DistinctOptionsFingerprintsAreSeparateEntries) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  domain.load_assembly(fixtures::team_b_people());
  conform::ConformanceCache cache;

  const auto& source = *domain.registry().find("teamB.Person");
  const auto& target = *domain.registry().find("teamA.Person");

  conform::ConformanceChecker lenient(domain.registry(), {}, &cache);
  conform::ConformanceOptions exact;
  exact.member_name_rule = conform::MemberNameRule::Exact;
  conform::ConformanceChecker strict(domain.registry(), exact, &cache);

  EXPECT_TRUE(lenient.conforms(source, target));
  const std::size_t size_after_lenient = cache.size();
  EXPECT_FALSE(strict.conforms(source, target));
  EXPECT_GT(cache.size(), size_after_lenient);  // no key collision across options
  // Both verdicts stay retrievable.
  EXPECT_TRUE(lenient.conforms(source, target));
  EXPECT_FALSE(strict.conforms(source, target));
}

// --- ByteWriter::reserve -----------------------------------------------------

TEST(ByteWriter, ReservePreservesContents) {
  util::ByteWriter writer;
  writer.write_string("hello");
  writer.reserve(4096);
  writer.write_string("world");
  const auto bytes = writer.bytes();
  ASSERT_GE(bytes.size(), 12u);
  util::ByteReader reader(bytes);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_string(), "world");
}

}  // namespace
}  // namespace pti
