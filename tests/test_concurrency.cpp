// Multi-threaded stress tests for the sharded hot paths: SymbolTable
// interning, TypeRegistry registration/resolution, the ConformanceCache
// and full conformance checks hammered from N threads at once — plus the
// full protocol stack: an 8-thread multi-peer push/subscribe storm over
// transport::AsyncTransport. These are the tests a ThreadSanitizer build
// (-DPTI_SANITIZE=thread) must pass race-free; single-threaded assertions
// at the end pin down the functional invariants (same name -> same id,
// one stored description per name, deterministic verdicts, conservation
// of pushes: sent == received == delivered + rejected).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <barrier>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "core/interop.hpp"
#include "core/resource_governor.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/type_registry.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/async_transport.hpp"
#include "transport/peer.hpp"
#include "util/epoch.hpp"
#include "util/interning.hpp"

namespace {

using namespace pti;

constexpr int kThreads = 8;

/// A minimal class description with one int32 field.
[[nodiscard]] reflect::TypeDescription make_description(std::string ns, std::string name) {
  reflect::TypeDescription d(std::move(ns), std::move(name), reflect::TypeKind::Class);
  d.add_field({"value", "int32", reflect::Visibility::Private, false});
  return d;
}

/// Runs `fn(thread_index)` on kThreads threads, releasing them together.
template <typename Fn>
void run_threads(Fn fn) {
  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      fn(t);
    });
  }
  for (auto& th : threads) th.join();
}

TEST(ConcurrentSymbolTable, OverlappingInternsAgreeOnIds) {
  util::SymbolTable table;
  constexpr int kNames = 500;
  // Every thread interns the same names (with per-thread case variations)
  // plus a private set, interleaved with reads of already-interned ids.
  std::array<std::array<util::InternedName, kNames>, kThreads> seen{};
  run_threads([&](int t) {
    for (int i = 0; i < kNames; ++i) {
      const std::string shared = (t % 2 == 0 ? "ns.Shared" : "NS.shared") + std::to_string(i);
      seen[t][i] = table.intern(shared);
      const std::string private_name =
          "ns.private." + std::to_string(t) + "." + std::to_string(i);
      const util::InternedName mine = table.intern(private_name);
      ASSERT_TRUE(mine.valid());
      ASSERT_EQ(table.find(private_name), mine);
      // Lock-free readback of something another thread may be publishing.
      ASSERT_FALSE(table.folded(seen[t][i]).empty());
      ASSERT_NE(table.hash(seen[t][i]), 0u);
    }
  });
  // Case-insensitively equal names interned from different threads must
  // have collapsed to a single id with the folded spelling stored once.
  for (int i = 0; i < kNames; ++i) {
    const util::InternedName id = seen[0][i];
    for (int t = 1; t < kThreads; ++t) ASSERT_EQ(seen[t][i], id);
    ASSERT_EQ(table.folded(id), "ns.shared" + std::to_string(i));
  }
  EXPECT_EQ(table.size(),
            static_cast<std::size_t>(kNames + kThreads * kNames));
}

TEST(ConcurrentSymbolTable, QualifiedAndPlainProbesWhileInterning) {
  util::SymbolTable table;
  const util::InternedName fixed = table.intern_qualified("teamA", "Person");
  run_threads([&](int t) {
    if (t == 0) {
      // Writer: keeps growing the table.
      for (int i = 0; i < 4000; ++i) {
        table.intern_qualified("grow", "T" + std::to_string(i));
      }
      return;
    }
    // Readers: allocation-free probes and by-id reads race the writer
    // (bounded, not flag-spun: on a single-cpu box spinning readers would
    // starve the writer for the whole timeslice).
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(table.find_qualified("TeamA", "PERSON"), fixed);
      ASSERT_EQ(table.find("teama.person"), fixed);
      ASSERT_FALSE(table.find("never.interned").valid());
      ASSERT_EQ(table.folded(fixed), "teama.person");
    }
  });
  EXPECT_EQ(table.size(), 4001u);
}

TEST(ConcurrentRegistry, ParallelRegistrationAndResolution) {
  reflect::TypeRegistry registry;
  constexpr int kTypesPerThread = 200;
  run_threads([&](int t) {
    for (int i = 0; i < kTypesPerThread; ++i) {
      // Disjoint per-thread types.
      registry.add(make_description(
          "load", "Type" + std::to_string(t) + "_" + std::to_string(i)));
      // One shared type every thread re-registers (idempotent
      // re-registration must win the race).
      registry.add(make_description("load", "Shared"));

      // Resolve own earlier types while other threads register.
      const std::string probe = "load.Type" + std::to_string(t) + "_" +
                                std::to_string(i / 2);
      ASSERT_NE(registry.find(probe), nullptr);
      ASSERT_NE(registry.find("load.Shared"), nullptr);
      ASSERT_NE(registry.resolve("int32", ""), nullptr);
    }
  });
  // 8 primitives + per-thread types + the one shared type.
  EXPECT_EQ(registry.size(),
            8u + static_cast<std::size_t>(kThreads * kTypesPerThread) + 1u);
  // The shared type collapsed to a single stored description.
  const reflect::TypeDescription* shared = registry.find("load.Shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(registry.find("LOAD.SHARED"), shared);
}

TEST(ConcurrentRegistry, SimpleNameAndGuidLookupsDuringGrowth) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  reflect::TypeRegistry& registry = domain.registry();
  const reflect::TypeDescription* person = registry.find("teamA.Person");
  ASSERT_NE(person, nullptr);
  run_threads([&](int t) {
    for (int i = 0; i < 300; ++i) {
      if (t == 0) {
        registry.add(make_description("growth", "G" + std::to_string(i)));
      } else {
        // Unique simple-name match and guid lookup race the writer.
        ASSERT_EQ(registry.resolve("Person", "elsewhere"), person);
        ASSERT_EQ(registry.find_by_guid(person->guid()), person);
        ASSERT_EQ(registry.find_by_id(person->name_id()), person);
        ASSERT_FALSE(registry.user_types().empty());
      }
    }
  });
}

TEST(ConcurrentCache, LookupInsertStatsStayCoherent) {
  conform::ConformanceCache cache;
  util::SymbolTable& symbols = util::SymbolTable::global();
  constexpr int kKeys = 128;
  std::array<util::InternedName, kKeys> names;
  for (int i = 0; i < kKeys; ++i) {
    names[i] = symbols.intern("concache.K" + std::to_string(i));
  }
  std::atomic<std::uint64_t> observed_hits{0};
  run_threads([&](int t) {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < kKeys; ++i) {
        const auto src = names[i];
        const auto dst = names[(i + 1) % kKeys];
        if (const auto* v = cache.lookup(src, dst, 0)) {
          ASSERT_TRUE(v->conformant);
          observed_hits.fetch_add(1, std::memory_order_relaxed);
        } else if (t % 2 == 0) {
          cache.insert(src, dst, 0, conform::CachedVerdict{true, {}});
        }
      }
    }
  });
  const conform::CacheStats total = cache.stats();
  EXPECT_EQ(total.hits, observed_hits.load());
  EXPECT_EQ(total.hits + total.misses,
            static_cast<std::uint64_t>(kThreads) * 50u * kKeys);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  // Per-shard stats sum to the aggregate.
  conform::CacheStats summed;
  for (std::size_t s = 0; s < conform::ConformanceCache::shard_count(); ++s) {
    const conform::CacheStats shard = cache.shard_stats(s);
    summed.hits += shard.hits;
    summed.misses += shard.misses;
    summed.insertions += shard.insertions;
  }
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.insertions, total.insertions);
}

TEST(ConcurrentCache, EpochReclamationNeverInvalidatesHeldVerdicts) {
  // The reclamation contract under TSan: a reader that brackets its
  // lookups in an EpochManager::Pin may dereference the returned verdict
  // pointer for the pin's whole lifetime, no matter how many evict_cold /
  // clear(em) passes run concurrently. Retired nodes and read-index
  // tables must be freed only after every pin that could have seen them
  // releases — a use-after-free here is exactly what TSan/ASan would
  // flag.
  conform::ConformanceCache cache;
  util::EpochManager em;
  util::SymbolTable& symbols = util::SymbolTable::global();
  constexpr int kKeys = 64;
  std::array<util::InternedName, kKeys> names;
  for (int i = 0; i < kKeys; ++i) {
    names[i] = symbols.intern("epochcache.K" + std::to_string(i));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> dereferenced{0};

  std::thread reclaimer([&] {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.advance_tick();
      if (++round % 8 == 0) {
        cache.clear(em);
      } else {
        (void)cache.evict_cold(em, 1, 16);
      }
      (void)em.try_reclaim();
      std::this_thread::yield();
    }
  });

  run_threads([&](int t) {
    for (int round = 0; round < 300; ++round) {
      const util::EpochManager::Pin pin(em);
      for (int i = 0; i < kKeys; ++i) {
        const auto src = names[i];
        const auto dst = names[(i + t) % kKeys];
        if (const auto* held = cache.lookup(src, dst, 0)) {
          // Deliberately dwell on the pointer across more lookups so an
          // eviction has every chance to race us.
          for (int j = 0; j < 4; ++j) {
            ASSERT_TRUE(held->conformant);
            ASSERT_TRUE(held->plan.methods().empty());
          }
          dereferenced.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.insert(src, dst, 0, conform::CachedVerdict{true, {}});
        }
      }
    }
  });
  stop.store(true);
  reclaimer.join();
  EXPECT_GT(dereferenced.load(), 0u);
  // With all pins released, everything still retired is reclaimable.
  (void)em.try_reclaim();
  EXPECT_EQ(em.retired_count(), 0u);
}

TEST(ConcurrentSymbolTable, EvictionRecyclingKeepsPinnedViewsValid) {
  // Same contract for the interned-name table: folded() views read under
  // a pin stay valid across concurrent evict_cold + slot recycling; ids
  // re-interned after eviction mean the NEW name.
  util::SymbolTable table;
  util::EpochManager em;
  std::atomic<bool> stop{false};

  std::thread evictor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      table.advance_tick();
      (void)table.evict_cold(em, 1, 32);
      (void)em.try_reclaim();
      std::this_thread::yield();
    }
  });

  run_threads([&](int t) {
    for (int round = 0; round < 200; ++round) {
      const util::EpochManager::Pin pin(em);
      const std::string name =
          "evictrace.T" + std::to_string(t) + "." + std::to_string(round % 16);
      const util::InternedName id = table.intern(name);
      const std::string_view view = table.folded(id);
      // The slot may already have been evicted (empty view) or recycled
      // for a newer name by the racing evictor — but the view must always
      // be readable memory holding a well-formed folded name, never a
      // freed string.
      ASSERT_LE(view.size(), 64u);
      for (const char c : view) {
        ASSERT_TRUE(c == '.' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z'));
      }
    }
  });
  stop.store(true);
  evictor.join();
  (void)em.try_reclaim();
  EXPECT_EQ(em.retired_count(), 0u);
}

TEST(ConcurrentChecker, SharedCheckerConsistentVerdicts) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  domain.load_assembly(fixtures::team_b_people());
  domain.load_assembly(fixtures::deep_type_chain("ca", 8));
  domain.load_assembly(fixtures::deep_type_chain("cb", 8));
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker(domain.registry(), {}, &cache);

  const auto* a_person = domain.registry().find("teamA.Person");
  const auto* b_person = domain.registry().find("teamB.Person");
  const auto* chain_a = domain.registry().find("ca.T0");
  const auto* chain_b = domain.registry().find("cb.T0");
  const auto* account = domain.registry().find("int32");
  ASSERT_NE(a_person, nullptr);
  ASSERT_NE(b_person, nullptr);
  ASSERT_NE(chain_a, nullptr);
  ASSERT_NE(chain_b, nullptr);
  ASSERT_NE(account, nullptr);

  run_threads([&](int t) {
    for (int i = 0; i < 200; ++i) {
      // Cold and warm checks interleave across threads; every verdict must
      // be the deterministic one.
      ASSERT_TRUE(checker.conforms(*b_person, *a_person));
      ASSERT_TRUE(checker.conforms(*chain_b, *chain_a));
      ASSERT_FALSE(checker.conforms(*account, *a_person));
      const conform::CheckResult full = checker.check(*b_person, *a_person);
      ASSERT_TRUE(full.conformant);
      ASSERT_NE(full.plan.find_method("getName", 0), nullptr);
      if (t == 0 && i % 50 == 0) {
        // A writer thread grows the registry mid-flight.
        domain.registry().add(make_description("hotadd", "H" + std::to_string(i)));
      }
    }
  });
  const conform::CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.insertions, 0u);
}

TEST(ConcurrentPlan, CopiesShareAtomicallyRefcountedPayload) {
  reflect::Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  domain.load_assembly(fixtures::team_b_people());
  conform::ConformanceCache cache;
  conform::ConformanceChecker checker(domain.registry(), {}, &cache);
  const conform::CheckResult result = checker.check(
      *domain.registry().find("teamB.Person"), *domain.registry().find("teamA.Person"));
  ASSERT_TRUE(result.conformant);
  const conform::ConformancePlan master = result.plan;

  run_threads([&](int) {
    for (int i = 0; i < 2000; ++i) {
      conform::ConformancePlan copy = master;  // refcount bump
      ASSERT_NE(copy.find_method("getName", 0), nullptr);
      conform::ConformancePlan second = copy;
      // COW: mutating a shared copy must not disturb other threads' reads.
      second.add_field(conform::FieldMapping{"f", "g", "int32", "int32"});
      ASSERT_NE(second.find_field("f"), nullptr);
      ASSERT_EQ(copy.find_field("f"), nullptr);
    }
  });
  EXPECT_EQ(master.find_field("f"), nullptr);
  EXPECT_FALSE(master.methods().empty());
}

TEST(ConcurrentTransport, MultiPeerPushSubscribeStorm) {
  // Four peers over one AsyncTransport, each hosting its own (structurally
  // identical) event type and subscribed to it; 8 threads — two per peer —
  // storm the universe with a mix of synchronous pushes, pipelined async
  // pushes and subscribe/unsubscribe churn. Every push conforms, so the
  // conservation law at the end is exact: every ack says delivered, every
  // delivery fired a handler, and per-peer counters balance.
  constexpr int kPeers = 4;
  constexpr int kPushesPerThread = 24;

  auto owned = std::make_unique<transport::AsyncTransport>(
      transport::AsyncTransportConfig{.workers = 3, .max_inbox = 64});
  transport::AsyncTransport& net = *owned;
  core::InteropSystem system(std::move(owned));

  std::array<core::InteropRuntime*, kPeers> peers{};
  std::array<core::TypeHandle, kPeers> event_types{};
  std::array<std::atomic<std::uint64_t>, kPeers> handled{};
  for (int p = 0; p < kPeers; ++p) {
    auto& runtime = system.create_runtime("storm" + std::to_string(p));
    const auto handles = runtime.publish_assembly(
        fixtures::wide_type("stormns" + std::to_string(p), "Event", 4, 4));
    ASSERT_FALSE(handles.empty());
    event_types[p] = handles.front();
    runtime.subscribe("stormns" + std::to_string(p) + ".Event",
                      [&handled, p](const transport::DeliveredObject&) {
                        handled[p].fetch_add(1, std::memory_order_relaxed);
                      });
    peers[p] = &runtime;
  }

  std::array<std::atomic<std::uint64_t>, kPeers> expected_deliveries{};
  std::atomic<std::uint64_t> acked{0};
  run_threads([&](int t) {
    core::InteropRuntime& mine = *peers[t % kPeers];
    const std::string my_type =
        "stormns" + std::to_string(t % kPeers) + ".Event";
    std::vector<std::pair<int, std::future<transport::PushAck>>> in_flight;
    for (int i = 0; i < kPushesPerThread; ++i) {
      const int target = (t % kPeers + 1 + (i % (kPeers - 1))) % kPeers;
      const std::string target_name = "storm" + std::to_string(target);
      auto object = mine.make(my_type);
      if (i % 3 == 0) {
        // Pipelined async push; reaped below.
        in_flight.emplace_back(target, mine.send_async(target_name, object));
      } else {
        const transport::PushAck ack = mine.send(target_name, object);
        ASSERT_TRUE(ack.delivered);
        expected_deliveries[target].fetch_add(1, std::memory_order_relaxed);
        acked.fetch_add(1, std::memory_order_relaxed);
      }
      // Subscribe/unsubscribe churn races the deliveries hitting `mine`.
      auto churn = mine.subscribe(event_types[t % kPeers],
                                  [](const transport::DeliveredObject&) {});
      churn.unsubscribe();
    }
    for (auto& [target, future] : in_flight) {
      const transport::PushAck ack = future.get();
      ASSERT_TRUE(ack.delivered);
      expected_deliveries[target].fetch_add(1, std::memory_order_relaxed);
      acked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  net.drain();

  EXPECT_EQ(acked.load(), static_cast<std::uint64_t>(kThreads) * kPushesPerThread);
  std::uint64_t total_delivered = 0;
  for (int p = 0; p < kPeers; ++p) {
    const auto expected = expected_deliveries[p].load();
    EXPECT_EQ(handled[p].load(), expected) << "peer " << p;
    EXPECT_EQ(peers[p]->peer().delivered_count(), expected) << "peer " << p;
    EXPECT_EQ(peers[p]->stats().objects_received, expected) << "peer " << p;
    EXPECT_EQ(peers[p]->stats().objects_delivered, expected) << "peer " << p;
    EXPECT_EQ(peers[p]->stats().objects_rejected, 0u) << "peer " << p;
    total_delivered += expected;
  }
  EXPECT_EQ(total_delivered, acked.load());
  EXPECT_EQ(net.pending(), 0u);
}

TEST(ConcurrentTransport, AsyncBackpressureUnderStorm) {
  // A single slow-ish receiver with a tiny inbox and Block overflow: the
  // storm must neither deadlock nor lose a message — every future resolves
  // delivered, and the receiver saw exactly as many pushes as were sent.
  auto owned = std::make_unique<transport::AsyncTransport>(
      transport::AsyncTransportConfig{
          .workers = 2,
          .max_inbox = 2,
          .overflow = transport::AsyncTransportConfig::Overflow::Block});
  transport::AsyncTransport& net = *owned;
  core::InteropSystem system(std::move(owned));
  auto& receiver = system.create_runtime("sink");
  (void)receiver.publish_assembly(fixtures::wide_type("sinkns", "Event", 2, 2));
  receiver.subscribe("sinkns.Event", [](const transport::DeliveredObject&) {});

  std::array<core::InteropRuntime*, kThreads> senders{};
  for (int t = 0; t < kThreads; ++t) {
    auto& runtime = system.create_runtime("src" + std::to_string(t));
    (void)runtime.publish_assembly(
        fixtures::wide_type("srcns" + std::to_string(t), "Event", 2, 2));
    senders[t] = &runtime;
  }

  constexpr int kPushes = 16;
  std::atomic<std::uint64_t> delivered{0};
  run_threads([&](int t) {
    core::InteropRuntime& mine = *senders[t];
    const std::string my_type = "srcns" + std::to_string(t) + ".Event";
    std::vector<std::future<transport::PushAck>> in_flight;
    for (int i = 0; i < kPushes; ++i) {
      in_flight.push_back(mine.send_async("sink", mine.make(my_type)));
    }
    for (auto& future : in_flight) {
      if (future.get().delivered) delivered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  net.drain();
  EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(kThreads) * kPushes);
  EXPECT_EQ(receiver.stats().objects_received,
            static_cast<std::uint64_t>(kThreads) * kPushes);
  EXPECT_EQ(receiver.stats().objects_delivered + receiver.stats().objects_rejected,
            receiver.stats().objects_received);
}

TEST(ConcurrentTransport, GovernorSweepsRaceWarmedSessionPushes) {
  // The session-layer reclamation contract under TSan: kThreads sender
  // peers hammer warmed session pushes at one receiver over an
  // AsyncTransport while a governor thread sweeps continuously, its
  // post-sweep hook invalidating the receiver's verdict cache mid-storm.
  // Invalidation must only ever cost a recomputation — never a wrong
  // verdict, a lost delivery, or a data race on the session state.
  auto net = std::make_unique<transport::AsyncTransport>(
      transport::AsyncTransportConfig{.workers = 3});
  auto hub = std::make_shared<transport::AssemblyHub>();
  const transport::PeerConfig config{.mode = transport::ProtocolMode::Optimistic,
                                     .use_sessions = true};
  transport::Peer receiver("sink", *net, hub, config);
  receiver.host_assembly(fixtures::wide_type("consess", "Event", 4, 4));
  receiver.add_interest("consess.Event");

  std::array<std::unique_ptr<transport::Peer>, kThreads> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders[t] = std::make_unique<transport::Peer>("conssrc" + std::to_string(t), *net,
                                                   hub, config);
    senders[t]->host_assembly(fixtures::wide_type("consess", "Event", 4, 4));
  }

  // Watch every live registry — an unwatched governor would evict the
  // very symbols the peers' registries still key on (the PR-6 veto
  // contract), which is misconfiguration, not the race under test.
  core::ResourceGovernor governor;
  governor.watch(receiver.domain().registry());
  for (auto& sender : senders) governor.watch(sender->domain().registry());
  governor.add_post_sweep_hook([&receiver] {
    receiver.sessions().invalidate_verdicts();
  });

  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)governor.sweep();
      std::this_thread::yield();
    }
  });

  constexpr int kPushes = 40;
  std::atomic<std::uint64_t> delivered{0};
  run_threads([&](int t) {
    transport::Peer& mine = *senders[t];
    for (int i = 0; i < kPushes; ++i) {
      const auto object = mine.domain().instantiate("consess.Event");
      const transport::PushAck ack = mine.send_object("sink", object);
      ASSERT_TRUE(ack.delivered) << ack.detail;
      delivered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  stop.store(true);
  sweeper.join();
  net->drain();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPushes;
  EXPECT_EQ(delivered.load(), kTotal);
  EXPECT_EQ(receiver.stats().objects_delivered, kTotal);
  EXPECT_EQ(receiver.stats().objects_rejected, 0u);
  EXPECT_EQ(receiver.stats().session_pushes, kTotal);
  // Well under the session cap, so invalidation (recompute) is the only
  // effect a sweep may have — never a reset.
  EXPECT_EQ(receiver.stats().session_resets, 0u);
  // The sweeps really moved the generation underneath the storm.
  EXPECT_GT(governor.sweeps(), 0u);
  EXPECT_GT(receiver.sessions().generation(), 0u);

  // With the sweeper stopped, two back-to-back pushes pin the cache
  // deterministically: the first (re)stores a verdict under a now-stable
  // generation, the second MUST be served from it.
  const auto object = senders[0]->domain().instantiate("consess.Event");
  ASSERT_TRUE(senders[0]->send_object("sink", object).delivered);
  const std::uint64_t hits_before = receiver.stats().session_verdict_hits.get();
  ASSERT_TRUE(senders[0]->send_object("sink", object).delivered);
  EXPECT_EQ(receiver.stats().session_verdict_hits.get(), hits_before + 1);
}

TEST(ConcurrentFingerprint, MemoizationRaceYieldsOneValue) {
  reflect::TypeDescription description("fp", "Wide", reflect::TypeKind::Class);
  for (int i = 0; i < 64; ++i) {
    description.add_field({"f" + std::to_string(i), "int32",
                           reflect::Visibility::Private, false});
  }
  std::array<std::uint64_t, kThreads> values{};
  run_threads([&](int t) { values[t] = description.fingerprint(); });
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(values[t], values[0]);
  EXPECT_EQ(values[0], description.fingerprint());
}

}  // namespace
