// Full-stack parameterized sweep: every conformant fixture pairing is
// exchanged end to end (pass-by-value) under every payload encoding, and
// the delivered object must be usable through the receiver's interface.
// This is the closest thing to a continuous-integration "does the whole
// paper still work" gate.
#include <gtest/gtest.h>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"

namespace pti {
namespace {

using core::InteropRuntime;
using core::InteropSystem;
using reflect::Value;

struct Scenario {
  const char* name;
  /// Loads the sender's universe and creates the object to send.
  std::shared_ptr<reflect::DynObject> (*make_object)(InteropRuntime&);
  /// Loads the receiver's universe; returns the interest type.
  const char* (*setup_receiver)(InteropRuntime&);
  /// Drives the adapted object and checks behaviour.
  void (*verify)(InteropRuntime&, const transport::DeliveredObject&);
};

std::shared_ptr<reflect::DynObject> make_person(InteropRuntime& rt) {
  rt.publish_assembly(fixtures::team_a_people());
  const Value args[] = {Value("Ada")};
  auto person = rt.make("teamA.Person", args);
  const Value addr[] = {Value("Main"), Value(std::int32_t{10})};
  person->set("address", Value(rt.make("teamA.Address", addr)));
  return person;
}

const char* receive_person(InteropRuntime& rt) {
  rt.publish_assembly(fixtures::team_b_people());
  return "teamB.Person";
}

void verify_person(InteropRuntime& rt, const transport::DeliveredObject& ev) {
  EXPECT_EQ(rt.call(ev.adapted, "getPersonName").as_string(), "Ada");
  const Value rename[] = {Value("Lovelace")};
  rt.call(ev.adapted, "setPersonName", rename);
  EXPECT_EQ(rt.call(ev.adapted, "getPersonName").as_string(), "Lovelace");
  const Value address = rt.call(ev.adapted, "getAddress");
  ASSERT_FALSE(address.is_null());
  EXPECT_EQ(rt.call(address.as_object(), "getZipCode").as_int32(), 10);
}

std::shared_ptr<reflect::DynObject> make_meeting(InteropRuntime& rt) {
  rt.publish_assembly(fixtures::agenda_meetings());
  const Value args[] = {Value(std::int64_t{930}), Value("standup")};
  return rt.make("agenda.Meeting", args);
}

const char* receive_meeting(InteropRuntime& rt) {
  rt.publish_assembly(fixtures::planner_meetings());
  return "planner.Meeting";
}

void verify_meeting(InteropRuntime& rt, const transport::DeliveredObject& ev) {
  EXPECT_EQ(rt.call(ev.adapted, "getTitle").as_string(), "standup");
  EXPECT_EQ(rt.call(ev.adapted, "getMeetingStart").as_int64(), 930);
  const Value resched[] = {Value("retro"), Value(std::int64_t{1500})};
  rt.call(ev.adapted, "reschedule", resched);
  EXPECT_EQ(rt.call(ev.adapted, "getMeetingStart").as_int64(), 1500);
}

std::shared_ptr<reflect::DynObject> make_chain(InteropRuntime& rt) {
  rt.publish_assembly(fixtures::lists_a());
  const Value v1[] = {Value(std::int32_t{3})};
  const Value v2[] = {Value(std::int32_t{4})};
  auto n1 = rt.make("listsA.Node", v1);
  auto n2 = rt.make("listsA.Node", v2);
  const Value next[] = {Value(n2)};
  rt.call(n1, "setNext", next);
  return n1;
}

const char* receive_chain(InteropRuntime& rt) {
  rt.publish_assembly(fixtures::lists_b());
  return "listsB.Node";
}

void verify_chain(InteropRuntime& rt, const transport::DeliveredObject& ev) {
  EXPECT_EQ(rt.call(ev.adapted, "getNodeValue").as_int32(), 3);
  EXPECT_EQ(rt.call(ev.adapted, "sum").as_int32(), 7);
  const Value next = rt.call(ev.adapted, "getNextNode");
  ASSERT_FALSE(next.is_null());
  EXPECT_EQ(rt.call(next.as_object(), "getNodeValue").as_int32(), 4);
}

const Scenario kScenarios[] = {
    {"person", make_person, receive_person, verify_person},
    {"meeting", make_meeting, receive_meeting, verify_meeting},
    {"chain", make_chain, receive_chain, verify_chain},
};

class FullStackSweep
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(FullStackSweep, ExchangeAndUse) {
  const Scenario& scenario = kScenarios[std::get<0>(GetParam())];
  const char* encoding = std::get<1>(GetParam());
  // XML drops private state; these scenarios depend on it, so only the
  // full-fidelity encodings participate (XML has its own dedicated tests).

  InteropSystem system;
  transport::PeerConfig config;
  config.payload_encoding = encoding;
  InteropRuntime& sender = system.create_runtime("sender", config);
  InteropRuntime& receiver = system.create_runtime("receiver", config);

  auto object = scenario.make_object(sender);
  const char* interest = scenario.setup_receiver(receiver);
  bool verified = false;
  receiver.subscribe(interest, [&](const transport::DeliveredObject& ev) {
    scenario.verify(receiver, ev);
    verified = true;
  });

  const auto ack = sender.send("receiver", object);
  EXPECT_TRUE(ack.delivered) << scenario.name << " via " << encoding;
  EXPECT_TRUE(verified);

  // Second exchange exercises the cached path end to end.
  const auto ack2 = sender.send("receiver", object);
  EXPECT_TRUE(ack2.delivered);
  EXPECT_EQ(receiver.stats().typeinfo_cache_hits, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllEncodings, FullStackSweep,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values("soap", "binary")),
    [](const ::testing::TestParamInfo<FullStackSweep::ParamType>& info) {
      return std::string(kScenarios[std::get<0>(info.param)].name) + "_" +
             std::get<1>(info.param);
    });

}  // namespace
}  // namespace pti
