// Tests for the simulated network and the optimistic transport protocol
// (Fig. 1): on-demand descriptions and code, caching, rejection without
// code download, the eager baseline, failure injection (drop schedules,
// partitions, classified errors), the endpoint attach/detach contract,
// and the thread-pool-backed AsyncTransport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <semaphore>
#include <thread>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/async_transport.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "transport/transport_error.hpp"

namespace pti::transport {
namespace {

using reflect::DynObject;
using reflect::Value;

// --- SimNetwork -------------------------------------------------------------

TEST(SimNetwork, RoutesAndCharges) {
  SimNetwork net;
  net.attach("echo", [](const Message& m) {
    return Message{"echo", m.sender, PushAck{true, "ok"}};
  });
  const Message reply = net.send(Message{"client", "echo", CodeRequest{"x"}});
  EXPECT_TRUE(std::get<PushAck>(reply.payload).delivered);
  EXPECT_EQ(reply.sender, "echo");
  EXPECT_EQ(reply.recipient, "client");
  EXPECT_EQ(net.stats().messages, 2u);  // request + response
  EXPECT_GT(net.stats().bytes, 0u);
  EXPECT_GT(net.clock().now_ns(), 0u);
}

TEST(SimNetwork, UnknownRecipientThrows) {
  SimNetwork net;
  EXPECT_THROW((void)net.send(Message{"a", "ghost", CodeRequest{"x"}}), NetworkError);
}

TEST(SimNetwork, ForcedDropsThrowDeterministically) {
  SimNetwork net;
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, ""}};
  });
  net.inject_drop_next(1);
  EXPECT_THROW((void)net.send(Message{"a", "svc", CodeRequest{"x"}}), NetworkError);
  EXPECT_EQ(net.stats().drops, 1u);
  // Next message goes through.
  EXPECT_NO_THROW((void)net.send(Message{"a", "svc", CodeRequest{"x"}}));
}

TEST(SimNetwork, PerLinkConfigAffectsLatency) {
  SimNetwork net;
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, ""}};
  });
  net.set_default_link({.latency_ns = 0, .bandwidth_bytes_per_sec = 1e12});
  (void)net.send(Message{"a", "svc", CodeRequest{"x"}});
  const auto t0 = net.clock().now_ns();
  net.set_link("a", "svc", {.latency_ns = 5'000'000, .bandwidth_bytes_per_sec = 1e12});
  (void)net.send(Message{"a", "svc", CodeRequest{"x"}});
  EXPECT_GE(net.clock().now_ns() - t0, 5'000'000u);
}

TEST(MessageSizes, CodeDominatesDescriptions) {
  const Message code{"a", "b", CodeResponse{"asm", true, 50'000}};
  const Message info{"a", "b", TypeInfoResponse{{std::string(600, 'x')}, {}}};
  EXPECT_GT(code.wire_size(), info.wire_size());
  EXPECT_STREQ(code.kind_name(), "CodeResponse");
}

// --- the optimistic protocol (Fig. 1) ---------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : hub_(std::make_shared<AssemblyHub>()),
        alice_("alice", net_, hub_),
        bob_("bob", net_, hub_) {
    alice_.host_assembly(fixtures::team_a_people());
    bob_.host_assembly(fixtures::team_b_people());
    bob_.add_interest("teamB.Person");
  }

  std::shared_ptr<DynObject> make_a_person(std::string_view name) {
    const Value args[] = {Value(name)};
    auto person = alice_.domain().instantiate("teamA.Person", args);
    const Value addr[] = {Value("Main St"), Value(std::int32_t{42})};
    person->set("address", Value(alice_.domain().instantiate("teamA.Address", addr)));
    return person;
  }

  SimNetwork net_;
  std::shared_ptr<AssemblyHub> hub_;
  Peer alice_;
  Peer bob_;
};

TEST_F(ProtocolTest, FullFigureOneFlow) {
  const PushAck ack = alice_.send_object("bob", make_a_person("Alice"));
  EXPECT_TRUE(ack.delivered);
  EXPECT_EQ(ack.detail, "teamB.Person");

  // Step 2/3 happened: one request for the envelope's unknown types
  // (Person, Address), and one more for teamA.INamed — referenced by the
  // Person description but not part of the object graph, so fetched on
  // demand during the conformance check.
  EXPECT_EQ(bob_.stats().typeinfo_requests, 2u);
  // Step 4/5 happened: bob downloaded the assembly.
  EXPECT_EQ(bob_.stats().code_requests, 1u);
  EXPECT_TRUE(bob_.domain().has_assembly("teamA.people"));
  EXPECT_TRUE(bob_.domain().is_loaded("teamA.Person"));

  // The delivered object is usable as bob's own type.
  ASSERT_EQ(bob_.delivered().size(), 1u);
  const DeliveredObject& delivered = bob_.delivered().front();
  EXPECT_EQ(delivered.interest_type, "teamB.Person");
  EXPECT_EQ(delivered.sender, "alice");
  EXPECT_EQ(bob_.proxies().invoke(delivered.adapted, "getPersonName", {}).as_string(),
            "Alice");
  // Deep access works across the wire too.
  const Value address = bob_.proxies().invoke(delivered.adapted, "getAddress", {});
  EXPECT_EQ(bob_.proxies().invoke(address.as_object(), "getStreetName", {}).as_string(),
            "Main St");
}

TEST_F(ProtocolTest, SecondPushOfSameTypeUsesCaches) {
  (void)alice_.send_object("bob", make_a_person("One"));
  const auto typeinfo_before = bob_.stats().typeinfo_requests;
  const auto code_before = bob_.stats().code_requests;
  net_.reset_stats();

  (void)alice_.send_object("bob", make_a_person("Two"));
  // No further metadata or code round trips — the optimistic saving.
  EXPECT_EQ(bob_.stats().typeinfo_requests, typeinfo_before);
  EXPECT_EQ(bob_.stats().code_requests, code_before);
  EXPECT_EQ(bob_.stats().typeinfo_cache_hits, 1u);
  EXPECT_EQ(bob_.stats().code_cache_hits, 1u);
  EXPECT_EQ(net_.stats().messages, 2u);  // push + ack only
}

TEST_F(ProtocolTest, NonConformantPushIsRejectedWithoutCodeDownload) {
  alice_.host_assembly(fixtures::bank_accounts());
  const Value args[] = {Value("Eve")};
  auto account = alice_.domain().instantiate("bank.Account", args);

  const PushAck ack = alice_.send_object("bob", account);
  EXPECT_FALSE(ack.delivered);
  EXPECT_EQ(bob_.stats().objects_rejected, 1u);
  // Descriptions were fetched (needed for the conformance decision)...
  EXPECT_GE(bob_.stats().typeinfo_requests, 1u);
  // ...but code was NOT (the protocol's whole point).
  EXPECT_EQ(bob_.stats().code_requests, 0u);
  EXPECT_FALSE(bob_.domain().has_assembly("bank.accounts"));
  EXPECT_TRUE(bob_.delivered().empty());
}

TEST_F(ProtocolTest, NoInterestNoDelivery) {
  Peer carol("carol", net_, hub_);  // no interests at all
  const PushAck ack = alice_.send_object("carol", make_a_person("X"));
  EXPECT_FALSE(ack.delivered);
  EXPECT_EQ(carol.stats().code_requests, 0u);
}

TEST_F(ProtocolTest, ProxiesAreStrippedBeforeSending) {
  // bob receives alice's person, adapts it, sends the *proxy* back.
  (void)alice_.send_object("bob", make_a_person("Alice"));
  alice_.add_interest("teamA.Person");
  const auto& adapted = bob_.delivered().front().adapted;
  ASSERT_TRUE(proxy::ProxyFactory::is_proxy(*adapted));

  const PushAck ack = bob_.send_object("alice", adapted);
  EXPECT_TRUE(ack.delivered);
  const auto& received = alice_.delivered().front().object;
  // What crossed the wire is the real teamA.Person state, not a wrapper.
  EXPECT_EQ(received->type_name(), "teamA.Person");
  EXPECT_FALSE(received->has_field(proxy::kProxySourceField));
  EXPECT_EQ(received->get("name").as_string(), "Alice");
}

TEST_F(ProtocolTest, ThirdPartyForwardingDownloadsFromOrigin) {
  // alice -> bob (bob now knows teamA types), then bob -> carol: carol
  // must fetch the assembly from *alice* (the download path's host).
  (void)alice_.send_object("bob", make_a_person("Alice"));
  Peer carol("carol", net_, hub_);
  carol.host_assembly(fixtures::team_b_people());
  carol.add_interest("teamB.Person");

  const auto& received = bob_.delivered().front().object;
  const PushAck ack = bob_.send_object("carol", received);
  EXPECT_TRUE(ack.delivered);
  EXPECT_TRUE(carol.domain().has_assembly("teamA.people"));
  // alice served one code download for bob and one for carol.
  EXPECT_EQ(alice_.stats().code_served, 2u);
}

TEST_F(ProtocolTest, MissingAssemblySurfacesAsProtocolError) {
  // A type whose assembly nobody hosts: build description-only knowledge
  // by hosting on a third peer, killing it, then pushing from alice.
  auto ghost_assembly = fixtures::bank_accounts();
  {
    Peer ghost("ghost", net_, std::make_shared<AssemblyHub>());  // separate hub!
    ghost.host_assembly(ghost_assembly);
  }
  // alice knows the type (loads locally into her domain + our hub), but the
  // download path points at the detached ghost peer.
  alice_.domain().load_assembly(ghost_assembly, "net://ghost/bank.accounts");
  bob_.add_interest("teamB.Person");
  const Value args[] = {Value("Eve")};
  auto account = alice_.domain().instantiate("bank.Account", args);
  // Rejected on conformance grounds — no code fetch attempted, no error.
  const PushAck ack = alice_.send_object("bob", account);
  EXPECT_FALSE(ack.delivered);

  // Now make bob interested in something the account *does* conform to:
  // its own type, known only by description.
  bob_.fetch_descriptions("alice", {"bank.Account"});
  bob_.add_interest("bank.Account");
  EXPECT_THROW((void)alice_.send_object("bob", account), ProtocolError);
}

TEST_F(ProtocolTest, DroppedResponseSurfacesAsError) {
  net_.inject_drop_next(1);
  EXPECT_THROW((void)alice_.send_object("bob", make_a_person("X")), NetworkError);
}

TEST_F(ProtocolTest, DroppedMidProtocolStepSurfacesAsError) {
  // Message #1 is the push itself; message #2 is bob's TypeInfoRequest.
  // Killing the latter makes the push fail with a protocol-level error
  // reported back to alice (bob catches the network failure, answers with
  // an ErrorReply, send_object converts it).
  net_.inject_drop_at(2);
  EXPECT_THROW((void)alice_.send_object("bob", make_a_person("X")), ProtocolError);
  EXPECT_EQ(net_.stats().drops, 1u);
  EXPECT_TRUE(bob_.delivered().empty());

  // The system recovers: the very next push succeeds end to end.
  EXPECT_TRUE(alice_.send_object("bob", make_a_person("Y")).delivered);
}

TEST_F(ProtocolTest, DroppedCodeResponseSurfacesAsError) {
  // Messages within the first push: 1 push, 2 typeinfo req, 3 typeinfo
  // resp, 4 typeinfo req (INamed), 5 resp, 6 code req, 7 code resp.
  net_.inject_drop_at(7);
  EXPECT_THROW((void)alice_.send_object("bob", make_a_person("X")), ProtocolError);
  EXPECT_FALSE(bob_.domain().has_assembly("teamA.people"));
  // Recovery on retry.
  EXPECT_TRUE(alice_.send_object("bob", make_a_person("Y")).delivered);
  EXPECT_TRUE(bob_.domain().has_assembly("teamA.people"));
}

TEST_F(ProtocolTest, MalformedEnvelopeIsReportedNotFatal) {
  ObjectPush garbage;
  garbage.envelope = {0x00, 0x01, 0x02, 0x03};
  const Message response = net_.send(Message{"alice", "bob", std::move(garbage)});
  const auto* error = std::get_if<ErrorReply>(&response.payload);
  ASSERT_NE(error, nullptr);
  // The peer keeps working afterwards.
  EXPECT_TRUE(alice_.send_object("bob", make_a_person("OK")).delivered);
}

TEST_F(ProtocolTest, UnexpectedMessageKindsGetErrorReplies) {
  const Message response =
      net_.send(Message{"alice", "bob", PushAck{true, "spurious"}});
  const auto* error = std::get_if<ErrorReply>(&response.payload);
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->message.find("cannot handle"), std::string::npos);
}

TEST_F(ProtocolTest, InterestMustBeLocallyKnown) {
  EXPECT_THROW(bob_.add_interest("totally.Unknown"), ProtocolError);
}

TEST_F(ProtocolTest, TypeInfoRequestsAnswerOnlyKnownTypes) {
  Message request{"bob", "alice", TypeInfoRequest{{"teamA.Person", "no.Such"}}};
  const Message response = net_.send(request);
  const auto& info = std::get<TypeInfoResponse>(response.payload);
  EXPECT_EQ(info.descriptions_xml.size(), 1u);
  ASSERT_EQ(info.unknown.size(), 1u);
  EXPECT_EQ(info.unknown.front(), "no.Such");
}

TEST_F(ProtocolTest, DeliveryHandlerFires) {
  std::vector<std::string> seen;
  bob_.set_delivery_handler([&seen, this](const DeliveredObject& d) {
    seen.push_back(bob_.proxies().invoke(d.adapted, "getPersonName", {}).as_string());
  });
  (void)alice_.send_object("bob", make_a_person("Ada"));
  (void)alice_.send_object("bob", make_a_person("Grace"));
  EXPECT_EQ(seen, (std::vector<std::string>{"Ada", "Grace"}));
}

// --- matcher modes (Section 2 baselines end-to-end) ---------------------------

class MatcherModeTest : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(MatcherModeTest, GatesDeliveryAccordingToTheRelation) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig receiver_config;
  receiver_config.matcher = GetParam();
  Peer alice("alice", net, hub);
  Peer bob("bob", net, hub, receiver_config);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_a_people());  // bob also knows teamA
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");
  bob.add_interest("teamA.Person");

  const Value args[] = {Value("Ada")};
  auto person = alice.domain().instantiate("teamA.Person", args);
  const PushAck ack = alice.send_object("bob", person);

  switch (GetParam()) {
    case MatcherKind::ImplicitStructural:
      // First interest (teamB.Person) already matches implicitly.
      EXPECT_TRUE(ack.delivered);
      EXPECT_EQ(ack.detail, "teamB.Person");
      break;
    case MatcherKind::Exact:
    case MatcherKind::Nominal:
    case MatcherKind::TaggedStructural:
      // Only the identical type matches under the baselines.
      EXPECT_TRUE(ack.delivered);
      EXPECT_EQ(ack.detail, "teamA.Person");
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherModeTest,
                         ::testing::Values(MatcherKind::ImplicitStructural,
                                           MatcherKind::Exact, MatcherKind::Nominal,
                                           MatcherKind::TaggedStructural));

TEST(MatcherModeNegative, BaselinesRejectWhatImplicitAccepts) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig exact_config;
  exact_config.matcher = MatcherKind::Exact;
  Peer alice("alice", net, hub);
  Peer bob("bob", net, hub, exact_config);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");  // only the foreign-shaped interest

  const Value args[] = {Value("Ada")};
  const PushAck ack =
      alice.send_object("bob", alice.domain().instantiate("teamA.Person", args));
  EXPECT_FALSE(ack.delivered);
  EXPECT_EQ(bob.stats().objects_rejected, 1u);
}

// --- eager baseline ---------------------------------------------------------

TEST(EagerProtocol, ShipsEverythingUpFront) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig eager;
  eager.mode = ProtocolMode::Eager;
  Peer alice("alice", net, hub, eager);
  Peer bob("bob", net, hub, eager);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");

  const Value args[] = {Value("Alice")};
  auto person = alice.domain().instantiate("teamA.Person", args);
  const PushAck ack = alice.send_object("bob", person);
  EXPECT_TRUE(ack.delivered);
  // Everything arrived with the push: zero extra round trips.
  EXPECT_EQ(bob.stats().typeinfo_requests, 0u);
  EXPECT_EQ(bob.stats().code_requests, 0u);
  EXPECT_TRUE(bob.domain().has_assembly("teamA.people"));
}

TEST(EagerProtocol, CostsMoreBytesOnRepeatedPushes) {
  const auto run = [](ProtocolMode mode) {
    SimNetwork net;
    auto hub = std::make_shared<AssemblyHub>();
    PeerConfig config;
    config.mode = mode;
    Peer alice("alice", net, hub, config);
    Peer bob("bob", net, hub, config);
    alice.host_assembly(fixtures::team_a_people());
    bob.host_assembly(fixtures::team_b_people());
    bob.add_interest("teamB.Person");
    for (int i = 0; i < 10; ++i) {
      const Value args[] = {Value("P" + std::to_string(i))};
      (void)alice.send_object("bob", alice.domain().instantiate("teamA.Person", args));
    }
    return net.stats().bytes;
  };
  const auto optimistic_bytes = run(ProtocolMode::Optimistic);
  const auto eager_bytes = run(ProtocolMode::Eager);
  EXPECT_LT(optimistic_bytes, eager_bytes)
      << "optimistic=" << optimistic_bytes << " eager=" << eager_bytes;
}

// --- endpoint contract (attach/detach semantics) -----------------------------

TEST(EndpointContract, DoubleAttachThrows) {
  SimNetwork net;
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, "first"}};
  });
  EXPECT_THROW(net.attach("svc",
                          [](const Message& m) {
                            return Message{"svc", m.sender, PushAck{true, "second"}};
                          }),
               TransportError);
  // Case-insensitive: endpoint names collide like type names do.
  EXPECT_THROW(net.attach("SVC", [](const Message& m) { return m; }), TransportError);
  // The empty name is reserved by the wire protocol (unaddressed messages
  // mark transport faults) — rejected by every implementation.
  EXPECT_THROW(net.attach("", [](const Message& m) { return m; }), TransportError);
  // The original handler stayed in place and keeps working.
  const Message reply = net.send(Message{"client", "svc", CodeRequest{"x"}});
  EXPECT_EQ(std::get<PushAck>(reply.payload).detail, "first");
}

TEST(EndpointContract, DetachUnknownNameIsNoop) {
  SimNetwork net;
  EXPECT_NO_THROW(net.detach("never-attached"));
}

TEST(EndpointContract, ReattachAfterDetachWorks) {
  SimNetwork net;
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, "old"}};
  });
  net.detach("svc");
  EXPECT_FALSE(net.is_attached("svc"));
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, "new"}};
  });
  const Message reply = net.send(Message{"client", "svc", CodeRequest{"x"}});
  EXPECT_EQ(std::get<PushAck>(reply.payload).detail, "new");
}

TEST(EndpointContract, DetachFromInsideOwnHandlerIsSafe) {
  // A handler detaching its own endpoint mid-execution must complete the
  // in-flight exchange (the std::function must not be destroyed under its
  // own feet); afterwards the endpoint is gone.
  SimNetwork net;
  net.attach("ephemeral", [&net](const Message& m) {
    net.detach("ephemeral");
    return Message{"ephemeral", m.sender, PushAck{true, "last words"}};
  });
  const Message reply = net.send(Message{"client", "ephemeral", CodeRequest{"x"}});
  EXPECT_EQ(std::get<PushAck>(reply.payload).detail, "last words");
  EXPECT_FALSE(net.is_attached("ephemeral"));
  EXPECT_THROW((void)net.send(Message{"client", "ephemeral", CodeRequest{"x"}}),
               NetworkError);
}

TEST(EndpointContract, NestedDetachOfExecutingHandlerIsSafe) {
  // b's handler does a nested send to a, whose handler detaches b — while
  // b's handler is still executing. b must finish its exchange unharmed.
  SimNetwork net;
  net.attach("a", [&net](const Message& m) {
    net.detach("b");
    return Message{"a", m.sender, PushAck{true, ""}};
  });
  net.attach("b", [&net](const Message& m) {
    (void)net.send(Message{"b", "a", CodeRequest{"poison"}});
    return Message{"b", m.sender, PushAck{true, "survived"}};
  });
  const Message reply = net.send(Message{"client", "b", CodeRequest{"x"}});
  EXPECT_EQ(std::get<PushAck>(reply.payload).detail, "survived");
  EXPECT_FALSE(net.is_attached("b"));
  EXPECT_TRUE(net.is_attached("a"));
}

// --- fault injection: drop schedules + partitions, classified errors ---------

// One InteropSystem universe over a SimNetwork the test keeps a handle to,
// so protocol steps can be killed deterministically and the public try_*
// API's error classification checked end to end. First-push message order:
//   1 ObjectPush  2 TypeInfoRequest  3 TypeInfoResponse  4 TypeInfoRequest
//   (teamA.INamed)  5 TypeInfoResponse  6 CodeRequest  7 CodeResponse
//   8 PushAck.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : net_ptr_(new SimNetwork()),
        system_(std::unique_ptr<Transport>(net_ptr_)),
        alice_(system_.create_runtime("alice")),
        bob_(system_.create_runtime("bob")) {
    (void)alice_.publish_assembly(fixtures::team_a_people());
    (void)bob_.publish_assembly(fixtures::team_b_people());
    bob_.subscribe("teamB.Person", [](const DeliveredObject&) {});
  }

  std::shared_ptr<DynObject> make_person(std::string_view name) {
    const Value args[] = {Value(name)};
    return alice_.make("teamA.Person", args);
  }

  SimNetwork& net() { return *net_ptr_; }

  SimNetwork* net_ptr_;  // owned by system_
  core::InteropSystem system_;
  core::InteropRuntime& alice_;
  core::InteropRuntime& bob_;
};

TEST_F(FaultInjectionTest, DroppedPushClassifiesAsNetworkError) {
  net().inject_drop_next(1);
  const auto result = alice_.try_send("bob", make_person("X"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, core::ErrorCode::Network);
  // The push never arrived: the receiver saw nothing.
  EXPECT_EQ(bob_.stats().objects_received, 0u);
  EXPECT_EQ(net().stats().drops, 1u);
  // Recovery: the next push completes the whole flow.
  EXPECT_TRUE(alice_.send("bob", make_person("Y")).delivered);
}

TEST_F(FaultInjectionTest, DroppedTypeInfoRequestAbortsAndRecovers) {
  net().inject_drop_at(2);  // bob's step-2 TypeInfoRequest
  const auto result = alice_.try_send("bob", make_person("X"));
  ASSERT_FALSE(result.has_value());
  // bob caught the network failure mid-protocol and answered with an
  // ErrorReply, which surfaces at alice as a protocol-level error.
  EXPECT_EQ(result.error().code, core::ErrorCode::Protocol);
  EXPECT_EQ(bob_.stats().objects_received, 1u);
  EXPECT_EQ(bob_.stats().objects_delivered, 0u);
  EXPECT_EQ(bob_.stats().typeinfo_requests, 1u);  // initiated, then dropped
  EXPECT_EQ(net().stats().drops, 1u);

  // Retry: nothing was cached by the aborted attempt, so the full dance
  // (2 description round trips + 1 code download) runs and succeeds.
  EXPECT_TRUE(alice_.send("bob", make_person("Y")).delivered);
  EXPECT_EQ(bob_.stats().typeinfo_requests, 3u);
  EXPECT_EQ(bob_.stats().code_requests, 1u);
  EXPECT_EQ(bob_.stats().objects_delivered, 1u);
}

TEST_F(FaultInjectionTest, DroppedTypeInfoResponseAbortsAndRecovers) {
  net().inject_drop_at(3);  // alice's step-3 TypeInfoResponse
  const auto result = alice_.try_send("bob", make_person("X"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, core::ErrorCode::Protocol);
  // alice served the description even though it never arrived (the pushed
  // person has no address set, so the envelope carries one type).
  EXPECT_EQ(alice_.stats().typeinfo_served, 1u);
  EXPECT_EQ(bob_.stats().typeinfo_requests, 1u);
  EXPECT_FALSE(bob_.domain().has_assembly("teamA.people"));

  EXPECT_TRUE(alice_.send("bob", make_person("Y")).delivered);
  EXPECT_EQ(bob_.stats().typeinfo_requests, 3u);
}

TEST_F(FaultInjectionTest, DroppedCodeRequestAbortsWithoutCodeAndRecovers) {
  net().inject_drop_at(6);  // bob's step-4 CodeRequest
  const auto result = alice_.try_send("bob", make_person("X"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, core::ErrorCode::Protocol);
  // Conformance was decided (descriptions arrived), the download died.
  EXPECT_EQ(bob_.stats().typeinfo_requests, 2u);
  EXPECT_EQ(bob_.stats().code_requests, 1u);
  EXPECT_FALSE(bob_.domain().has_assembly("teamA.people"));
  EXPECT_EQ(bob_.stats().objects_delivered, 0u);

  // Retry: descriptions are cached now; only the code download repeats.
  EXPECT_TRUE(alice_.send("bob", make_person("Y")).delivered);
  EXPECT_EQ(bob_.stats().typeinfo_cache_hits, 1u);
  EXPECT_EQ(bob_.stats().code_requests, 2u);
  EXPECT_TRUE(bob_.domain().has_assembly("teamA.people"));
}

TEST_F(FaultInjectionTest, FullPartitionDropsThePushItself) {
  net().partition("alice", "bob");
  net().partition("bob", "alice");
  const auto result = alice_.try_send("bob", make_person("X"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, core::ErrorCode::Network);
  EXPECT_EQ(bob_.stats().objects_received, 0u);
  EXPECT_EQ(net().stats().drops, 1u);

  net().heal_all_partitions();
  EXPECT_TRUE(alice_.send("bob", make_person("Y")).delivered);
}

TEST_F(FaultInjectionTest, AsymmetricPartitionKillsTheReturnPath) {
  // Requests reach bob, every bob->alice message vanishes: bob's step-2
  // request dies first, his ErrorReply dies too — alice sees the network
  // failure directly.
  net().partition("bob", "alice");
  const auto result = alice_.try_send("bob", make_person("X"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, core::ErrorCode::Network);
  EXPECT_EQ(bob_.stats().objects_received, 1u);
  EXPECT_EQ(bob_.stats().objects_delivered, 0u);
  EXPECT_EQ(net().stats().drops, 2u);  // TypeInfoRequest + ErrorReply

  net().heal_partition("bob", "alice");
  EXPECT_TRUE(alice_.send("bob", make_person("Y")).delivered);
  // The universe converged despite the outage: later pushes are all-cache.
  EXPECT_TRUE(alice_.send("bob", make_person("Z")).delivered);
  EXPECT_EQ(bob_.stats().typeinfo_cache_hits, 1u);
  EXPECT_EQ(bob_.stats().code_cache_hits, 1u);
}

TEST_F(FaultInjectionTest, PartitionToUnknownPeerStillClassifiesUnknownPeer) {
  const auto result = alice_.try_send("ghost", make_person("X"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, core::ErrorCode::UnknownPeer);
}

// --- AsyncTransport ----------------------------------------------------------

namespace async_helpers {

/// An AsyncTransport echo endpoint answering every request with a PushAck.
void attach_echo(Transport& net, std::string name) {
  net.attach(name, [name](const Message& m) {
    return Message{name, m.sender, PushAck{true, "ok"}};
  });
}

}  // namespace async_helpers

TEST(AsyncTransportTest, SyncSendRoutesAndChargesDeterministically) {
  AsyncTransport net({.workers = 2});
  async_helpers::attach_echo(net, "echo");
  net.set_default_link({.latency_ns = 1'000'000, .bandwidth_bytes_per_sec = 1e12});
  const Message reply = net.send(Message{"client", "echo", CodeRequest{"x"}});
  EXPECT_TRUE(std::get<PushAck>(reply.payload).delivered);
  EXPECT_EQ(reply.sender, "echo");
  EXPECT_EQ(reply.recipient, "client");
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_GT(net.stats().bytes, 0u);
  // Virtual-clock determinism: both traversals charged exactly 1 ms
  // latency plus negligible transmission time at 1 TB/s.
  EXPECT_GE(net.clock().now_ns(), 2'000'000u);
  EXPECT_LT(net.clock().now_ns(), 2'100'000u);
}

TEST(AsyncTransportTest, DoubleAttachThrows) {
  AsyncTransport net({.workers = 1});
  async_helpers::attach_echo(net, "svc");
  EXPECT_THROW(async_helpers::attach_echo(net, "SVC"), TransportError);
  EXPECT_THROW(async_helpers::attach_echo(net, ""), TransportError);
}

TEST(AsyncTransportTest, FutureFormDeliversTheResponse) {
  AsyncTransport net({.workers = 2});
  async_helpers::attach_echo(net, "echo");
  std::future<Message> future = net.send_async(Message{"client", "echo", CodeRequest{"x"}});
  const Message reply = future.get();
  EXPECT_TRUE(std::get<PushAck>(reply.payload).delivered);
  EXPECT_EQ(reply.recipient, "client");
  net.drain();
  EXPECT_EQ(net.stats().messages, 2u);
}

TEST(AsyncTransportTest, CallbackFormRunsOnCompletion) {
  AsyncTransport net({.workers = 2});
  async_helpers::attach_echo(net, "echo");
  std::promise<bool> delivered;
  net.send_async(Message{"client", "echo", CodeRequest{"x"}},
                 [&delivered](Message response, std::exception_ptr error) {
                   delivered.set_value(!error &&
                                       std::get<PushAck>(response.payload).delivered);
                 });
  EXPECT_TRUE(delivered.get_future().get());
}

TEST(AsyncTransportTest, UnknownRecipientFailsTheFuture) {
  AsyncTransport net({.workers = 1});
  std::future<Message> future = net.send_async(Message{"a", "ghost", CodeRequest{"x"}});
  EXPECT_THROW((void)future.get(), NetworkError);
  EXPECT_THROW((void)net.send(Message{"a", "ghost", CodeRequest{"x"}}), NetworkError);
}

TEST(AsyncTransportTest, BackpressureRejectPolicyFailsOverflow) {
  AsyncTransport net({.workers = 1,
                      .max_inbox = 1,
                      .overflow = AsyncTransportConfig::Overflow::Reject});
  std::counting_semaphore<8> started(0);
  std::promise<void> gate;
  std::shared_future<void> gate_open = gate.get_future().share();
  net.attach("slow", [&](const Message& m) {
    started.release();
    gate_open.wait();
    return Message{"slow", m.sender, PushAck{true, ""}};
  });
  // First request occupies the single worker...
  auto f1 = net.send_async(Message{"c", "slow", CodeRequest{"1"}});
  started.acquire();
  // ...second fills the inbox, third overflows.
  auto f2 = net.send_async(Message{"c", "slow", CodeRequest{"2"}});
  auto f3 = net.send_async(Message{"c", "slow", CodeRequest{"3"}});
  EXPECT_THROW((void)f3.get(), TransportError);
  gate.set_value();
  EXPECT_TRUE(std::get<PushAck>(f1.get().payload).delivered);
  EXPECT_TRUE(std::get<PushAck>(f2.get().payload).delivered);
}

TEST(AsyncTransportTest, BackpressureBlockPolicyWaitsForSpace) {
  AsyncTransport net({.workers = 1,
                      .max_inbox = 1,
                      .overflow = AsyncTransportConfig::Overflow::Block});
  std::counting_semaphore<8> started(0);
  std::promise<void> gate;
  std::shared_future<void> gate_open = gate.get_future().share();
  net.attach("slow", [&](const Message& m) {
    started.release();
    gate_open.wait();
    return Message{"slow", m.sender, PushAck{true, ""}};
  });
  auto f1 = net.send_async(Message{"c", "slow", CodeRequest{"1"}});
  started.acquire();  // worker busy, inbox empty
  auto f2 = net.send_async(Message{"c", "slow", CodeRequest{"2"}});  // inbox full now
  // The third send_async must block until the worker frees inbox space.
  std::thread blocked([&net] {
    auto f3 = net.send_async(Message{"c", "slow", CodeRequest{"3"}});
    EXPECT_TRUE(std::get<PushAck>(f3.get().payload).delivered);
  });
  gate.set_value();
  blocked.join();
  EXPECT_TRUE(std::get<PushAck>(f1.get().payload).delivered);
  EXPECT_TRUE(std::get<PushAck>(f2.get().payload).delivered);
  net.drain();
  EXPECT_EQ(net.stats().messages, 6u);
  EXPECT_EQ(net.pending(), 0u);
}

TEST(AsyncTransportTest, HandlerContextSendAsyncFailsFastInsteadOfDeadlocking) {
  // Block-policy backpressure must not apply to sends issued from inside
  // a handler: with one worker executing that handler, waiting for inbox
  // space only workers can free would deadlock the whole pool. The
  // handler-context send fails fast with TransportError instead.
  AsyncTransport net({.workers = 1,
                      .max_inbox = 1,
                      .overflow = AsyncTransportConfig::Overflow::Block});
  std::counting_semaphore<8> started(0);
  std::promise<void> filled;
  std::shared_future<void> filled_ready = filled.get_future().share();
  net.attach("b", [](const Message& m) {
    return Message{"b", m.sender, PushAck{true, "b-ok"}};
  });
  net.attach("a", [&](const Message& m) {
    started.release();
    filled_ready.wait();  // b's inbox is full now; the sole worker is here
    auto nested = net.send_async(Message{"a", "b", CodeRequest{"nested"}});
    bool rejected = false;
    try {
      (void)nested.get();
    } catch (const TransportError&) {
      rejected = true;
    }
    return Message{"a", m.sender, PushAck{rejected, "handler-send"}};
  });

  auto to_a = net.send_async(Message{"c", "a", CodeRequest{"go"}});
  started.acquire();
  auto to_b = net.send_async(Message{"c", "b", CodeRequest{"fill"}});  // inbox full
  filled.set_value();
  EXPECT_TRUE(std::get<PushAck>(to_a.get().payload).delivered)
      << "nested handler send must have been rejected, not blocked";
  EXPECT_TRUE(std::get<PushAck>(to_b.get().payload).delivered);
  net.drain();
}

TEST(AsyncTransportTest, DetachBlocksUntilInFlightHandlerFinishes) {
  AsyncTransport net({.workers = 2});
  std::counting_semaphore<8> started(0);
  std::promise<void> gate;
  std::shared_future<void> gate_open = gate.get_future().share();
  std::atomic<bool> handler_finished{false};
  net.attach("slow", [&](const Message& m) {
    started.release();
    gate_open.wait();
    handler_finished.store(true);
    return Message{"slow", m.sender, PushAck{true, ""}};
  });
  auto f1 = net.send_async(Message{"c", "slow", CodeRequest{"1"}});
  started.acquire();  // the handler is executing now
  std::atomic<bool> detach_returned{false};
  std::thread detacher([&] {
    net.detach("slow");
    // The quiescence guarantee: when detach returns, no execution is in
    // flight — the handler observably ran to completion first.
    EXPECT_TRUE(handler_finished.load());
    detach_returned.store(true);
  });
  // New deliveries stop immediately even while detach waits.
  while (net.is_attached("slow")) std::this_thread::yield();
  auto f2 = net.send_async(Message{"c", "slow", CodeRequest{"2"}});
  EXPECT_THROW((void)f2.get(), NetworkError);
  EXPECT_FALSE(detach_returned.load());
  gate.set_value();
  detacher.join();
  EXPECT_TRUE(std::get<PushAck>(f1.get().payload).delivered);
}

TEST(AsyncTransportTest, DetachFailsQueuedRequests) {
  AsyncTransport net({.workers = 1});
  std::counting_semaphore<8> started(0);
  std::promise<void> gate;
  std::shared_future<void> gate_open = gate.get_future().share();
  net.attach("slow", [&](const Message& m) {
    started.release();
    gate_open.wait();
    return Message{"slow", m.sender, PushAck{true, ""}};
  });
  auto executing = net.send_async(Message{"c", "slow", CodeRequest{"1"}});
  started.acquire();
  auto queued = net.send_async(Message{"c", "slow", CodeRequest{"2"}});
  std::thread detacher([&net] { net.detach("slow"); });
  while (net.is_attached("slow")) std::this_thread::yield();
  gate.set_value();
  detacher.join();
  EXPECT_TRUE(std::get<PushAck>(executing.get().payload).delivered);
  EXPECT_THROW((void)queued.get(), NetworkError);  // detached before delivery
}

TEST(AsyncTransportTest, DetachFromInsideOwnHandlerReturnsImmediately) {
  AsyncTransport net({.workers = 1});
  net.attach("ephemeral", [&net](const Message& m) {
    net.detach("ephemeral");  // reentrant: must not wait for itself
    return Message{"ephemeral", m.sender, PushAck{true, "last words"}};
  });
  const Message reply = net.send(Message{"client", "ephemeral", CodeRequest{"x"}});
  EXPECT_EQ(std::get<PushAck>(reply.payload).detail, "last words");
  EXPECT_FALSE(net.is_attached("ephemeral"));
}

TEST(AsyncTransportTest, FullProtocolRunsOverAsyncTransport) {
  // The whole Fig. 1 flow — including the nested mid-protocol round trips
  // the receiver's handler makes — over the concurrent transport, both
  // through the sync path and through send_object_async futures.
  auto hub = std::make_shared<AssemblyHub>();
  AsyncTransport net({.workers = 2});
  Peer alice("alice", net, hub);
  Peer bob("bob", net, hub);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");

  const Value args[] = {Value("Sync")};
  const PushAck sync_ack =
      alice.send_object("bob", alice.domain().instantiate("teamA.Person", args));
  EXPECT_TRUE(sync_ack.delivered);
  EXPECT_EQ(sync_ack.detail, "teamB.Person");

  std::vector<std::future<PushAck>> pending;
  for (int i = 0; i < 4; ++i) {
    const Value async_args[] = {Value("Async" + std::to_string(i))};
    pending.push_back(alice.send_object_async(
        "bob", alice.domain().instantiate("teamA.Person", async_args)));
  }
  for (auto& f : pending) EXPECT_TRUE(f.get().delivered);
  net.drain();
  EXPECT_EQ(bob.delivered_count(), 5u);
  EXPECT_EQ(bob.stats().objects_delivered, 5u);
  EXPECT_EQ(alice.stats().objects_sent, 5u);
  // Metadata/code crossed the wire once; later pushes were all-cache.
  EXPECT_EQ(bob.stats().code_requests, 1u);
  EXPECT_EQ(bob.stats().typeinfo_cache_hits, 4u);
  // The delivered objects are usable as bob's own type.
  const auto snapshot = bob.delivered_snapshot();
  ASSERT_EQ(snapshot.size(), 5u);
  EXPECT_EQ(
      bob.proxies().invoke(snapshot.front().adapted, "getPersonName", {}).as_string(),
      "Sync");
}

TEST(AsyncTransportTest, DestroyingSenderWithInFlightAsyncSendIsSafe) {
  // The completion callback of send_object_async touches the sending peer
  // (stats); ~Peer must therefore wait for outstanding completions. Pin
  // it: destroy the sender while its push sits behind a blocked worker —
  // the future must still resolve and nothing may touch freed memory.
  auto hub = std::make_shared<AssemblyHub>();
  AsyncTransport net({.workers = 1});
  std::counting_semaphore<8> started(0);
  std::promise<void> gate;
  std::shared_future<void> gate_open = gate.get_future().share();
  net.attach("wall", [&](const Message& m) {
    started.release();
    gate_open.wait();
    return Message{"wall", m.sender, PushAck{true, ""}};
  });

  Peer bob("bob", net, hub);
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");

  std::future<PushAck> pending;
  std::thread destroyer;
  {
    Peer alice("alice", net, hub);
    alice.host_assembly(fixtures::team_a_people());
    const Value args[] = {Value("Warm")};
    // Warm bob first (sync, runs inline): the queued push below must not
    // need alice's endpoint for descriptions after she is gone.
    ASSERT_TRUE(
        alice.send_object("bob", alice.domain().instantiate("teamA.Person", args))
            .delivered);
    const Value ghost_args[] = {Value("Ghost")};
    auto person = alice.domain().instantiate("teamA.Person", ghost_args);
    // Occupy the only worker, then queue alice's push behind it.
    auto blocker = net.send_async(Message{"c", "wall", CodeRequest{"x"}});
    started.acquire();
    pending = alice.send_object_async("bob", person);
    // ~Peer (alice) must block on the outstanding completion; unblock the
    // worker from another thread so destruction can finish.
    destroyer = std::thread([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      gate.set_value();
    });
    (void)blocker;
  }  // alice destroyed here — after her completion ran
  destroyer.join();
  EXPECT_TRUE(pending.get().delivered);
  EXPECT_EQ(bob.delivered_count(), 2u);
}

TEST(AsyncTransportTest, SystemUniverseOverAsyncTransport) {
  auto owned = std::make_unique<AsyncTransport>(AsyncTransportConfig{.workers = 2});
  AsyncTransport& net = *owned;
  core::InteropSystem system(std::move(owned));
  auto& sender = system.create_runtime("sender");
  auto& receiver = system.create_runtime("receiver");
  (void)sender.publish_assembly(fixtures::team_a_people());
  (void)receiver.publish_assembly(fixtures::team_b_people());
  std::atomic<int> events{0};
  const auto person_b = receiver.type("teamB.Person");
  auto sub = receiver.subscribe(person_b, [&](const DeliveredObject&) { ++events; });

  std::vector<std::future<PushAck>> pending;
  for (int i = 0; i < 8; ++i) {
    const Value args[] = {Value("P" + std::to_string(i))};
    pending.push_back(sender.send_async("receiver", sender.make("teamA.Person", args)));
  }
  int delivered = 0;
  for (auto& f : pending) delivered += f.get().delivered ? 1 : 0;
  net.drain();
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(events.load(), 8);
  EXPECT_EQ(receiver.peer().delivered_count(), 8u);
  EXPECT_EQ(receiver.stats().objects_received, 8u);
}

// --- assembly hub -------------------------------------------------------------

TEST(AssemblyHub, PublishAndFetch) {
  AssemblyHub hub;
  EXPECT_FALSE(hub.has("teamA.people"));
  hub.publish(fixtures::team_a_people());
  EXPECT_TRUE(hub.has("TEAMA.PEOPLE"));  // case-insensitive
  EXPECT_NE(hub.fetch("teamA.people"), nullptr);
  EXPECT_EQ(hub.fetch("nope"), nullptr);
  EXPECT_THROW(hub.publish(nullptr), TransportError);
}

}  // namespace
}  // namespace pti::transport
