// Tests for the simulated network and the optimistic transport protocol
// (Fig. 1): on-demand descriptions and code, caching, rejection without
// code download, the eager baseline, and failure injection.
#include <gtest/gtest.h>

#include "fixtures/sample_types.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "transport/transport_error.hpp"

namespace pti::transport {
namespace {

using reflect::DynObject;
using reflect::Value;

// --- SimNetwork -------------------------------------------------------------

TEST(SimNetwork, RoutesAndCharges) {
  SimNetwork net;
  net.attach("echo", [](const Message& m) {
    return Message{"echo", m.sender, PushAck{true, "ok"}};
  });
  const Message reply = net.send(Message{"client", "echo", CodeRequest{"x"}});
  EXPECT_TRUE(std::get<PushAck>(reply.payload).delivered);
  EXPECT_EQ(reply.sender, "echo");
  EXPECT_EQ(reply.recipient, "client");
  EXPECT_EQ(net.stats().messages, 2u);  // request + response
  EXPECT_GT(net.stats().bytes, 0u);
  EXPECT_GT(net.clock().now_ns(), 0u);
}

TEST(SimNetwork, UnknownRecipientThrows) {
  SimNetwork net;
  EXPECT_THROW((void)net.send(Message{"a", "ghost", CodeRequest{"x"}}), NetworkError);
}

TEST(SimNetwork, ForcedDropsThrowDeterministically) {
  SimNetwork net;
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, ""}};
  });
  net.inject_drop_next(1);
  EXPECT_THROW((void)net.send(Message{"a", "svc", CodeRequest{"x"}}), NetworkError);
  EXPECT_EQ(net.stats().drops, 1u);
  // Next message goes through.
  EXPECT_NO_THROW((void)net.send(Message{"a", "svc", CodeRequest{"x"}}));
}

TEST(SimNetwork, PerLinkConfigAffectsLatency) {
  SimNetwork net;
  net.attach("svc", [](const Message& m) {
    return Message{"svc", m.sender, PushAck{true, ""}};
  });
  net.set_default_link({.latency_ns = 0, .bandwidth_bytes_per_sec = 1e12});
  (void)net.send(Message{"a", "svc", CodeRequest{"x"}});
  const auto t0 = net.clock().now_ns();
  net.set_link("a", "svc", {.latency_ns = 5'000'000, .bandwidth_bytes_per_sec = 1e12});
  (void)net.send(Message{"a", "svc", CodeRequest{"x"}});
  EXPECT_GE(net.clock().now_ns() - t0, 5'000'000u);
}

TEST(MessageSizes, CodeDominatesDescriptions) {
  const Message code{"a", "b", CodeResponse{"asm", true, 50'000}};
  const Message info{"a", "b", TypeInfoResponse{{std::string(600, 'x')}, {}}};
  EXPECT_GT(code.wire_size(), info.wire_size());
  EXPECT_STREQ(code.kind_name(), "CodeResponse");
}

// --- the optimistic protocol (Fig. 1) ---------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : hub_(std::make_shared<AssemblyHub>()),
        alice_("alice", net_, hub_),
        bob_("bob", net_, hub_) {
    alice_.host_assembly(fixtures::team_a_people());
    bob_.host_assembly(fixtures::team_b_people());
    bob_.add_interest("teamB.Person");
  }

  std::shared_ptr<DynObject> make_a_person(std::string_view name) {
    const Value args[] = {Value(name)};
    auto person = alice_.domain().instantiate("teamA.Person", args);
    const Value addr[] = {Value("Main St"), Value(std::int32_t{42})};
    person->set("address", Value(alice_.domain().instantiate("teamA.Address", addr)));
    return person;
  }

  SimNetwork net_;
  std::shared_ptr<AssemblyHub> hub_;
  Peer alice_;
  Peer bob_;
};

TEST_F(ProtocolTest, FullFigureOneFlow) {
  const PushAck ack = alice_.send_object("bob", make_a_person("Alice"));
  EXPECT_TRUE(ack.delivered);
  EXPECT_EQ(ack.detail, "teamB.Person");

  // Step 2/3 happened: one request for the envelope's unknown types
  // (Person, Address), and one more for teamA.INamed — referenced by the
  // Person description but not part of the object graph, so fetched on
  // demand during the conformance check.
  EXPECT_EQ(bob_.stats().typeinfo_requests, 2u);
  // Step 4/5 happened: bob downloaded the assembly.
  EXPECT_EQ(bob_.stats().code_requests, 1u);
  EXPECT_TRUE(bob_.domain().has_assembly("teamA.people"));
  EXPECT_TRUE(bob_.domain().is_loaded("teamA.Person"));

  // The delivered object is usable as bob's own type.
  ASSERT_EQ(bob_.delivered().size(), 1u);
  const DeliveredObject& delivered = bob_.delivered().front();
  EXPECT_EQ(delivered.interest_type, "teamB.Person");
  EXPECT_EQ(delivered.sender, "alice");
  EXPECT_EQ(bob_.proxies().invoke(delivered.adapted, "getPersonName", {}).as_string(),
            "Alice");
  // Deep access works across the wire too.
  const Value address = bob_.proxies().invoke(delivered.adapted, "getAddress", {});
  EXPECT_EQ(bob_.proxies().invoke(address.as_object(), "getStreetName", {}).as_string(),
            "Main St");
}

TEST_F(ProtocolTest, SecondPushOfSameTypeUsesCaches) {
  (void)alice_.send_object("bob", make_a_person("One"));
  const auto typeinfo_before = bob_.stats().typeinfo_requests;
  const auto code_before = bob_.stats().code_requests;
  net_.reset_stats();

  (void)alice_.send_object("bob", make_a_person("Two"));
  // No further metadata or code round trips — the optimistic saving.
  EXPECT_EQ(bob_.stats().typeinfo_requests, typeinfo_before);
  EXPECT_EQ(bob_.stats().code_requests, code_before);
  EXPECT_EQ(bob_.stats().typeinfo_cache_hits, 1u);
  EXPECT_EQ(bob_.stats().code_cache_hits, 1u);
  EXPECT_EQ(net_.stats().messages, 2u);  // push + ack only
}

TEST_F(ProtocolTest, NonConformantPushIsRejectedWithoutCodeDownload) {
  alice_.host_assembly(fixtures::bank_accounts());
  const Value args[] = {Value("Eve")};
  auto account = alice_.domain().instantiate("bank.Account", args);

  const PushAck ack = alice_.send_object("bob", account);
  EXPECT_FALSE(ack.delivered);
  EXPECT_EQ(bob_.stats().objects_rejected, 1u);
  // Descriptions were fetched (needed for the conformance decision)...
  EXPECT_GE(bob_.stats().typeinfo_requests, 1u);
  // ...but code was NOT (the protocol's whole point).
  EXPECT_EQ(bob_.stats().code_requests, 0u);
  EXPECT_FALSE(bob_.domain().has_assembly("bank.accounts"));
  EXPECT_TRUE(bob_.delivered().empty());
}

TEST_F(ProtocolTest, NoInterestNoDelivery) {
  Peer carol("carol", net_, hub_);  // no interests at all
  const PushAck ack = alice_.send_object("carol", make_a_person("X"));
  EXPECT_FALSE(ack.delivered);
  EXPECT_EQ(carol.stats().code_requests, 0u);
}

TEST_F(ProtocolTest, ProxiesAreStrippedBeforeSending) {
  // bob receives alice's person, adapts it, sends the *proxy* back.
  (void)alice_.send_object("bob", make_a_person("Alice"));
  alice_.add_interest("teamA.Person");
  const auto& adapted = bob_.delivered().front().adapted;
  ASSERT_TRUE(proxy::ProxyFactory::is_proxy(*adapted));

  const PushAck ack = bob_.send_object("alice", adapted);
  EXPECT_TRUE(ack.delivered);
  const auto& received = alice_.delivered().front().object;
  // What crossed the wire is the real teamA.Person state, not a wrapper.
  EXPECT_EQ(received->type_name(), "teamA.Person");
  EXPECT_FALSE(received->has_field(proxy::kProxySourceField));
  EXPECT_EQ(received->get("name").as_string(), "Alice");
}

TEST_F(ProtocolTest, ThirdPartyForwardingDownloadsFromOrigin) {
  // alice -> bob (bob now knows teamA types), then bob -> carol: carol
  // must fetch the assembly from *alice* (the download path's host).
  (void)alice_.send_object("bob", make_a_person("Alice"));
  Peer carol("carol", net_, hub_);
  carol.host_assembly(fixtures::team_b_people());
  carol.add_interest("teamB.Person");

  const auto& received = bob_.delivered().front().object;
  const PushAck ack = bob_.send_object("carol", received);
  EXPECT_TRUE(ack.delivered);
  EXPECT_TRUE(carol.domain().has_assembly("teamA.people"));
  // alice served one code download for bob and one for carol.
  EXPECT_EQ(alice_.stats().code_served, 2u);
}

TEST_F(ProtocolTest, MissingAssemblySurfacesAsProtocolError) {
  // A type whose assembly nobody hosts: build description-only knowledge
  // by hosting on a third peer, killing it, then pushing from alice.
  auto ghost_assembly = fixtures::bank_accounts();
  {
    Peer ghost("ghost", net_, std::make_shared<AssemblyHub>());  // separate hub!
    ghost.host_assembly(ghost_assembly);
  }
  // alice knows the type (loads locally into her domain + our hub), but the
  // download path points at the detached ghost peer.
  alice_.domain().load_assembly(ghost_assembly, "net://ghost/bank.accounts");
  bob_.add_interest("teamB.Person");
  const Value args[] = {Value("Eve")};
  auto account = alice_.domain().instantiate("bank.Account", args);
  // Rejected on conformance grounds — no code fetch attempted, no error.
  const PushAck ack = alice_.send_object("bob", account);
  EXPECT_FALSE(ack.delivered);

  // Now make bob interested in something the account *does* conform to:
  // its own type, known only by description.
  bob_.fetch_descriptions("alice", {"bank.Account"});
  bob_.add_interest("bank.Account");
  EXPECT_THROW((void)alice_.send_object("bob", account), ProtocolError);
}

TEST_F(ProtocolTest, DroppedResponseSurfacesAsError) {
  net_.inject_drop_next(1);
  EXPECT_THROW((void)alice_.send_object("bob", make_a_person("X")), NetworkError);
}

TEST_F(ProtocolTest, DroppedMidProtocolStepSurfacesAsError) {
  // Message #1 is the push itself; message #2 is bob's TypeInfoRequest.
  // Killing the latter makes the push fail with a protocol-level error
  // reported back to alice (bob catches the network failure, answers with
  // an ErrorReply, send_object converts it).
  net_.inject_drop_at(2);
  EXPECT_THROW((void)alice_.send_object("bob", make_a_person("X")), ProtocolError);
  EXPECT_EQ(net_.stats().drops, 1u);
  EXPECT_TRUE(bob_.delivered().empty());

  // The system recovers: the very next push succeeds end to end.
  EXPECT_TRUE(alice_.send_object("bob", make_a_person("Y")).delivered);
}

TEST_F(ProtocolTest, DroppedCodeResponseSurfacesAsError) {
  // Messages within the first push: 1 push, 2 typeinfo req, 3 typeinfo
  // resp, 4 typeinfo req (INamed), 5 resp, 6 code req, 7 code resp.
  net_.inject_drop_at(7);
  EXPECT_THROW((void)alice_.send_object("bob", make_a_person("X")), ProtocolError);
  EXPECT_FALSE(bob_.domain().has_assembly("teamA.people"));
  // Recovery on retry.
  EXPECT_TRUE(alice_.send_object("bob", make_a_person("Y")).delivered);
  EXPECT_TRUE(bob_.domain().has_assembly("teamA.people"));
}

TEST_F(ProtocolTest, MalformedEnvelopeIsReportedNotFatal) {
  ObjectPush garbage;
  garbage.envelope = {0x00, 0x01, 0x02, 0x03};
  const Message response = net_.send(Message{"alice", "bob", std::move(garbage)});
  const auto* error = std::get_if<ErrorReply>(&response.payload);
  ASSERT_NE(error, nullptr);
  // The peer keeps working afterwards.
  EXPECT_TRUE(alice_.send_object("bob", make_a_person("OK")).delivered);
}

TEST_F(ProtocolTest, UnexpectedMessageKindsGetErrorReplies) {
  const Message response =
      net_.send(Message{"alice", "bob", PushAck{true, "spurious"}});
  const auto* error = std::get_if<ErrorReply>(&response.payload);
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->message.find("cannot handle"), std::string::npos);
}

TEST_F(ProtocolTest, InterestMustBeLocallyKnown) {
  EXPECT_THROW(bob_.add_interest("totally.Unknown"), ProtocolError);
}

TEST_F(ProtocolTest, TypeInfoRequestsAnswerOnlyKnownTypes) {
  Message request{"bob", "alice", TypeInfoRequest{{"teamA.Person", "no.Such"}}};
  const Message response = net_.send(request);
  const auto& info = std::get<TypeInfoResponse>(response.payload);
  EXPECT_EQ(info.descriptions_xml.size(), 1u);
  ASSERT_EQ(info.unknown.size(), 1u);
  EXPECT_EQ(info.unknown.front(), "no.Such");
}

TEST_F(ProtocolTest, DeliveryHandlerFires) {
  std::vector<std::string> seen;
  bob_.set_delivery_handler([&seen, this](const DeliveredObject& d) {
    seen.push_back(bob_.proxies().invoke(d.adapted, "getPersonName", {}).as_string());
  });
  (void)alice_.send_object("bob", make_a_person("Ada"));
  (void)alice_.send_object("bob", make_a_person("Grace"));
  EXPECT_EQ(seen, (std::vector<std::string>{"Ada", "Grace"}));
}

// --- matcher modes (Section 2 baselines end-to-end) ---------------------------

class MatcherModeTest : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(MatcherModeTest, GatesDeliveryAccordingToTheRelation) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig receiver_config;
  receiver_config.matcher = GetParam();
  Peer alice("alice", net, hub);
  Peer bob("bob", net, hub, receiver_config);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_a_people());  // bob also knows teamA
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");
  bob.add_interest("teamA.Person");

  const Value args[] = {Value("Ada")};
  auto person = alice.domain().instantiate("teamA.Person", args);
  const PushAck ack = alice.send_object("bob", person);

  switch (GetParam()) {
    case MatcherKind::ImplicitStructural:
      // First interest (teamB.Person) already matches implicitly.
      EXPECT_TRUE(ack.delivered);
      EXPECT_EQ(ack.detail, "teamB.Person");
      break;
    case MatcherKind::Exact:
    case MatcherKind::Nominal:
    case MatcherKind::TaggedStructural:
      // Only the identical type matches under the baselines.
      EXPECT_TRUE(ack.delivered);
      EXPECT_EQ(ack.detail, "teamA.Person");
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherModeTest,
                         ::testing::Values(MatcherKind::ImplicitStructural,
                                           MatcherKind::Exact, MatcherKind::Nominal,
                                           MatcherKind::TaggedStructural));

TEST(MatcherModeNegative, BaselinesRejectWhatImplicitAccepts) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig exact_config;
  exact_config.matcher = MatcherKind::Exact;
  Peer alice("alice", net, hub);
  Peer bob("bob", net, hub, exact_config);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");  // only the foreign-shaped interest

  const Value args[] = {Value("Ada")};
  const PushAck ack =
      alice.send_object("bob", alice.domain().instantiate("teamA.Person", args));
  EXPECT_FALSE(ack.delivered);
  EXPECT_EQ(bob.stats().objects_rejected, 1u);
}

// --- eager baseline ---------------------------------------------------------

TEST(EagerProtocol, ShipsEverythingUpFront) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig eager;
  eager.mode = ProtocolMode::Eager;
  Peer alice("alice", net, hub, eager);
  Peer bob("bob", net, hub, eager);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");

  const Value args[] = {Value("Alice")};
  auto person = alice.domain().instantiate("teamA.Person", args);
  const PushAck ack = alice.send_object("bob", person);
  EXPECT_TRUE(ack.delivered);
  // Everything arrived with the push: zero extra round trips.
  EXPECT_EQ(bob.stats().typeinfo_requests, 0u);
  EXPECT_EQ(bob.stats().code_requests, 0u);
  EXPECT_TRUE(bob.domain().has_assembly("teamA.people"));
}

TEST(EagerProtocol, CostsMoreBytesOnRepeatedPushes) {
  const auto run = [](ProtocolMode mode) {
    SimNetwork net;
    auto hub = std::make_shared<AssemblyHub>();
    PeerConfig config;
    config.mode = mode;
    Peer alice("alice", net, hub, config);
    Peer bob("bob", net, hub, config);
    alice.host_assembly(fixtures::team_a_people());
    bob.host_assembly(fixtures::team_b_people());
    bob.add_interest("teamB.Person");
    for (int i = 0; i < 10; ++i) {
      const Value args[] = {Value("P" + std::to_string(i))};
      (void)alice.send_object("bob", alice.domain().instantiate("teamA.Person", args));
    }
    return net.stats().bytes;
  };
  const auto optimistic_bytes = run(ProtocolMode::Optimistic);
  const auto eager_bytes = run(ProtocolMode::Eager);
  EXPECT_LT(optimistic_bytes, eager_bytes)
      << "optimistic=" << optimistic_bytes << " eager=" << eager_bytes;
}

// --- assembly hub -------------------------------------------------------------

TEST(AssemblyHub, PublishAndFetch) {
  AssemblyHub hub;
  EXPECT_FALSE(hub.has("teamA.people"));
  hub.publish(fixtures::team_a_people());
  EXPECT_TRUE(hub.has("TEAMA.PEOPLE"));  // case-insensitive
  EXPECT_NE(hub.fetch("teamA.people"), nullptr);
  EXPECT_EQ(hub.fetch("nope"), nullptr);
  EXPECT_THROW(hub.publish(nullptr), TransportError);
}

}  // namespace
}  // namespace pti::transport
