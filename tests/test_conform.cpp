// Tests for the conformance engine: the paper's rules (Fig. 2), cycle
// handling, ambiguity, caching, missing-type reporting and the baseline
// matchers.
#include <gtest/gtest.h>

#include "conform/baselines.hpp"
#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/introspect.hpp"
#include "reflect/type_builder.hpp"

namespace pti::conform {
namespace {

using reflect::Args;
using reflect::Domain;
using reflect::DynObject;
using reflect::TypeBuilder;
using reflect::TypeDescription;
using reflect::TypeKind;
using reflect::Value;

/// A domain pre-loaded with the whole fixture universe.
class ConformTest : public ::testing::Test {
 protected:
  ConformTest() {
    domain_.load_assembly(fixtures::team_a_people());
    domain_.load_assembly(fixtures::team_b_people());
    domain_.load_assembly(fixtures::planner_meetings());
    domain_.load_assembly(fixtures::agenda_meetings());
    domain_.load_assembly(fixtures::bank_accounts());
    domain_.load_assembly(fixtures::lists_a());
    domain_.load_assembly(fixtures::lists_b());
    domain_.load_assembly(fixtures::tagged_a());
    domain_.load_assembly(fixtures::tagged_b());
  }

  const TypeDescription& type(std::string_view name) {
    const TypeDescription* d = domain_.registry().find(name);
    EXPECT_NE(d, nullptr) << name;
    return *d;
  }

  ConformanceChecker make_checker(ConformanceOptions options = {},
                                  ConformanceCache* cache = nullptr) {
    return ConformanceChecker(domain_.registry(), options, cache);
  }

  Domain domain_;
};

// --- the headline result: the paper's Person example -------------------------

TEST_F(ConformTest, TeamBPersonConformsToTeamAPerson) {
  ConformanceChecker checker = make_checker();
  const CheckResult r = checker.check(type("teamB.Person"), type("teamA.Person"));
  ASSERT_TRUE(r.conformant) << (r.failures.empty() ? "" : r.failures.front());
  EXPECT_EQ(r.plan.kind(), ConformanceKind::ImplicitStructural);

  // The plan must map the renamed accessors.
  const MethodMapping* get_name = r.plan.find_method("getName", 0);
  ASSERT_NE(get_name, nullptr);
  EXPECT_EQ(get_name->source_name, "getPersonName");
  const MethodMapping* set_name = r.plan.find_method("setName", 1);
  ASSERT_NE(set_name, nullptr);
  EXPECT_EQ(set_name->source_name, "setPersonName");
}

TEST_F(ConformTest, ConformanceIsMutualForThePersonPair) {
  ConformanceChecker checker = make_checker();
  EXPECT_TRUE(checker.conforms(type("teamA.Person"), type("teamB.Person")));
  EXPECT_TRUE(checker.conforms(type("teamB.Person"), type("teamA.Person")));
}

TEST_F(ConformTest, NestedAddressTypesConformRecursively) {
  ConformanceChecker checker = make_checker();
  EXPECT_TRUE(checker.conforms(type("teamB.Address"), type("teamA.Address")));
  const CheckResult r = checker.check(type("teamB.Address"), type("teamA.Address"));
  const MethodMapping* m = r.plan.find_method("getStreet", 0);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->source_name, "getStreetName");
}

TEST_F(ConformTest, InterfacesConformAcrossTeams) {
  ConformanceChecker checker = make_checker();
  // teamB's INamed implicitly conforms to teamA's INamed (same name,
  // token-conformant method).
  EXPECT_TRUE(checker.conforms(type("teamB.INamed"), type("teamA.INamed")));
  // A *class* named Person does NOT conform to an interface named INamed:
  // the paper's name aspect (rule i) applies to the types themselves.
  EXPECT_FALSE(checker.conforms(type("teamB.Person"), type("teamA.INamed")));
  // And an interface cannot stand in for a class.
  EXPECT_FALSE(checker.conforms(type("teamA.INamed"), type("teamB.Person")));
}

TEST_F(ConformTest, AccountConformsToNothingPersonish) {
  ConformanceChecker checker = make_checker();
  const CheckResult r = checker.check(type("bank.Account"), type("teamA.Person"));
  EXPECT_FALSE(r.conformant);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures.front().find("name aspect"), std::string::npos);
}

// --- conformance kinds ---------------------------------------------------

TEST_F(ConformTest, IdentityShortCircuits) {
  ConformanceChecker checker = make_checker();
  const CheckResult r = checker.check(type("teamA.Person"), type("teamA.Person"));
  EXPECT_TRUE(r.conformant);
  EXPECT_EQ(r.plan.kind(), ConformanceKind::Identity);
  EXPECT_TRUE(r.plan.is_passthrough());
}

TEST_F(ConformTest, EverythingConformsToObject) {
  ConformanceChecker checker = make_checker();
  EXPECT_TRUE(checker.conforms(type("teamA.Person"), type("object")));
  EXPECT_TRUE(checker.conforms(type("int32"), type("object")));
  EXPECT_TRUE(checker.conforms(type("bank.Account"), type("object")));
}

TEST_F(ConformTest, PrimitivesConformOnlyToThemselves) {
  ConformanceChecker checker = make_checker();
  EXPECT_TRUE(checker.conforms(type("int32"), type("int32")));
  EXPECT_FALSE(checker.conforms(type("int32"), type("int64")));
  EXPECT_FALSE(checker.conforms(type("int32"), type("string")));
  EXPECT_FALSE(checker.conforms(type("string"), type("teamA.Person")));
  EXPECT_FALSE(checker.conforms(type("teamA.Person"), type("string")));
}

TEST_F(ConformTest, NumericWideningIsOptIn) {
  ConformanceOptions options;
  options.allow_numeric_widening = true;
  ConformanceChecker widening = make_checker(options);
  EXPECT_TRUE(widening.conforms(type("int32"), type("int64")));
  EXPECT_TRUE(widening.conforms(type("int32"), type("float64")));
  EXPECT_TRUE(widening.conforms(type("int64"), type("float64")));
  EXPECT_FALSE(widening.conforms(type("int64"), type("int32")));  // no narrowing
  EXPECT_FALSE(widening.conforms(type("float64"), type("int32")));
}

TEST_F(ConformTest, ExplicitConformanceViaDeclaredInterface) {
  ConformanceChecker checker = make_checker();
  const CheckResult r = checker.check(type("teamA.Person"), type("teamA.INamed"));
  EXPECT_TRUE(r.conformant);
  EXPECT_EQ(r.plan.kind(), ConformanceKind::Explicit);
}

TEST_F(ConformTest, EquivalentWhenStructurallyEqual) {
  // Two identical descriptions in different namespaces with different GUIDs.
  Domain d;
  d.load_assembly(fixtures::wide_type("wa", "Widget", 3, 3));
  d.load_assembly(fixtures::wide_type("wb", "Widget", 3, 3));
  ConformanceChecker checker{d.registry()};
  const CheckResult r =
      checker.check(*d.registry().find("wa.Widget"), *d.registry().find("wb.Widget"));
  EXPECT_TRUE(r.conformant);
  EXPECT_EQ(r.plan.kind(), ConformanceKind::Equivalent);
}

// --- methods: covariance, contravariance, permutations ------------------------

TEST_F(ConformTest, ArgumentPermutationsAreFound) {
  ConformanceChecker checker = make_checker();
  const CheckResult r = checker.check(type("agenda.Meeting"), type("planner.Meeting"));
  ASSERT_TRUE(r.conformant) << (r.failures.empty() ? "" : r.failures.front());

  const MethodMapping* m = r.plan.find_method("reschedule", 2);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->source_name, "reschedule");
  // planner.reschedule(title:string, start:int64) maps onto
  // agenda.reschedule(begin:int64, title:string): source param 0 (int64)
  // takes target arg 1, source param 1 (string) takes target arg 0.
  EXPECT_FALSE(m->is_identity_permutation());
  ASSERT_EQ(m->arg_permutation.size(), 2u);
  EXPECT_EQ(m->arg_permutation[0], 1u);
  EXPECT_EQ(m->arg_permutation[1], 0u);

  // Constructors permute the same way.
  ASSERT_EQ(r.plan.ctors().size(), 1u);
  EXPECT_EQ(r.plan.ctors()[0].arg_permutation, (std::vector<std::size_t>{1, 0}));
}

TEST_F(ConformTest, PermutationsCanBeDisabled) {
  ConformanceOptions options;
  options.allow_permutations = false;
  ConformanceChecker strict = make_checker(options);
  EXPECT_FALSE(strict.conforms(type("agenda.Meeting"), type("planner.Meeting")));
  // Same-order signatures still work.
  EXPECT_TRUE(strict.conforms(type("teamB.Person"), type("teamA.Person")));
}

TEST_F(ConformTest, ReturnTypeIsCovariant) {
  Domain d;
  // target: make()->object   source: make()->Thing  (Thing ≼ object) OK.
  d.registry().add([] {
    TypeDescription t("t", "Factory", TypeKind::Class);
    t.add_method({"make", "object", {}, reflect::Visibility::Public, false});
    return t;
  }());
  d.registry().add([] {
    TypeDescription t("s", "Factory", TypeKind::Class);
    t.add_method({"make", "s.Thing", {}, reflect::Visibility::Public, false});
    return t;
  }());
  d.registry().add(TypeDescription("s", "Thing", TypeKind::Class));
  ConformanceChecker checker{d.registry()};
  EXPECT_TRUE(
      checker.conforms(*d.registry().find("s.Factory"), *d.registry().find("t.Factory")));
  // The reverse requires object ≼ s.Thing, which fails.
  EXPECT_FALSE(
      checker.conforms(*d.registry().find("t.Factory"), *d.registry().find("s.Factory")));
}

TEST_F(ConformTest, ModifiersMustMatchByDefault) {
  Domain d;
  d.registry().add([] {
    TypeDescription t("t", "Svc", TypeKind::Class);
    t.add_method({"run", "void", {}, reflect::Visibility::Public, false});
    return t;
  }());
  d.registry().add([] {
    TypeDescription t("s", "Svc", TypeKind::Class);
    t.add_method({"run", "void", {}, reflect::Visibility::Private, false});
    return t;
  }());
  ConformanceChecker checker{d.registry()};
  EXPECT_FALSE(
      checker.conforms(*d.registry().find("s.Svc"), *d.registry().find("t.Svc")));

  ConformanceOptions lax;
  lax.require_same_modifiers = false;
  ConformanceChecker lax_checker{d.registry(), lax};
  EXPECT_TRUE(
      lax_checker.conforms(*d.registry().find("s.Svc"), *d.registry().find("t.Svc")));
}

// --- recursive types ---------------------------------------------------------

TEST_F(ConformTest, RecursiveTypesConformCoinductively) {
  ConformanceChecker checker = make_checker();
  const CheckResult r = checker.check(type("listsB.Node"), type("listsA.Node"));
  ASSERT_TRUE(r.conformant) << (r.failures.empty() ? "" : r.failures.front());
  const MethodMapping* next = r.plan.find_method("getNext", 0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->source_name, "getNextNode");
}

TEST_F(ConformTest, DeepChainsConform) {
  Domain d;
  d.load_assembly(fixtures::deep_type_chain("da", 8));
  d.load_assembly(fixtures::deep_type_chain("db", 8));
  ConformanceChecker checker{d.registry()};
  EXPECT_TRUE(checker.conforms(*d.registry().find("db.T0"), *d.registry().find("da.T0")));
  // Chains of different depth do not conform (leaf shapes differ).
  Domain d2;
  d2.load_assembly(fixtures::deep_type_chain("da", 4));
  d2.load_assembly(fixtures::deep_type_chain("db", 5));
  ConformanceChecker checker2{d2.registry()};
  EXPECT_FALSE(
      checker2.conforms(*d2.registry().find("db.T0"), *d2.registry().find("da.T0")));
}

// --- aspect toggles (the "weaker rule" the paper warns about) ------------------

TEST_F(ConformTest, NameOnlyRuleAcceptsUnsafeMatches) {
  ConformanceOptions weak;
  weak.check_fields = false;
  weak.check_methods = false;
  weak.check_constructors = false;
  weak.check_supertypes = false;
  ConformanceChecker weak_checker = make_checker(weak);

  // planner.Meeting and agenda.Meeting share the name — fine. But so do
  // *any* two types named alike, even with totally different members:
  Domain d;
  d.registry().add(TypeDescription("x", "Account", TypeKind::Class));
  ConformanceChecker wk{d.registry(), weak};
  d.registry().add([] {
    TypeDescription t("y", "Account", TypeKind::Class);
    t.add_method({"explode", "void", {}, reflect::Visibility::Public, false});
    return t;
  }());
  EXPECT_TRUE(wk.conforms(*d.registry().find("x.Account"), *d.registry().find("y.Account")));
  // ... which is exactly why the full rule checks all aspects: the full
  // checker refuses.
  ConformanceChecker full{d.registry()};
  EXPECT_FALSE(
      full.conforms(*d.registry().find("x.Account"), *d.registry().find("y.Account")));
  (void)weak_checker;
}

TEST_F(ConformTest, WildcardTargetNames) {
  ConformanceOptions options;
  options.allow_wildcards = true;
  ConformanceChecker checker = make_checker(options);
  TypeDescription pattern("", "Pers*", TypeKind::Class);
  EXPECT_TRUE(checker.conforms(type("teamB.Person"), pattern));
  TypeDescription nomatch("", "Acc*", TypeKind::Class);
  EXPECT_FALSE(checker.conforms(type("teamB.Person"), nomatch));
}

TEST_F(ConformTest, MemberNameRuleAblation) {
  // Exact member names reject the paper's own example...
  ConformanceOptions exact;
  exact.member_name_rule = MemberNameRule::Exact;
  EXPECT_FALSE(
      make_checker(exact).conforms(type("teamB.Person"), type("teamA.Person")));
  // ...token-subset (default) and a Levenshtein budget behave differently.
  ConformanceOptions fuzzy;
  fuzzy.member_name_rule = MemberNameRule::Exact;
  fuzzy.max_name_distance = 6;  // "getName" -> "getPersonName" is 6 edits
  EXPECT_TRUE(
      make_checker(fuzzy).conforms(type("teamB.Person"), type("teamA.Person")));
}

// --- ambiguity ------------------------------------------------------------

class AmbiguityTest : public ::testing::Test {
 protected:
  AmbiguityTest() {
    // Target wants getName; source offers getName AND getNickName — both
    // token-conformant.
    domain_.registry().add([] {
      TypeDescription t("tgt", "Person", TypeKind::Class);
      t.add_method({"getName", "string", {}, reflect::Visibility::Public, false});
      return t;
    }());
    domain_.registry().add([] {
      TypeDescription t("src", "Person", TypeKind::Class);
      t.add_method({"getNickName", "string", {}, reflect::Visibility::Public, false});
      t.add_method({"getName", "string", {}, reflect::Visibility::Public, false});
      return t;
    }());
  }
  Domain domain_;
};

TEST_F(AmbiguityTest, FirstPolicyPicksDeclarationOrder) {
  ConformanceChecker checker{domain_.registry()};
  const CheckResult r = checker.check(*domain_.registry().find("src.Person"),
                                      *domain_.registry().find("tgt.Person"));
  ASSERT_TRUE(r.conformant);
  const MethodMapping* m = r.plan.find_method("getName", 0);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->source_name, "getNickName");  // declared first
  EXPECT_EQ(m->candidate_count, 2u);
  EXPECT_TRUE(r.plan.has_ambiguities());
}

TEST_F(AmbiguityTest, PreferExactNamePolicy) {
  ConformanceOptions options;
  options.ambiguity = AmbiguityPolicy::PreferExactName;
  ConformanceChecker checker{domain_.registry(), options};
  const CheckResult r = checker.check(*domain_.registry().find("src.Person"),
                                      *domain_.registry().find("tgt.Person"));
  ASSERT_TRUE(r.conformant);
  EXPECT_EQ(r.plan.find_method("getName", 0)->source_name, "getName");
}

TEST_F(AmbiguityTest, ErrorPolicyRefuses) {
  ConformanceOptions options;
  options.ambiguity = AmbiguityPolicy::Error;
  ConformanceChecker checker{domain_.registry(), options};
  const CheckResult r = checker.check(*domain_.registry().find("src.Person"),
                                      *domain_.registry().find("tgt.Person"));
  EXPECT_FALSE(r.conformant);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures.front().find("2 source methods"), std::string::npos);
}

// --- missing types -------------------------------------------------------

TEST_F(ConformTest, MissingReferencedTypesAreReported) {
  Domain d;
  d.registry().add([] {
    TypeDescription t("remote", "Person", TypeKind::Class);
    t.add_field({"address", "remote.Address", reflect::Visibility::Private, false});
    return t;
  }());
  d.registry().add([] {
    TypeDescription t("local", "Person", TypeKind::Class);
    t.add_field({"address", "local.Address", reflect::Visibility::Private, false});
    return t;
  }());
  d.registry().add(TypeDescription("local", "Address", TypeKind::Class));
  // remote.Address is unknown.
  ConformanceChecker checker{d.registry()};
  const CheckResult r = checker.check(*d.registry().find("remote.Person"),
                                      *d.registry().find("local.Person"));
  EXPECT_FALSE(r.conformant);
  ASSERT_FALSE(r.missing_types.empty());
  EXPECT_EQ(r.missing_types.front(), "remote.Address");

  // Once the missing description is supplied, the verdict flips.
  d.registry().add(TypeDescription("remote", "Address", TypeKind::Class));
  const CheckResult r2 = checker.check(*d.registry().find("remote.Person"),
                                       *d.registry().find("local.Person"));
  EXPECT_TRUE(r2.conformant);
  EXPECT_TRUE(r2.missing_types.empty());
}

// --- cache ------------------------------------------------------------------

TEST_F(ConformTest, CacheHitsAndConsistency) {
  ConformanceCache cache;
  ConformanceChecker checker = make_checker({}, &cache);

  const CheckResult first = checker.check(type("teamB.Person"), type("teamA.Person"));
  const auto misses_after_first = cache.stats().misses;
  EXPECT_GT(cache.size(), 0u);

  const CheckResult second = checker.check(type("teamB.Person"), type("teamA.Person"));
  EXPECT_EQ(cache.stats().misses, misses_after_first);  // no new misses
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_EQ(first.conformant, second.conformant);
  EXPECT_EQ(second.plan.find_method("getName", 0)->source_name, "getPersonName");

  // Different options -> different fingerprint -> separate entries.
  ConformanceOptions exact;
  exact.member_name_rule = MemberNameRule::Exact;
  ConformanceChecker other = make_checker(exact, &cache);
  EXPECT_FALSE(other.conforms(type("teamB.Person"), type("teamA.Person")));
  EXPECT_TRUE(checker.conforms(type("teamB.Person"), type("teamA.Person")));
}

TEST_F(ConformTest, NegativeVerdictsAreCachedToo) {
  ConformanceCache cache;
  ConformanceChecker checker = make_checker({}, &cache);
  EXPECT_FALSE(checker.conforms(type("bank.Account"), type("teamA.Person")));
  const auto hits_before = cache.stats().hits;
  EXPECT_FALSE(checker.conforms(type("bank.Account"), type("teamA.Person")));
  EXPECT_GT(cache.stats().hits, hits_before);
}

// --- equivalence helper ---------------------------------------------------

TEST_F(ConformTest, EquivalentHelper) {
  EXPECT_TRUE(
      ConformanceChecker::equivalent(type("teamA.Person"), type("teamA.Person")));
  EXPECT_FALSE(
      ConformanceChecker::equivalent(type("teamB.Person"), type("teamA.Person")));
}

// --- baselines ------------------------------------------------------------

TEST_F(ConformTest, ExactMatcherOnlyAcceptsIdentity) {
  ExactMatcher exact;
  EXPECT_TRUE(exact.matches(type("teamA.Person"), type("teamA.Person")));
  EXPECT_FALSE(exact.matches(type("teamB.Person"), type("teamA.Person")));
  EXPECT_FALSE(exact.matches(type("taggedA.Point"), type("taggedB.Point")));
}

TEST_F(ConformTest, NominalMatcherAcceptsDeclaredSubtyping) {
  NominalMatcher nominal(domain_.registry());
  EXPECT_TRUE(nominal.matches(type("teamA.Person"), type("teamA.INamed")));
  EXPECT_TRUE(nominal.matches(type("teamA.Person"), type("teamA.Person")));
  EXPECT_FALSE(nominal.matches(type("teamB.Person"), type("teamA.Person")));
  EXPECT_FALSE(nominal.matches(type("teamB.Person"), type("teamA.INamed")));
}

TEST_F(ConformTest, TaggedStructuralMatcherRequiresTags) {
  TaggedStructuralMatcher tagged(domain_.registry());
  // Both tagged, identical method sets: match.
  EXPECT_TRUE(tagged.matches(type("taggedB.Point"), type("taggedA.Point")));
  // Untagged twin: no match, even with identical structure — the
  // restriction the paper lifts.
  EXPECT_FALSE(tagged.matches(type("taggedB.PlainPoint"), type("taggedA.Point")));
  // Tagged but renamed members (the Person pair): no match either.
  EXPECT_FALSE(tagged.matches(type("teamB.Person"), type("teamA.Person")));
}

TEST_F(ConformTest, ImplicitMatcherSubsumesTheOthersOnPositives) {
  // Containment property: whatever exact/nominal accept, implicit accepts.
  ExactMatcher exact;
  NominalMatcher nominal(domain_.registry());
  ImplicitStructuralMatcher implicit(domain_.registry());
  const std::array<std::string_view, 6> names = {
      "teamA.Person", "teamB.Person",   "teamA.INamed",
      "bank.Account", "planner.Meeting", "agenda.Meeting"};
  for (const auto src : names) {
    for (const auto tgt : names) {
      const TypeDescription& s = type(src);
      const TypeDescription& t = type(tgt);
      if (exact.matches(s, t)) {
        EXPECT_TRUE(implicit.matches(s, t)) << src << "->" << tgt;
      }
      if (nominal.matches(s, t)) {
        EXPECT_TRUE(implicit.matches(s, t)) << src << "->" << tgt;
      }
    }
  }
}

// --- reflexivity property over the whole fixture universe ---------------------

class ReflexivityProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ReflexivityProperty, EveryTypeConformsToItself) {
  Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  domain.load_assembly(fixtures::team_b_people());
  domain.load_assembly(fixtures::planner_meetings());
  domain.load_assembly(fixtures::agenda_meetings());
  domain.load_assembly(fixtures::bank_accounts());
  domain.load_assembly(fixtures::lists_a());
  domain.load_assembly(fixtures::tagged_a());
  ConformanceChecker checker{domain.registry()};
  const reflect::TypeDescription* d = domain.registry().find(GetParam());
  ASSERT_NE(d, nullptr);
  const CheckResult r = checker.check(*d, *d);
  EXPECT_TRUE(r.conformant);
  EXPECT_EQ(r.plan.kind(), ConformanceKind::Identity);
}

INSTANTIATE_TEST_SUITE_P(AllFixtureTypes, ReflexivityProperty,
                         ::testing::Values("teamA.Person", "teamA.Address",
                                           "teamA.INamed", "teamB.Person",
                                           "teamB.Address", "planner.Meeting",
                                           "agenda.Meeting", "bank.Account",
                                           "listsA.Node", "taggedA.Point", "int32",
                                           "string", "object"));

}  // namespace
}  // namespace pti::conform
