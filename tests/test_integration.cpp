// End-to-end integration scenarios across the full stack: multiple peers,
// mixed payload encodings, deep and cyclic object graphs, permuted
// signatures, and protocol accounting invariants.
#include <gtest/gtest.h>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"

namespace pti {
namespace {

using core::InteropRuntime;
using core::InteropSystem;
using reflect::Value;
using transport::DeliveredObject;

TEST(Integration, PaperSection31ScenarioBothDirections) {
  InteropSystem system;
  InteropRuntime& alice = system.create_runtime("alice");
  InteropRuntime& bob = system.create_runtime("bob");
  alice.publish_assembly(fixtures::team_a_people());
  bob.publish_assembly(fixtures::team_b_people());

  // A -> B.
  std::string b_saw;
  bob.subscribe("teamB.Person",
                [&](const DeliveredObject& ev) {
                  b_saw = bob.call(ev.adapted, "getPersonName").as_string();
                });
  const Value a_args[] = {Value("FromA")};
  EXPECT_TRUE(alice.send("bob", alice.make("teamA.Person", a_args)).delivered);
  EXPECT_EQ(b_saw, "FromA");

  // B -> A (the symmetric direction).
  std::string a_saw;
  alice.subscribe("teamA.Person",
                  [&](const DeliveredObject& ev) {
                    a_saw = alice.call(ev.adapted, "getName").as_string();
                  });
  const Value b_args[] = {Value("FromB")};
  EXPECT_TRUE(bob.send("alice", bob.make("teamB.Person", b_args)).delivered);
  EXPECT_EQ(a_saw, "FromB");
}

TEST(Integration, PermutedMeetingExchange) {
  InteropSystem system;
  InteropRuntime& planner = system.create_runtime("planner-app");
  InteropRuntime& agenda = system.create_runtime("agenda-app");
  planner.publish_assembly(fixtures::planner_meetings());
  agenda.publish_assembly(fixtures::agenda_meetings());

  std::int64_t seen_start = 0;
  std::string seen_title;
  planner.subscribe("planner.Meeting", [&](const DeliveredObject& ev) {
    seen_title = planner.call(ev.adapted, "getTitle").as_string();
    seen_start = planner.call(ev.adapted, "getMeetingStart").as_int64();
    // Drive the permuted mutator through the planner interface.
    const Value resched[] = {Value("moved"), Value(std::int64_t{2000})};
    planner.call(ev.adapted, "reschedule", resched);
  });

  const Value args[] = {Value(std::int64_t{930}), Value("standup")};
  auto meeting = agenda.make("agenda.Meeting", args);
  EXPECT_TRUE(agenda.send("planner-app", meeting).delivered);
  EXPECT_EQ(seen_title, "standup");
  EXPECT_EQ(seen_start, 930);

  // The delivered copy (not the original) was rescheduled, with arguments
  // permuted into agenda order.
  const auto& copy = planner.peer().delivered().front().object;
  EXPECT_EQ(copy->get("title").as_string(), "moved");
  EXPECT_EQ(copy->get("startTime").as_int64(), 2000);
  EXPECT_EQ(meeting->get("title").as_string(), "standup");  // by value
}

TEST(Integration, CyclicGraphSurvivesTheWire) {
  InteropSystem system;
  InteropRuntime& a = system.create_runtime("a");
  InteropRuntime& b = system.create_runtime("b");
  a.publish_assembly(fixtures::lists_a());
  b.publish_assembly(fixtures::lists_b());

  // Build a 3-node ring on a.
  const Value v1[] = {Value(std::int32_t{1})};
  const Value v2[] = {Value(std::int32_t{2})};
  const Value v3[] = {Value(std::int32_t{3})};
  auto n1 = a.make("listsA.Node", v1);
  auto n2 = a.make("listsA.Node", v2);
  auto n3 = a.make("listsA.Node", v3);
  n1->set("next", Value(n2));
  n2->set("next", Value(n3));
  n3->set("next", Value(n1));

  b.subscribe("listsB.Node", [](const DeliveredObject&) {});
  EXPECT_TRUE(a.send("b", n1).delivered);

  const auto& ring = b.peer().delivered().front().object;
  // The cycle closed on the receiving side.
  const auto& r2 = ring->get("next").as_object();
  const auto& r3 = r2->get("next").as_object();
  EXPECT_EQ(r3->get("next").as_object().get(), ring.get());
  // And the adapted view dispatches renamed methods on it.
  const auto& adapted = b.peer().delivered().front().adapted;
  EXPECT_EQ(b.call(adapted, "getNodeValue").as_int32(), 1);
}

TEST(Integration, MixedEncodingsInteroperate) {
  for (const char* encoding : {"soap", "binary", "xml"}) {
    InteropSystem system;
    transport::PeerConfig sender_cfg;
    sender_cfg.payload_encoding = encoding;
    InteropRuntime& alice = system.create_runtime("alice", sender_cfg);
    InteropRuntime& bob = system.create_runtime("bob");  // default soap receiver
    alice.publish_assembly(fixtures::team_a_people());
    bob.publish_assembly(fixtures::team_b_people());
    bob.subscribe("teamB.Person", [](const DeliveredObject&) {});

    const Value args[] = {Value(std::string("Via-") + encoding)};
    auto person = alice.make("teamA.Person", args);
    const Value addr[] = {Value("Main"), Value(std::int32_t{1})};
    person->set("address", Value(alice.make("teamA.Address", addr)));

    EXPECT_TRUE(alice.send("bob", person).delivered) << encoding;
    const auto& got = bob.peer().delivered().front();
    if (std::string_view(encoding) == "xml") {
      // The XML mechanism serializes public fields only (XmlSerializer
      // semantics): the private name travels as its default value.
      EXPECT_EQ(bob.call(got.adapted, "getPersonName").as_string(), "") << encoding;
    } else {
      EXPECT_EQ(bob.call(got.adapted, "getPersonName").as_string(),
                std::string("Via-") + encoding);
    }
  }
}

TEST(Integration, ManyPeersManyTypes) {
  InteropSystem system;
  InteropRuntime& hub_peer = system.create_runtime("hub");
  hub_peer.publish_assembly(fixtures::team_b_people());
  hub_peer.subscribe("teamB.Person", [](const DeliveredObject&) {});

  constexpr int kSenders = 5;
  std::vector<InteropRuntime*> senders;
  for (int i = 0; i < kSenders; ++i) {
    InteropRuntime& s = system.create_runtime("sender-" + std::to_string(i));
    s.publish_assembly(fixtures::team_a_people());
    senders.push_back(&s);
  }

  for (int round = 0; round < 3; ++round) {
    for (InteropRuntime* s : senders) {
      const Value args[] = {Value(s->name() + "#" + std::to_string(round))};
      EXPECT_TRUE(s->send("hub", s->make("teamA.Person", args)).delivered);
    }
  }
  EXPECT_EQ(hub_peer.stats().objects_delivered, 15u);
  // All senders share one type universe: descriptions and code were
  // fetched only on the first push (two description requests: the
  // envelope's types, then the referenced INamed interface), everything
  // else hit caches.
  EXPECT_EQ(hub_peer.stats().typeinfo_requests, 2u);
  EXPECT_EQ(hub_peer.stats().code_requests, 1u);
  EXPECT_EQ(hub_peer.stats().typeinfo_cache_hits, 14u);
}

TEST(Integration, AccountingInvariants) {
  InteropSystem system;
  InteropRuntime& alice = system.create_runtime("alice");
  InteropRuntime& bob = system.create_runtime("bob");
  alice.publish_assembly(fixtures::team_a_people());
  alice.publish_assembly(fixtures::bank_accounts());
  bob.publish_assembly(fixtures::team_b_people());
  bob.subscribe("teamB.Person", [](const DeliveredObject&) {});

  for (int i = 0; i < 4; ++i) {
    const Value args[] = {Value("P" + std::to_string(i))};
    (void)alice.send("bob", alice.make("teamA.Person", args));
  }
  const Value eve[] = {Value("Eve")};
  for (int i = 0; i < 3; ++i) {
    (void)alice.send("bob", alice.make("bank.Account", eve));
  }

  const auto& stats = bob.stats();
  EXPECT_EQ(stats.objects_received, stats.objects_delivered + stats.objects_rejected);
  EXPECT_EQ(stats.objects_delivered, 4u);
  EXPECT_EQ(stats.objects_rejected, 3u);
  EXPECT_EQ(alice.stats().objects_sent, 7u);
  // Conformance cache: the Account rejection was computed once, then hit.
  EXPECT_GT(bob.peer().conformance_cache().stats().hits, 0u);
}

TEST(Integration, EndToEndVirtualTimeAdvances) {
  InteropSystem system;
  system.network().set_default_link(
      {.latency_ns = 2'000'000, .bandwidth_bytes_per_sec = 1'000'000.0});
  InteropRuntime& alice = system.create_runtime("alice");
  InteropRuntime& bob = system.create_runtime("bob");
  alice.publish_assembly(fixtures::team_a_people());
  bob.publish_assembly(fixtures::team_b_people());
  bob.subscribe("teamB.Person", [](const DeliveredObject&) {});

  const Value args[] = {Value("T")};
  (void)alice.send("bob", alice.make("teamA.Person", args));
  // First push: push + ack + typeinfo round trip + code round trip = at
  // least 6 messages x 2 ms latency.
  EXPECT_GE(system.network().clock().now_ns(), 12'000'000u);
}

}  // namespace
}  // namespace pti
