// Tests for the two applications of Section 8: type-based
// publish/subscribe with interoperability (TPS) and borrow/lend (BL).
#include <gtest/gtest.h>

#include "bl/borrow_lend.hpp"
#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"
#include "tps/tps.hpp"

namespace pti {
namespace {

using reflect::Value;

// --- TPS ---------------------------------------------------------------

class TpsTest : public ::testing::Test {
 protected:
  TpsTest() : domain_(system_) {}
  core::InteropSystem system_;
  tps::TpsDomain domain_;
};

TEST_F(TpsTest, ConformantEventsReachForeignSubscribers) {
  tps::TpsNode& publisher = domain_.create_node("publisher");
  tps::TpsNode& subscriber = domain_.create_node("subscriber");
  publisher.offer_assembly(fixtures::team_a_people());
  subscriber.offer_assembly(fixtures::team_b_people());

  std::vector<std::string> seen;
  subscriber.subscribe("teamB.Person", [&](const transport::DeliveredObject& ev) {
    seen.push_back(subscriber.runtime()
                       .call(ev.adapted, "getPersonName")
                       .as_string());
  });

  const Value args[] = {Value("Ada")};
  const tps::PublishReport report =
      publisher.publish(publisher.runtime().make("teamA.Person", args));
  EXPECT_EQ(report.recipients, 1u);
  EXPECT_EQ(report.delivered, 1u);
  EXPECT_EQ(seen, (std::vector<std::string>{"Ada"}));
  EXPECT_EQ(subscriber.inbox().size(), 1u);
}

TEST_F(TpsTest, NonConformantEventsAreFilteredPerSubscriber) {
  tps::TpsNode& publisher = domain_.create_node("publisher");
  tps::TpsNode& people_sub = domain_.create_node("people-sub");
  tps::TpsNode& account_sub = domain_.create_node("account-sub");
  publisher.offer_assembly(fixtures::team_a_people());
  publisher.offer_assembly(fixtures::bank_accounts());
  people_sub.offer_assembly(fixtures::team_b_people());
  account_sub.offer_assembly(fixtures::bank_accounts());

  int people_events = 0;
  int account_events = 0;
  people_sub.subscribe("teamB.Person", [&](const auto&) { ++people_events; });
  account_sub.subscribe("bank.Account", [&](const auto&) { ++account_events; });

  const Value person_args[] = {Value("Ada")};
  const auto person_report =
      publisher.publish(publisher.runtime().make("teamA.Person", person_args));
  const Value account_args[] = {Value("Eve")};
  const auto account_report =
      publisher.publish(publisher.runtime().make("bank.Account", account_args));

  EXPECT_EQ(person_report.recipients, 2u);
  EXPECT_EQ(person_report.delivered, 1u);
  EXPECT_EQ(account_report.delivered, 1u);
  EXPECT_EQ(people_events, 1);
  EXPECT_EQ(account_events, 1);
  // The account subscriber never downloaded people code.
  EXPECT_FALSE(system_.find("account-sub")->domain().has_assembly("teamA.people"));
}

TEST_F(TpsTest, NodesWithoutSubscriptionsAreSkipped) {
  tps::TpsNode& publisher = domain_.create_node("publisher");
  tps::TpsNode& idle = domain_.create_node("idle");
  publisher.offer_assembly(fixtures::team_a_people());
  idle.offer_assembly(fixtures::team_b_people());

  const Value args[] = {Value("Ada")};
  const auto report = publisher.publish(publisher.runtime().make("teamA.Person", args));
  EXPECT_EQ(report.recipients, 0u);
  EXPECT_TRUE(idle.inbox().empty());
}

TEST_F(TpsTest, PublisherCanAlsoSubscribe) {
  tps::TpsNode& a = domain_.create_node("a");
  tps::TpsNode& b = domain_.create_node("b");
  a.offer_assembly(fixtures::team_a_people());
  b.offer_assembly(fixtures::team_b_people());
  int a_events = 0;
  int b_events = 0;
  a.subscribe("teamA.Person", [&](const auto&) { ++a_events; });
  b.subscribe("teamB.Person", [&](const auto&) { ++b_events; });

  const Value args[] = {Value("X")};
  (void)a.publish(a.runtime().make("teamA.Person", args));
  EXPECT_EQ(b_events, 1);
  EXPECT_EQ(a_events, 0) << "publish must not loop back to the publisher";
}

// --- borrow/lend -------------------------------------------------------------

class BlTest : public ::testing::Test {
 protected:
  BlTest()
      : lender_rt_(system_.create_runtime("lender")),
        borrower_rt_(system_.create_runtime("borrower")),
        lender_(lender_rt_, directory_),
        borrower_(borrower_rt_, directory_) {
    lender_rt_.publish_assembly(fixtures::print_shop());
    borrower_rt_.publish_assembly(fixtures::office_devices());
  }

  core::InteropSystem system_;
  bl::Directory directory_;
  core::InteropRuntime& lender_rt_;
  core::InteropRuntime& borrower_rt_;
  bl::Lender lender_;
  bl::Borrower borrower_;
};

TEST_F(BlTest, BorrowByConformanceCriterion) {
  const Value args[] = {Value("laser-1")};
  auto printer = lender_rt_.make("shopA.Printer", args);
  lender_.lend(printer);

  // The borrower asks for its own type; the lent shopA.Printer conforms.
  auto borrowed = borrower_.borrow("officeB.Printer");
  ASSERT_TRUE(borrowed.has_value());
  EXPECT_EQ(borrowed->advert.lender, "lender");

  // Drive the remote resource through the borrower's interface: dynamic
  // proxy (rename) over remoting proxy (network hop).
  const Value doc[] = {Value(std::string(25, 'd'))};
  const Value pages = borrower_rt_.call(borrowed->handle, "printDocument", doc);
  EXPECT_EQ(pages.as_int32(), 3);
  EXPECT_EQ(borrower_rt_.call(borrowed->handle, "getPrintQueueLength").as_int32(), 3);
  // The state lives on the lender (pass-by-reference).
  EXPECT_EQ(printer->get("queue").as_int32(), 3);
}

TEST_F(BlTest, BorrowingMarksUnavailableAndGiveBackRestores) {
  const Value args[] = {Value("laser-1")};
  lender_.lend(lender_rt_.make("shopA.Printer", args));

  auto first = borrower_.borrow("officeB.Printer");
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(borrower_.borrow("officeB.Printer").has_value());  // pool empty

  borrower_.give_back(*first);
  EXPECT_TRUE(borrower_.borrow("officeB.Printer").has_value());
}

TEST_F(BlTest, NonConformantResourcesAreSkipped) {
  lender_rt_.publish_assembly(fixtures::bank_accounts());
  const Value acc_args[] = {Value("Eve")};
  lender_.lend(lender_rt_.make("bank.Account", acc_args));

  EXPECT_FALSE(borrower_.borrow("officeB.Printer").has_value());

  const Value args[] = {Value("laser-2")};
  lender_.lend(lender_rt_.make("shopA.Printer", args));
  auto borrowed = borrower_.borrow("officeB.Printer");
  ASSERT_TRUE(borrowed.has_value());
  EXPECT_EQ(borrowed->advert.type_name, "shopA.Printer");
}

TEST_F(BlTest, UnknownCriterionThrows) {
  EXPECT_THROW((void)borrower_.borrow("no.SuchType"), conform::ConformError);
}

TEST_F(BlTest, BorrowersDoNotBorrowFromThemselves) {
  bl::Lender self_lender(borrower_rt_, directory_);
  borrower_rt_.publish_assembly(fixtures::print_shop());
  const Value args[] = {Value("own-printer")};
  self_lender.lend(borrower_rt_.make("shopA.Printer", args));
  EXPECT_FALSE(borrower_.borrow("officeB.Printer").has_value());
}

}  // namespace
}  // namespace pti
