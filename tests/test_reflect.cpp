// Tests for the reflection substrate: values, objects, descriptions,
// builder, introspection, registry, assemblies, domains.
#include <gtest/gtest.h>

#include "fixtures/sample_types.hpp"
#include "reflect/assembly.hpp"
#include "reflect/domain.hpp"
#include "reflect/dyn_object.hpp"
#include "reflect/introspect.hpp"
#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"
#include "reflect/type_builder.hpp"
#include "reflect/type_registry.hpp"
#include "reflect/value.hpp"

namespace pti::reflect {
namespace {

// --- Value --------------------------------------------------------------

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value().kind(), ValueKind::Null);
  EXPECT_EQ(Value(true).kind(), ValueKind::Bool);
  EXPECT_EQ(Value(std::int32_t{7}).kind(), ValueKind::Int32);
  EXPECT_EQ(Value(std::int64_t{7}).kind(), ValueKind::Int64);
  EXPECT_EQ(Value(3.25).kind(), ValueKind::Float64);
  EXPECT_EQ(Value("s").kind(), ValueKind::String);
  EXPECT_EQ(Value(Value::List{}).kind(), ValueKind::List);

  EXPECT_EQ(Value(std::int32_t{42}).as_int32(), 42);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_THROW((void)Value("hi").as_int32(), ReflectError);
  EXPECT_THROW((void)Value(1.5).as_string(), ReflectError);
}

TEST(Value, NumericWidening) {
  EXPECT_EQ(Value(std::int32_t{5}).as_int64(), 5);  // int32 widens to int64
  EXPECT_DOUBLE_EQ(Value(std::int32_t{5}).to_float64(), 5.0);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{5}).to_float64(), 5.0);
  EXPECT_THROW((void)Value("x").to_float64(), ReflectError);
}

TEST(Value, EqualityIsStructuralExceptObjects) {
  EXPECT_EQ(Value(std::int32_t{1}), Value(std::int32_t{1}));
  EXPECT_NE(Value(std::int32_t{1}), Value(std::int64_t{1}));  // kinds differ
  EXPECT_EQ(Value(Value::List{Value(1.0), Value("x")}),
            Value(Value::List{Value(1.0), Value("x")}));

  auto obj1 = DynObject::make("t.T", util::Guid::from_name("t.T"));
  auto obj2 = DynObject::make("t.T", util::Guid::from_name("t.T"));
  EXPECT_EQ(Value(obj1), Value(obj1));  // identity
  EXPECT_NE(Value(obj1), Value(obj2));  // distinct instances
}

TEST(Value, DebugStrings) {
  EXPECT_EQ(Value().to_debug_string(), "null");
  EXPECT_EQ(Value(std::int32_t{3}).to_debug_string(), "3");
  EXPECT_EQ(Value("x").to_debug_string(), "\"x\"");
  EXPECT_EQ(Value(Value::List{Value(true)}).to_debug_string(), "[true]");
}

// --- DynObject -------------------------------------------------------------

TEST(DynObject, FieldAccessIsCaseInsensitive) {
  auto obj = DynObject::make("t.T", util::Guid{});
  obj->set("Name", Value("alice"));
  EXPECT_EQ(obj->get("name").as_string(), "alice");
  EXPECT_TRUE(obj->has_field("NAME"));
  obj->set("NAME", Value("bob"));
  EXPECT_EQ(obj->get("Name").as_string(), "bob");
  EXPECT_EQ(obj->fields().size(), 1u);
  EXPECT_THROW((void)obj->get("missing"), ReflectError);
  EXPECT_TRUE(obj->get_or_null("missing").is_null());
}

TEST(DynObject, SameState) {
  auto a = DynObject::make("t.T", util::Guid::from_name("t.T"));
  auto b = DynObject::make("t.T", util::Guid::from_name("t.T"));
  a->set("x", Value(std::int32_t{1}));
  b->set("X", Value(std::int32_t{1}));
  EXPECT_TRUE(a->same_state(*b));
  b->set("x", Value(std::int32_t{2}));
  EXPECT_FALSE(a->same_state(*b));
}

// --- primitives ------------------------------------------------------------

TEST(Primitives, CanonicalAliases) {
  EXPECT_EQ(canonical_primitive("int"), kInt32Type);
  EXPECT_EQ(canonical_primitive("Integer"), kInt32Type);
  EXPECT_EQ(canonical_primitive("LONG"), kInt64Type);
  EXPECT_EQ(canonical_primitive("double"), kFloat64Type);
  EXPECT_EQ(canonical_primitive("boolean"), kBoolType);
  EXPECT_EQ(canonical_primitive("teamA.Person"), "teamA.Person");
  EXPECT_TRUE(is_primitive_name("VOID"));
  EXPECT_FALSE(is_primitive_name("Person"));
}

TEST(Primitives, DefaultValues) {
  EXPECT_EQ(default_value_for(kInt32Type), Value(std::int32_t{0}));
  EXPECT_EQ(default_value_for(kStringType), Value(std::string{}));
  EXPECT_EQ(default_value_for(kBoolType), Value(false));
  EXPECT_TRUE(default_value_for("some.Object").is_null());
  EXPECT_EQ(default_value_for(kListType).kind(), ValueKind::List);
}

// --- TypeDescription ---------------------------------------------------------

TEST(TypeDescription, QualifiedNamesAndLookup) {
  TypeDescription d("teamA", "Person", TypeKind::Class);
  d.add_field({"name", "string", Visibility::Private, false});
  d.add_method({"getName", "string", {}, Visibility::Public, false});
  d.add_method({"setName", "void", {{"n", "string"}}, Visibility::Public, false});

  EXPECT_EQ(d.qualified_name(), "teamA.Person");
  EXPECT_NE(d.find_field("NAME"), nullptr);
  EXPECT_EQ(d.find_field("nope"), nullptr);
  EXPECT_NE(d.find_method("getname", 0), nullptr);
  EXPECT_EQ(d.find_method("getName", 1), nullptr);
  EXPECT_EQ(d.find_methods("setName").size(), 1u);
  EXPECT_EQ(d.methods()[1].signature_string(), "setName(string)->void");
}

TEST(TypeDescription, StructuralEqualityIgnoresGuidAndCase) {
  TypeDescription a("x", "T", TypeKind::Class);
  a.set_guid(util::Guid::from_name("x.T"));
  a.add_field({"f", "string", Visibility::Public, false});
  TypeDescription b("y", "t", TypeKind::Class);
  b.set_guid(util::Guid::from_name("y.t"));
  b.add_field({"F", "STRING", Visibility::Public, false});
  EXPECT_TRUE(a.structurally_equal(b));

  b.add_field({"g", "int32", Visibility::Public, false});
  EXPECT_FALSE(a.structurally_equal(b));
}

TEST(TypeDescription, SimpleNameHelper) {
  EXPECT_EQ(simple_name("teamA.Person"), "Person");
  EXPECT_EQ(simple_name("Person"), "Person");
  EXPECT_EQ(simple_name("a.b.C"), "C");
}

// --- TypeBuilder + NativeType ---------------------------------------------

TEST(TypeBuilder, BuildsWorkingTypes) {
  const auto type =
      TypeBuilder("demo", "Counter")
          .field("count", std::string(kInt32Type))
          .constructor({{"start", std::string(kInt32Type)}},
                       [](DynObject& self, Args a) { self.set("count", a[0]); })
          .method("increment", std::string(kInt32Type), {},
                  [](DynObject& self, Args) {
                    self.set("count", Value(self.get("count").as_int32() + 1));
                    return self.get("count");
                  })
          .build();

  EXPECT_EQ(type->qualified_name(), "demo.Counter");
  EXPECT_EQ(type->guid(), util::Guid::from_name("demo.Counter"));

  const Value args[] = {Value(std::int32_t{10})};
  auto obj = type->instantiate(args);
  EXPECT_EQ(obj->get("count").as_int32(), 10);
  EXPECT_EQ(type->invoke(*obj, "increment", {}).as_int32(), 11);
  EXPECT_EQ(type->invoke(*obj, "INCREMENT", {}).as_int32(), 12);  // ci dispatch
  EXPECT_THROW((void)type->invoke(*obj, "decrement", {}), ReflectError);
}

TEST(TypeBuilder, RejectsBodylessClassMethodsAndInterfaceCtors) {
  EXPECT_THROW(TypeBuilder("d", "C").method("m", "void", {}), ReflectError);
  EXPECT_THROW(TypeBuilder("d", "I", TypeKind::Interface).constructor({}),
               ReflectError);
}

TEST(NativeType, InstantiationRules) {
  const auto iface = TypeBuilder("d", "I", TypeKind::Interface)
                         .method("m", std::string(kVoidType), {})
                         .build();
  EXPECT_THROW((void)iface->instantiate(), ReflectError);

  const auto plain = TypeBuilder("d", "Plain")
                         .field("x", std::string(kInt32Type))
                         .build();
  auto obj = plain->instantiate();  // implicit default ctor
  EXPECT_EQ(obj->get("x").as_int32(), 0);

  const Value args[] = {Value(std::int32_t{5})};
  EXPECT_THROW((void)plain->instantiate(args), ReflectError);  // no 1-arg ctor
}

TEST(NativeType, InterfaceMethodsHaveNoBody) {
  const auto iface = TypeBuilder("d", "I", TypeKind::Interface)
                         .method("m", std::string(kVoidType), {})
                         .build();
  auto obj = DynObject::make("other", util::Guid{});
  EXPECT_THROW((void)iface->invoke(*obj, "m", {}), ReflectError);
}

// --- introspection --------------------------------------------------------

TEST(Introspect, ProducesFaithfulDescriptions) {
  const auto assembly = fixtures::team_a_people();
  const NativeType* person = assembly->find_type("teamA.Person");
  ASSERT_NE(person, nullptr);

  const TypeDescription d = introspect(*person, assembly->name(), "net://a/x");
  EXPECT_EQ(d.qualified_name(), "teamA.Person");
  EXPECT_EQ(d.guid(), person->guid());
  EXPECT_EQ(d.kind(), TypeKind::Class);
  EXPECT_EQ(d.superclass(), std::string(kObjectType));
  ASSERT_EQ(d.interfaces().size(), 1u);
  EXPECT_EQ(d.interfaces()[0], "teamA.INamed");
  EXPECT_EQ(d.fields().size(), 2u);
  EXPECT_EQ(d.methods().size(), 5u);
  EXPECT_EQ(d.constructors().size(), 1u);
  EXPECT_EQ(d.assembly_name(), "teamA.people");
  EXPECT_EQ(d.download_path(), "net://a/x");
}

// --- registry ----------------------------------------------------------------

TEST(TypeRegistry, PrepopulatesPrimitives) {
  TypeRegistry registry;
  EXPECT_NE(registry.find("int32"), nullptr);
  EXPECT_NE(registry.find("int"), nullptr);  // alias
  EXPECT_EQ(registry.find("int")->kind(), TypeKind::Primitive);
  EXPECT_NE(registry.find("object"), nullptr);
  EXPECT_TRUE(registry.user_types().empty());
}

TEST(TypeRegistry, AddAndResolve) {
  TypeRegistry registry;
  TypeDescription d("teamA", "Person", TypeKind::Class);
  d.set_guid(util::Guid::from_name("teamA.Person"));
  registry.add(d);

  EXPECT_TRUE(registry.contains("teama.person"));           // ci key
  EXPECT_NE(registry.find("teamA.Person"), nullptr);
  EXPECT_NE(registry.find("Person"), nullptr);              // unique simple name
  EXPECT_NE(registry.resolve("Person", "teamA"), nullptr);  // referrer ns
  EXPECT_EQ(registry.find_by_guid(util::Guid::from_name("teamA.Person")),
            registry.find("teamA.Person"));
  EXPECT_EQ(registry.find("teamC.Person"), nullptr);
}

TEST(TypeRegistry, AmbiguousSimpleNamesNeedQualification) {
  TypeRegistry registry;
  TypeDescription a("teamA", "Person", TypeKind::Class);
  TypeDescription b("teamB", "Person", TypeKind::Class);
  b.add_field({"x", "int32", Visibility::Public, false});
  registry.add(a);
  registry.add(b);
  EXPECT_EQ(registry.find("Person"), nullptr);  // ambiguous
  EXPECT_NE(registry.resolve("Person", "teamB"), nullptr);
  EXPECT_EQ(registry.resolve("Person", "teamB")->qualified_name(), "teamB.Person");
}

TEST(TypeRegistry, ReregistrationRules) {
  TypeRegistry registry;
  TypeDescription d("t", "T", TypeKind::Class);
  registry.add(d);
  EXPECT_NO_THROW(registry.add(d));  // idempotent

  TypeDescription conflicting("t", "T", TypeKind::Class);
  conflicting.add_field({"x", "int32", Visibility::Public, false});
  EXPECT_THROW(registry.add(conflicting), ReflectError);
}

// --- assembly + domain ------------------------------------------------------

TEST(Assembly, FindTypeAndSimulatedSize) {
  const auto assembly = fixtures::team_a_people();
  EXPECT_NE(assembly->find_type("teamA.Person"), nullptr);
  EXPECT_NE(assembly->find_type("person"), nullptr);  // simple name, ci
  EXPECT_EQ(assembly->find_type("bank.Account"), nullptr);
  // Code is much bigger than a description — the optimistic protocol's
  // premise.
  EXPECT_GT(assembly->simulated_code_size(), 1000u);
}

TEST(Domain, LoadAssemblyRegistersEverything) {
  Domain domain;
  domain.load_assembly(fixtures::team_a_people(), "net://alice/teamA.people");

  EXPECT_TRUE(domain.has_assembly("teamA.people"));
  EXPECT_TRUE(domain.is_loaded("teamA.Person"));
  const TypeDescription* d = domain.registry().find("teamA.Person");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->download_path(), "net://alice/teamA.people");

  const Value args[] = {Value("Alice")};
  auto person = domain.instantiate("teamA.Person", args);
  EXPECT_EQ(domain.invoke(*person, "getName").as_string(), "Alice");

  const Value rename[] = {Value("Alicia")};
  domain.invoke(*person, "setName", rename);
  EXPECT_EQ(domain.invoke(*person, "getName").as_string(), "Alicia");
}

TEST(Domain, LoadIsIdempotentAndErrorsAreClear) {
  Domain domain;
  const auto assembly = fixtures::team_a_people();
  domain.load_assembly(assembly);
  EXPECT_NO_THROW(domain.load_assembly(assembly));
  EXPECT_THROW((void)domain.instantiate("unknown.T"), ReflectError);

  auto stranger = DynObject::make("unknown.T", util::Guid{});
  EXPECT_THROW((void)domain.invoke(*stranger, "m"), ReflectError);
}

TEST(Domain, GreetUsesArguments) {
  Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  const Value args[] = {Value("Bob")};
  auto person = domain.instantiate("teamA.Person", args);
  const Value greeting[] = {Value("Hello")};
  EXPECT_EQ(domain.invoke(*person, "greet", greeting).as_string(), "Hello, Bob!");
}

}  // namespace
}  // namespace pti::reflect
