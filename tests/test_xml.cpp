// Unit and property tests for the XML DOM, writer and parser.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "xml/xml_error.hpp"
#include "xml/xml_node.hpp"
#include "xml/xml_parser.hpp"
#include "xml/xml_writer.hpp"

namespace pti::xml {
namespace {

TEST(XmlNode, AttributesPreserveOrderAndOverwrite) {
  XmlNode n("Type");
  n.set_attr("b", "2").set_attr("a", "1").set_attr("b", "3");
  ASSERT_EQ(n.attributes().size(), 2u);
  EXPECT_EQ(n.attributes()[0].name, "b");
  EXPECT_EQ(*n.attr("b"), "3");
  EXPECT_EQ(*n.attr("a"), "1");
  EXPECT_FALSE(n.attr("missing").has_value());
  EXPECT_THROW((void)n.required_attr("missing"), XmlError);
}

TEST(XmlNode, ChildLookup) {
  XmlNode n("root");
  n.add_child("a").set_attr("i", "0");
  n.add_child("b");
  n.add_child("a").set_attr("i", "1");
  EXPECT_EQ(n.children_named("a").size(), 2u);
  EXPECT_EQ(n.child("b")->name(), "b");
  EXPECT_EQ(n.child("zzz"), nullptr);
  EXPECT_THROW((void)n.required_child("zzz"), XmlError);
}

TEST(XmlWriter, EscapesSpecialCharacters) {
  XmlNode n("t");
  n.set_attr("a", "x<y&\"z'");
  n.set_text("a<b>&c");
  const std::string out = write(n, {.indent = false, .declaration = false});
  EXPECT_EQ(out, "<t a=\"x&lt;y&amp;&quot;z&apos;\">a&lt;b&gt;&amp;c</t>");
}

TEST(XmlWriter, SelfClosesEmptyElements) {
  XmlNode n("empty");
  n.set_attr("k", "v");
  EXPECT_EQ(write(n, {.indent = false, .declaration = false}), "<empty k=\"v\"/>");
}

TEST(XmlWriter, EmitsDeclaration) {
  XmlNode n("d");
  const std::string out = write(n);
  EXPECT_TRUE(out.starts_with("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"));
}

TEST(XmlParser, ParsesAttributesTextAndNesting) {
  const XmlNode root = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<root a='1' b=\"two\">\n"
      "  <child>text &amp; more</child>\n"
      "  <empty/>\n"
      "</root>");
  EXPECT_EQ(root.name(), "root");
  EXPECT_EQ(*root.attr("a"), "1");
  EXPECT_EQ(*root.attr("b"), "two");
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0].text(), "text & more");
  EXPECT_EQ(root.children()[1].name(), "empty");
}

TEST(XmlParser, DecodesEntities) {
  const XmlNode n = parse("<t>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;&#x2713;</t>");
  EXPECT_EQ(n.text(), "<>&\"'AB\xE2\x9C\x93");
}

TEST(XmlParser, HandlesCdata) {
  const XmlNode n = parse("<t><![CDATA[<raw> & unescaped]]></t>");
  EXPECT_EQ(n.text(), "<raw> & unescaped");
}

TEST(XmlParser, SkipsDoctypeAndProcessingInstructions) {
  const XmlNode n = parse(
      "<?xml version=\"1.0\"?><!DOCTYPE note [<!ENTITY x \"y\">]><note><?pi data?>"
      "ok</note>");
  EXPECT_EQ(n.name(), "note");
  EXPECT_EQ(n.text(), "ok");
}

TEST(XmlParser, ReportsErrorsWithPosition) {
  try {
    (void)parse("<a>\n  <b></c>\n</a>");
    FAIL() << "expected XmlError";
  } catch (const XmlError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("mismatched"), std::string::npos) << what;
  }
}

TEST(XmlParser, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse(""), XmlError);
  EXPECT_THROW((void)parse("just text"), XmlError);
  EXPECT_THROW((void)parse("<a>"), XmlError);
  EXPECT_THROW((void)parse("<a><b></a></b>"), XmlError);
  EXPECT_THROW((void)parse("<a x=1/>"), XmlError);           // unquoted attr
  EXPECT_THROW((void)parse("<a x='1' x='2'/>"), XmlError);   // duplicate attr
  EXPECT_THROW((void)parse("<a>&unknown;</a>"), XmlError);   // unknown entity
  EXPECT_THROW((void)parse("<a/><b/>"), XmlError);           // two roots
  EXPECT_THROW((void)parse("<a>&#;</a>"), XmlError);         // empty char ref
}

TEST(XmlParser, AttributeValueMayContainBothQuoteKinds) {
  const XmlNode n = parse("<t a=\"it's\" b='say \"hi\"'/>");
  EXPECT_EQ(*n.attr("a"), "it's");
  EXPECT_EQ(*n.attr("b"), "say \"hi\"");
}

// --- write/parse round-trip property -----------------------------------------

XmlNode random_tree(util::Rng& rng, int depth) {
  XmlNode node("n" + std::to_string(rng.next_below(5)));
  const std::size_t attr_count = rng.next_below(3);
  for (std::size_t i = 0; i < attr_count; ++i) {
    // Attribute values stress escaping.
    node.set_attr("a" + std::to_string(i), "v<&\"'" + std::to_string(rng.next_u64() % 100));
  }
  if (depth > 0 && rng.next_bool(0.7)) {
    const std::size_t child_count = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < child_count; ++i) {
      node.add_child(random_tree(rng, depth - 1));
    }
  } else {
    node.set_text("text >&< " + std::to_string(rng.next_u64() % 1000));
  }
  return node;
}

class XmlRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlRoundTripProperty, WriteThenParseIsIdentity) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    const XmlNode tree = random_tree(rng, 3);
    // Compact form.
    EXPECT_EQ(parse(write(tree, {.indent = false, .declaration = true})), tree);
    EXPECT_EQ(parse(write(tree, {.indent = false, .declaration = false})), tree);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace pti::xml
