// Tests for pass-by-reference semantics: export/import, remote
// invocation, pass-by-value arguments/results inside remote calls, and the
// dynamic-proxy-over-remoting-proxy composition (paper Section 6.2).
#include <gtest/gtest.h>

#include "fixtures/sample_types.hpp"
#include "remoting/remoting.hpp"
#include "remoting/remoting_error.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"

namespace pti::remoting {
namespace {

using reflect::DynObject;
using reflect::Value;
using transport::AssemblyHub;
using transport::Peer;
using transport::SimNetwork;

class RemotingTest : public ::testing::Test {
 protected:
  RemotingTest()
      : hub_(std::make_shared<AssemblyHub>()),
        server_("server", net_, hub_),
        client_("client", net_, hub_),
        server_remoting_(server_),
        client_remoting_(client_) {
    server_.host_assembly(fixtures::team_a_people());
    server_.host_assembly(fixtures::print_shop());
    client_.host_assembly(fixtures::team_b_people());
    client_.host_assembly(fixtures::office_devices());
  }

  SimNetwork net_;
  std::shared_ptr<AssemblyHub> hub_;
  Peer server_;
  Peer client_;
  Remoting server_remoting_;
  Remoting client_remoting_;
};

TEST_F(RemotingTest, BasicRemoteInvocation) {
  const Value args[] = {Value("Alice")};
  auto person = server_.domain().instantiate("teamA.Person", args);
  const std::uint64_t id = server_remoting_.export_object(person);

  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");
  EXPECT_TRUE(client_remoting_.is_remote_ref(*ref));
  EXPECT_EQ(ref->type_name(), "teamA.Person");

  // Invocations flow through the ProxyFactory -> RemoteInvoker path.
  EXPECT_EQ(client_.proxies().invoke(ref, "getName", {}).as_string(), "Alice");

  // Mutations happen on the server-side object (reference semantics).
  const Value rename[] = {Value("Alicia")};
  client_.proxies().invoke(ref, "setName", rename);
  EXPECT_EQ(person->get("name").as_string(), "Alicia");
}

TEST_F(RemotingTest, ImportFetchesTypeDescriptionOnDemand) {
  EXPECT_EQ(client_.domain().registry().find("teamA.Person"), nullptr);
  const Value args[] = {Value("X")};
  const std::uint64_t id = server_remoting_.export_object(
      server_.domain().instantiate("teamA.Person", args));
  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");
  EXPECT_NE(client_.domain().registry().find("teamA.Person"), nullptr);
  // The client has the description but never downloaded code.
  EXPECT_FALSE(client_.domain().is_loaded("teamA.Person"));
  (void)ref;
}

TEST_F(RemotingTest, DynamicProxyOverRemotingProxy) {
  // The paper's composition: the client queries its own type teamB.Person,
  // the server lends a teamA.Person — implicitly conformant only.
  const Value args[] = {Value("Ada")};
  const std::uint64_t id = server_remoting_.export_object(
      server_.domain().instantiate("teamA.Person", args));
  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");

  auto as_b = client_.proxies().wrap(ref, "teamB.Person");
  ASSERT_TRUE(proxy::ProxyFactory::is_proxy(*as_b));
  // client-side rename (getPersonName -> getName), then remote dispatch.
  EXPECT_EQ(client_.proxies().invoke(as_b, "getPersonName", {}).as_string(), "Ada");
  const Value rename[] = {Value("Lovelace")};
  client_.proxies().invoke(as_b, "setPersonName", rename);
  EXPECT_EQ(client_.proxies().invoke(as_b, "getPersonName", {}).as_string(), "Lovelace");
}

TEST_F(RemotingTest, ArgumentsPassByValue) {
  // print(doc) sends the document string by value; the queue grows on the
  // server's printer only.
  const Value args[] = {Value("office-laser")};
  auto printer = server_.domain().instantiate("shopA.Printer", args);
  const std::uint64_t id = server_remoting_.export_object(printer);
  auto ref = client_remoting_.import_ref("server", id, "shopA.Printer");

  const Value doc[] = {Value(std::string(95, 'x'))};
  const Value pages = client_.proxies().invoke(ref, "print", doc);
  EXPECT_EQ(pages.as_int32(), 10);
  EXPECT_EQ(printer->get("queue").as_int32(), 10);
  EXPECT_EQ(client_.proxies().invoke(ref, "getQueueLength", {}).as_int32(), 10);
}

TEST_F(RemotingTest, ObjectArgumentsTravelByValueWithCodeDownload) {
  // Pass a client-built teamB.Address into a remote teamA.Person's
  // setAddress: the server must fetch teamB descriptions AND code to
  // deserialize the argument.
  const Value args[] = {Value("Ada")};
  auto person = server_.domain().instantiate("teamA.Person", args);
  const std::uint64_t id = server_remoting_.export_object(person);
  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");

  const Value addr_args[] = {Value("Client St"), Value(std::int32_t{7})};
  auto address = client_.domain().instantiate("teamB.Address", addr_args);
  const Value set_args[] = {Value(address)};
  client_.proxies().invoke(ref, "setAddress", set_args);

  EXPECT_TRUE(server_.domain().has_assembly("teamB.people"));
  const auto& stored = person->get("address").as_object();
  EXPECT_EQ(stored->type_name(), "teamB.Address");
  EXPECT_EQ(stored->get("street").as_string(), "Client St");
  // By value: mutating the client's copy does not affect the server's.
  address->set("street", Value("Changed"));
  EXPECT_EQ(stored->get("street").as_string(), "Client St");
}

TEST_F(RemotingTest, ObjectResultsTravelByValue) {
  const Value args[] = {Value("Ada")};
  auto person = server_.domain().instantiate("teamA.Person", args);
  const Value addr_args[] = {Value("Server Ave"), Value(std::int32_t{9})};
  person->set("address", Value(server_.domain().instantiate("teamA.Address", addr_args)));
  const std::uint64_t id = server_remoting_.export_object(person);

  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");
  const Value address = client_.proxies().invoke(ref, "getAddress", {});
  ASSERT_EQ(address.kind(), reflect::ValueKind::Object);
  // The client received a *copy* (with code downloaded on demand).
  EXPECT_TRUE(client_.domain().is_loaded("teamA.Address"));
  EXPECT_EQ(client_.domain().invoke(*address.as_object(), "getStreet").as_string(),
            "Server Ave");
  EXPECT_NE(address.as_object().get(), person->get("address").as_object().get());
}

TEST_F(RemotingTest, ErrorsPropagateAcrossTheWire) {
  const Value args[] = {Value("Ada")};
  const std::uint64_t id = server_remoting_.export_object(
      server_.domain().instantiate("teamA.Person", args));
  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");

  // Unknown method on the server object.
  try {
    (void)client_.proxies().invoke(ref, "fly", {});
    FAIL() << "expected RemotingError";
  } catch (const RemotingError& e) {
    EXPECT_NE(std::string(e.what()).find("fly"), std::string::npos);
  }

  // Unknown object id.
  auto bad_ref = client_remoting_.import_ref("server", 424242, "teamA.Person");
  EXPECT_THROW((void)client_.proxies().invoke(bad_ref, "getName", {}), RemotingError);
}

TEST_F(RemotingTest, UnexportedObjectsBecomeUnreachable) {
  const Value args[] = {Value("Ada")};
  const std::uint64_t id = server_remoting_.export_object(
      server_.domain().instantiate("teamA.Person", args));
  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");
  EXPECT_EQ(client_.proxies().invoke(ref, "getName", {}).as_string(), "Ada");
  server_remoting_.unexport(id);
  EXPECT_THROW((void)client_.proxies().invoke(ref, "getName", {}), RemotingError);
  EXPECT_EQ(server_remoting_.exported_count(), 0u);
}

TEST_F(RemotingTest, RemoteRefsCannotPassByValue) {
  const Value args[] = {Value("Ada")};
  const std::uint64_t id = server_remoting_.export_object(
      server_.domain().instantiate("teamA.Person", args));
  auto ref = client_remoting_.import_ref("server", id, "teamA.Person");
  // Sending a remote reference as a by-value argument is refused.
  const Value set_args[] = {Value(ref)};
  EXPECT_THROW((void)client_.proxies().invoke(ref, "setAddress", set_args),
               RemotingError);
}

TEST_F(RemotingTest, ImportUnknownTypeFails) {
  EXPECT_THROW((void)client_remoting_.import_ref("server", 1, "no.Such"), RemotingError);
}

}  // namespace
}  // namespace pti::remoting
