// Cross-cutting edge cases that the per-module suites do not reach:
// static/visibility corner cases of the conformance rules, interface
// hierarchies, wildcard member names, serializer fallbacks and malformed
// wire data, and remoting error paths.
#include <gtest/gtest.h>

#include "conform/conformance_checker.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"
#include "reflect/type_builder.hpp"
#include "reflect/type_parser.hpp"
#include "remoting/remoting.hpp"
#include "remoting/remoting_error.hpp"
#include "serial/serial_error.hpp"
#include "serial/soap_serializer.hpp"
#include "serial/xml_object_serializer.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "xml/xml_parser.hpp"

namespace pti {
namespace {

using conform::ConformanceChecker;
using reflect::Domain;
using reflect::DynObject;
using reflect::TypeDescription;
using reflect::TypeKind;
using reflect::Value;
using reflect::Visibility;

// --- conformance corners ---------------------------------------------------

TEST(ConformEdge, StaticMembersMustMatchStaticness) {
  Domain d;
  reflect::declare_types(d.registry(), R"(
    namespace a;
    class Util { static int32 count(); }
  )");
  reflect::declare_types(d.registry(), R"(
    namespace b;
    class Util { int32 count(); }
  )");
  ConformanceChecker checker(d.registry());
  // instance method cannot satisfy a static requirement (and vice versa).
  EXPECT_FALSE(checker.check("b.Util", "a.Util").conformant);
  EXPECT_FALSE(checker.check("a.Util", "b.Util").conformant);
}

TEST(ConformEdge, InterfaceHierarchiesConform) {
  Domain d;
  reflect::declare_types(d.registry(), R"(
    namespace a;
    interface IBase { int32 getId(); }
    interface IThing implements IBase { string getLabel(); }
  )");
  reflect::declare_types(d.registry(), R"(
    namespace b;
    interface IBase { int32 getId(); }
    interface IThing implements IBase { string getThingLabel(); }
  )");
  ConformanceChecker checker(d.registry());
  EXPECT_TRUE(checker.check("b.IThing", "a.IThing").conformant);
  EXPECT_TRUE(checker.check("b.IBase", "a.IBase").conformant);

  // Remove the interface from one side: the supertype aspect rejects.
  reflect::declare_types(d.registry(), R"(
    namespace c;
    interface IThing { string getLabel(); }
  )");
  EXPECT_FALSE(checker.check("c.IThing", "a.IThing").conformant);
}

TEST(ConformEdge, WildcardMemberNames) {
  Domain d;
  // Wildcards are not identifiers; build the pattern type directly.
  d.registry().add([] {
    TypeDescription t("pat", "Sensor", TypeKind::Class);
    t.set_guid(util::Guid::from_name("pat.Sensor"));
    t.add_method({"get*", "float64", {}, Visibility::Public, false});
    return t;
  }());
  reflect::declare_types(d.registry(), R"(
    namespace real;
    class Sensor {
      float64 getTemperature();
    }
  )");
  conform::ConformanceOptions options;
  options.allow_wildcards = true;
  ConformanceChecker checker(d.registry(), options);
  EXPECT_TRUE(checker.check("real.Sensor", "pat.Sensor").conformant);
  // Without wildcards the pattern is just a weird name that cannot match.
  ConformanceChecker strict(d.registry());
  EXPECT_FALSE(strict.check("real.Sensor", "pat.Sensor").conformant);
}

TEST(ConformEdge, ExtraSourceMembersNeverHurt) {
  Domain d;
  reflect::declare_types(d.registry(), R"(
    namespace small;
    class Box { int32 getWidth(); }
  )");
  reflect::declare_types(d.registry(), R"(
    namespace big;
    class Box {
      private int32 w;
      private int32 h;
      Box(int32 w, int32 h);
      int32 getWidth();
      int32 getHeight();
      void resize(int32 w, int32 h);
    }
  )");
  ConformanceChecker checker(d.registry());
  EXPECT_TRUE(checker.check("big.Box", "small.Box").conformant);
  EXPECT_FALSE(checker.check("small.Box", "big.Box").conformant);
}

TEST(ConformEdge, FieldTypeMismatchRejects) {
  Domain d;
  reflect::declare_types(d.registry(), "namespace a; class P { private int32 v; }");
  reflect::declare_types(d.registry(), "namespace b; class P { private string v; }");
  ConformanceChecker checker(d.registry());
  const auto r = checker.check("b.P", "a.P");
  EXPECT_FALSE(r.conformant);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures.front().find("field aspect"), std::string::npos);
}

TEST(ConformEdge, ConstructorArityMustBeCovered) {
  Domain d;
  reflect::declare_types(d.registry(),
                         "namespace a; class P { P(string name); P(); }");
  reflect::declare_types(d.registry(), "namespace b; class P { P(string name); }");
  ConformanceChecker checker(d.registry());
  // b lacks the 0-ary constructor a requires.
  EXPECT_FALSE(checker.check("b.P", "a.P").conformant);
  EXPECT_TRUE(checker.check("a.P", "b.P").conformant);
}

// --- serializer corners ------------------------------------------------------

TEST(SerialEdge, XmlSerializerKeepsAllFieldsForUnknownTypes) {
  // Without a description, the XML mechanism cannot distinguish public
  // from private and keeps everything (documented fallback).
  Domain d;
  serial::XmlObjectSerializer xml(&d.registry());
  auto obj = DynObject::make("mystery.T", util::Guid{});
  obj->set("secret", Value("visible-because-unknown"));
  const auto bytes = xml.serialize(Value(obj));
  const std::string text(bytes.begin(), bytes.end());
  EXPECT_NE(text.find("visible-because-unknown"), std::string::npos);
}

TEST(SerialEdge, SoapRejectsDanglingAndMalformedHrefs) {
  serial::SoapSerializer soap;
  const auto parse = [&](const char* body) {
    const std::string doc =
        std::string("<SOAP-ENV:Envelope><SOAP-ENV:Body>") + body +
        "</SOAP-ENV:Body></SOAP-ENV:Envelope>";
    return soap.deserialize(std::vector<std::uint8_t>(doc.begin(), doc.end()));
  };
  EXPECT_THROW((void)parse("<root href=\"#ref-9\"/>"), serial::SerialError);
  EXPECT_THROW((void)parse("<root href=\"ref-1\"/>"), serial::SerialError);
  EXPECT_THROW((void)parse("<root kind=\"object\"/>"), serial::SerialError);
}

TEST(SerialEdge, SoapRoundTripsEmptyObjectsAndEmptyLists) {
  serial::SoapSerializer soap;
  auto empty = DynObject::make("t.Empty", util::Guid::from_name("t.Empty"));
  const Value back = soap.deserialize(soap.serialize(Value(empty)));
  EXPECT_EQ(back.as_object()->fields().size(), 0u);
  EXPECT_EQ(back.as_object()->type_name(), "t.Empty");

  const Value list_back =
      soap.deserialize(soap.serialize(Value(Value::List{})));
  EXPECT_TRUE(list_back.as_list().empty());
}

// --- protocol / remoting corners ---------------------------------------------

TEST(RemotingEdge, MethodBodyExceptionsCrossTheWireAsErrors) {
  transport::SimNetwork net;
  auto hub = std::make_shared<transport::AssemblyHub>();
  transport::Peer server("server", net, hub);
  transport::Peer client("client", net, hub);
  remoting::Remoting server_remoting(server);
  remoting::Remoting client_remoting(client);

  auto assembly = std::make_shared<reflect::Assembly>("volatile.things");
  assembly->add_type(
      reflect::TypeBuilder("volatile", "Bomb")
          .method("explode", std::string(reflect::kInt32Type), {},
                  [](DynObject&, reflect::Args) -> Value {
                    throw reflect::ReflectError("boom");
                  })
          .build());
  server.host_assembly(assembly);

  auto bomb = server.domain().instantiate("volatile.Bomb");
  const auto id = server_remoting.export_object(bomb);
  auto ref = client_remoting.import_ref("server", id, "volatile.Bomb");
  try {
    (void)client.proxies().invoke(ref, "explode", {});
    FAIL() << "expected RemotingError";
  } catch (const remoting::RemotingError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // The connection stays usable.
  EXPECT_TRUE(client_remoting.is_remote_ref(*ref));
}

TEST(ProtocolEdge, SendToSelfWorks) {
  transport::SimNetwork net;
  auto hub = std::make_shared<transport::AssemblyHub>();
  transport::Peer solo("solo", net, hub);
  solo.host_assembly(fixtures::team_a_people());
  solo.add_interest("teamA.Person");
  const Value args[] = {Value("Me")};
  const auto ack =
      solo.send_object("solo", solo.domain().instantiate("teamA.Person", args));
  EXPECT_TRUE(ack.delivered);
  // Same type universe: identity conformance, zero metadata traffic.
  EXPECT_EQ(solo.stats().typeinfo_requests, 0u);
  EXPECT_EQ(solo.stats().code_requests, 0u);
}

TEST(ProtocolEdge, InterestOrderDeterminesMatch) {
  transport::SimNetwork net;
  auto hub = std::make_shared<transport::AssemblyHub>();
  transport::Peer alice("alice", net, hub);
  transport::Peer bob("bob", net, hub);
  alice.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_a_people());
  bob.host_assembly(fixtures::team_b_people());
  // Both interests conform; the first registered one wins.
  bob.add_interest("teamB.Person");
  bob.add_interest("teamA.Person");
  const Value args[] = {Value("X")};
  const auto ack =
      alice.send_object("bob", alice.domain().instantiate("teamA.Person", args));
  EXPECT_TRUE(ack.delivered);
  EXPECT_EQ(ack.detail, "teamB.Person");
}

TEST(ProtocolEdge, DuplicateInterestIsIdempotent) {
  transport::SimNetwork net;
  auto hub = std::make_shared<transport::AssemblyHub>();
  transport::Peer bob("bob", net, hub);
  bob.host_assembly(fixtures::team_b_people());
  bob.add_interest("teamB.Person");
  bob.add_interest("teamB.Person");
  bob.add_interest("Person");  // unique simple name resolves to the same
  EXPECT_EQ(bob.interests()->size(), 1u);
  EXPECT_EQ(bob.interest_ids().size(), 1u);
}

}  // namespace
}  // namespace pti
