// Unit and property tests for the util substrate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/base64.hpp"
#include "util/byte_buffer.hpp"
#include "util/guid.hpp"
#include "util/hash.hpp"
#include "util/levenshtein.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/string_util.hpp"

namespace pti::util {
namespace {

// --- string_util -------------------------------------------------------------

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("AbC123xYz"), "abc123xyz");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringUtil, IEquals) {
  EXPECT_TRUE(iequals("Person", "person"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("Person", "Persons"));
  EXPECT_FALSE(iequals("Person", "Persom"));
}

TEST(StringUtil, ILessIsStrictWeakOrder) {
  EXPECT_TRUE(iless("abc", "abd"));
  EXPECT_FALSE(iless("ABD", "abc"));
  EXPECT_FALSE(iless("abc", "ABC"));  // equal
  EXPECT_TRUE(iless("ab", "abc"));    // prefix
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("net://peer/assembly", "net://"));
  EXPECT_FALSE(starts_with("net:/x", "net://"));
  EXPECT_TRUE(ends_with("foo.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", ".xml"));
}

TEST(StringUtil, SplitPreservesEmptySegments) {
  EXPECT_EQ(split("a.b..c", '.'), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtil, WildcardMatch) {
  EXPECT_TRUE(wildcard_match("Person*", "PersonRecord"));
  EXPECT_TRUE(wildcard_match("*name*", "getPersonName"));
  EXPECT_TRUE(wildcard_match("P?rson", "Person"));
  EXPECT_TRUE(wildcard_match("*", ""));
  EXPECT_FALSE(wildcard_match("Person", "Persons"));
  EXPECT_FALSE(wildcard_match("a*b", "ac"));
}

TEST(StringUtil, IContains) {
  EXPECT_TRUE(icontains("getPersonName", "PERSON"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("ab", "abc"));
  EXPECT_FALSE(icontains("getname", "person"));
}

TEST(StringUtil, IdentifierTokens) {
  EXPECT_EQ(identifier_tokens("getPersonName"),
            (std::vector<std::string>{"get", "person", "name"}));
  EXPECT_EQ(identifier_tokens("set_name"), (std::vector<std::string>{"set", "name"}));
  EXPECT_EQ(identifier_tokens("XMLParser"), (std::vector<std::string>{"xml", "parser"}));
  EXPECT_EQ(identifier_tokens("f0"), (std::vector<std::string>{"f", "0"}));
  EXPECT_EQ(identifier_tokens(""), (std::vector<std::string>{}));
}

TEST(StringUtil, TokenSubsetMatch) {
  // The paper's motivating example: both directions.
  EXPECT_TRUE(token_subset_match("getName", "getPersonName"));
  EXPECT_TRUE(token_subset_match("getPersonName", "getName"));
  EXPECT_TRUE(token_subset_match("setName", "set_name"));
  EXPECT_FALSE(token_subset_match("getName", "getBalance"));
  EXPECT_FALSE(token_subset_match("deposit", "withdraw"));
}

// --- levenshtein ----------------------------------------------------------

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(levenshtein("", "abc"), 3u);
  EXPECT_EQ(levenshtein("abc", ""), 3u);
  EXPECT_EQ(levenshtein("person", "PERSON"), 0u);  // case-insensitive default
  EXPECT_EQ(levenshtein("person", "PERSON", /*case_insensitive=*/false), 6u);
  EXPECT_EQ(levenshtein("flaw", "lawn"), 2u);
}

TEST(Levenshtein, WithinThreshold) {
  EXPECT_TRUE(levenshtein_within("Person", "person", 0));
  EXPECT_FALSE(levenshtein_within("Person", "Persons", 0));
  EXPECT_TRUE(levenshtein_within("Person", "Persons", 1));
  EXPECT_TRUE(levenshtein_within("kitten", "sitting", 3));
  EXPECT_FALSE(levenshtein_within("kitten", "sitting", 2));
  EXPECT_FALSE(levenshtein_within("a", "abcdefg", 3));
}

/// Property suite over generated word pairs: metric axioms + threshold
/// consistency.
class LevenshteinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevenshteinProperty, MetricAxiomsAndBandedConsistency) {
  Rng rng(GetParam());
  const auto random_word = [&rng] {
    const std::size_t len = rng.next_below(12);
    std::string w;
    for (std::size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.next_below(4)));  // small alphabet
    }
    return w;
  };
  for (int iter = 0; iter < 50; ++iter) {
    const std::string a = random_word();
    const std::string b = random_word();
    const std::string c = random_word();
    const std::size_t dab = levenshtein(a, b);
    const std::size_t dba = levenshtein(b, a);
    const std::size_t dac = levenshtein(a, c);
    const std::size_t dcb = levenshtein(c, b);
    EXPECT_EQ(dab, dba) << a << " / " << b;                      // symmetry
    EXPECT_EQ(levenshtein(a, a), 0u);                            // identity
    EXPECT_LE(dab, dac + dcb) << a << "," << b << "," << c;      // triangle
    const std::size_t size_gap = a.size() > b.size() ? a.size() - b.size()
                                                     : b.size() - a.size();
    EXPECT_GE(dab, size_gap);                                    // lower bound
    EXPECT_LE(dab, std::max(a.size(), b.size()));                // upper bound
    // Banded early-exit variant agrees with the exact distance.
    for (std::size_t k = 0; k <= 4; ++k) {
      EXPECT_EQ(levenshtein_within(a, b, k), dab <= k)
          << a << " / " << b << " k=" << k << " d=" << dab;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- guid -------------------------------------------------------------------

TEST(Guid, FromNameIsDeterministicAndCaseInsensitive) {
  const Guid a = Guid::from_name("teamA.Person");
  const Guid b = Guid::from_name("teama.person");
  const Guid c = Guid::from_name("teamB.Person");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.is_nil());
}

TEST(Guid, RoundTripsThroughString) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const Guid g = Guid::random(rng);
    const std::string text = g.to_string();
    EXPECT_EQ(text.size(), 36u);
    const auto parsed = Guid::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, g);
  }
}

TEST(Guid, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Guid::parse("").has_value());
  EXPECT_FALSE(Guid::parse("1234").has_value());
  EXPECT_FALSE(Guid::parse("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz").has_value());
  EXPECT_FALSE(Guid::parse("12345678-1234-1234-1234-12345678901").has_value());
  EXPECT_FALSE(Guid::parse("12345678x1234-1234-1234-123456789012").has_value());
}

TEST(Guid, NilBehaviour) {
  EXPECT_TRUE(Guid{}.is_nil());
  EXPECT_EQ(Guid{}.to_string(), "00000000-0000-0000-0000-000000000000");
}

// --- base64 --------------------------------------------------------------

TEST(Base64, KnownVectors) {
  const auto enc = [](std::string_view s) {
    return base64_encode(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, RejectsMalformed) {
  EXPECT_FALSE(base64_decode("Zg=").has_value());    // bad length
  EXPECT_FALSE(base64_decode("Z===").has_value());   // too much padding
  EXPECT_FALSE(base64_decode("Zg=A").has_value());   // data after padding
  EXPECT_FALSE(base64_decode("Zg!@").has_value());   // bad alphabet
}

class Base64Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Base64Property, RoundTripsRandomBlobs) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::uint8_t> blob(rng.next_below(200));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto decoded = base64_decode(base64_encode(blob));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, blob);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Base64Property, ::testing::Values(11, 22, 33, 44));

// --- byte buffer -----------------------------------------------------------

TEST(ByteBuffer, FixedWidthRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u16(0xBEEF);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_f64(-1234.5e-7);
  w.write_bool(true);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0xBEEF);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.read_f64(), -1234.5e-7);
  EXPECT_TRUE(r.read_bool());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, VarintBoundaries) {
  ByteWriter w;
  const std::vector<std::uint64_t> values = {0,    1,    127,        128,
                                             16383, 16384, 0xFFFFFFFF, ~0ULL};
  for (auto v : values) w.write_varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, SignedVarintZigZag) {
  ByteWriter w;
  const std::vector<std::int64_t> values = {0, -1, 1, -64, 63, -9999999,
                                            INT64_MIN, INT64_MAX};
  for (auto v : values) w.write_signed_varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.read_signed_varint(), v);
}

TEST(ByteBuffer, SmallSignedValuesAreCompact) {
  ByteWriter w;
  w.write_signed_varint(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(ByteBuffer, StringsAndBytes) {
  ByteWriter w;
  w.write_string("hello \xE2\x9C\x93 world");
  w.write_bytes(std::vector<std::uint8_t>{1, 2, 3});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello \xE2\x9C\x93 world");
  EXPECT_EQ(r.read_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(ByteBuffer, TruncationThrows) {
  ByteWriter w;
  w.write_u32(42);
  ByteReader r(w.bytes());
  (void)r.read_u16();
  EXPECT_THROW((void)r.read_u32(), ByteBufferError);
}

TEST(ByteBuffer, MalformedVarintThrows) {
  const std::vector<std::uint8_t> endless(11, 0x80);
  ByteReader r(endless);
  EXPECT_THROW((void)r.read_varint(), ByteBufferError);
}

// --- hash / rng / clock ------------------------------------------------------

TEST(Hash, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a64(""), kFnvOffset64);
  EXPECT_EQ(fnv1a64("a"), fnv1a64("a"));
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.next_below(7), 7u);
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance_ns(10);
  clock.advance_to_ns(5);  // no going back
  EXPECT_EQ(clock.now_ns(), 10u);
  clock.advance_to_ns(25);
  EXPECT_EQ(clock.now_ns(), 25u);
}

}  // namespace
}  // namespace pti::util
