// Property-style randomized protocol sweep.
//
// From one fixed RNG seed, every round generates a random type graph (a
// sender type with random scalar fields/getters and, sometimes, a nested
// child type) plus a random interest set for the receiver (a faithful
// copy, a subset, or a mutation of the sender's shape — and occasionally
// unrelated decoys). The same push then runs through two fresh universes:
// one pair of Optimistic peers (the paper's protocol) and one pair of
// Eager peers (everything ships up front).
//
// Properties asserted per round:
//   * the two protocols agree on accept/reject, and on WHICH interest
//     matched (delivery is a function of the conformance relation, not of
//     how metadata travelled);
//   * when delivered, both universes hand the application an object with
//     identical field contents equal to what was sent, and the adapted
//     view answers getters with the sent values;
//   * when rejected, the optimistic receiver never downloaded code (the
//     protocol's central saving) while the eager sender paid for it
//     anyway.
//
// The sweep also checks it exercised both outcomes (a generator that only
// ever accepts or only ever rejects tests nothing).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "reflect/assembly.hpp"
#include "reflect/type_builder.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "util/rng.hpp"

namespace pti {
namespace {

using reflect::Args;
using reflect::Assembly;
using reflect::DynObject;
using reflect::TypeBuilder;
using reflect::Value;
using transport::AssemblyHub;
using transport::DeliveredObject;
using transport::Peer;
using transport::PeerConfig;
using transport::ProtocolMode;
using transport::PushAck;
using transport::SimNetwork;

constexpr std::uint64_t kSweepSeed = 0xF00DD00DULL;
constexpr int kRounds = 48;

const char* const kScalarTypes[] = {"int32", "int64", "string"};

struct Member {
  std::string name;
  std::string type;  ///< scalar type name
};

/// The sender-side shape: scalar fields (each with a same-named getter)
/// and optionally a nested child object with its own scalar fields.
struct Schema {
  std::vector<Member> fields;
  bool has_child = false;
  std::vector<Member> child_fields;
};

Schema random_schema(util::Rng& rng) {
  Schema schema;
  const std::size_t field_count = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < field_count; ++i) {
    schema.fields.push_back(
        {"f" + std::to_string(i), kScalarTypes[rng.next_below(3)]});
  }
  schema.has_child = rng.next_bool(0.5);
  if (schema.has_child) {
    const std::size_t child_count = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < child_count; ++i) {
      schema.child_fields.push_back(
          {"c" + std::to_string(i), kScalarTypes[rng.next_below(3)]});
    }
  }
  return schema;
}

void add_getter(TypeBuilder& builder, const std::string& field, const std::string& type) {
  builder.method("get_" + field, type, {},
                 [field](DynObject& self, Args) { return self.get(field); });
}

/// The sender's assembly: "<ns>.Thing" (+ "<ns>.Child"), fields + getters.
std::shared_ptr<const Assembly> sender_assembly(const std::string& ns,
                                                const Schema& schema) {
  auto assembly = std::make_shared<Assembly>(ns + ".gen");
  if (schema.has_child) {
    TypeBuilder child(ns, "Child");
    for (const Member& m : schema.child_fields) {
      child.field(m.name, m.type);
      add_getter(child, m.name, m.type);
    }
    assembly->add_type(child.build());
  }
  TypeBuilder thing(ns, "Thing");
  for (const Member& m : schema.fields) {
    thing.field(m.name, m.type);
    add_getter(thing, m.name, m.type);
  }
  if (schema.has_child) {
    const std::string child_type = ns + ".Child";
    thing.field("child", child_type);
    add_getter(thing, "child", child_type);
  }
  assembly->add_type(thing.build());
  return assembly;
}

/// How the receiver's interest relates to the sender's shape.
enum class InterestMode { Copy, Subset, Mutated };

/// The receiver's assembly: a method-only "<ns>.Thing" (the simple name
/// must token-conform to the sender's — the checker's name aspect) whose
/// getters are derived from the sender's schema per `mode`; child getters
/// mirror the sender's child through the receiver's own "<ns>.Child".
std::shared_ptr<const Assembly> receiver_assembly(const std::string& ns,
                                                  const Schema& schema,
                                                  InterestMode mode, util::Rng& rng) {
  auto assembly = std::make_shared<Assembly>(ns + ".gen");
  if (schema.has_child) {
    TypeBuilder child(ns, "Child");
    for (const Member& m : schema.child_fields) add_getter(child, m.name, m.type);
    assembly->add_type(child.build());
  }

  std::vector<Member> getters = schema.fields;
  if (mode == InterestMode::Subset) {
    // Keep a random nonempty prefix-rotation of the getters.
    const std::size_t keep = 1 + rng.next_below(getters.size());
    const std::size_t start = rng.next_below(getters.size());
    std::vector<Member> kept;
    for (std::size_t i = 0; i < keep; ++i) {
      kept.push_back(getters[(start + i) % getters.size()]);
    }
    getters = std::move(kept);
  } else if (mode == InterestMode::Mutated) {
    Member& victim = getters[rng.next_below(getters.size())];
    if (rng.next_bool(0.5)) {
      // A token-disjoint getter name: "get_zz<k>" shares no token with any
      // sender getter "get_f<j>" beyond "get", so the member-name rule
      // (token subset) cannot realize it. A mere prefix would not do —
      // "get_nope_f0" still token-subsumes "get_f0".
      victim.name = "zz" + std::to_string(rng.next_below(1000));
    } else {
      // Swap to a structurally incompatible scalar return type.
      victim.type = victim.type == "string" ? "int32" : "string";
    }
  }

  TypeBuilder thing(ns, "Thing");
  for (const Member& m : getters) add_getter(thing, m.name, m.type);
  if (schema.has_child) {
    add_getter(thing, "child", ns + ".Child");
  }
  assembly->add_type(thing.build());
  return assembly;
}

/// One universe: a fresh network, hub and sender/receiver peer pair.
struct Universe {
  SimNetwork net;
  std::shared_ptr<AssemblyHub> hub = std::make_shared<AssemblyHub>();
  Peer sender;
  Peer receiver;

  explicit Universe(ProtocolMode mode)
      : sender("sender", net, hub, PeerConfig{.mode = mode}),
        receiver("receiver", net, hub, PeerConfig{.mode = mode}) {}
};

/// The concrete values of one object graph, drawn once per round so both
/// universes send byte-identical state.
struct ValuePlan {
  std::vector<std::pair<std::string, Value>> fields;
  std::vector<std::pair<std::string, Value>> child_fields;
};

ValuePlan random_values(const Schema& schema, util::Rng& rng) {
  const auto scalar = [&rng](const std::string& type, std::size_t salt) {
    if (type == "int32") return Value(static_cast<std::int32_t>(rng.next_below(100000)));
    if (type == "int64") return Value(static_cast<std::int64_t>(rng.next_u64() >> 8));
    return Value("v" + std::to_string(salt) + "_" + std::to_string(rng.next_below(1000)));
  };
  ValuePlan plan;
  std::size_t salt = 0;
  for (const Member& m : schema.fields) {
    plan.fields.emplace_back(m.name, scalar(m.type, salt++));
  }
  for (const Member& m : schema.child_fields) {
    plan.child_fields.emplace_back(m.name, scalar(m.type, salt++));
  }
  return plan;
}

/// Instantiates the schema's object graph in the sender's domain with the
/// plan's values.
std::shared_ptr<DynObject> make_object(Peer& sender, const std::string& ns,
                                       const Schema& schema, const ValuePlan& plan) {
  auto thing = sender.domain().instantiate(ns + ".Thing");
  for (const auto& [name, value] : plan.fields) thing->set(name, value);
  if (schema.has_child) {
    auto child = sender.domain().instantiate(ns + ".Child");
    for (const auto& [name, value] : plan.child_fields) child->set(name, value);
    thing->set("child", Value(std::move(child)));
  }
  return thing;
}

void expect_same_value(const Value& actual, const Value& expected, const std::string& where) {
  ASSERT_EQ(actual.kind(), expected.kind()) << where;
  switch (expected.kind()) {
    case reflect::ValueKind::Int32:
      EXPECT_EQ(actual.as_int32(), expected.as_int32()) << where;
      break;
    case reflect::ValueKind::Int64:
      EXPECT_EQ(actual.as_int64(), expected.as_int64()) << where;
      break;
    case reflect::ValueKind::String:
      EXPECT_EQ(actual.as_string(), expected.as_string()) << where;
      break;
    default:
      FAIL() << "unexpected value kind in " << where;
  }
}

TEST(ProtocolFuzz, EagerAndOptimisticAlwaysAgree) {
  util::Rng rng(kSweepSeed);
  int accepted = 0;
  int rejected = 0;

  for (int round = 0; round < kRounds; ++round) {
    const std::string sns = "fzs" + std::to_string(round);
    const std::string rns = "fzr" + std::to_string(round);
    const Schema schema = random_schema(rng);
    const auto mode = static_cast<InterestMode>(rng.next_below(3));
    const bool with_decoy = rng.next_bool(0.33);

    const auto sender_code = sender_assembly(sns, schema);
    const auto receiver_code = receiver_assembly(rns, schema, mode, rng);
    // Decoy interest: an unrelated shape that should never steal a match
    // from the derived interest (it is checked first, though — order is
    // part of what must agree across the protocols).
    const std::string dns = "fzd" + std::to_string(round);
    const Schema decoy_schema{{{"unrelated", "string"}, {"other", "int64"}}, false, {}};
    const auto decoy_code =
        with_decoy ? sender_assembly(dns, decoy_schema) : nullptr;

    // The object's values are drawn once so both universes send byte-
    // identical state.
    const ValuePlan values = random_values(schema, rng);

    const auto run = [&](ProtocolMode protocol, PushAck& ack,
                         std::vector<DeliveredObject>& delivered,
                         transport::ProtocolStats& receiver_stats,
                         transport::NetStats& net_stats) {
      Universe universe(protocol);
      universe.sender.host_assembly(sender_code);
      universe.receiver.host_assembly(receiver_code);
      if (decoy_code) {
        universe.receiver.host_assembly(decoy_code);
        universe.receiver.add_interest(dns + ".Thing");
      }
      universe.receiver.add_interest(rns + ".Thing");
      const auto object = make_object(universe.sender, sns, schema, values);
      ack = universe.sender.send_object("receiver", object);
      delivered = universe.receiver.delivered_snapshot();
      receiver_stats = universe.receiver.stats();
      net_stats = universe.net.stats();
    };

    PushAck optimistic_ack;
    PushAck eager_ack;
    std::vector<DeliveredObject> optimistic_delivered;
    std::vector<DeliveredObject> eager_delivered;
    transport::ProtocolStats optimistic_stats;
    transport::ProtocolStats eager_stats;
    transport::NetStats optimistic_net;
    transport::NetStats eager_net;
    run(ProtocolMode::Optimistic, optimistic_ack, optimistic_delivered,
        optimistic_stats, optimistic_net);
    run(ProtocolMode::Eager, eager_ack, eager_delivered, eager_stats, eager_net);

    const std::string context = "round " + std::to_string(round) + " (mode " +
                                std::to_string(static_cast<int>(mode)) + ")";

    // Property 1: agreement on the verdict and the matched interest.
    ASSERT_EQ(optimistic_ack.delivered, eager_ack.delivered) << context;
    if (optimistic_ack.delivered) {
      EXPECT_EQ(optimistic_ack.detail, eager_ack.detail) << context;
    }

    if (optimistic_ack.delivered) {
      ++accepted;
      ASSERT_EQ(optimistic_delivered.size(), 1u) << context;
      ASSERT_EQ(eager_delivered.size(), 1u) << context;
      // Property 2: both universes delivered identical contents — the
      // values that were sent.
      for (const auto& [field, sent] : values.fields) {
        expect_same_value(optimistic_delivered.front().object->get(field), sent,
                          context + " optimistic field " + field);
        expect_same_value(eager_delivered.front().object->get(field), sent,
                          context + " eager field " + field);
      }
    } else {
      ++rejected;
      EXPECT_TRUE(optimistic_delivered.empty()) << context;
      EXPECT_TRUE(eager_delivered.empty()) << context;
      // Property 3: the optimistic receiver rejected without downloading
      // code; the eager push hauled the assembly across anyway.
      EXPECT_EQ(optimistic_stats.code_requests, 0u) << context;
      EXPECT_EQ(optimistic_stats.objects_rejected, 1u) << context;
      EXPECT_LT(optimistic_net.bytes, eager_net.bytes) << context;
    }
  }

  // The generator must have produced a real mix of outcomes.
  EXPECT_GE(accepted, kRounds / 4) << "sweep degenerated: almost nothing conformed";
  EXPECT_GE(rejected, kRounds / 8) << "sweep degenerated: everything conformed";
}

/// Conformant deliveries answer getters with the sent values through the
/// adapted (proxy) view — a behavioral spot check on top of the agreement
/// sweep, on a guaranteed-conformant copy-mode round.
TEST(ProtocolFuzz, AdaptedViewAnswersGettersWithSentValues) {
  util::Rng rng(kSweepSeed ^ 0xABCDEF);
  for (int round = 0; round < 8; ++round) {
    const std::string sns = "fzvs" + std::to_string(round);
    const std::string rns = "fzvr" + std::to_string(round);
    const Schema schema = random_schema(rng);
    const auto sender_code = sender_assembly(sns, schema);
    const auto receiver_code = receiver_assembly(rns, schema, InterestMode::Copy, rng);

    Universe universe(ProtocolMode::Optimistic);
    universe.sender.host_assembly(sender_code);
    universe.receiver.host_assembly(receiver_code);
    universe.receiver.add_interest(rns + ".Thing");
    const ValuePlan values = random_values(schema, rng);
    const auto object = make_object(universe.sender, sns, schema, values);
    const PushAck ack = universe.sender.send_object("receiver", object);
    ASSERT_TRUE(ack.delivered) << "copy-mode round " << round << " must conform";

    const auto delivered = universe.receiver.delivered_snapshot();
    ASSERT_EQ(delivered.size(), 1u);
    for (const auto& [field, sent] : values.fields) {
      expect_same_value(
          universe.receiver.proxies().invoke(delivered.front().adapted, "get_" + field, {}),
          sent, "getter get_" + field + " in round " + std::to_string(round));
    }
  }
}

}  // namespace
}  // namespace pti
