// Property-style randomized protocol sweep.
//
// From one fixed RNG seed, every round generates a random type graph (a
// sender type with random scalar fields/getters and, sometimes, a nested
// child type) plus a random interest set for the receiver (a faithful
// copy, a subset, or a mutation of the sender's shape — and occasionally
// unrelated decoys). The same push then runs through two fresh universes:
// one pair of Optimistic peers (the paper's protocol) and one pair of
// Eager peers (everything ships up front). Generators live in
// tests/protocol_fuzz_common.hpp, shared with the SocketTransport
// equivalence sweep in test_socket_transport.cpp.
//
// Properties asserted per round:
//   * the two protocols agree on accept/reject, and on WHICH interest
//     matched (delivery is a function of the conformance relation, not of
//     how metadata travelled);
//   * when delivered, both universes hand the application an object with
//     identical field contents equal to what was sent, and the adapted
//     view answers getters with the sent values;
//   * when rejected, the optimistic receiver never downloaded code (the
//     protocol's central saving) while the eager sender paid for it
//     anyway.
//
// The sweep also checks it exercised both outcomes (a generator that only
// ever accepts or only ever rejects tests nothing).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "protocol_fuzz_common.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "util/rng.hpp"

namespace pti {
namespace {

using fuzz::InterestMode;
using fuzz::Round;
using transport::AssemblyHub;
using transport::DeliveredObject;
using transport::Peer;
using transport::PeerConfig;
using transport::ProtocolMode;
using transport::PushAck;
using transport::SimNetwork;

constexpr std::uint64_t kSweepSeed = 0xF00DD00DULL;
constexpr int kRounds = 48;

/// One universe: a fresh network, hub and sender/receiver peer pair.
struct Universe {
  SimNetwork net;
  std::shared_ptr<AssemblyHub> hub = std::make_shared<AssemblyHub>();
  Peer sender;
  Peer receiver;

  explicit Universe(ProtocolMode mode, bool sessions = false, std::size_t max_batch = 1)
      : sender("sender", net, hub, config_for(mode, sessions, max_batch)),
        receiver("receiver", net, hub, config_for(mode, sessions, max_batch)) {}

  static PeerConfig config_for(ProtocolMode mode, bool sessions, std::size_t max_batch) {
    PeerConfig config{.mode = mode, .use_sessions = sessions};
    config.session.max_batch = max_batch;
    return config;
  }
};

TEST(ProtocolFuzz, EagerAndOptimisticAlwaysAgree) {
  util::Rng rng(kSweepSeed);
  int accepted = 0;
  int rejected = 0;

  for (int index = 0; index < kRounds; ++index) {
    const Round round = fuzz::draw_round(index, "fz", rng);

    const auto run = [&](ProtocolMode protocol, PushAck& ack,
                         std::vector<DeliveredObject>& delivered,
                         transport::ProtocolStats& receiver_stats,
                         transport::NetStats& net_stats) {
      Universe universe(protocol);
      fuzz::run_round(round, universe.sender, universe.receiver, ack, delivered);
      receiver_stats = universe.receiver.stats();
      net_stats = universe.net.stats();
    };

    PushAck optimistic_ack;
    PushAck eager_ack;
    std::vector<DeliveredObject> optimistic_delivered;
    std::vector<DeliveredObject> eager_delivered;
    transport::ProtocolStats optimistic_stats;
    transport::ProtocolStats eager_stats;
    transport::NetStats optimistic_net;
    transport::NetStats eager_net;
    run(ProtocolMode::Optimistic, optimistic_ack, optimistic_delivered,
        optimistic_stats, optimistic_net);
    run(ProtocolMode::Eager, eager_ack, eager_delivered, eager_stats, eager_net);

    const std::string context = "round " + std::to_string(index) + " (mode " +
                                std::to_string(static_cast<int>(round.mode)) + ")";

    // Property 1: agreement on the verdict and the matched interest.
    ASSERT_EQ(optimistic_ack.delivered, eager_ack.delivered) << context;
    if (optimistic_ack.delivered) {
      EXPECT_EQ(optimistic_ack.detail, eager_ack.detail) << context;
    }

    if (optimistic_ack.delivered) {
      ++accepted;
      ASSERT_EQ(optimistic_delivered.size(), 1u) << context;
      ASSERT_EQ(eager_delivered.size(), 1u) << context;
      // Property 2: both universes delivered identical contents — the
      // values that were sent.
      for (const auto& [field, sent] : round.values.fields) {
        fuzz::expect_same_value(optimistic_delivered.front().object->get(field), sent,
                                context + " optimistic field " + field);
        fuzz::expect_same_value(eager_delivered.front().object->get(field), sent,
                                context + " eager field " + field);
      }
    } else {
      ++rejected;
      EXPECT_TRUE(optimistic_delivered.empty()) << context;
      EXPECT_TRUE(eager_delivered.empty()) << context;
      // Property 3: the optimistic receiver rejected without downloading
      // code; the eager push hauled the assembly across anyway.
      EXPECT_EQ(optimistic_stats.code_requests, 0u) << context;
      EXPECT_EQ(optimistic_stats.objects_rejected, 1u) << context;
      EXPECT_LT(optimistic_net.bytes, eager_net.bytes) << context;
    }
  }

  // The generator must have produced a real mix of outcomes.
  EXPECT_GE(accepted, kRounds / 4) << "sweep degenerated: almost nothing conformed";
  EXPECT_GE(rejected, kRounds / 8) << "sweep degenerated: everything conformed";
}

/// Session-layer equivalence sweep: the SAME fixed-seed rounds, each run
/// through {Optimistic, Eager} x {session off, session on}. The session
/// protocol reshapes the wire (wire ids, raw payload, inline intros,
/// cached verdicts) but must not reshape the semantics: every variant
/// agrees on the verdict, the matched interest and the delivered
/// contents — and a second (warmed) push over the session pair, served
/// from the verdict cache in exactly one framed exchange, agrees with its
/// own cold push.
TEST(ProtocolFuzz, SessionModeAgreesWithColdProtocol) {
  util::Rng rng(kSweepSeed ^ 0x5E5510ULL);
  constexpr int kSessionRounds = 32;
  int accepted = 0;
  int rejected = 0;

  for (int index = 0; index < kSessionRounds; ++index) {
    const Round round = fuzz::draw_round(index, "fzq", rng);

    for (const ProtocolMode mode : {ProtocolMode::Optimistic, ProtocolMode::Eager}) {
      const std::string context =
          "round " + std::to_string(index) + " (protocol mode " +
          std::to_string(static_cast<int>(mode)) + ", interest mode " +
          std::to_string(static_cast<int>(round.mode)) + ")";

      PushAck cold_ack;
      PushAck session_ack;
      std::vector<DeliveredObject> cold_delivered;
      std::vector<DeliveredObject> session_delivered;

      Universe cold(mode, /*sessions=*/false);
      fuzz::run_round(round, cold.sender, cold.receiver, cold_ack, cold_delivered);
      Universe warm(mode, /*sessions=*/true);
      fuzz::run_round(round, warm.sender, warm.receiver, session_ack, session_delivered);

      // Same verdict, same matched interest (or rejection reason).
      ASSERT_EQ(session_ack.delivered, cold_ack.delivered) << context;
      EXPECT_EQ(session_ack.detail, cold_ack.detail) << context;
      ASSERT_EQ(session_delivered.size(), cold_delivered.size()) << context;
      if (session_ack.delivered) {
        ASSERT_EQ(session_delivered.size(), 1u) << context;
        EXPECT_EQ(session_delivered.front().interest_type,
                  cold_delivered.front().interest_type)
            << context;
        for (const auto& [field, sent] : round.values.fields) {
          fuzz::expect_same_value(session_delivered.front().object->get(field), sent,
                                  context + " session field " + field);
        }
      }

      // The session protocol really ran (no silent fallback to ObjectPush).
      EXPECT_EQ(warm.receiver.stats().session_pushes, 1u) << context;
      EXPECT_EQ(cold.receiver.stats().session_pushes, 0u) << context;

      // Warmed repeat: one more push over the live session must reproduce
      // the cold verdict — now served from the cached one.
      const std::uint64_t messages_before = warm.net.stats().messages.get();
      const PushAck warm_ack = fuzz::push_again(round, warm.sender, warm.receiver);
      ASSERT_EQ(warm_ack.delivered, session_ack.delivered) << context;
      EXPECT_EQ(warm_ack.detail, session_ack.detail) << context;
      EXPECT_EQ(warm.receiver.stats().session_verdict_hits, 1u) << context;
      // The warmed push is ONE framed exchange: request + ack, nothing else.
      EXPECT_EQ(warm.net.stats().messages.get() - messages_before, 2u) << context;
      if (warm_ack.delivered) {
        ++accepted;
        const auto twice = warm.receiver.delivered_snapshot();
        ASSERT_EQ(twice.size(), 2u) << context;
        for (const auto& [field, sent] : round.values.fields) {
          fuzz::expect_same_value(twice.back().object->get(field), sent,
                                  context + " warmed field " + field);
        }
      } else {
        ++rejected;
        EXPECT_TRUE(warm.receiver.delivered_snapshot().empty()) << context;
      }
    }
  }

  EXPECT_GE(accepted, kSessionRounds / 4) << "sweep degenerated: almost nothing conformed";
  EXPECT_GE(rejected, kSessionRounds / 8) << "sweep degenerated: everything conformed";
}

/// Batched-session equivalence sweep: the SAME style of fixed-seed rounds,
/// but the session sender queues pushes in a batching window (max_batch =
/// 3) so the round's three pushes cross as ONE SessionBatch frame — the
/// first entry cold (inline intros), the rest served from the verdict
/// cache the first entry just warmed. Every entry's verdict, matched
/// interest and delivered contents must agree with the cold (non-session)
/// protocol's verdict for the identical push.
TEST(ProtocolFuzz, BatchedSessionAgreesWithColdProtocol) {
  util::Rng rng(kSweepSeed ^ 0xBA7C4ULL);
  constexpr int kBatchRounds = 24;
  constexpr std::size_t kBatch = 3;
  int accepted = 0;
  int rejected = 0;

  for (int index = 0; index < kBatchRounds; ++index) {
    const Round round = fuzz::draw_round(index, "fzb", rng);

    for (const ProtocolMode mode : {ProtocolMode::Optimistic, ProtocolMode::Eager}) {
      const std::string context =
          "round " + std::to_string(index) + " (protocol mode " +
          std::to_string(static_cast<int>(mode)) + ", interest mode " +
          std::to_string(static_cast<int>(round.mode)) + ")";

      PushAck cold_ack;
      std::vector<DeliveredObject> cold_delivered;
      Universe cold(mode, /*sessions=*/false);
      fuzz::run_round(round, cold.sender, cold.receiver, cold_ack, cold_delivered);

      Universe batched(mode, /*sessions=*/true, kBatch);
      batched.sender.host_assembly(round.sender_code);
      batched.receiver.host_assembly(round.receiver_code);
      if (round.decoy_code) {
        batched.receiver.host_assembly(round.decoy_code);
        batched.receiver.add_interest(round.decoy_ns + ".Thing");
      }
      batched.receiver.add_interest(round.receiver_ns + ".Thing");

      std::vector<std::future<PushAck>> futures;
      for (std::size_t i = 0; i < kBatch; ++i) {
        futures.push_back(batched.sender.send_object_async(
            "receiver",
            fuzz::make_object(batched.sender, round.sender_ns, round.schema,
                              round.values)));
      }
      for (auto& future : futures) {
        const PushAck ack = future.get();
        ASSERT_EQ(ack.delivered, cold_ack.delivered) << context;
        EXPECT_EQ(ack.detail, cold_ack.detail) << context;
      }

      // The window really closed as one SessionBatch frame, first entry
      // cold, the remaining two from the verdict cache it warmed.
      EXPECT_EQ(batched.receiver.stats().session_batches, 1u) << context;
      EXPECT_EQ(batched.receiver.stats().session_pushes, kBatch) << context;
      EXPECT_EQ(batched.receiver.stats().session_verdict_hits, kBatch - 1) << context;
      EXPECT_EQ(batched.receiver.stats().session_resets, 0u) << context;

      const auto delivered = batched.receiver.delivered_snapshot();
      if (cold_ack.delivered) {
        ++accepted;
        ASSERT_EQ(delivered.size(), kBatch) << context;
        for (const auto& entry : delivered) {
          EXPECT_EQ(entry.interest_type, cold_delivered.front().interest_type) << context;
          for (const auto& [field, sent] : round.values.fields) {
            fuzz::expect_same_value(entry.object->get(field), sent,
                                    context + " batched field " + field);
          }
        }
      } else {
        ++rejected;
        EXPECT_TRUE(delivered.empty()) << context;
        EXPECT_EQ(batched.receiver.stats().code_requests, cold.receiver.stats().code_requests)
            << context;
      }
    }
  }

  EXPECT_GE(accepted, kBatchRounds / 4) << "sweep degenerated: almost nothing conformed";
  EXPECT_GE(rejected, kBatchRounds / 8) << "sweep degenerated: everything conformed";
}

/// Conformant deliveries answer getters with the sent values through the
/// adapted (proxy) view — a behavioral spot check on top of the agreement
/// sweep, on a guaranteed-conformant copy-mode round.
TEST(ProtocolFuzz, AdaptedViewAnswersGettersWithSentValues) {
  util::Rng rng(kSweepSeed ^ 0xABCDEF);
  for (int round = 0; round < 8; ++round) {
    const std::string sns = "fzvs" + std::to_string(round);
    const std::string rns = "fzvr" + std::to_string(round);
    const fuzz::Schema schema = fuzz::random_schema(rng);
    const auto sender_code = fuzz::sender_assembly(sns, schema);
    const auto receiver_code =
        fuzz::receiver_assembly(rns, schema, InterestMode::Copy, rng);

    Universe universe(ProtocolMode::Optimistic);
    universe.sender.host_assembly(sender_code);
    universe.receiver.host_assembly(receiver_code);
    universe.receiver.add_interest(rns + ".Thing");
    const fuzz::ValuePlan values = fuzz::random_values(schema, rng);
    const auto object = fuzz::make_object(universe.sender, sns, schema, values);
    const PushAck ack = universe.sender.send_object("receiver", object);
    ASSERT_TRUE(ack.delivered) << "copy-mode round " << round << " must conform";

    const auto delivered = universe.receiver.delivered_snapshot();
    ASSERT_EQ(delivered.size(), 1u);
    for (const auto& [field, sent] : values.fields) {
      fuzz::expect_same_value(
          universe.receiver.proxies().invoke(delivered.front().adapted, "get_" + field, {}),
          sent, "getter get_" + field + " in round " + std::to_string(round));
    }
  }
}

}  // namespace
}  // namespace pti
