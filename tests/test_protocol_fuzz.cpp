// Property-style randomized protocol sweep.
//
// From one fixed RNG seed, every round generates a random type graph (a
// sender type with random scalar fields/getters and, sometimes, a nested
// child type) plus a random interest set for the receiver (a faithful
// copy, a subset, or a mutation of the sender's shape — and occasionally
// unrelated decoys). The same push then runs through two fresh universes:
// one pair of Optimistic peers (the paper's protocol) and one pair of
// Eager peers (everything ships up front). Generators live in
// tests/protocol_fuzz_common.hpp, shared with the SocketTransport
// equivalence sweep in test_socket_transport.cpp.
//
// Properties asserted per round:
//   * the two protocols agree on accept/reject, and on WHICH interest
//     matched (delivery is a function of the conformance relation, not of
//     how metadata travelled);
//   * when delivered, both universes hand the application an object with
//     identical field contents equal to what was sent, and the adapted
//     view answers getters with the sent values;
//   * when rejected, the optimistic receiver never downloaded code (the
//     protocol's central saving) while the eager sender paid for it
//     anyway.
//
// The sweep also checks it exercised both outcomes (a generator that only
// ever accepts or only ever rejects tests nothing).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "protocol_fuzz_common.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "util/rng.hpp"

namespace pti {
namespace {

using fuzz::InterestMode;
using fuzz::Round;
using transport::AssemblyHub;
using transport::DeliveredObject;
using transport::Peer;
using transport::PeerConfig;
using transport::ProtocolMode;
using transport::PushAck;
using transport::SimNetwork;

constexpr std::uint64_t kSweepSeed = 0xF00DD00DULL;
constexpr int kRounds = 48;

/// One universe: a fresh network, hub and sender/receiver peer pair.
struct Universe {
  SimNetwork net;
  std::shared_ptr<AssemblyHub> hub = std::make_shared<AssemblyHub>();
  Peer sender;
  Peer receiver;

  explicit Universe(ProtocolMode mode)
      : sender("sender", net, hub, PeerConfig{.mode = mode}),
        receiver("receiver", net, hub, PeerConfig{.mode = mode}) {}
};

TEST(ProtocolFuzz, EagerAndOptimisticAlwaysAgree) {
  util::Rng rng(kSweepSeed);
  int accepted = 0;
  int rejected = 0;

  for (int index = 0; index < kRounds; ++index) {
    const Round round = fuzz::draw_round(index, "fz", rng);

    const auto run = [&](ProtocolMode protocol, PushAck& ack,
                         std::vector<DeliveredObject>& delivered,
                         transport::ProtocolStats& receiver_stats,
                         transport::NetStats& net_stats) {
      Universe universe(protocol);
      fuzz::run_round(round, universe.sender, universe.receiver, ack, delivered);
      receiver_stats = universe.receiver.stats();
      net_stats = universe.net.stats();
    };

    PushAck optimistic_ack;
    PushAck eager_ack;
    std::vector<DeliveredObject> optimistic_delivered;
    std::vector<DeliveredObject> eager_delivered;
    transport::ProtocolStats optimistic_stats;
    transport::ProtocolStats eager_stats;
    transport::NetStats optimistic_net;
    transport::NetStats eager_net;
    run(ProtocolMode::Optimistic, optimistic_ack, optimistic_delivered,
        optimistic_stats, optimistic_net);
    run(ProtocolMode::Eager, eager_ack, eager_delivered, eager_stats, eager_net);

    const std::string context = "round " + std::to_string(index) + " (mode " +
                                std::to_string(static_cast<int>(round.mode)) + ")";

    // Property 1: agreement on the verdict and the matched interest.
    ASSERT_EQ(optimistic_ack.delivered, eager_ack.delivered) << context;
    if (optimistic_ack.delivered) {
      EXPECT_EQ(optimistic_ack.detail, eager_ack.detail) << context;
    }

    if (optimistic_ack.delivered) {
      ++accepted;
      ASSERT_EQ(optimistic_delivered.size(), 1u) << context;
      ASSERT_EQ(eager_delivered.size(), 1u) << context;
      // Property 2: both universes delivered identical contents — the
      // values that were sent.
      for (const auto& [field, sent] : round.values.fields) {
        fuzz::expect_same_value(optimistic_delivered.front().object->get(field), sent,
                                context + " optimistic field " + field);
        fuzz::expect_same_value(eager_delivered.front().object->get(field), sent,
                                context + " eager field " + field);
      }
    } else {
      ++rejected;
      EXPECT_TRUE(optimistic_delivered.empty()) << context;
      EXPECT_TRUE(eager_delivered.empty()) << context;
      // Property 3: the optimistic receiver rejected without downloading
      // code; the eager push hauled the assembly across anyway.
      EXPECT_EQ(optimistic_stats.code_requests, 0u) << context;
      EXPECT_EQ(optimistic_stats.objects_rejected, 1u) << context;
      EXPECT_LT(optimistic_net.bytes, eager_net.bytes) << context;
    }
  }

  // The generator must have produced a real mix of outcomes.
  EXPECT_GE(accepted, kRounds / 4) << "sweep degenerated: almost nothing conformed";
  EXPECT_GE(rejected, kRounds / 8) << "sweep degenerated: everything conformed";
}

/// Conformant deliveries answer getters with the sent values through the
/// adapted (proxy) view — a behavioral spot check on top of the agreement
/// sweep, on a guaranteed-conformant copy-mode round.
TEST(ProtocolFuzz, AdaptedViewAnswersGettersWithSentValues) {
  util::Rng rng(kSweepSeed ^ 0xABCDEF);
  for (int round = 0; round < 8; ++round) {
    const std::string sns = "fzvs" + std::to_string(round);
    const std::string rns = "fzvr" + std::to_string(round);
    const fuzz::Schema schema = fuzz::random_schema(rng);
    const auto sender_code = fuzz::sender_assembly(sns, schema);
    const auto receiver_code =
        fuzz::receiver_assembly(rns, schema, InterestMode::Copy, rng);

    Universe universe(ProtocolMode::Optimistic);
    universe.sender.host_assembly(sender_code);
    universe.receiver.host_assembly(receiver_code);
    universe.receiver.add_interest(rns + ".Thing");
    const fuzz::ValuePlan values = fuzz::random_values(schema, rng);
    const auto object = fuzz::make_object(universe.sender, sns, schema, values);
    const PushAck ack = universe.sender.send_object("receiver", object);
    ASSERT_TRUE(ack.delivered) << "copy-mode round " << round << " must conform";

    const auto delivered = universe.receiver.delivered_snapshot();
    ASSERT_EQ(delivered.size(), 1u);
    for (const auto& [field, sent] : values.fields) {
      fuzz::expect_same_value(
          universe.receiver.proxies().invoke(delivered.front().adapted, "get_" + field, {}),
          sent, "getter get_" + field + " in round " + std::to_string(round));
    }
  }
}

}  // namespace
}  // namespace pti
