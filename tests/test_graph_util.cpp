// Tests for graph utilities (deep clone, graph measurement) and the
// wildcard-interest end-to-end flow they enable alongside.
#include <gtest/gtest.h>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/graph_util.hpp"

namespace pti::reflect {
namespace {

TEST(GraphUtil, DeepCloneCopiesScalarsAndObjects) {
  Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  const Value args[] = {Value("Ada")};
  auto person = domain.instantiate("teamA.Person", args);
  const Value addr[] = {Value("Main"), Value(std::int32_t{7})};
  person->set("address", Value(domain.instantiate("teamA.Address", addr)));

  auto copy = deep_clone(person);
  ASSERT_NE(copy, nullptr);
  EXPECT_NE(copy.get(), person.get());
  EXPECT_TRUE(copy->same_state(*person) == false)  // address differs by identity
      << "object-valued fields must be fresh objects";
  EXPECT_EQ(copy->get("name").as_string(), "Ada");
  EXPECT_NE(copy->get("address").as_object().get(),
            person->get("address").as_object().get());
  EXPECT_EQ(copy->get("address").as_object()->get("street").as_string(), "Main");

  // Pass-by-value semantics: mutating the copy leaves the original alone.
  copy->set("name", Value("Eve"));
  EXPECT_EQ(person->get("name").as_string(), "Ada");
}

TEST(GraphUtil, DeepClonePreservesSharingAndCycles) {
  auto a = DynObject::make("t.N", util::Guid{});
  auto b = DynObject::make("t.N", util::Guid{});
  a->set("next", Value(b));
  b->set("next", Value(a));             // cycle
  a->set("also", Value(b));             // sharing

  auto copy = deep_clone(a);
  const auto& cb = copy->get("next").as_object();
  EXPECT_EQ(cb->get("next").as_object().get(), copy.get());         // cycle closed
  EXPECT_EQ(copy->get("also").as_object().get(), cb.get());         // sharing kept
  EXPECT_NE(cb.get(), b.get());                                     // fresh objects
}

TEST(GraphUtil, DeepCloneOfValuesAndLists) {
  EXPECT_EQ(deep_clone(Value(std::int32_t{5})), Value(std::int32_t{5}));
  EXPECT_EQ(deep_clone(Value()).kind(), ValueKind::Null);
  EXPECT_EQ(deep_clone(std::shared_ptr<DynObject>{}), nullptr);

  auto obj = DynObject::make("t.T", util::Guid{});
  const Value list(Value::List{Value(obj), Value(obj)});
  const Value copy = deep_clone(list);
  const auto& items = copy.as_list();
  EXPECT_EQ(items[0].as_object().get(), items[1].as_object().get());  // shared
  EXPECT_NE(items[0].as_object().get(), obj.get());
}

TEST(GraphUtil, MeasureGraphShapes) {
  const GraphStats scalar = measure_graph(Value(std::int32_t{1}));
  EXPECT_EQ(scalar.objects, 0u);
  EXPECT_FALSE(scalar.has_cycles);

  auto parent = DynObject::make("t.P", util::Guid{});
  auto child = DynObject::make("t.C", util::Guid{});
  child->set("x", Value(std::int32_t{1}));
  parent->set("l", Value(child));
  parent->set("r", Value(child));  // shared, counted once
  const GraphStats dag = measure_graph(Value(parent));
  EXPECT_EQ(dag.objects, 2u);
  EXPECT_EQ(dag.max_depth, 2u);
  EXPECT_FALSE(dag.has_cycles);

  auto loop = DynObject::make("t.L", util::Guid{});
  loop->set("self", Value(loop));
  EXPECT_TRUE(measure_graph(Value(loop)).has_cycles);
}

// --- wildcard interests end-to-end ------------------------------------------
// The paper: "in order to be more general, wildcards could be allowed".
// With allow_wildcards on, a pattern-named declared type acts as an
// interest matching every conformant type whose name fits the pattern.

TEST(WildcardInterest, PatternSubscriptionMatchesAcrossTeams) {
  core::InteropSystem system;
  transport::PeerConfig config;
  config.conformance.allow_wildcards = true;
  auto& alice = system.create_runtime("alice");
  auto& bob = system.create_runtime("bob", config);
  alice.publish_assembly(fixtures::team_a_people());
  alice.publish_assembly(fixtures::bank_accounts());

  // bob declares a *pattern* interest: any "Pers*"-named type with a
  // getName-shaped accessor.
  TypeDescription pattern("bobns", "Pers*", TypeKind::Class);
  pattern.add_method({"getName", "string", {}, Visibility::Public, false});
  bob.domain().registry().add(pattern);
  int seen = 0;
  bob.subscribe("bobns.Pers*", [&](const transport::DeliveredObject&) { ++seen; });

  const Value args[] = {Value("Ada")};
  EXPECT_TRUE(alice.send("bob", alice.make("teamA.Person", args)).delivered);
  const Value owner[] = {Value("Eve")};
  EXPECT_FALSE(alice.send("bob", alice.make("bank.Account", owner)).delivered);
  EXPECT_EQ(seen, 1);
}

}  // namespace
}  // namespace pti::reflect
