// Tests for the behavioral-conformance probe (conform/behavioral) and the
// diagnostics renderer (conform/explain).
#include <gtest/gtest.h>

#include "conform/behavioral.hpp"
#include "conform/conform_error.hpp"
#include "conform/conformance_checker.hpp"
#include "conform/explain.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"

namespace pti::conform {
namespace {

using reflect::Domain;
using reflect::TypeDescription;

class BehavioralTest : public ::testing::Test {
 protected:
  BehavioralTest() : checker_(domain_.registry()) {
    domain_.load_assembly(fixtures::team_a_people());
    domain_.load_assembly(fixtures::team_b_people());
    domain_.load_assembly(fixtures::team_evil_people());
    domain_.load_assembly(fixtures::planner_meetings());
    domain_.load_assembly(fixtures::agenda_meetings());
  }

  const TypeDescription& type(std::string_view name) {
    return *domain_.registry().find(name);
  }

  Domain domain_;
  ConformanceChecker checker_;
};

TEST_F(BehavioralTest, HonestImplementationsAgree) {
  const CheckResult r = checker_.check(type("teamB.Person"), type("teamA.Person"));
  ASSERT_TRUE(r.conformant);
  const BehavioralReport report = probe_behavioral_conformance(
      domain_, type("teamB.Person"), type("teamA.Person"), r.plan);
  EXPECT_TRUE(report.equivalent) << report.counterexample;
  EXPECT_TRUE(report.exercised_anything());
  // getName/setName/greet are primitive-signature; getAddress/setAddress
  // are skipped.
  EXPECT_EQ(report.methods_testable, 3u);
  EXPECT_EQ(report.methods_skipped, 2u);
  EXPECT_GT(report.calls_made, 0u);
}

TEST_F(BehavioralTest, StructurallyPerfectImpostorIsCaught) {
  // evilC.Person passes every structural rule...
  const CheckResult r = checker_.check(type("evilC.Person"), type("teamA.Person"));
  ASSERT_TRUE(r.conformant);
  EXPECT_EQ(r.plan.kind(), ConformanceKind::ImplicitStructural);
  // ...but the differential probe finds the divergence.
  const BehavioralReport report = probe_behavioral_conformance(
      domain_, type("evilC.Person"), type("teamA.Person"), r.plan);
  EXPECT_FALSE(report.equivalent);
  EXPECT_FALSE(report.counterexample.empty());
  EXPECT_NE(report.counterexample.find("evilC.Person"), std::string::npos)
      << report.counterexample;
}

TEST_F(BehavioralTest, PermutedConstructorsStartFromTheSameState) {
  const CheckResult r = checker_.check(type("agenda.Meeting"), type("planner.Meeting"));
  ASSERT_TRUE(r.conformant);
  const BehavioralReport report = probe_behavioral_conformance(
      domain_, type("agenda.Meeting"), type("planner.Meeting"), r.plan);
  EXPECT_TRUE(report.equivalent) << report.counterexample;
  EXPECT_TRUE(report.exercised_anything());
}

TEST_F(BehavioralTest, DeterministicUnderSeed) {
  const CheckResult r = checker_.check(type("evilC.Person"), type("teamA.Person"));
  BehavioralOptions options;
  options.seed = 1234;
  const BehavioralReport a = probe_behavioral_conformance(
      domain_, type("evilC.Person"), type("teamA.Person"), r.plan, options);
  const BehavioralReport b = probe_behavioral_conformance(
      domain_, type("evilC.Person"), type("teamA.Person"), r.plan, options);
  EXPECT_EQ(a.equivalent, b.equivalent);
  EXPECT_EQ(a.counterexample, b.counterexample);
  EXPECT_EQ(a.calls_made, b.calls_made);
}

TEST_F(BehavioralTest, RequiresLoadedTypes) {
  Domain empty;
  empty.load_assembly(fixtures::team_a_people());
  ConformanceChecker checker(empty.registry());
  // teamB types are not loaded in `empty`.
  Domain full;
  full.load_assembly(fixtures::team_a_people());
  full.load_assembly(fixtures::team_b_people());
  ConformanceChecker full_checker(full.registry());
  const CheckResult r = full_checker.check(*full.registry().find("teamB.Person"),
                                           *full.registry().find("teamA.Person"));
  EXPECT_THROW((void)probe_behavioral_conformance(empty,
                                                  *full.registry().find("teamB.Person"),
                                                  *full.registry().find("teamA.Person"),
                                                  r.plan),
               ConformError);
}

TEST_F(BehavioralTest, NothingTestableIsReportedAsSuch) {
  // listsA/listsB: every method touches object types except getValue/sum —
  // use a pair with only object signatures: build one inline.
  Domain d;
  d.load_assembly(fixtures::lists_a());
  d.load_assembly(fixtures::lists_b());
  ConformanceChecker checker(d.registry());
  const CheckResult r =
      checker.check(*d.registry().find("listsB.Node"), *d.registry().find("listsA.Node"));
  ASSERT_TRUE(r.conformant);
  const BehavioralReport report = probe_behavioral_conformance(
      d, *d.registry().find("listsB.Node"), *d.registry().find("listsA.Node"), r.plan);
  // getNodeValue/sum are primitive-testable; getNext/setNext skipped.
  EXPECT_EQ(report.methods_skipped, 2u);
  EXPECT_TRUE(report.equivalent) << report.counterexample;
}

// --- explain / render_plan -------------------------------------------------

TEST_F(BehavioralTest, ExplainRendersMappingsAndPermutations) {
  const CheckResult r = checker_.check(type("agenda.Meeting"), type("planner.Meeting"));
  const std::string text = explain(r);
  EXPECT_NE(text.find("CONFORMANT"), std::string::npos);
  EXPECT_NE(text.find("implicit-structural"), std::string::npos);
  EXPECT_NE(text.find("getMeetingStart/0 -> getStart"), std::string::npos) << text;
  EXPECT_NE(text.find("[args: 0<-1 1<-0]"), std::string::npos) << text;
  EXPECT_NE(text.find("field  start"), std::string::npos) << text;
}

TEST_F(BehavioralTest, ExplainRendersFailures) {
  domain_.load_assembly(fixtures::bank_accounts());
  const CheckResult r = checker_.check(type("bank.Account"), type("teamA.Person"));
  const std::string text = explain(r);
  EXPECT_NE(text.find("NOT CONFORMANT"), std::string::npos);
  EXPECT_NE(text.find("failure: name aspect"), std::string::npos) << text;
}

TEST_F(BehavioralTest, ExplainRendersPassthroughAndMissing) {
  const CheckResult identity =
      checker_.check(type("teamA.Person"), type("teamA.Person"));
  EXPECT_NE(explain(identity).find("passthrough"), std::string::npos);

  Domain d;
  d.registry().add([] {
    TypeDescription t("r", "Holder", reflect::TypeKind::Class);
    t.add_field({"w", "r.Widget", reflect::Visibility::Private, false});
    return t;
  }());
  d.registry().add([] {
    TypeDescription t("l", "Holder", reflect::TypeKind::Class);
    t.add_field({"w", "l.Widget", reflect::Visibility::Private, false});
    return t;
  }());
  d.registry().add(TypeDescription("l", "Widget", reflect::TypeKind::Class));
  ConformanceChecker checker(d.registry());
  const CheckResult r =
      checker.check(*d.registry().find("r.Holder"), *d.registry().find("l.Holder"));
  EXPECT_NE(explain(r).find("missing description: r.Widget"), std::string::npos);
}

}  // namespace
}  // namespace pti::conform
