// serial::FrameCodec — the wire frame protocol.
//
// Two halves:
//   * round-trip: every Message payload variant survives encode→decode
//     byte-exactly (canonical encoding makes re-encode a strong equality
//     oracle), including empty strings, embedded NULs and binary blobs;
//   * hostile input: a fixed-seed corpus of truncated, bit-flipped,
//     wrong-version, wrong-kind, oversized and trailing-junk frames must
//     each either decode to a valid Message (a flip that happens to keep
//     the frame well-formed) or throw serial::FrameError with a sensible
//     FrameFault — never crash, never throw anything else, never allocate
//     proportionally to a lying length/count field. The same corpus runs
//     under the TSan and ASan presets in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/expected.hpp"
#include "serial/frame_codec.hpp"
#include "transport/message.hpp"
#include "util/rng.hpp"

namespace pti {
namespace {

using serial::FrameCodec;
using serial::FrameError;
using serial::FrameFault;
using serial::FrameLimits;
using transport::Message;

/// One representative message per payload variant, with awkward contents:
/// empty strings, embedded NULs, binary payload bytes, large counts.
std::vector<Message> sample_messages() {
  std::vector<Message> samples;

  transport::ObjectPush push;
  push.envelope = {0x00, 0xFF, 0x7F, 0x80, 'P', 'T', 'I', 'F'};
  push.eager_descriptions_xml = {"<type name=\"teamA.Person\"/>", ""};
  push.eager_assembly_names = {"teamA.people", std::string("team\0B", 6)};
  push.eager_assembly_bytes = 123456789;
  samples.push_back({"alice", "bob", std::move(push)});

  samples.push_back({"bob", "alice", transport::PushAck{true, "teamB.Person"}});
  samples.push_back({"", "bob", transport::PushAck{false, ""}});

  samples.push_back(
      {"alice", "bob", transport::TypeInfoRequest{{"teamA.Person", "teamA.Address", ""}}});
  samples.push_back({"bob", "alice",
                     transport::TypeInfoResponse{{"<desc/>", std::string(300, 'x')},
                                                 {"teamC.Unknown"}}});
  samples.push_back({"alice", "bob", transport::CodeRequest{"teamA.people"}});
  samples.push_back({"bob", "alice", transport::CodeResponse{"teamA.people", true, 4096}});

  transport::InvokeRequest invoke;
  invoke.object_id = 0xDEADBEEFCAFEULL;
  invoke.method_name = "get_name";
  invoke.args_envelope = {1, 2, 3, 0, 255};
  samples.push_back({"alice", "bob", std::move(invoke)});

  samples.push_back(
      {"bob", "alice", transport::InvokeResponse{true, {9, 8, 7}, ""}});
  samples.push_back(
      {"bob", "alice", transport::InvokeResponse{false, {}, "no such method"}});
  samples.push_back({"bob", "alice", transport::ErrorReply{"peer 'bob' cannot handle it"}});

  transport::SessionPush session;
  session.token = 0xFEEDFACE12345ULL;
  session.wire_types = {1, 0, 0xFFFFFFFFu};
  session.encoding = "soap-1.1";
  session.payload = {0x00, 0x01, 0xFF, 'P', 'T', 'I', 'F', 0x80};
  session.intros.push_back({7, "teamA.Person", "<type name=\"teamA.Person\"/>",
                            "teamA.people", std::string("net://alice\0x", 13)});
  session.intros.push_back({0, "", "", "", ""});
  session.intro_assembly_names = {"teamA.people"};
  session.intro_assembly_bytes = 987654321;
  samples.push_back({"alice", "bob", std::move(session)});

  samples.push_back({"bob", "alice",
                     transport::SessionAck{transport::SessionStatus::Ok, true,
                                           "teamB.Person", {}}});
  samples.push_back(
      {"bob", "alice",
       transport::SessionAck{transport::SessionStatus::Reset, false, "",
                             {0ULL, 0xFFFFFFFFFFFFFFFFULL, 0xCBF29CE484222325ULL}}});

  transport::SessionBatch batch;
  {
    transport::SessionPush warm;
    warm.token = 42;
    warm.wire_types = {3};
    warm.encoding = "soap-1.1";
    warm.payload = {0xDE, 0xAD, 0x00};
    batch.entries.push_back(std::move(warm));
    transport::SessionPush cold;
    cold.token = 42;
    cold.wire_types = {4, 0};
    cold.encoding = "";
    cold.intros.push_back({4, "teamA.Thing", "<type name=\"teamA.Thing\"/>",
                           "teamA.gen", std::string("net://x\0y", 9)});
    batch.entries.push_back(std::move(cold));
    batch.entries.push_back(transport::SessionPush{});  // degenerate empty entry
  }
  samples.push_back({"alice", "bob", std::move(batch)});

  transport::SessionBatchAck batch_ack;
  batch_ack.entries.push_back(
      {transport::SessionStatus::Ok, true, "teamB.Person", {0x1234ULL}});
  batch_ack.entries.push_back({transport::SessionStatus::Ok, false, "", {}});
  batch_ack.entries.push_back(
      {transport::SessionStatus::Reset, false, "session state lost", {7ULL, 8ULL}});
  samples.push_back({"bob", "alice", std::move(batch_ack)});
  return samples;
}

TEST(FrameCodec, RoundTripsEveryMessageKind) {
  const FrameCodec codec;
  for (const Message& original : sample_messages()) {
    const std::vector<std::uint8_t> frame = codec.encode(original);
    const Message decoded = codec.decode(frame);

    EXPECT_EQ(decoded.sender, original.sender);
    EXPECT_EQ(decoded.recipient, original.recipient);
    EXPECT_EQ(decoded.payload.index(), original.payload.index());
    EXPECT_STREQ(decoded.kind_name(), original.kind_name());
    EXPECT_EQ(decoded.wire_size(), original.wire_size());
    // Canonical encoding: re-encoding the decode must reproduce the frame
    // byte-for-byte — a full-content equality oracle for every variant.
    EXPECT_EQ(codec.encode(decoded), frame) << original.kind_name();
  }
}

TEST(FrameCodec, RoundTripPreservesFieldContents) {
  const FrameCodec codec;
  Message original{"alice", "bob",
                   transport::TypeInfoResponse{{"<a/>", "<b/>"}, {"miss1", "miss2"}}};
  const Message decoded = codec.decode(codec.encode(original));
  const auto& response = std::get<transport::TypeInfoResponse>(decoded.payload);
  EXPECT_EQ(response.descriptions_xml, (std::vector<std::string>{"<a/>", "<b/>"}));
  EXPECT_EQ(response.unknown, (std::vector<std::string>{"miss1", "miss2"}));

  transport::ObjectPush push;
  push.envelope = {0x42, 0x00, 0x99};
  push.eager_assembly_bytes = 777;
  const Message decoded_push =
      codec.decode(codec.encode(Message{"a", "b", std::move(push)}));
  const auto& out = std::get<transport::ObjectPush>(decoded_push.payload);
  EXPECT_EQ(out.envelope, (std::vector<std::uint8_t>{0x42, 0x00, 0x99}));
  EXPECT_EQ(out.eager_assembly_bytes, 777u);
}

TEST(FrameCodec, HeaderLayoutIsPinned) {
  const FrameCodec codec;
  const std::vector<std::uint8_t> frame =
      codec.encode({"a", "b", transport::CodeRequest{"asm"}});
  ASSERT_GE(frame.size(), FrameCodec::kHeaderSize);
  EXPECT_EQ(frame[0], 'P');
  EXPECT_EQ(frame[1], 'T');
  EXPECT_EQ(frame[2], 'I');
  EXPECT_EQ(frame[3], 'F');
  EXPECT_EQ(frame[4], FrameCodec::kVersion);
  EXPECT_EQ(frame[5], 4u);  // CodeRequest's variant index
  const std::uint32_t declared = static_cast<std::uint32_t>(frame[6]) |
                                 (static_cast<std::uint32_t>(frame[7]) << 8) |
                                 (static_cast<std::uint32_t>(frame[8]) << 16) |
                                 (static_cast<std::uint32_t>(frame[9]) << 24);
  EXPECT_EQ(declared, frame.size() - FrameCodec::kHeaderSize);
}

TEST(FrameCodec, StreamingHeaderThenBodyPathMatchesDecode) {
  const FrameCodec codec;
  for (const Message& original : sample_messages()) {
    const std::vector<std::uint8_t> frame = codec.encode(original);
    const auto header =
        codec.decode_header(std::span(frame).first(FrameCodec::kHeaderSize));
    EXPECT_EQ(header.version, FrameCodec::kVersion);
    EXPECT_EQ(header.body_bytes, frame.size() - FrameCodec::kHeaderSize);
    const Message decoded =
        codec.decode_body(header, std::span(frame).subspan(FrameCodec::kHeaderSize));
    EXPECT_EQ(codec.encode(decoded), frame);
  }
}

/// Expects decode to throw FrameError with the given fault.
void expect_fault(const FrameCodec& codec, std::span<const std::uint8_t> frame,
                  FrameFault fault, const std::string& context) {
  try {
    (void)codec.decode(frame);
    FAIL() << context << ": decode accepted a malformed frame";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.fault(), fault) << context << ": " << e.what();
  }
}

TEST(FrameCodec, EveryTruncationOfEveryKindIsRejected) {
  const FrameCodec codec;
  for (const Message& original : sample_messages()) {
    const std::vector<std::uint8_t> frame = codec.encode(original);
    for (std::size_t keep = 0; keep < frame.size(); ++keep) {
      const std::span prefix(frame.data(), keep);
      try {
        (void)codec.decode(prefix);
        FAIL() << original.kind_name() << " decoded from a " << keep << "-byte prefix";
      } catch (const FrameError& e) {
        // A truncated frame is reported as Truncated (header or body cut)
        // or Corrupt (the body parses short) — never anything vaguer.
        EXPECT_TRUE(e.fault() == FrameFault::Truncated || e.fault() == FrameFault::Corrupt)
            << original.kind_name() << " prefix " << keep << ": " << e.what();
      }
    }
  }
}

TEST(FrameCodec, WrongMagicVersionAndKindAreClassified) {
  const FrameCodec codec;
  const std::vector<std::uint8_t> frame =
      codec.encode({"alice", "bob", transport::PushAck{true, "ok"}});

  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[i] ^= 0xFF;
    expect_fault(codec, bad, FrameFault::BadMagic, "magic byte " + std::to_string(i));
  }
  // Version 1 frames (pre-batch wire) are rejected too: the codec is
  // strictly single-version; rollouts bump every peer together.
  for (const std::uint8_t version : {0, 1, 7, 255}) {
    std::vector<std::uint8_t> bad = frame;
    bad[4] = version;
    expect_fault(codec, bad, FrameFault::BadVersion,
                 "version " + std::to_string(version));
  }
  for (const std::uint8_t kind : {13, 14, 127, 255}) {
    std::vector<std::uint8_t> bad = frame;
    bad[5] = kind;
    expect_fault(codec, bad, FrameFault::UnknownKind, "kind " + std::to_string(kind));
  }
}

TEST(FrameCodec, OversizedAndTrailingFramesAreRejected) {
  const FrameCodec tight(FrameLimits{.max_body_bytes = 64});
  // Encode-side: a body that cannot fit the limit refuses to encode.
  transport::TypeInfoResponse big;
  big.descriptions_xml.push_back(std::string(1000, 'x'));
  try {
    (void)tight.encode({"a", "b", big});
    FAIL() << "oversized body encoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.fault(), FrameFault::Oversized);
  }

  // Decode-side: a header *declaring* a huge body is rejected before any
  // body byte is touched (no allocation proportional to the lie).
  std::vector<std::uint8_t> lying = {'P', 'T', 'I', 'F', FrameCodec::kVersion, 1,
                                     0xFF, 0xFF, 0xFF, 0x7F};
  expect_fault(tight, lying, FrameFault::Oversized, "lying length");

  // Trailing junk after a well-formed frame body.
  const FrameCodec codec;
  std::vector<std::uint8_t> padded =
      codec.encode({"alice", "bob", transport::PushAck{true, "ok"}});
  padded.push_back(0xAB);
  expect_fault(codec, padded, FrameFault::Corrupt, "trailing byte");
}

TEST(FrameCodec, ListCountBombsCannotAllocate) {
  // Hand-craft a TypeInfoRequest body whose list count claims 2^40 strings
  // but provides no bytes: must reject fast, not reserve gigabytes.
  const FrameCodec codec;
  std::vector<std::uint8_t> body;
  body.push_back(1);  // sender "a" (varint length 1)
  body.push_back('a');
  body.push_back(1);  // recipient "b"
  body.push_back('b');
  for (int i = 0; i < 5; ++i) body.push_back(0x80);  // varint 2^40 …
  body.push_back(0x10);                              // … continued
  std::vector<std::uint8_t> frame = {'P', 'T', 'I', 'F', FrameCodec::kVersion, 2};
  frame.push_back(static_cast<std::uint8_t>(body.size()));
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  frame.insert(frame.end(), body.begin(), body.end());
  expect_fault(codec, frame, FrameFault::Corrupt, "count bomb");
}

TEST(FrameCodec, ListElementCountCapIsEnforced) {
  // A sea of empty strings fits a modest byte budget while costing ~32x
  // its wire size in std::string objects — the element cap rejects it.
  const FrameCodec loose;
  transport::TypeInfoRequest request;
  for (int i = 0; i < 8; ++i) request.type_names.push_back("t" + std::to_string(i));
  const std::vector<std::uint8_t> frame = loose.encode({"a", "b", request});

  const FrameCodec capped(FrameLimits{.max_list_elements = 4});
  expect_fault(capped, frame, FrameFault::Oversized, "list element cap");
  // At or under the cap, the same codec decodes fine.
  const FrameCodec roomy(FrameLimits{.max_list_elements = 8});
  EXPECT_EQ(roomy.encode(roomy.decode(frame)), frame);

  // Encode-side symmetry: a list every conforming peer is guaranteed to
  // reject refuses to encode in the first place — fail fast locally, not
  // as a remote fault after crossing the wire.
  try {
    (void)capped.encode({"a", "b", request});
    FAIL() << "over-cap list encoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.fault(), FrameFault::Oversized);
  }
}

/// Frames a hand-crafted body under the given kind index.
std::vector<std::uint8_t> frame_body(std::uint8_t kind,
                                     const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> frame = {'P', 'T', 'I', 'F', FrameCodec::kVersion, kind};
  frame.push_back(static_cast<std::uint8_t>(body.size()));
  frame.push_back(static_cast<std::uint8_t>(body.size() >> 8));
  frame.push_back(0);
  frame.push_back(0);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

TEST(FrameCodec, BatchEntryCountBombsCannotAllocate) {
  // SessionBatch (kind 11) and SessionBatchAck (kind 12) bodies whose
  // entry count claims 2^40 entries with no bytes behind it: the honesty
  // check (one byte minimum per entry) must fire before any reserve.
  const FrameCodec codec;
  std::vector<std::uint8_t> body;
  body.push_back(1);  // sender "a"
  body.push_back('a');
  body.push_back(1);  // recipient "b"
  body.push_back('b');
  for (int i = 0; i < 5; ++i) body.push_back(0x80);  // varint 2^40 …
  body.push_back(0x10);                              // … continued
  expect_fault(codec, frame_body(11, body), FrameFault::Corrupt, "batch count bomb");
  expect_fault(codec, frame_body(12, body), FrameFault::Corrupt, "batch ack count bomb");
}

TEST(FrameCodec, AdvertisedHashCountBombCannotAllocate) {
  // A SessionAck (kind 10) whose advertised-hash count lies: status Ok,
  // not delivered, empty detail, then a 2^40 hash count and no hashes.
  const FrameCodec codec;
  std::vector<std::uint8_t> body;
  body.push_back(1);  // sender "a"
  body.push_back('a');
  body.push_back(1);  // recipient "b"
  body.push_back('b');
  body.push_back(0);  // status = Ok
  body.push_back(0);  // delivered = false
  body.push_back(0);  // detail: empty string
  for (int i = 0; i < 5; ++i) body.push_back(0x80);  // varint 2^40 …
  body.push_back(0x10);                              // … continued
  expect_fault(codec, frame_body(10, body), FrameFault::Corrupt, "hash count bomb");
}

TEST(FrameCodec, BatchEntryAndHashSetCapsAreEnforced) {
  // Allocation is bounded BEFORE body bytes: entry lists and advertised
  // hash sets above max_list_elements classify as Oversized on decode and
  // refuse to encode in the first place.
  const FrameCodec loose;
  transport::SessionBatch batch;
  for (int i = 0; i < 8; ++i) {
    transport::SessionPush entry;
    entry.token = static_cast<std::uint64_t>(i);
    batch.entries.push_back(std::move(entry));
  }
  const std::vector<std::uint8_t> frame = loose.encode({"a", "b", batch});
  const FrameCodec capped(FrameLimits{.max_list_elements = 4});
  expect_fault(capped, frame, FrameFault::Oversized, "batch entry cap");
  try {
    (void)capped.encode({"a", "b", batch});
    FAIL() << "over-cap batch encoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.fault(), FrameFault::Oversized);
  }
  const FrameCodec roomy(FrameLimits{.max_list_elements = 8});
  EXPECT_EQ(roomy.encode(roomy.decode(frame)), frame);

  transport::SessionAck ack{transport::SessionStatus::Ok, true, "", {}};
  for (std::uint64_t h = 0; h < 8; ++h) ack.known_desc_hashes.push_back(h * 97);
  const std::vector<std::uint8_t> ack_frame = loose.encode({"a", "b", ack});
  expect_fault(capped, ack_frame, FrameFault::Oversized, "hash set cap");
  try {
    (void)capped.encode({"a", "b", ack});
    FAIL() << "over-cap hash set encoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.fault(), FrameFault::Oversized);
  }
  EXPECT_EQ(roomy.encode(roomy.decode(ack_frame)), ack_frame);
}

TEST(FrameCodec, FixedSeedBitFlipCorpusNeverCrashes) {
  const FrameCodec codec;
  util::Rng rng(0xBADC0FFEEULL);
  int rejected = 0;
  int survived = 0;
  for (const Message& original : sample_messages()) {
    const std::vector<std::uint8_t> frame = codec.encode(original);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> mutated = frame;
      // 1-3 random bit flips anywhere in the frame.
      const int flips = 1 + static_cast<int>(rng.next_below(3));
      for (int f = 0; f < flips; ++f) {
        const std::size_t byte = rng.next_below(mutated.size());
        mutated[static_cast<std::size_t>(byte)] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      try {
        const Message decoded = codec.decode(mutated);
        // A flip that kept the frame well-formed must yield a message the
        // codec can re-encode (decode never fabricates unencodable state;
        // the re-encode may be shorter when a flip produced a redundant
        // varint spelling, so only re-encodability is asserted).
        EXPECT_FALSE(codec.encode(decoded).empty());
        ++survived;
      } catch (const FrameError&) {
        ++rejected;  // classified rejection is the expected outcome
      }
      // Anything else (std::bad_alloc, segfault, foreign exception types)
      // escapes the try and fails the test run loudly.
    }
  }
  // The corpus must actually exercise the rejection paths.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(survived, 0);
}

TEST(FrameCodec, FrameErrorsClassifyAsSerialization) {
  const FrameCodec codec;
  const std::vector<std::uint8_t> garbage = {'n', 'o', 'p', 'e', 0, 0, 0, 0, 0, 0};
  try {
    (void)codec.decode(garbage);
    FAIL() << "garbage decoded";
  } catch (...) {
    const core::Error error = core::Error::from_current_exception();
    EXPECT_EQ(error.code, core::ErrorCode::Serialization);
    EXPECT_NE(error.message.find("bad-magic"), std::string::npos) << error.message;
  }
}

}  // namespace
}  // namespace pti
