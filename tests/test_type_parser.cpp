// Tests for the textual type-declaration language (reflect/type_parser).
#include <gtest/gtest.h>

#include "conform/conformance_checker.hpp"
#include "reflect/reflect_error.hpp"
#include "reflect/type_parser.hpp"
#include "reflect/type_registry.hpp"

namespace pti::reflect {
namespace {

constexpr const char* kPersonDecl = R"(
// Team A's view of the Person module.
namespace teamA;

interface INamed {
  string getName();
}

class Person : object implements INamed {
  private string name;
  private Address address;
  Person(string name);
  string getName();
  void setName(string name);
  Address getAddress();
}

class Address {
  private string street;
  private int32 zip;
  Address(string street, int32 zip);
  string getStreet();
  int32 getZip();
}
)";

TEST(TypeParser, ParsesTheFullExample) {
  const std::vector<TypeDescription> types = parse_type_declarations(kPersonDecl);
  ASSERT_EQ(types.size(), 3u);

  const TypeDescription& inamed = types[0];
  EXPECT_EQ(inamed.qualified_name(), "teamA.INamed");
  EXPECT_EQ(inamed.kind(), TypeKind::Interface);
  EXPECT_TRUE(inamed.superclass().empty());
  ASSERT_EQ(inamed.methods().size(), 1u);
  EXPECT_EQ(inamed.methods()[0].signature_string(), "getName()->string");

  const TypeDescription& person = types[1];
  EXPECT_EQ(person.qualified_name(), "teamA.Person");
  EXPECT_EQ(person.superclass(), "object");
  ASSERT_EQ(person.interfaces().size(), 1u);
  EXPECT_EQ(person.interfaces()[0], "INamed");
  EXPECT_EQ(person.fields().size(), 2u);
  EXPECT_EQ(person.fields()[0].visibility, Visibility::Private);
  EXPECT_EQ(person.methods().size(), 3u);
  ASSERT_EQ(person.constructors().size(), 1u);
  EXPECT_EQ(person.constructors()[0].params.size(), 1u);
  EXPECT_EQ(person.guid(), util::Guid::from_name("teamA.Person"));

  const TypeDescription& address = types[2];
  EXPECT_EQ(address.constructors()[0].params[1].type_name, "int32");
  EXPECT_EQ(address.constructors()[0].params[1].name, "zip");
}

TEST(TypeParser, ModifiersAndDefaults) {
  const auto types = parse_type_declarations(R"(
    class T {
      public int32 counter;
      int32 hidden;
      protected static string tag;
      private static int64 stamp();
      public void run();
    }
  )");
  ASSERT_EQ(types.size(), 1u);
  const TypeDescription& t = types[0];
  EXPECT_EQ(t.namespace_name(), "");  // no namespace declared
  EXPECT_EQ(t.fields()[0].visibility, Visibility::Public);
  EXPECT_EQ(t.fields()[1].visibility, Visibility::Private);  // default
  EXPECT_EQ(t.fields()[2].visibility, Visibility::Protected);
  EXPECT_TRUE(t.fields()[2].is_static);
  EXPECT_EQ(t.methods()[0].visibility, Visibility::Private);
  EXPECT_TRUE(t.methods()[0].is_static);
  EXPECT_EQ(t.methods()[1].visibility, Visibility::Public);
}

TEST(TypeParser, TaggedAndMultipleInterfaces) {
  const auto types = parse_type_declarations(R"(
    namespace geo;
    interface IFlat { int32 getX(); }
    interface IDeep { int32 getZ(); }
    class Point implements IFlat, IDeep tagged {
      private int32 x;
      int32 getX();
      int32 getZ();
    }
  )");
  ASSERT_EQ(types.size(), 3u);
  EXPECT_TRUE(types[2].structural_tag());
  EXPECT_EQ(types[2].interfaces().size(), 2u);
}

TEST(TypeParser, QualifiedReferences) {
  const auto types = parse_type_declarations(R"(
    namespace app;
    class Holder {
      private other.ns.Widget widget;
      other.ns.Widget getWidget();
    }
  )");
  EXPECT_EQ(types[0].fields()[0].type_name, "other.ns.Widget");
  EXPECT_EQ(types[0].methods()[0].return_type, "other.ns.Widget");
}

TEST(TypeParser, DeclareIntoRegistry) {
  TypeRegistry registry;
  EXPECT_EQ(declare_types(registry, kPersonDecl), 3u);
  EXPECT_TRUE(registry.contains("teamA.Person"));
  EXPECT_NE(registry.resolve("Address", "teamA"), nullptr);
}

TEST(TypeParser, ParsedTypesWorkWithConformance) {
  // Declare two Person views textually; the checker accepts them like any
  // builder-made descriptions.
  TypeRegistry registry;
  declare_types(registry, R"(
    namespace a;
    class Person {
      private string name;
      Person(string name);
      string getName();
      void setName(string name);
    }
  )");
  declare_types(registry, R"(
    namespace b;
    class Person {
      private string name;
      Person(string personName);
      string getPersonName();
      void setPersonName(string personName);
    }
  )");
  conform::ConformanceChecker checker(registry);
  const auto result = checker.check("b.Person", "a.Person");
  ASSERT_TRUE(result.conformant);
  EXPECT_EQ(result.plan.find_method("getName", 0)->source_name, "getPersonName");
}

TEST(TypeParser, ErrorsCarryPositions) {
  try {
    (void)parse_type_declarations("class T {\n  int32 x\n}");
    FAIL() << "expected ReflectError";
  } catch (const ReflectError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(TypeParser, RejectsMalformedDeclarations) {
  EXPECT_THROW((void)parse_type_declarations("struct T {}"), ReflectError);
  EXPECT_THROW((void)parse_type_declarations("class {}"), ReflectError);
  EXPECT_THROW((void)parse_type_declarations("class T { T(); "), ReflectError);
  EXPECT_THROW((void)parse_type_declarations("interface I : object {}"), ReflectError);
  EXPECT_THROW((void)parse_type_declarations("interface I { I(); }"), ReflectError);
  EXPECT_THROW((void)parse_type_declarations("interface I { int32 x; }"), ReflectError);
  EXPECT_THROW((void)parse_type_declarations("namespace ;"), ReflectError);
}

TEST(TypeParser, MultipleNamespaceDirectives) {
  const auto types = parse_type_declarations(R"(
    namespace a;
    class T {}
    namespace b;
    class T {}
    class U {}
  )");
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0].qualified_name(), "a.T");
  EXPECT_EQ(types[1].qualified_name(), "b.T");
  EXPECT_EQ(types[2].qualified_name(), "b.U");
}

TEST(TypeParser, CommentsAndWhitespaceAreIgnored) {
  const auto types = parse_type_declarations(
      "// leading comment\nnamespace n; // trailing\nclass T { // inner\n }");
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0].qualified_name(), "n.T");
}

}  // namespace
}  // namespace pti::reflect
