// Tests for the serialization substrate: type descriptions as XML, the
// XML/SOAP/binary object serializers and the hybrid envelope (Fig. 3).
#include <gtest/gtest.h>

#include "fixtures/sample_types.hpp"
#include "reflect/domain.hpp"
#include "reflect/dyn_object.hpp"
#include "reflect/introspect.hpp"
#include "serial/binary_serializer.hpp"
#include "serial/envelope.hpp"
#include "serial/object_serializer.hpp"
#include "serial/serial_error.hpp"
#include "serial/soap_serializer.hpp"
#include "serial/typedesc_xml.hpp"
#include "serial/xml_object_serializer.hpp"
#include "util/rng.hpp"
#include "xml/xml_parser.hpp"
#include "xml/xml_writer.hpp"

namespace pti::serial {
namespace {

using reflect::Domain;
using reflect::DynObject;
using reflect::TypeDescription;
using reflect::Value;
using reflect::ValueKind;

void load_people(Domain& domain) {
  domain.load_assembly(fixtures::team_a_people(), "net://alice/teamA.people");
}

std::shared_ptr<DynObject> make_person(Domain& domain, std::string_view name) {
  const Value args[] = {Value(name)};
  auto person = domain.instantiate("teamA.Person", args);
  const Value street[] = {Value("Main St"), Value(std::int32_t{1015})};
  person->set("address", Value(domain.instantiate("teamA.Address", street)));
  return person;
}

// --- TypeDescription <-> XML ----------------------------------------------

TEST(TypeDescXml, RoundTripsThePersonDescription) {
  Domain domain;
  load_people(domain);
  const TypeDescription* d = domain.registry().find("teamA.Person");
  ASSERT_NE(d, nullptr);

  const std::string xml_text = type_description_to_string(*d);
  const TypeDescription back = type_description_from_string(xml_text);
  EXPECT_TRUE(d->structurally_equal(back));
  EXPECT_EQ(back.guid(), d->guid());
  EXPECT_EQ(back.qualified_name(), "teamA.Person");
  EXPECT_EQ(back.assembly_name(), "teamA.people");
  EXPECT_EQ(back.download_path(), "net://alice/teamA.people");
  EXPECT_EQ(back.interfaces(), d->interfaces());
  EXPECT_EQ(back.methods().size(), d->methods().size());
  EXPECT_EQ(back.constructors().size(), d->constructors().size());
}

TEST(TypeDescXml, RoundTripsEveryFixtureDescription) {
  Domain domain;
  domain.load_assembly(fixtures::team_a_people());
  domain.load_assembly(fixtures::team_b_people());
  domain.load_assembly(fixtures::planner_meetings());
  domain.load_assembly(fixtures::bank_accounts());
  domain.load_assembly(fixtures::lists_a());
  domain.load_assembly(fixtures::tagged_a());
  for (const TypeDescription* d : domain.registry().user_types()) {
    const TypeDescription back =
        type_description_from_string(type_description_to_string(*d));
    EXPECT_TRUE(d->structurally_equal(back)) << d->qualified_name();
    EXPECT_EQ(back.structural_tag(), d->structural_tag()) << d->qualified_name();
  }
}

TEST(TypeDescXml, IsNonRecursive) {
  // The description of Person references Address by name only — no nested
  // <TypeDescription> (paper Section 5.2).
  Domain domain;
  load_people(domain);
  const std::string xml_text =
      type_description_to_string(*domain.registry().find("teamA.Person"));
  const std::size_t first_open = xml_text.find("<TypeDescription");
  ASSERT_NE(first_open, std::string::npos);
  EXPECT_EQ(xml_text.find("<TypeDescription", first_open + 1), std::string::npos)
      << "nested description found in: " << xml_text;
  EXPECT_NE(xml_text.find("Address"), std::string::npos);
}

TEST(TypeDescXml, RejectsMalformedDocuments) {
  EXPECT_THROW((void)type_description_from_string("<Wrong/>"), SerialError);
  EXPECT_THROW((void)type_description_from_string(
                   "<TypeDescription name='X' kind='weird'/>"),
               SerialError);
  EXPECT_THROW((void)type_description_from_string(
                   "<TypeDescription name='X' kind='class' guid='nope'/>"),
               SerialError);
}

// --- object serializers: shared behaviour -----------------------------------

class SerializerCase : public ::testing::TestWithParam<const char*> {
 protected:
  SerializerCase() {
    load_people(domain_);
    registry_ = SerializerRegistry::with_defaults();
  }
  ObjectSerializer& serializer() { return registry_.get(GetParam()); }
  Domain domain_;
  SerializerRegistry registry_;
};

TEST_P(SerializerCase, RoundTripsScalars) {
  ObjectSerializer& s = serializer();
  const std::vector<Value> values = {
      Value(),
      Value(true),
      Value(false),
      Value(std::int32_t{-42}),
      Value(std::int64_t{1} << 40),
      Value(3.14159),
      Value(-0.0),
      Value(""),
      Value("héllo <&> \"world\""),
      Value(Value::List{Value(std::int32_t{1}), Value("two"), Value()}),
  };
  for (const Value& v : values) {
    const Value back = s.deserialize(s.serialize(v));
    EXPECT_EQ(back, v) << v.to_debug_string() << " via " << GetParam();
  }
}

TEST_P(SerializerCase, RoundTripsAnObjectGraph) {
  ObjectSerializer& s = serializer();
  auto person = make_person(domain_, "Alice");
  const Value back = s.deserialize(s.serialize(Value(person)));
  ASSERT_EQ(back.kind(), ValueKind::Object);
  const auto& obj = back.as_object();
  EXPECT_EQ(obj->type_name(), "teamA.Person");
  EXPECT_EQ(obj->type_guid(), person->type_guid());
  EXPECT_EQ(obj->get("name").as_string(), "Alice");
  const auto& address = obj->get("address").as_object();
  ASSERT_NE(address, nullptr);
  EXPECT_EQ(address->get("street").as_string(), "Main St");
  EXPECT_EQ(address->get("zip").as_int32(), 1015);
}

TEST_P(SerializerCase, RejectsGarbage) {
  ObjectSerializer& s = serializer();
  const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_THROW((void)s.deserialize(garbage), Error);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, SerializerCase,
                         ::testing::Values("xml", "soap", "binary"));

// --- shared references & cycles ----------------------------------------------

TEST(SoapSerializer, PreservesSharedReferences) {
  Domain domain;
  load_people(domain);
  auto shared_address = [&domain] {
    const Value args[] = {Value("Shared Rd"), Value(std::int32_t{2})};
    return domain.instantiate("teamA.Address", args);
  }();
  const Value a1[] = {Value("A")};
  const Value a2[] = {Value("B")};
  auto p1 = domain.instantiate("teamA.Person", a1);
  auto p2 = domain.instantiate("teamA.Person", a2);
  p1->set("address", Value(shared_address));
  p2->set("address", Value(shared_address));

  SoapSerializer soap;
  const Value back =
      soap.deserialize(soap.serialize(Value(Value::List{Value(p1), Value(p2)})));
  const auto& list = back.as_list();
  const auto& addr1 = list[0].as_object()->get("address").as_object();
  const auto& addr2 = list[1].as_object()->get("address").as_object();
  EXPECT_EQ(addr1.get(), addr2.get()) << "sharing must survive SOAP round-trip";
}

TEST(SoapSerializer, HandlesCycles) {
  auto a = DynObject::make("listsA.Node", util::Guid::from_name("listsA.Node"));
  auto b = DynObject::make("listsA.Node", util::Guid::from_name("listsA.Node"));
  a->set("value", Value(std::int32_t{1}));
  b->set("value", Value(std::int32_t{2}));
  a->set("next", Value(b));
  b->set("next", Value(a));  // cycle

  SoapSerializer soap;
  const Value back = soap.deserialize(soap.serialize(Value(a)));
  const auto& ra = back.as_object();
  const auto& rb = ra->get("next").as_object();
  EXPECT_EQ(rb->get("next").as_object().get(), ra.get()) << "cycle must close";
  EXPECT_EQ(ra->get("value").as_int32(), 1);
  EXPECT_EQ(rb->get("value").as_int32(), 2);
}

TEST(BinarySerializer, HandlesCyclesAndSharing) {
  auto a = DynObject::make("t.N", util::Guid{});
  a->set("self", Value(a));  // self-cycle
  BinarySerializer binary;
  const Value back = binary.deserialize(binary.serialize(Value(a)));
  EXPECT_EQ(back.as_object()->get("self").as_object().get(), back.as_object().get());
}

TEST(XmlObjectSerializer, RejectsCycles) {
  auto a = DynObject::make("t.N", util::Guid{});
  a->set("self", Value(a));
  XmlObjectSerializer xml;
  EXPECT_THROW((void)xml.serialize(Value(a)), SerialError);
}

TEST(XmlObjectSerializer, DuplicatesSharedReferences) {
  // DAG: without identity tracking, the shared child appears twice.
  auto child = DynObject::make("t.C", util::Guid{});
  child->set("x", Value(std::int32_t{9}));
  auto parent = DynObject::make("t.P", util::Guid{});
  parent->set("l", Value(child));
  parent->set("r", Value(child));
  XmlObjectSerializer xml;
  const Value back = xml.deserialize(xml.serialize(Value(parent)));
  const auto& l = back.as_object()->get("l").as_object();
  const auto& r = back.as_object()->get("r").as_object();
  EXPECT_NE(l.get(), r.get());              // duplicated...
  EXPECT_TRUE(l->same_state(*r));           // ...but equal in state
}

TEST(XmlObjectSerializer, HonoursFieldVisibility) {
  // With a resolver, private fields are omitted (XmlSerializer semantics).
  Domain domain;
  load_people(domain);
  auto person = make_person(domain, "Secret");
  XmlObjectSerializer with_resolver(&domain.registry());
  const std::string text = [&] {
    const auto bytes = with_resolver.serialize(Value(person));
    return std::string(bytes.begin(), bytes.end());
  }();
  // teamA.Person.name is private.
  EXPECT_EQ(text.find("Secret"), std::string::npos) << text;
}

// --- size & verbosity ordering (the premise of the hybrid scheme) -------------

TEST(Serializers, BinaryIsSmallerThanSoap) {
  Domain domain;
  load_people(domain);
  auto person = make_person(domain, "Alice");
  SoapSerializer soap;
  BinarySerializer binary;
  XmlObjectSerializer xml;
  const auto soap_size = soap.serialize(Value(person)).size();
  const auto binary_size = binary.serialize(Value(person)).size();
  const auto xml_size = xml.serialize(Value(person)).size();
  EXPECT_LT(binary_size, soap_size);
  EXPECT_LT(binary_size, xml_size);
}

// --- binary-specific robustness ----------------------------------------------

TEST(BinarySerializer, DetectsTruncationAndTrailingBytes) {
  BinarySerializer binary;
  auto bytes = binary.serialize(Value(std::string("hello")));
  auto truncated = bytes;
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW((void)binary.deserialize(truncated), SerialError);
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)binary.deserialize(padded), SerialError);
}

TEST(BinarySerializer, StringPoolingShrinksRepetition) {
  BinarySerializer binary;
  Value::List many;
  for (int i = 0; i < 50; ++i) many.push_back(Value("the-same-long-string-value"));
  Value::List distinct;
  for (int i = 0; i < 50; ++i) {
    distinct.push_back(Value("distinct-string-value-" + std::to_string(i)));
  }
  EXPECT_LT(binary.serialize(Value(many)).size(),
            binary.serialize(Value(distinct)).size() / 2);
}

// --- registry ------------------------------------------------------------

TEST(SerializerRegistry, LookupAndErrors) {
  SerializerRegistry registry = SerializerRegistry::with_defaults();
  EXPECT_TRUE(registry.has("SOAP"));  // case-insensitive
  EXPECT_EQ(registry.get("binary").encoding(), "binary");
  EXPECT_FALSE(registry.has("yaml"));
  EXPECT_THROW((void)registry.get("yaml"), SerialError);
  EXPECT_EQ(registry.encodings().size(), 3u);
}

// --- envelope (Fig. 3) ------------------------------------------------------

TEST(Envelope, CollectsTypesFromTheObjectGraph) {
  Domain domain;
  load_people(domain);
  auto person = make_person(domain, "Alice");
  const std::vector<std::string> names = collect_type_names(Value(person));
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "teamA.Person");  // root first
  EXPECT_EQ(names[1], "teamA.Address");
}

TEST(Envelope, CollectTypeNamesIsCycleSafe) {
  auto a = DynObject::make("t.N", util::Guid{});
  a->set("self", Value(a));
  EXPECT_EQ(collect_type_names(Value(a)), (std::vector<std::string>{"t.N"}));
}

class EnvelopeCase : public ::testing::TestWithParam<const char*> {};

TEST_P(EnvelopeCase, RoundTripsWithProvenance) {
  Domain domain;
  load_people(domain);
  auto person = make_person(domain, "Alice");
  SerializerRegistry serializers = SerializerRegistry::with_defaults();

  EnvelopeBuilder builder(serializers.get(GetParam()), &domain.registry());
  const Envelope envelope = builder.build(Value(person));

  EXPECT_EQ(envelope.encoding, GetParam());
  ASSERT_EQ(envelope.types.size(), 2u);
  EXPECT_EQ(envelope.types[0].type_name, "teamA.Person");
  EXPECT_EQ(envelope.types[0].assembly_name, "teamA.people");
  EXPECT_EQ(envelope.types[0].download_path, "net://alice/teamA.people");
  EXPECT_FALSE(envelope.types[0].guid.is_nil());

  const Envelope back = Envelope::from_bytes(envelope.to_bytes());
  EXPECT_EQ(back.types, envelope.types);
  EXPECT_EQ(back.encoding, envelope.encoding);

  const Value restored = serializers.get(back.encoding).deserialize(back.payload);
  EXPECT_EQ(restored.as_object()->get("name").as_string(), "Alice");
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EnvelopeCase,
                         ::testing::Values("soap", "binary", "xml"));

TEST(Envelope, WrapperSizeExcludesPayload) {
  Domain domain;
  load_people(domain);
  auto person = make_person(domain, "Alice");
  SerializerRegistry serializers = SerializerRegistry::with_defaults();
  EnvelopeBuilder builder(serializers.get("binary"), &domain.registry());
  const Envelope envelope = builder.build(Value(person));
  EXPECT_GT(envelope.wrapper_size(), 0u);
  // Base64 inflates the payload by ~4/3, so the wrapper estimate is a
  // lower bound; it must at least be far smaller than the whole message.
  EXPECT_LT(envelope.wrapper_size(), envelope.to_bytes().size());
}

TEST(Envelope, RejectsMalformedMessages) {
  EXPECT_THROW((void)Envelope::from_bytes(std::vector<std::uint8_t>{'<', 'x', '/', '>'}),
               Error);
  const std::string no_payload = "<PTIMessage><TypeInfo/></PTIMessage>";
  EXPECT_THROW((void)Envelope::from_bytes(std::vector<std::uint8_t>(no_payload.begin(),
                                                                    no_payload.end())),
               Error);
}

// --- randomized round-trip property across all serializers --------------------

Value random_value(util::Rng& rng, int depth) {
  switch (rng.next_below(depth > 0 ? 7 : 5)) {
    case 0: return Value();
    case 1: return Value(rng.next_bool(0.5));
    case 2: return Value(static_cast<std::int32_t>(rng.next_u64()));
    case 3: return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 4: {
      std::string s;
      const std::size_t len = rng.next_below(12);
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('!' + rng.next_below(90)));
      }
      return Value(s);
    }
    case 5: {
      Value::List items;
      const std::size_t count = rng.next_below(4);
      for (std::size_t i = 0; i < count; ++i) {
        items.push_back(random_value(rng, depth - 1));
      }
      return Value(std::move(items));
    }
    default: {
      auto obj = DynObject::make("gen.T" + std::to_string(rng.next_below(3)),
                                 util::Guid::from_name("gen.T"));
      const std::size_t fields = rng.next_below(4);
      for (std::size_t i = 0; i < fields; ++i) {
        obj->set("f" + std::to_string(i), random_value(rng, depth - 1));
      }
      return Value(obj);
    }
  }
}

/// Deep structural equality that treats distinct-but-equal objects as equal
/// (XML duplicates shared references, so identity comparison is too strict).
bool deep_equal(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::Object: {
      const auto& oa = a.as_object();
      const auto& ob = b.as_object();
      if (!oa || !ob) return oa == ob;
      if (oa->type_name() != ob->type_name()) return false;
      if (oa->fields().size() != ob->fields().size()) return false;
      for (const auto& [name, value] : oa->fields()) {
        if (!ob->has_field(name) || !deep_equal(value, ob->get(name))) return false;
      }
      return true;
    }
    case ValueKind::List: {
      const auto& la = a.as_list();
      const auto& lb = b.as_list();
      if (la.size() != lb.size()) return false;
      for (std::size_t i = 0; i < la.size(); ++i) {
        if (!deep_equal(la[i], lb[i])) return false;
      }
      return true;
    }
    default:
      return a == b;
  }
}

class SerializerFuzzProperty
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(SerializerFuzzProperty, RandomAcyclicGraphsRoundTrip) {
  const auto& [encoding, seed] = GetParam();
  util::Rng rng(seed);
  SerializerRegistry registry = SerializerRegistry::with_defaults();
  ObjectSerializer& s = registry.get(encoding);
  for (int iter = 0; iter < 30; ++iter) {
    const Value v = random_value(rng, 3);
    const Value back = s.deserialize(s.serialize(v));
    EXPECT_TRUE(deep_equal(v, back))
        << encoding << ": " << v.to_debug_string() << " != " << back.to_debug_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, SerializerFuzzProperty,
    ::testing::Combine(::testing::Values("xml", "soap", "binary"),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace pti::serial
