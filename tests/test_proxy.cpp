// Tests for dynamic proxies: wrapping, renamed dispatch, argument
// permutation, deep (recursive) wrapping, argument adaptation, field
// mapping, unwrap, and the invocation-overhead contract.
#include <gtest/gtest.h>

#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "fixtures/sample_types.hpp"
#include "proxy/dynamic_proxy.hpp"
#include "proxy/proxy_error.hpp"
#include "reflect/domain.hpp"

namespace pti::proxy {
namespace {

using conform::ConformanceChecker;
using reflect::Domain;
using reflect::DynObject;
using reflect::Value;
using reflect::ValueKind;

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : checker_(domain_.registry(), {}, &cache_), factory_(domain_, checker_) {
    domain_.load_assembly(fixtures::team_a_people());
    domain_.load_assembly(fixtures::team_b_people());
    domain_.load_assembly(fixtures::planner_meetings());
    domain_.load_assembly(fixtures::agenda_meetings());
    domain_.load_assembly(fixtures::bank_accounts());
  }

  std::shared_ptr<DynObject> make_b_person(std::string_view name) {
    const Value args[] = {Value(name)};
    auto person = domain_.instantiate("teamB.Person", args);
    const Value addr[] = {Value("Rue du Lac"), Value(std::int32_t{1007})};
    person->set("address", Value(domain_.instantiate("teamB.Address", addr)));
    return person;
  }

  Domain domain_;
  conform::ConformanceCache cache_;
  ConformanceChecker checker_;
  ProxyFactory factory_;
};

TEST_F(ProxyTest, DirectInvocationPassesThrough) {
  const Value args[] = {Value("Alice")};
  auto person = domain_.instantiate("teamA.Person", args);
  EXPECT_FALSE(ProxyFactory::is_proxy(*person));
  EXPECT_EQ(factory_.invoke(person, "getName", {}).as_string(), "Alice");
}

TEST_F(ProxyTest, WrapIsNoopForPassthroughKinds) {
  const Value args[] = {Value("Alice")};
  auto person = domain_.instantiate("teamA.Person", args);
  // Identity.
  EXPECT_EQ(factory_.wrap(person, "teamA.Person").get(), person.get());
  // Explicit (declared interface).
  EXPECT_EQ(factory_.wrap(person, "teamA.INamed").get(), person.get());
}

TEST_F(ProxyTest, RenamedMethodDispatch) {
  auto b_person = make_b_person("Bob");
  auto as_a = factory_.wrap(b_person, "teamA.Person");
  ASSERT_TRUE(ProxyFactory::is_proxy(*as_a));
  EXPECT_EQ(as_a->type_name(), "teamA.Person");

  // Target-side names drive source-side methods.
  EXPECT_EQ(factory_.invoke(as_a, "getName", {}).as_string(), "Bob");
  const Value rename[] = {Value("Robert")};
  factory_.invoke(as_a, "setName", rename);
  EXPECT_EQ(factory_.invoke(as_a, "getName", {}).as_string(), "Robert");
  // The underlying object really changed.
  EXPECT_EQ(b_person->get("name").as_string(), "Robert");
}

TEST_F(ProxyTest, UnknownTargetMethodThrows) {
  auto as_a = factory_.wrap(make_b_person("Bob"), "teamA.Person");
  EXPECT_THROW((void)factory_.invoke(as_a, "selfDestruct", {}), ProxyError);
  const Value arg[] = {Value("x")};
  EXPECT_THROW((void)factory_.invoke(as_a, "getName", arg), ProxyError);  // bad arity
}

TEST_F(ProxyTest, NonConformantWrapThrowsWithDetails) {
  const Value args[] = {Value("Eve")};
  auto account = domain_.instantiate("bank.Account", args);
  try {
    (void)factory_.wrap(account, "teamA.Person");
    FAIL() << "expected NonConformantError";
  } catch (const NonConformantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bank.Account"), std::string::npos);
    EXPECT_NE(what.find("teamA.Person"), std::string::npos);
  }
}

TEST_F(ProxyTest, ArgumentPermutationIsApplied) {
  const Value ctor_args[] = {Value(std::int64_t{900}), Value("standup")};
  auto meeting = domain_.instantiate("agenda.Meeting", ctor_args);
  auto as_planner = factory_.wrap(meeting, "planner.Meeting");

  EXPECT_EQ(factory_.invoke(as_planner, "getTitle", {}).as_string(), "standup");
  EXPECT_EQ(factory_.invoke(as_planner, "getMeetingStart", {}).as_int64(), 900);

  // planner-order arguments (title, start) must land permuted in
  // agenda.reschedule(begin, title).
  const Value resched[] = {Value("retro"), Value(std::int64_t{1600})};
  factory_.invoke(as_planner, "reschedule", resched);
  EXPECT_EQ(meeting->get("title").as_string(), "retro");
  EXPECT_EQ(meeting->get("startTime").as_int64(), 1600);
}

TEST_F(ProxyTest, DeepMatchingWrapsReturnedObjects) {
  auto as_a = factory_.wrap(make_b_person("Bob"), "teamA.Person");
  // getAddress returns a teamB.Address; the declared target return type is
  // teamA.Address, which only implicitly conforms -> a nested proxy.
  const Value address = factory_.invoke(as_a, "getAddress", {});
  ASSERT_EQ(address.kind(), ValueKind::Object);
  const auto& addr_obj = address.as_object();
  ASSERT_TRUE(ProxyFactory::is_proxy(*addr_obj));
  EXPECT_EQ(addr_obj->type_name(), "teamA.Address");
  // ...and the nested proxy dispatches with renames of its own.
  EXPECT_EQ(factory_.invoke(addr_obj, "getStreet", {}).as_string(), "Rue du Lac");
  EXPECT_EQ(factory_.invoke(addr_obj, "getZip", {}).as_int32(), 1007);
}

TEST_F(ProxyTest, ArgumentsAreReverseWrappedForDeepMismatch) {
  auto as_a = factory_.wrap(make_b_person("Bob"), "teamA.Person");
  // Pass a *teamA* Address into the proxied setAddress: the underlying
  // teamB method declares teamB.Address, so the argument needs a reverse
  // wrapper presenting the teamB interface over the teamA object.
  const Value addr_args[] = {Value("Bahnhofstrasse"), Value(std::int32_t{8001})};
  auto a_address = domain_.instantiate("teamA.Address", addr_args);
  const Value set_args[] = {Value(a_address)};
  factory_.invoke(as_a, "setAddress", set_args);

  const auto source = factory_.unwrap(as_a);
  const auto& stored = source->get("address").as_object();
  ASSERT_TRUE(ProxyFactory::is_proxy(*stored));
  EXPECT_EQ(stored->type_name(), "teamB.Address");
  // Driving the stored value through teamB's interface reaches the teamA
  // object underneath.
  EXPECT_EQ(factory_.invoke(stored, "getStreetName", {}).as_string(), "Bahnhofstrasse");
}

TEST_F(ProxyTest, PassthroughArgumentsAreNotWrapped) {
  auto b_person = make_b_person("Bob");
  auto as_a = factory_.wrap(b_person, "teamA.Person");
  // A teamB.Address argument matches the underlying parameter type exactly.
  const Value addr_args[] = {Value("Quai 5"), Value(std::int32_t{1201})};
  auto b_address = domain_.instantiate("teamB.Address", addr_args);
  const Value set_args[] = {Value(b_address)};
  factory_.invoke(as_a, "setAddress", set_args);
  EXPECT_EQ(b_person->get("address").as_object().get(), b_address.get());
}

TEST_F(ProxyTest, ProxyArgumentsAreUnwrappedWhenPossible) {
  auto b_person = make_b_person("Bob");
  auto as_a = factory_.wrap(b_person, "teamA.Person");
  // Wrap a teamB.Address as teamA.Address, then pass it back through the
  // teamA-typed proxy: the factory should strip the wrapper instead of
  // stacking a second one.
  const Value addr_args[] = {Value("Grand-Rue"), Value(std::int32_t{1110})};
  auto b_address = domain_.instantiate("teamB.Address", addr_args);
  auto as_a_address = factory_.wrap(b_address, "teamA.Address");
  ASSERT_TRUE(ProxyFactory::is_proxy(*as_a_address));

  const Value set_args[] = {Value(as_a_address)};
  factory_.invoke(as_a, "setAddress", set_args);
  EXPECT_EQ(b_person->get("address").as_object().get(), b_address.get());
}

TEST_F(ProxyTest, UnwrapStripsAllLayers) {
  auto b_person = make_b_person("Bob");
  auto layered = factory_.wrap(b_person, "teamA.Person");
  EXPECT_EQ(factory_.unwrap(layered).get(), b_person.get());
  EXPECT_EQ(factory_.unwrap(b_person).get(), b_person.get());
  EXPECT_EQ(factory_.unwrap(nullptr), nullptr);
}

TEST_F(ProxyTest, FieldMappingThroughProxies) {
  auto b_person = make_b_person("Bob");
  auto as_a = factory_.wrap(b_person, "teamA.Person");
  EXPECT_EQ(factory_.get_field(as_a, "name").as_string(), "Bob");
  factory_.set_field(as_a, "name", Value("Bobby"));
  EXPECT_EQ(b_person->get("name").as_string(), "Bobby");
  EXPECT_THROW((void)factory_.get_field(as_a, "nonexistent"), ProxyError);
  // Direct objects work too.
  EXPECT_EQ(factory_.get_field(b_person, "name").as_string(), "Bobby");
}

TEST_F(ProxyTest, FieldReadAdaptsObjectValues) {
  auto as_a = factory_.wrap(make_b_person("Bob"), "teamA.Person");
  const Value address = factory_.get_field(as_a, "address");
  ASSERT_EQ(address.kind(), ValueKind::Object);
  EXPECT_TRUE(ProxyFactory::is_proxy(*address.as_object()));
  EXPECT_EQ(address.as_object()->type_name(), "teamA.Address");
}

TEST_F(ProxyTest, NullAndErrorPaths) {
  EXPECT_THROW((void)factory_.invoke(nullptr, "m", {}), ProxyError);
  EXPECT_THROW((void)factory_.wrap(nullptr, "teamA.Person"), ProxyError);
  auto b_person = make_b_person("Bob");
  EXPECT_THROW((void)factory_.wrap(b_person, "no.SuchType"), ProxyError);
}

TEST_F(ProxyTest, GreetThroughProxyUsesPermutedlessArgs) {
  auto as_a = factory_.wrap(make_b_person("Ada"), "teamA.Person");
  const Value greeting[] = {Value("Bonjour")};
  EXPECT_EQ(factory_.invoke(as_a, "greet", greeting).as_string(), "Bonjour, Ada!");
}

}  // namespace
}  // namespace pti::proxy
