// Shared generators of the randomized protocol sweeps: random type graphs,
// derived interest sets and value plans, drawn deterministically from a
// caller-owned RNG. Used by
//   * tests/test_protocol_fuzz.cpp — eager vs optimistic must agree over
//     one transport (SimNetwork);
//   * tests/test_socket_transport.cpp — the same rounds must produce
//     identical verdicts/contents over SocketTransport (real serialized
//     frames on loopback TCP) as over SimNetwork.
//
// Everything here is pure generation: the only state is the RNG the caller
// passes in, so two universes fed the same drawn round see byte-identical
// inputs.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "reflect/assembly.hpp"
#include "reflect/type_builder.hpp"
#include "reflect/value.hpp"
#include "transport/peer.hpp"
#include "util/rng.hpp"

namespace pti::fuzz {

inline constexpr const char* kScalarTypes[] = {"int32", "int64", "string"};

struct Member {
  std::string name;
  std::string type;  ///< scalar type name
};

/// The sender-side shape: scalar fields (each with a same-named getter)
/// and optionally a nested child object with its own scalar fields.
struct Schema {
  std::vector<Member> fields;
  bool has_child = false;
  std::vector<Member> child_fields;
};

inline Schema random_schema(util::Rng& rng) {
  Schema schema;
  const std::size_t field_count = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < field_count; ++i) {
    schema.fields.push_back({"f" + std::to_string(i), kScalarTypes[rng.next_below(3)]});
  }
  schema.has_child = rng.next_bool(0.5);
  if (schema.has_child) {
    const std::size_t child_count = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < child_count; ++i) {
      schema.child_fields.push_back(
          {"c" + std::to_string(i), kScalarTypes[rng.next_below(3)]});
    }
  }
  return schema;
}

inline void add_getter(reflect::TypeBuilder& builder, const std::string& field,
                       const std::string& type) {
  builder.method("get_" + field, type, {},
                 [field](reflect::DynObject& self, reflect::Args) {
                   return self.get(field);
                 });
}

/// The sender's assembly: "<ns>.Thing" (+ "<ns>.Child"), fields + getters.
inline std::shared_ptr<const reflect::Assembly> sender_assembly(const std::string& ns,
                                                                const Schema& schema) {
  auto assembly = std::make_shared<reflect::Assembly>(ns + ".gen");
  if (schema.has_child) {
    reflect::TypeBuilder child(ns, "Child");
    for (const Member& m : schema.child_fields) {
      child.field(m.name, m.type);
      add_getter(child, m.name, m.type);
    }
    assembly->add_type(child.build());
  }
  reflect::TypeBuilder thing(ns, "Thing");
  for (const Member& m : schema.fields) {
    thing.field(m.name, m.type);
    add_getter(thing, m.name, m.type);
  }
  if (schema.has_child) {
    const std::string child_type = ns + ".Child";
    thing.field("child", child_type);
    add_getter(thing, "child", child_type);
  }
  assembly->add_type(thing.build());
  return assembly;
}

/// How the receiver's interest relates to the sender's shape.
enum class InterestMode { Copy, Subset, Mutated };

/// The receiver's assembly: a method-only "<ns>.Thing" (the simple name
/// must token-conform to the sender's — the checker's name aspect) whose
/// getters are derived from the sender's schema per `mode`; child getters
/// mirror the sender's child through the receiver's own "<ns>.Child".
inline std::shared_ptr<const reflect::Assembly> receiver_assembly(
    const std::string& ns, const Schema& schema, InterestMode mode, util::Rng& rng) {
  auto assembly = std::make_shared<reflect::Assembly>(ns + ".gen");
  if (schema.has_child) {
    reflect::TypeBuilder child(ns, "Child");
    for (const Member& m : schema.child_fields) add_getter(child, m.name, m.type);
    assembly->add_type(child.build());
  }

  std::vector<Member> getters = schema.fields;
  if (mode == InterestMode::Subset) {
    // Keep a random nonempty prefix-rotation of the getters.
    const std::size_t keep = 1 + rng.next_below(getters.size());
    const std::size_t start = rng.next_below(getters.size());
    std::vector<Member> kept;
    for (std::size_t i = 0; i < keep; ++i) {
      kept.push_back(getters[(start + i) % getters.size()]);
    }
    getters = std::move(kept);
  } else if (mode == InterestMode::Mutated) {
    Member& victim = getters[rng.next_below(getters.size())];
    if (rng.next_bool(0.5)) {
      // A token-disjoint getter name: "get_zz<k>" shares no token with any
      // sender getter "get_f<j>" beyond "get", so the member-name rule
      // (token subset) cannot realize it. A mere prefix would not do —
      // "get_nope_f0" still token-subsumes "get_f0".
      victim.name = "zz" + std::to_string(rng.next_below(1000));
    } else {
      // Swap to a structurally incompatible scalar return type.
      victim.type = victim.type == "string" ? "int32" : "string";
    }
  }

  reflect::TypeBuilder thing(ns, "Thing");
  for (const Member& m : getters) add_getter(thing, m.name, m.type);
  if (schema.has_child) {
    add_getter(thing, "child", ns + ".Child");
  }
  assembly->add_type(thing.build());
  return assembly;
}

/// The concrete values of one object graph, drawn once per round so every
/// universe sends byte-identical state.
struct ValuePlan {
  std::vector<std::pair<std::string, reflect::Value>> fields;
  std::vector<std::pair<std::string, reflect::Value>> child_fields;
};

inline ValuePlan random_values(const Schema& schema, util::Rng& rng) {
  const auto scalar = [&rng](const std::string& type, std::size_t salt) {
    using reflect::Value;
    if (type == "int32") return Value(static_cast<std::int32_t>(rng.next_below(100000)));
    if (type == "int64") return Value(static_cast<std::int64_t>(rng.next_u64() >> 8));
    return Value("v" + std::to_string(salt) + "_" + std::to_string(rng.next_below(1000)));
  };
  ValuePlan plan;
  std::size_t salt = 0;
  for (const Member& m : schema.fields) {
    plan.fields.emplace_back(m.name, scalar(m.type, salt++));
  }
  for (const Member& m : schema.child_fields) {
    plan.child_fields.emplace_back(m.name, scalar(m.type, salt++));
  }
  return plan;
}

/// Instantiates the schema's object graph in the sender's domain with the
/// plan's values.
inline std::shared_ptr<reflect::DynObject> make_object(transport::Peer& sender,
                                                       const std::string& ns,
                                                       const Schema& schema,
                                                       const ValuePlan& plan) {
  auto thing = sender.domain().instantiate(ns + ".Thing");
  for (const auto& [name, value] : plan.fields) thing->set(name, value);
  if (schema.has_child) {
    auto child = sender.domain().instantiate(ns + ".Child");
    for (const auto& [name, value] : plan.child_fields) child->set(name, value);
    thing->set("child", reflect::Value(std::move(child)));
  }
  return thing;
}

inline void expect_same_value(const reflect::Value& actual, const reflect::Value& expected,
                              const std::string& where) {
  ASSERT_EQ(actual.kind(), expected.kind()) << where;
  switch (expected.kind()) {
    case reflect::ValueKind::Int32:
      EXPECT_EQ(actual.as_int32(), expected.as_int32()) << where;
      break;
    case reflect::ValueKind::Int64:
      EXPECT_EQ(actual.as_int64(), expected.as_int64()) << where;
      break;
    case reflect::ValueKind::String:
      EXPECT_EQ(actual.as_string(), expected.as_string()) << where;
      break;
    default:
      FAIL() << "unexpected value kind in " << where;
  }
}

/// One fully-drawn protocol round: everything both universes need to run
/// the identical push. Drawing consumes the RNG exactly once per round, so
/// a fixed seed pins the whole sweep.
struct Round {
  Schema schema;
  InterestMode mode = InterestMode::Copy;
  bool with_decoy = false;
  std::shared_ptr<const reflect::Assembly> sender_code;
  std::shared_ptr<const reflect::Assembly> receiver_code;
  std::shared_ptr<const reflect::Assembly> decoy_code;  ///< null without decoy
  std::string sender_ns, receiver_ns, decoy_ns;
  ValuePlan values;
};

inline Round draw_round(int index, const std::string& tag, util::Rng& rng) {
  Round round;
  round.sender_ns = tag + "s" + std::to_string(index);
  round.receiver_ns = tag + "r" + std::to_string(index);
  round.decoy_ns = tag + "d" + std::to_string(index);
  round.schema = random_schema(rng);
  round.mode = static_cast<InterestMode>(rng.next_below(3));
  round.with_decoy = rng.next_bool(0.33);
  round.sender_code = sender_assembly(round.sender_ns, round.schema);
  round.receiver_code = receiver_assembly(round.receiver_ns, round.schema, round.mode, rng);
  // Decoy interest: an unrelated shape that should never steal a match
  // from the derived interest (it is checked first, though — order is
  // part of what must agree across protocols and transports).
  const Schema decoy_schema{{{"unrelated", "string"}, {"other", "int64"}}, false, {}};
  round.decoy_code =
      round.with_decoy ? sender_assembly(round.decoy_ns, decoy_schema) : nullptr;
  round.values = random_values(round.schema, rng);
  return round;
}

/// Hosts the round's assemblies and interests on a fresh sender/receiver
/// pair, runs the push, and reports (ack, delivered snapshot).
inline void run_round(const Round& round, transport::Peer& sender,
                      transport::Peer& receiver, transport::PushAck& ack,
                      std::vector<transport::DeliveredObject>& delivered) {
  sender.host_assembly(round.sender_code);
  receiver.host_assembly(round.receiver_code);
  if (round.decoy_code) {
    receiver.host_assembly(round.decoy_code);
    receiver.add_interest(round.decoy_ns + ".Thing");
  }
  receiver.add_interest(round.receiver_ns + ".Thing");
  const auto object = make_object(sender, round.sender_ns, round.schema, round.values);
  ack = sender.send_object(receiver.name(), object);
  delivered = receiver.delivered_snapshot();
}

/// Re-sends the round's object over an already-run pair — the warmed path:
/// interests, caches and (in session mode) the wire-id/verdict session
/// state are all in place, so the second push must agree with the first.
inline transport::PushAck push_again(const Round& round, transport::Peer& sender,
                                     transport::Peer& receiver) {
  const auto object = make_object(sender, round.sender_ns, round.schema, round.values);
  return sender.send_object(receiver.name(), object);
}

}  // namespace pti::fuzz
