// transport::SocketTransport — real framed bytes over loopback TCP.
//
// Four layers of pinning:
//   * the endpoint contract shared by every Transport implementation:
//     double-attach throws, detach blocks on in-flight handlers (reentrant
//     self-detach returns), unknown recipients fail with NetworkError;
//   * wire behavior only a real socket has: handler exceptions marshalled
//     back as transport faults, hostile raw bytes answered with a fault
//     frame and a closed connection, cross-instance routing where nested
//     protocol round trips flow between two listeners;
//   * cost-model parity: modelled NetStats/clock charges are identical to
//     SimNetwork's for the same traffic, while socket_stats() counts the
//     real framed bytes;
//   * protocol equivalence: the fixed-seed fuzz rounds (shared generators
//     in protocol_fuzz_common.hpp) must produce identical accept/reject
//     verdicts, matched interests, delivered contents and modelled byte
//     counts over SocketTransport as over SimNetwork, in both Optimistic
//     and Eager modes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/interop.hpp"
#include "protocol_fuzz_common.hpp"
#include "serial/frame_codec.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "transport/socket_transport.hpp"
#include "transport/transport_error.hpp"
#include "util/rng.hpp"

namespace pti {
namespace {

using transport::AssemblyHub;
using transport::DeliveredObject;
using transport::LinkConfig;
using transport::Message;
using transport::NetworkError;
using transport::Peer;
using transport::PeerConfig;
using transport::ProtocolMode;
using transport::PushAck;
using transport::SimNetwork;
using transport::SocketTransport;
using transport::SocketTransportConfig;
using transport::TransportError;

Message ping(std::string sender, std::string recipient, std::string detail = "ping") {
  return Message{std::move(sender), std::move(recipient),
                 transport::PushAck{true, std::move(detail)}};
}

// --- endpoint contract --------------------------------------------------------

TEST(SocketTransport, ExchangesCrossTheRealWire) {
  SocketTransport net;
  net.attach("echo", [](const Message& request) {
    Message response;
    response.payload = transport::PushAck{
        true, "echo:" + std::get<transport::PushAck>(request.payload).detail};
    return response;
  });

  const Message response = net.send(ping("caller", "echo", "hello"));
  EXPECT_EQ(std::get<transport::PushAck>(response.payload).detail, "echo:hello");
  EXPECT_EQ(response.sender, "echo");
  EXPECT_EQ(response.recipient, "caller");

  // The exchange really crossed the socket: one request + one response
  // frame in each direction, with their header+body bytes counted.
  EXPECT_EQ(net.socket_stats().frames_sent.get(), 2u);
  EXPECT_EQ(net.socket_stats().frames_received.get(), 2u);
  EXPECT_GT(net.socket_stats().wire_bytes_sent.get(),
            2 * serial::FrameCodec::kHeaderSize);
  EXPECT_GE(net.socket_stats().connections_accepted.get(), 1u);
  net.detach("echo");
}

// --- connect retry / backoff --------------------------------------------------

/// A loopback port with (very probably) no listener: bind an ephemeral
/// port, read it back, close it.
[[nodiscard]] std::uint16_t closed_port() {
  SocketTransport probe;
  return probe.port();
}

TEST(SocketTransport, ConnectRetryGivesUpAfterBoundedAttempts) {
  SocketTransportConfig config;
  config.connect_attempts = 3;
  config.connect_backoff_initial_us = 200;
  config.connect_backoff_max_us = 1'000;
  SocketTransport net(config);
  net.add_route("ghost", closed_port());
  try {
    (void)net.send(ping("caller", "ghost"));
    FAIL() << "expected NetworkError";
  } catch (const NetworkError& e) {
    // ECONNREFUSED is transient, so all attempts were spent.
    EXPECT_NE(std::string(e.what()).find("after 3 attempts"), std::string::npos);
  }
  EXPECT_EQ(net.socket_stats().connect_retries.get(), 2u);
  EXPECT_EQ(net.socket_stats().connections_dialed.get(), 0u);
}

TEST(SocketTransport, SingleConnectAttemptDisablesRetry) {
  SocketTransportConfig config;
  config.connect_attempts = 1;
  SocketTransport net(config);
  net.add_route("ghost", closed_port());
  EXPECT_THROW((void)net.send(ping("caller", "ghost")), NetworkError);
  EXPECT_EQ(net.socket_stats().connect_retries.get(), 0u);
}

TEST(SocketTransport, ConnectRetryRecoversWhenListenerComesUp) {
  const std::uint16_t port = closed_port();
  SocketTransportConfig config;
  config.connect_attempts = 50;
  config.connect_backoff_initial_us = 2'000;
  config.connect_backoff_max_us = 10'000;
  SocketTransport client(config);
  client.add_route("late", port);

  // The listener appears only after the client has started (and failed)
  // dialing: the bounded retry must bridge the gap — the restarting-server
  // scenario a single-shot connect cannot survive.
  std::atomic<bool> done{false};
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    SocketTransportConfig server_config;
    server_config.port = port;
    SocketTransport server(server_config);
    server.attach("late", [](const Message& request) {
      Message response;
      response.payload = PushAck{true, "finally"};
      return response;
    });
    while (!done.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.detach("late");
  });

  // Joins on every exit path — an assertion throw must not destroy a
  // joinable thread.
  struct Joiner {
    std::atomic<bool>& done;
    std::thread& thread;
    ~Joiner() {
      done.store(true);
      if (thread.joinable()) thread.join();
    }
  } joiner{done, starter};

  // The dial retry bridges the listener gap; a separate (benign) race —
  // connecting in the window between the server's listen() and its
  // attach("late") — surfaces as a TransportError fault frame, so retry
  // the exchange itself on that one.
  PushAck ack;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    try {
      ack = std::get<PushAck>(client.send(ping("caller", "late")).payload);
      break;
    } catch (const TransportError&) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "late endpoint never became reachable";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(ack.detail, "finally");
  EXPECT_GE(client.socket_stats().connect_retries.get(), 1u);
  EXPECT_GE(client.socket_stats().connections_dialed.get(), 1u);
}

TEST(SocketTransport, UnknownRecipientThrowsNetworkError) {
  SocketTransport net;
  EXPECT_THROW((void)net.send(ping("caller", "nobody")), NetworkError);
}

TEST(SocketTransport, DoubleAttachThrows) {
  SocketTransport net;
  // The empty name is reserved for unaddressed transport fault frames.
  EXPECT_THROW(net.attach("", [](const Message&) { return Message{}; }),
               TransportError);
  net.attach("peer", [](const Message&) { return Message{}; });
  EXPECT_THROW(net.attach("peer", [](const Message&) { return Message{}; }),
               TransportError);
  EXPECT_THROW(net.attach("PEER", [](const Message&) { return Message{}; }),
               TransportError);  // endpoint names are case-insensitive
  net.detach("peer");
  EXPECT_FALSE(net.is_attached("peer"));
  net.attach("peer", [](const Message&) { return Message{}; });  // reattach ok
  net.detach("peer");
}

TEST(SocketTransport, DetachBlocksUntilInFlightHandlerFinishes) {
  SocketTransport net;
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::atomic<bool> handler_done{false};

  net.attach("slow", [&](const Message& request) {
    {
      std::unique_lock lock(mutex);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    handler_done.store(true);
    Message response;
    response.payload = transport::PushAck{true, "done"};
    address_response(request, response);
    return response;
  });

  auto future = net.send_async(ping("caller", "slow"));
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::unique_lock lock(mutex);
    release = true;
    cv.notify_all();
  });
  net.detach("slow");  // must block until the handler above returns
  EXPECT_TRUE(handler_done.load());
  releaser.join();
  (void)future.get();
}

TEST(SocketTransport, ReentrantSelfDetachReturnsImmediately) {
  SocketTransport net;
  net.attach("self", [&net](const Message& request) {
    net.detach("self");  // must not deadlock waiting for itself
    Message response;
    response.payload = transport::PushAck{true, "detached"};
    address_response(request, response);
    return response;
  });
  const Message response = net.send(ping("caller", "self"));
  EXPECT_EQ(std::get<transport::PushAck>(response.payload).detail, "detached");
  EXPECT_FALSE(net.is_attached("self"));
}

TEST(SocketTransport, HandlerExceptionsAreMarshalledBack) {
  SocketTransport net;
  net.attach("thrower", [](const Message&) -> Message {
    throw std::runtime_error("kaboom");
  });
  try {
    (void)net.send(ping("caller", "thrower"));
    FAIL() << "handler exception did not surface";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos) << e.what();
  }
  // The transport survives: the endpoint still answers after a fault.
  net.attach("healthy", [](const Message& request) {
    Message response;
    response.payload = transport::PushAck{true, "ok"};
    address_response(request, response);
    return response;
  });
  EXPECT_TRUE(
      std::get<transport::PushAck>(net.send(ping("caller", "healthy")).payload).delivered);
  net.detach("thrower");
  net.detach("healthy");
}

TEST(SocketTransport, SendAsyncFailuresSurfaceThroughTheFuture) {
  SocketTransport net;
  auto future = net.send_async(ping("caller", "nobody"));
  EXPECT_THROW((void)future.get(), NetworkError);

  std::promise<std::string> callback_result;
  net.send_async(ping("caller", "nobody"),
                 [&](Message, std::exception_ptr error) {
                   try {
                     std::rethrow_exception(error);
                   } catch (const NetworkError& e) {
                     callback_result.set_value(e.what());
                   } catch (...) {
                     callback_result.set_value("wrong exception type");
                   }
                 });
  EXPECT_NE(callback_result.get_future().get().find("nobody"), std::string::npos);
  net.drain();
}

TEST(SocketTransport, SendAsyncDeliversConcurrently) {
  SocketTransport net(SocketTransportConfig{.async_workers = 3});
  std::atomic<int> handled{0};
  net.attach("sink", [&](const Message& request) {
    ++handled;
    Message response;
    response.payload = transport::PushAck{true, "ok"};
    address_response(request, response);
    return response;
  });
  std::vector<std::future<Message>> in_flight;
  for (int i = 0; i < 32; ++i) in_flight.push_back(net.send_async(ping("caller", "sink")));
  for (auto& future : in_flight) {
    EXPECT_TRUE(std::get<transport::PushAck>(future.get().payload).delivered);
  }
  EXPECT_EQ(handled.load(), 32);
  net.drain();
  EXPECT_EQ(net.pending(), 0u);
  net.detach("sink");
}

TEST(SocketTransport, RejectBackpressureFailsOverflowingSendAsync) {
  SocketTransport net(SocketTransportConfig{
      .async_workers = 1,
      .max_outbound = 1,
      .overflow = SocketTransportConfig::Overflow::Reject});
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  net.attach("slow", [&](const Message& request) {
    std::unique_lock lock(mutex);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    Message response;
    response.payload = transport::PushAck{true, "ok"};
    address_response(request, response);
    return response;
  });

  // #1 occupies the single worker (its handler is gated); #2 fills the
  // 1-slot queue; #3 must be rejected with TransportError, not block.
  auto first = net.send_async(ping("caller", "slow"));
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }
  auto second = net.send_async(ping("caller", "slow"));
  auto third = net.send_async(ping("caller", "slow"));
  EXPECT_THROW((void)third.get(), TransportError);

  {
    std::unique_lock lock(mutex);
    release = true;
    cv.notify_all();
  }
  EXPECT_TRUE(std::get<transport::PushAck>(first.get().payload).delivered);
  EXPECT_TRUE(std::get<transport::PushAck>(second.get().payload).delivered);
  net.drain();
  net.detach("slow");
}

// --- wire-only behavior -------------------------------------------------------

TEST(SocketTransport, HostileBytesGetAFaultFrameAndAClosedConnection) {
  SocketTransport net;
  net.attach("victim", [](const Message&) { return Message{}; });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(net.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  // One header's worth of garbage (exactly 10 bytes, so no unread input
  // lingers to turn the close into an RST): not a valid header, so the
  // transport must answer with a fault frame and close — never crash or
  // hang.
  const std::uint8_t garbage[10] = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6};
  ASSERT_EQ(::send(fd, garbage, sizeof garbage, 0), static_cast<ssize_t>(sizeof garbage));

  std::vector<std::uint8_t> reply(4096);
  std::size_t got = 0;
  for (;;) {
    const ssize_t r = ::recv(fd, reply.data() + got, reply.size() - got, 0);
    if (r <= 0) break;  // connection closed after the fault frame
    got += static_cast<std::size_t>(r);
  }
  ::close(fd);

  ASSERT_GT(got, serial::FrameCodec::kHeaderSize);
  const serial::FrameCodec codec;
  const Message fault = codec.decode(std::span(reply.data(), got));
  const auto& error = std::get<transport::ErrorReply>(fault.payload);
  EXPECT_NE(error.message.find("bad-magic"), std::string::npos) << error.message;

  // The garbage header bytes moved over the wire, so they count — hostile
  // streams must not undercount wire_bytes_received just because they
  // never decode.
  EXPECT_EQ(net.socket_stats().wire_bytes_received.get(), sizeof garbage);

  // And the transport still serves well-formed traffic afterwards.
  net.attach("alive", [](const Message& request) {
    Message response;
    response.payload = transport::PushAck{true, "alive"};
    address_response(request, response);
    return response;
  });
  EXPECT_TRUE(
      std::get<transport::PushAck>(net.send(ping("caller", "alive")).payload).delivered);
  net.detach("victim");
  net.detach("alive");
}

TEST(SocketTransport, OversizedFaultReasonsAreTruncatedNotFatal) {
  // Regression: a valid frame whose recipient string nearly fills the body
  // budget used to make the "no peer attached" fault reason exceed
  // max_body_bytes, so encoding the fault threw FrameError{Oversized} on
  // the reader thread (outside any catch) and std::terminate()d the
  // process. The reason must be truncated and the fault still delivered.
  SocketTransportConfig server_config;
  server_config.frame_limits.max_body_bytes = 4096;
  SocketTransport server(server_config);
  SocketTransport client;

  const std::string huge_name(4000, 'r');  // decodes fine, faults oversized
  client.add_route(huge_name, server.port());
  try {
    (void)client.send(ping("caller", huge_name));
    FAIL() << "unknown recipient did not surface";
  } catch (const NetworkError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no peer attached"), std::string::npos)
        << what.substr(0, 120);
    EXPECT_NE(what.find("[truncated]"), std::string::npos) << what.substr(0, 120);
    EXPECT_LT(what.size(), server_config.frame_limits.max_body_bytes);
  }

  // The reader thread survived: the server still answers new exchanges.
  server.attach("alive", [](const Message& request) {
    Message response;
    response.payload = transport::PushAck{true, "alive"};
    address_response(request, response);
    return response;
  });
  client.add_route("alive", server.port());
  EXPECT_TRUE(
      std::get<transport::PushAck>(client.send(ping("caller", "alive")).payload)
          .delivered);
}

TEST(SocketTransport, UndecodableResponseSurfacesAsNetworkError) {
  // A fake "server" that answers any request with garbage bytes: send()
  // must classify that through the documented wire-failure family
  // (NetworkError), never leak serial::FrameError through the seam.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t fake_port = ntohs(addr.sin_port);

  std::thread fake_server([listener] {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    std::uint8_t request[512];
    (void)::recv(fd, request, sizeof request, 0);  // swallow the request
    const std::uint8_t garbage[10] = {'n', 'o', 'p', 'e', 0, 0, 0, 0, 0, 0};
    (void)::send(fd, garbage, sizeof garbage, 0);
    ::close(fd);
  });

  SocketTransport net;
  net.add_route("impostor", fake_port);
  try {
    (void)net.send(ping("caller", "impostor"));
    FAIL() << "garbage response did not surface";
  } catch (const NetworkError& e) {
    EXPECT_NE(std::string(e.what()).find("undecodable"), std::string::npos) << e.what();
  }
  fake_server.join();
  ::close(listener);
}

TEST(SocketTransport, DropProbabilityDropsBeforeAnyByteMoves) {
  SocketTransport net;
  net.attach("peer", [](const Message&) { return Message{}; });
  net.set_link("caller", "peer", LinkConfig{.drop_probability = 1.0});
  EXPECT_THROW((void)net.send(ping("caller", "peer")), NetworkError);
  EXPECT_EQ(net.stats().drops.get(), 1u);
  EXPECT_EQ(net.socket_stats().frames_sent.get(), 0u);  // dropped pre-wire
  net.detach("peer");
}

TEST(SocketTransport, DroppedResponseFaultsInsteadOfSilentClose) {
  SocketTransport net;
  std::atomic<int> served{0};
  net.attach("peer", [&](const Message& request) {
    ++served;
    Message response;
    response.payload = transport::PushAck{true, "ok"};
    address_response(request, response);
    return response;
  });

  // Warm the connection pool with one successful exchange, then drop every
  // response. A served request whose response is dropped must answer with
  // a fault frame, never a silent close: a zero-byte close on a pooled
  // connection means "never served" to the client's stale-pool retry, so a
  // silent close here would re-execute the handler.
  EXPECT_TRUE(
      std::get<transport::PushAck>(net.send(ping("caller", "peer")).payload).delivered);
  net.set_link("peer", "caller", LinkConfig{.drop_probability = 1.0});
  try {
    (void)net.send(ping("caller", "peer"));
    FAIL() << "dropped response did not surface";
  } catch (const NetworkError& e) {
    EXPECT_NE(std::string(e.what()).find("was dropped"), std::string::npos) << e.what();
  }
  EXPECT_EQ(served.load(), 2);  // exactly once per send — no retry re-execution
  EXPECT_EQ(net.stats().drops.get(), 1u);
  net.detach("peer");
}

TEST(SocketTransport, CrossInstanceRoutingRunsTheFullProtocol) {
  // Two transports = two listeners; each peer lives on its own instance,
  // exactly like two processes sharing only routes. The optimistic push
  // makes bob's handler issue nested TypeInfoRequest/CodeRequest round
  // trips back to alice — every one of them a framed exchange between the
  // two listeners.
  SocketTransport net_a;
  SocketTransport net_b;
  net_a.add_route("bob", net_b.port());
  net_b.add_route("alice", net_a.port());

  auto hub = std::make_shared<AssemblyHub>();
  Peer alice("alice", net_a, hub, PeerConfig{.mode = ProtocolMode::Optimistic});
  Peer bob("bob", net_b, hub, PeerConfig{.mode = ProtocolMode::Optimistic});

  util::Rng rng(0xD15C0ULL);
  const fuzz::Schema schema = fuzz::random_schema(rng);
  alice.host_assembly(fuzz::sender_assembly("xinsA", schema));
  bob.host_assembly(fuzz::receiver_assembly("xinsB", schema, fuzz::InterestMode::Copy, rng));
  bob.add_interest("xinsB.Thing");

  const fuzz::ValuePlan values = fuzz::random_values(schema, rng);
  const auto object = fuzz::make_object(alice, "xinsA", schema, values);
  const PushAck ack = alice.send_object("bob", object);
  ASSERT_TRUE(ack.delivered) << ack.detail;

  const auto delivered = bob.delivered_snapshot();
  ASSERT_EQ(delivered.size(), 1u);
  for (const auto& [field, sent] : values.fields) {
    fuzz::expect_same_value(delivered.front().object->get(field), sent,
                            "cross-instance field " + field);
  }
  // Both instances moved real frames: alice's transport dialed bob's and
  // vice versa (nested description fetches flow bob -> alice).
  EXPECT_GT(net_a.socket_stats().frames_sent.get(), 0u);
  EXPECT_GT(net_b.socket_stats().frames_sent.get(), 0u);
  EXPECT_GT(net_b.socket_stats().connections_dialed.get(), 0u);
}

TEST(SocketTransport, WorksUnderneathThePublicApi) {
  core::InteropSystem system(std::make_unique<SocketTransport>());
  core::InteropRuntime& sender = system.create_runtime("api-sender");
  core::InteropRuntime& receiver = system.create_runtime("api-receiver");

  util::Rng rng(0xAB1EULL);
  const fuzz::Schema schema = fuzz::random_schema(rng);
  sender.publish_assembly(fuzz::sender_assembly("sockapiS", schema));
  receiver.publish_assembly(
      fuzz::receiver_assembly("sockapiR", schema, fuzz::InterestMode::Copy, rng));

  std::atomic<int> deliveries{0};
  auto subscription = receiver.subscribe(receiver.type("sockapiR.Thing"),
                                         [&](const DeliveredObject&) { ++deliveries; });

  const fuzz::ValuePlan values = fuzz::random_values(schema, rng);
  auto object = sender.make("sockapiS.Thing");
  for (const auto& [field, value] : values.fields) object->set(field, value);
  if (schema.has_child) {
    auto child = sender.make("sockapiS.Child");
    for (const auto& [field, value] : values.child_fields) child->set(field, value);
    object->set("child", reflect::Value(std::move(child)));
  }

  const PushAck ack = sender.send("api-receiver", object);
  EXPECT_TRUE(ack.delivered) << ack.detail;
  EXPECT_EQ(deliveries.load(), 1);

  const PushAck async_ack = sender.send_async("api-receiver", object).get();
  EXPECT_TRUE(async_ack.delivered) << async_ack.detail;
  EXPECT_EQ(deliveries.load(), 2);
}

// --- equivalence with SimNetwork ---------------------------------------------

constexpr std::uint64_t kSweepSeed = 0x50CCE7F00DULL;
constexpr int kSweepRounds = 24;

template <class Transport>
struct Universe {
  Transport net;
  std::shared_ptr<AssemblyHub> hub = std::make_shared<AssemblyHub>();
  Peer sender;
  Peer receiver;

  explicit Universe(ProtocolMode mode, bool sessions = false, std::size_t max_batch = 1)
      : sender("sender", net, hub, config_for(mode, sessions, max_batch)),
        receiver("receiver", net, hub, config_for(mode, sessions, max_batch)) {}

  static PeerConfig config_for(ProtocolMode mode, bool sessions, std::size_t max_batch) {
    PeerConfig config{.mode = mode, .use_sessions = sessions};
    config.session.max_batch = max_batch;
    return config;
  }
};

/// The acceptance pin: the same fixed-seed fuzz rounds, over loopback
/// sockets and over the in-process simulator, must be indistinguishable at
/// the protocol level — verdict, matched interest, delivered contents, and
/// the modelled cost accounting. With `sessions` the sweep runs the
/// session-layer protocol instead (SessionPush/SessionAck frames really
/// crossing the socket) and adds a warmed second push per round, which
/// must also agree between the two transports.
void run_equivalence_sweep(ProtocolMode mode, const char* tag, bool sessions = false,
                           std::size_t max_batch = 1) {
  util::Rng rng(kSweepSeed);
  int accepted = 0;
  for (int index = 0; index < kSweepRounds; ++index) {
    const fuzz::Round round = fuzz::draw_round(index, tag, rng);

    PushAck sim_ack;
    PushAck socket_ack;
    std::vector<DeliveredObject> sim_delivered;
    std::vector<DeliveredObject> socket_delivered;

    Universe<SimNetwork> sim_universe(mode, sessions, max_batch);
    fuzz::run_round(round, sim_universe.sender, sim_universe.receiver, sim_ack,
                    sim_delivered);
    Universe<SocketTransport> socket_universe(mode, sessions, max_batch);
    fuzz::run_round(round, socket_universe.sender, socket_universe.receiver, socket_ack,
                    socket_delivered);

    const std::string context = std::string(tag) + " round " + std::to_string(index);

    // Identical verdict and matched interest.
    ASSERT_EQ(socket_ack.delivered, sim_ack.delivered) << context;
    EXPECT_EQ(socket_ack.detail, sim_ack.detail) << context;

    if (sessions) {
      // Warmed repeat over both live sessions: same verdict, one framed
      // exchange each (the request and its SessionAck), on the simulator
      // and on the real socket alike.
      const std::uint64_t sim_before = sim_universe.net.stats().messages.get();
      const std::uint64_t socket_before = socket_universe.net.stats().messages.get();
      const PushAck sim_warm =
          fuzz::push_again(round, sim_universe.sender, sim_universe.receiver);
      const PushAck socket_warm =
          fuzz::push_again(round, socket_universe.sender, socket_universe.receiver);
      ASSERT_EQ(socket_warm.delivered, sim_warm.delivered) << context;
      EXPECT_EQ(socket_warm.detail, sim_warm.detail) << context;
      EXPECT_EQ(sim_warm.delivered, sim_ack.delivered) << context;
      EXPECT_EQ(sim_universe.net.stats().messages.get() - sim_before, 2u) << context;
      EXPECT_EQ(socket_universe.net.stats().messages.get() - socket_before, 2u)
          << context;
      EXPECT_EQ(sim_universe.receiver.stats().session_verdict_hits, 1u) << context;
      EXPECT_EQ(socket_universe.receiver.stats().session_verdict_hits, 1u) << context;

      if (max_batch > 1) {
        // Batched window: max_batch async pushes fill the window and
        // cross as ONE SessionBatch frame — two messages total — on the
        // simulator and on the real socket alike, every slot agreeing
        // with the warmed verdict.
        const auto run_batch = [&](auto& universe) {
          std::vector<std::future<PushAck>> futures;
          for (std::size_t i = 0; i < max_batch; ++i) {
            futures.push_back(universe.sender.send_object_async(
                "receiver", fuzz::make_object(universe.sender, round.sender_ns,
                                              round.schema, round.values)));
          }
          std::vector<PushAck> acks;
          acks.reserve(futures.size());
          for (auto& future : futures) acks.push_back(future.get());
          return acks;
        };
        const std::uint64_t sim_batch_before = sim_universe.net.stats().messages.get();
        const std::uint64_t socket_batch_before =
            socket_universe.net.stats().messages.get();
        const std::vector<PushAck> sim_acks = run_batch(sim_universe);
        const std::vector<PushAck> socket_acks = run_batch(socket_universe);
        for (std::size_t i = 0; i < max_batch; ++i) {
          ASSERT_EQ(socket_acks[i].delivered, sim_acks[i].delivered) << context;
          EXPECT_EQ(socket_acks[i].detail, sim_acks[i].detail) << context;
          EXPECT_EQ(sim_acks[i].delivered, sim_warm.delivered) << context;
          EXPECT_EQ(sim_acks[i].detail, sim_warm.detail) << context;
        }
        EXPECT_EQ(sim_universe.net.stats().messages.get() - sim_batch_before, 2u)
            << context;
        EXPECT_EQ(socket_universe.net.stats().messages.get() - socket_batch_before, 2u)
            << context;
        EXPECT_EQ(sim_universe.receiver.stats().session_batches, 1u) << context;
        EXPECT_EQ(socket_universe.receiver.stats().session_batches, 1u) << context;
      }

      // Refresh the delivered snapshots so the shared comparison below
      // covers the warmed (and batched) deliveries too.
      sim_delivered = sim_universe.receiver.delivered_snapshot();
      socket_delivered = socket_universe.receiver.delivered_snapshot();
    }

    // Identical delivered contents (per accepted round: the cold push,
    // plus in session mode the warmed repeat, plus max_batch batched
    // deliveries when a batching window ran).
    const std::size_t expected_deliveries =
        sessions ? 2u + (max_batch > 1 ? max_batch : 0u) : 1u;
    ASSERT_EQ(socket_delivered.size(), sim_delivered.size()) << context;
    if (socket_ack.delivered) {
      ++accepted;
      ASSERT_EQ(socket_delivered.size(), expected_deliveries) << context;
      for (std::size_t d = 0; d < socket_delivered.size(); ++d) {
        EXPECT_EQ(socket_delivered[d].interest_type, sim_delivered[d].interest_type)
            << context;
        for (const auto& [field, sent] : round.values.fields) {
          fuzz::expect_same_value(socket_delivered[d].object->get(field), sent,
                                  context + " socket field " + field);
        }
      }
    }

    // Identical modelled accounting: same messages, same wire_size bytes,
    // same virtual-clock reading — the socket path charges the exact cost
    // model the simulator does (real framed bytes are socket_stats()).
    EXPECT_EQ(socket_universe.net.stats().messages.get(),
              sim_universe.net.stats().messages.get())
        << context;
    EXPECT_EQ(socket_universe.net.stats().bytes.get(),
              sim_universe.net.stats().bytes.get())
        << context;
    EXPECT_EQ(socket_universe.net.clock().now_ns(), sim_universe.net.clock().now_ns())
        << context;
    EXPECT_GE(socket_universe.net.socket_stats().frames_sent.get(),
              sim_universe.net.stats().messages.get())
        << context;
  }
  EXPECT_GT(accepted, 0) << "sweep degenerated: nothing conformed";
  EXPECT_LT(accepted, kSweepRounds) << "sweep degenerated: everything conformed";
}

TEST(SocketTransportEquivalence, OptimisticProtocolMatchesSimNetwork) {
  run_equivalence_sweep(ProtocolMode::Optimistic, "sko");
}

TEST(SocketTransportEquivalence, EagerProtocolMatchesSimNetwork) {
  run_equivalence_sweep(ProtocolMode::Eager, "ske");
}

TEST(SocketTransportEquivalence, SessionOptimisticMatchesSimNetwork) {
  run_equivalence_sweep(ProtocolMode::Optimistic, "skso", /*sessions=*/true);
}

TEST(SocketTransportEquivalence, SessionEagerMatchesSimNetwork) {
  run_equivalence_sweep(ProtocolMode::Eager, "skse", /*sessions=*/true);
}

TEST(SocketTransportEquivalence, SessionBatchedOptimisticMatchesSimNetwork) {
  run_equivalence_sweep(ProtocolMode::Optimistic, "skbo", /*sessions=*/true,
                        /*max_batch=*/3);
}

TEST(SocketTransportEquivalence, SessionBatchedEagerMatchesSimNetwork) {
  run_equivalence_sweep(ProtocolMode::Eager, "skbe", /*sessions=*/true,
                        /*max_batch=*/3);
}

}  // namespace
}  // namespace pti
