// Megasim determinism and shared-index semantics (ISSUE 8 tentpole).
//
// Three layers under test:
//
//   EventLoop        (time, seq)-ordered firing, clock coupling, clamping.
//   InterestIndex    declaration-order matching, idempotent registration,
//                    LIFO id reuse, tombstone compaction, fingerprint
//                    buckets, sorted-union fan-out — plus a churn test
//                    that TSan watches: concurrent subscribe/unsubscribe
//                    against pinned snapshot readers.
//   Scenario         the determinism contract: same seed => byte-identical
//                    trace/accept/stats digests, invariant under host
//                    thread count; eager and optimistic modes agree on
//                    every accept/reject verdict while optimistic moves
//                    fewer bytes; the inverted index and the per-peer-scan
//                    baseline produce identical runs.
//
// SimScale.PopulationScenario is the CI scale gate: peers default to 3000
// for plain ctest; the scale-smoke stage sets PTI_SIM_PEERS=10000 and the
// nightly soak sweeps 10^5 (and 10^6 on big iron). The scenario runs
// PTI_SIM_RUNS times (default 2) and every run must produce the same
// digests.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/scenario.hpp"
#include "transport/interest_index.hpp"
#include "transport/transport_error.hpp"
#include "util/epoch.hpp"
#include "util/interning.hpp"
#include "util/sim_clock.hpp"

namespace pti {
namespace {

using sim::EventLoop;
using sim::Scenario;
using sim::ScenarioConfig;
using sim::ScenarioResult;
using sim::ScenarioScript;
using transport::InterestEntry;
using transport::InterestIndex;
using transport::SubscriberId;
using util::InternedName;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' ? std::strtoull(raw, nullptr, 10) : fallback;
}

InternedName intern(const std::string& s) { return util::SymbolTable::global().intern(s); }

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoopTest, FiresInTimeThenScheduleOrder) {
  EventLoop loop(1);
  std::vector<int> order;
  loop.at(200, [&] { order.push_back(3); });
  loop.at(100, [&] { order.push_back(1); });
  loop.at(100, [&] { order.push_back(2); });  // same tick: schedule order
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now_ns(), 200u);
}

TEST(EventLoopTest, EventsMayScheduleMoreEventsAndPastClampsToNow) {
  EventLoop loop(1);
  std::vector<int> order;
  loop.at(100, [&] {
    order.push_back(1);
    loop.at(50, [&] { order.push_back(2); });  // in the past: fires next
    loop.after(10, [&] { order.push_back(3); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now_ns(), 110u);
}

TEST(EventLoopTest, RunUntilAdvancesSharedClock) {
  util::SimClock clock;
  EventLoop loop(1, &clock);
  int fired = 0;
  loop.at(100, [&] { fired++; });
  loop.at(900, [&] { fired++; });
  EXPECT_EQ(loop.run_until(500), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now_ns(), 500u);  // advanced to the horizon, not the event
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(clock.now_ns(), 900u);
}

// --- InterestIndex -----------------------------------------------------------

TEST(InterestIndexTest, MatchFirstHonorsDeclarationOrder) {
  InterestIndex index;
  const SubscriberId sub = index.add_subscriber();
  const InternedName a = intern("simidx.order.A");
  const InternedName b = intern("simidx.order.B");
  const InternedName c = intern("simidx.order.C");
  index.add_interest(sub, b, 2);
  index.add_interest(sub, a, 1);
  index.add_interest(sub, c, 3);

  // Everything matches: the FIRST DECLARED interest wins, not the lowest id.
  const auto any = index.match_first(sub, [](const InterestEntry&) { return true; });
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->interest, b);
  EXPECT_EQ(any->fingerprint, 2u);

  // A selective acceptor sees candidates in declaration order too.
  std::vector<InternedName> seen;
  const auto last = index.match_first(sub, [&](const InterestEntry& e) {
    seen.push_back(e.interest);
    return e.interest == c;
  });
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->interest, c);
  EXPECT_EQ(seen, (std::vector<InternedName>{b, a, c}));
}

TEST(InterestIndexTest, RegistrationIsIdempotentAndRemovable) {
  InterestIndex index;
  const SubscriberId sub = index.add_subscriber();
  const InternedName a = intern("simidx.idem.A");
  index.add_interest(sub, a, 7);
  index.add_interest(sub, a, 7);  // duplicate pair: no-op
  EXPECT_EQ(index.entry_count(), 1u);
  EXPECT_EQ(index.interest_count(), 1u);

  index.remove_interest(sub, a);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_EQ(index.interest_count(), 0u);
  std::vector<SubscriberId> subs;
  EXPECT_EQ(index.collect_subscribers(a, subs), 0u);

  EXPECT_THROW(index.add_interest(sub, InternedName(), 0), transport::TransportError);
  EXPECT_THROW(index.add_interest(sub + 100, a, 7), transport::TransportError);
}

TEST(InterestIndexTest, SubscriberIdsAreDenseAndReusedLifo) {
  InterestIndex index;
  const SubscriberId s0 = index.add_subscriber();
  const SubscriberId s1 = index.add_subscriber();
  const SubscriberId s2 = index.add_subscriber();
  EXPECT_EQ(s1, s0 + 1);
  EXPECT_EQ(s2, s0 + 2);

  index.remove_subscriber(s1);
  index.remove_subscriber(s2);
  EXPECT_FALSE(index.is_live(s1));
  // LIFO reuse: the most recently freed id comes back first — this is what
  // keeps churned scenario replays deterministic.
  EXPECT_EQ(index.add_subscriber(), s2);
  EXPECT_EQ(index.add_subscriber(), s1);
  EXPECT_TRUE(index.is_live(s1));
}

TEST(InterestIndexTest, PostingListsSurviveTombstoneCompaction) {
  InterestIndex index;
  const InternedName hot = intern("simidx.compact.Hot");
  std::vector<SubscriberId> subs;
  for (int i = 0; i < 400; ++i) {
    const SubscriberId sub = index.add_subscriber();
    index.add_interest(sub, hot, 11);
    subs.push_back(sub);
  }
  // Remove enough for erase() to trip compaction (tombstones > live).
  for (int i = 0; i < 300; ++i) index.remove_subscriber(subs[i]);

  std::vector<SubscriberId> collected;
  ASSERT_EQ(index.collect_subscribers(hot, collected), 100u);
  // Subscription order of the survivors is preserved across compaction.
  EXPECT_EQ(collected, std::vector<SubscriberId>(subs.begin() + 300, subs.end()));
  index.epochs().try_reclaim();
}

TEST(InterestIndexTest, EquivalenceCandidatesGroupByFingerprint) {
  InterestIndex index;
  const SubscriberId sub = index.add_subscriber();
  const InternedName a = intern("simidx.fp.A");
  const InternedName b = intern("simidx.fp.B");
  const InternedName c = intern("simidx.fp.C");
  index.add_interest(sub, a, 0xAAAA);
  index.add_interest(sub, b, 0xAAAA);  // same structure, different name
  index.add_interest(sub, c, 0xCCCC);

  std::vector<InternedName> candidates;
  ASSERT_EQ(index.equivalence_candidates(0xAAAA, candidates), 2u);
  EXPECT_EQ(candidates, (std::vector<InternedName>{a, b}));
  candidates.clear();
  EXPECT_EQ(index.equivalence_candidates(0xBBBB, candidates), 0u);

  // The bucket empties when its last interest goes.
  index.remove_interest(sub, a);
  index.remove_interest(sub, b);
  candidates.clear();
  EXPECT_EQ(index.equivalence_candidates(0xAAAA, candidates), 0u);
}

TEST(InterestIndexTest, CollectMatchesReturnsSortedUnion) {
  InterestIndex index;
  const InternedName x = intern("simidx.union.X");
  const InternedName y = intern("simidx.union.Y");
  const SubscriberId s0 = index.add_subscriber();
  const SubscriberId s1 = index.add_subscriber();
  const SubscriberId s2 = index.add_subscriber();
  index.add_interest(s2, x, 1);
  index.add_interest(s0, x, 1);
  index.add_interest(s0, y, 2);
  index.add_interest(s1, y, 2);

  std::vector<SubscriberId> out;
  std::vector<InternedName> scratch;
  // Accept both interests: s0 subscribes to both but appears once.
  ASSERT_EQ(index.collect_matches([](const InterestEntry&) { return true; }, out, scratch),
            3u);
  EXPECT_EQ(out, (std::vector<SubscriberId>{s0, s1, s2}));

  out.clear();
  ASSERT_EQ(index.collect_matches(
                [&](const InterestEntry& e) { return e.interest == y; }, out, scratch),
            2u);
  EXPECT_EQ(out, (std::vector<SubscriberId>{s0, s1}));
}

// The TSan target: writers churn subscriptions on a shared index while
// pinned readers walk snapshots and an epoch thread reclaims. Run under
// the tsan preset this asserts the epoch invariant (pinned readers never
// touch freed storage); under plain builds it is a liveness smoke.
TEST(InterestIndexTest, ConcurrentChurnWithPinnedReaders) {
  InterestIndex index;
  const int kInterests = 8;
  std::vector<InternedName> names;
  for (int i = 0; i < kInterests; ++i) {
    names.push_back(intern("simidx.churn.T" + std::to_string(i)));
  }

  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(100 + w);
      for (int round = 0; round < 400; ++round) {
        const SubscriberId sub = index.add_subscriber();
        for (int i = 0; i < kInterests; ++i) {
          if (rng.next_bool(0.5)) {
            index.add_interest(sub, names[i], static_cast<std::uint64_t>(i));
          }
        }
        if (rng.next_bool(0.3)) {
          index.remove_interest(sub, names[rng.next_below(kInterests)]);
        }
        index.remove_subscriber(sub);
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      std::vector<SubscriberId> subs;
      std::vector<InternedName> interests;
      for (int round = 0; round < 600; ++round) {
        util::EpochManager::Pin pin(index.epochs());
        subs.clear();
        index.collect_subscribers(names[round % kInterests], subs);
        interests.clear();
        index.collect_interests(interests);
        for (const SubscriberId sub : subs) {
          if (const auto* held = index.interests_of(sub)) {
            for (const InterestEntry& e : *held) ASSERT_TRUE(e.interest.valid());
          }
        }
        (void)r;
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) index.epochs().try_reclaim();
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(index.subscriber_count(), 0u);
  EXPECT_EQ(index.entry_count(), 0u);
  index.epochs().try_reclaim();
}

// --- Scenario determinism ----------------------------------------------------

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.peers = 400;
  config.types = 24;
  config.type_groups = 6;
  config.fanout_cap = 32;
  return config;
}

TEST(ScenarioDeterminism, SameSeedByteIdenticalDigests) {
  const ScenarioScript script = ScenarioScript::standard(400);
  const ScenarioResult first = sim::run_scenario(small_config(7), script);
  const ScenarioResult second = sim::run_scenario(small_config(7), script);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
  EXPECT_EQ(first.accept_digest, second.accept_digest);
  EXPECT_EQ(first.stats_digest, second.stats_digest);
  EXPECT_EQ(first.stats.net_bytes, second.stats.net_bytes);

  // The run did real work in every dimension the digest covers.
  EXPECT_GT(first.stats.publishes, 0u);
  EXPECT_GT(first.stats.accepts, 0u);
  EXPECT_GT(first.stats.rejects, 0u);
  EXPECT_GT(first.stats.leaves, 0u);
  EXPECT_GT(first.stats.partitions, 0u);
  EXPECT_EQ(first.stats.heals, first.stats.partitions);
}

TEST(ScenarioDeterminism, DifferentSeedDiverges) {
  const ScenarioScript script = ScenarioScript::standard(400);
  const ScenarioResult a = sim::run_scenario(small_config(7), script);
  const ScenarioResult b = sim::run_scenario(small_config(8), script);
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

// Independent scenarios on four host threads, all interning into the one
// global symbol table concurrently, must each reproduce the single-threaded
// digest — i.e. digests must not depend on raw interned-id values.
TEST(ScenarioDeterminism, HostThreadCountInvariant) {
  const ScenarioScript script = ScenarioScript::standard(400);
  const ScenarioResult reference = sim::run_scenario(small_config(11), script);

  std::vector<ScenarioResult> results(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = sim::run_scenario(small_config(11), script); });
  }
  for (std::thread& t : threads) t.join();
  for (const ScenarioResult& result : results) {
    EXPECT_EQ(result.trace_digest, reference.trace_digest);
    EXPECT_EQ(result.accept_digest, reference.accept_digest);
    EXPECT_EQ(result.stats_digest, reference.stats_digest);
  }
}

// A dense little population (60 peers, 30 partitioned pairs) makes storms
// reliably cross live partitions, so the drop path is exercised — and must
// replay byte-identically like everything else.
TEST(ScenarioDeterminism, ChurnAndPartitionWavesReplay) {
  ScenarioConfig config;
  config.seed = 13;
  config.peers = 60;
  config.types = 8;
  config.type_groups = 2;
  config.fanout_cap = 16;
  ScenarioScript script;
  script.churn(20, 10)
      .partition_wave(30, 10'000'000)
      .publish_storm(200)
      .settle(20'000'000)
      .churn(5, 5)
      .publish_storm(50);
  const ScenarioResult a = sim::run_scenario(config, script);
  const ScenarioResult b = sim::run_scenario(config, script);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.stats_digest, b.stats_digest);
  EXPECT_EQ(a.stats.leaves, 25u);
  EXPECT_EQ(a.stats.joins, 60u + 15u);
  EXPECT_EQ(a.stats.partitions, 30u);
  EXPECT_EQ(a.stats.heals, 30u);
  EXPECT_GT(a.stats.drops, 0u);  // the storm overlapped live partitions
}

// --- Protocol-mode and matching-path equivalence -----------------------------

TEST(ScenarioEquivalence, EagerAndOptimisticAgreeOnEveryVerdict) {
  const ScenarioScript script = ScenarioScript::standard(1000);
  ScenarioConfig config;
  config.seed = 21;
  config.peers = 1000;
  config.mode = transport::ProtocolMode::Optimistic;
  const ScenarioResult optimistic = sim::run_scenario(config, script);
  config.mode = transport::ProtocolMode::Eager;
  const ScenarioResult eager = sim::run_scenario(config, script);

  // Same seed, same universe, same matrix: identical accept/reject stream.
  EXPECT_EQ(optimistic.accept_digest, eager.accept_digest);
  EXPECT_EQ(optimistic.stats.accepts, eager.stats.accepts);
  EXPECT_EQ(optimistic.stats.rejects, eager.stats.rejects);

  // The paper's claim, end to end: optimistic rejections skip the type
  // bundle, so the same verdicts cost fewer wire bytes.
  EXPECT_GT(optimistic.stats.rejects, 0u);
  EXPECT_LT(optimistic.stats.net_bytes, eager.stats.net_bytes);
  EXPECT_GT(optimistic.stats.typeinfo_requests, 0u);
  EXPECT_EQ(eager.stats.typeinfo_requests, 0u);
}

TEST(ScenarioEquivalence, InvertedIndexAndPerPeerScanProduceIdenticalRuns) {
  const ScenarioScript script = ScenarioScript::standard(600);
  ScenarioConfig config;
  config.seed = 23;
  config.peers = 600;
  config.use_inverted_index = true;
  const ScenarioResult indexed = sim::run_scenario(config, script);
  config.use_inverted_index = false;
  const ScenarioResult scanned = sim::run_scenario(config, script);

  EXPECT_EQ(indexed.trace_digest, scanned.trace_digest);
  EXPECT_EQ(indexed.accept_digest, scanned.accept_digest);
  EXPECT_EQ(indexed.stats_digest, scanned.stats_digest);
}

TEST(ScenarioEquivalence, SessionModeAgreesWhileWireCostCollapses) {
  // A deliberately small, churn-heavy population so sender/receiver pairs
  // repeat a lot: that is where the session layer earns its keep. The
  // verdict/accept stream must be byte-identical to the non-session run —
  // sessions change how metadata travels, never what is decided — while
  // the exchange count and wire bytes drop (intros piggyback inline, so
  // the nested TypeInfoRequest traffic disappears entirely).
  ScenarioScript script;
  script.publish_storm(1500).churn(4, 4).publish_storm(1000).settle(5'000'000);
  ScenarioConfig config;
  config.seed = 29;
  config.peers = 16;
  config.types = 8;
  config.mode = transport::ProtocolMode::Optimistic;
  config.use_sessions = false;
  const ScenarioResult cold = sim::run_scenario(config, script);
  config.use_sessions = true;
  const ScenarioResult session = sim::run_scenario(config, script);

  EXPECT_EQ(session.accept_digest, cold.accept_digest);
  EXPECT_EQ(session.stats.accepts, cold.stats.accepts);
  EXPECT_EQ(session.stats.rejects, cold.stats.rejects);
  EXPECT_EQ(session.stats.deliveries, cold.stats.deliveries);
  EXPECT_EQ(session.stats.drops, cold.stats.drops);

  // The collapse: same verdicts, strictly fewer exchanges and bytes.
  EXPECT_GT(cold.stats.typeinfo_requests, 0u);
  EXPECT_EQ(session.stats.typeinfo_requests, 0u);
  EXPECT_LT(session.stats.net_messages, cold.stats.net_messages);
  EXPECT_LT(session.stats.net_bytes, cold.stats.net_bytes);

  // Determinism holds in session mode too: same seed, same digests.
  const ScenarioResult replay = sim::run_scenario(config, script);
  EXPECT_EQ(replay.trace_digest, session.trace_digest);
  EXPECT_EQ(replay.accept_digest, session.accept_digest);
  EXPECT_EQ(replay.stats_digest, session.stats_digest);
}

// Batched session mode regroups the wire — SessionBatch frames carry many
// pushes per (publisher, target) pair — but must NOT regroup the verdict
// stream: the accept digest folds per delivery in original order and has
// to land byte-identical to both the unbatched session run and the cold
// run, across churn, partitions and heals (windows close before every
// state-changing event).
TEST(ScenarioEquivalence, BatchedSessionsReproduceTheVerdictStream) {
  ScenarioScript script;
  script.publish_storm(1200)
      .churn(4, 4)
      .partition_wave(6, 400'000)
      .publish_storm(900)
      .settle(5'000'000)
      .publish_storm(400);
  ScenarioConfig config;
  config.seed = 31;
  config.peers = 24;
  config.types = 12;
  config.type_groups = 4;
  config.fanout_cap = 16;
  config.use_sessions = false;
  const ScenarioResult cold = sim::run_scenario(config, script);
  config.use_sessions = true;
  const ScenarioResult session = sim::run_scenario(config, script);
  config.session_batch = 8;
  const ScenarioResult batched = sim::run_scenario(config, script);

  EXPECT_EQ(batched.accept_digest, session.accept_digest);
  EXPECT_EQ(batched.accept_digest, cold.accept_digest);
  EXPECT_EQ(batched.stats.accepts, cold.stats.accepts);
  EXPECT_EQ(batched.stats.rejects, cold.stats.rejects);
  EXPECT_EQ(batched.stats.deliveries, cold.stats.deliveries);
  EXPECT_EQ(batched.stats.drops, cold.stats.drops);

  // The batching was real: frames carried more entries than frames, and
  // every deferred delivery went out through a batch frame.
  EXPECT_GT(batched.stats.session_batch_frames, 0u);
  EXPECT_GT(batched.stats.session_batch_entries, batched.stats.session_batch_frames);
  EXPECT_EQ(session.stats.session_batch_frames, 0u);
  // Fewer frames on the wire than unbatched session mode sent messages.
  EXPECT_LT(batched.stats.net_messages, session.stats.net_messages);
  EXPECT_LE(batched.stats.net_bytes, session.stats.net_bytes);

  // Determinism holds under batching: same seed, same digests.
  const ScenarioResult replay = sim::run_scenario(config, script);
  EXPECT_EQ(replay.trace_digest, batched.trace_digest);
  EXPECT_EQ(replay.accept_digest, batched.accept_digest);
  EXPECT_EQ(replay.stats_digest, batched.stats_digest);
}

// The shared-intro pay-off at population scale: a 16k-peer cold-heavy
// storm (almost every (sender, target) pair is first contact) used to be
// the session layer's worst case — every pair re-shipped the description
// XML the receiver already held. With receivers advertising description
// hashes and senders consulting the hub registry, a hot description
// crosses once per RECEIVER, so batched session bytes drop below even the
// cold protocol (which pays a TypeInfoRequest round trip per receiver).
TEST(ScenarioEquivalence, SharedIntrosBeatColdOnAColdHeavyStorm) {
  const std::size_t peers = env_u64("PTI_SIM_BATCH_PEERS", 16384);
  ScenarioScript script;
  script.publish_storm(2500);
  ScenarioConfig config;
  config.seed = 37;
  config.peers = peers;
  config.types = 64;
  config.type_groups = 16;
  config.fanout_cap = 16;
  config.use_sessions = false;
  const ScenarioResult cold = sim::run_scenario(config, script);
  config.use_sessions = true;
  config.session_batch = 16;
  const ScenarioResult batched = sim::run_scenario(config, script);

  EXPECT_EQ(batched.accept_digest, cold.accept_digest);
  EXPECT_EQ(batched.stats.accepts, cold.stats.accepts);
  EXPECT_EQ(batched.stats.rejects, cold.stats.rejects);
  EXPECT_GT(batched.stats.session_batch_frames, 0u);
  EXPECT_LE(batched.stats.net_bytes, cold.stats.net_bytes);
  EXPECT_LT(batched.stats.net_messages, cold.stats.net_messages);
  ::testing::Test::RecordProperty("cold_bytes", std::to_string(cold.stats.net_bytes));
  ::testing::Test::RecordProperty("session_bytes",
                                  std::to_string(batched.stats.net_bytes));
}

// --- Scale gate --------------------------------------------------------------

// Env knobs:
//   PTI_SIM_PEERS  population size (default 3000; smoke 10^4; soak 10^5+)
//   PTI_SIM_RUNS   determinism repetitions (default 2; every run must match)
//   PTI_SIM_SEED   scenario seed (default 42)
TEST(SimScale, PopulationScenario) {
  const std::size_t peers = env_u64("PTI_SIM_PEERS", 3000);
  const std::size_t runs = std::max<std::uint64_t>(env_u64("PTI_SIM_RUNS", 2), 1);
  ScenarioConfig config;
  config.seed = env_u64("PTI_SIM_SEED", 42);
  config.peers = peers;
  config.types = 64;
  config.type_groups = 16;
  const ScenarioScript script = ScenarioScript::standard(peers);

  ScenarioResult reference;
  for (std::size_t run = 0; run < runs; ++run) {
    const ScenarioResult result = sim::run_scenario(config, script);
    if (run == 0) {
      reference = result;
      EXPECT_GE(result.stats.index_subscribers, peers - peers / 10);
      EXPECT_GT(result.stats.accepts, 0u);
      EXPECT_GT(result.stats.rejects, 0u);
      EXPECT_GT(result.stats.net_bytes, 0u);
      ::testing::Test::RecordProperty("peers", static_cast<int>(peers));
      ::testing::Test::RecordProperty(
          "net_messages", std::to_string(result.stats.net_messages));
      ::testing::Test::RecordProperty("trace_digest",
                                      std::to_string(result.trace_digest));
    } else {
      EXPECT_EQ(result.trace_digest, reference.trace_digest) << "run " << run;
      EXPECT_EQ(result.accept_digest, reference.accept_digest) << "run " << run;
      EXPECT_EQ(result.stats_digest, reference.stats_digest) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace pti
