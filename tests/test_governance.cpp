// Hostile-peer resource governance: epoch-based reclamation (pin ->
// retire -> reclaim), cold-entry eviction of the interned-name table and
// the conformance cache, per-peer quotas at the transport seam, and the
// ResourceGovernor sweep that ties them together. The classified
// ResourceExhausted error contract — every quota or hard-cap violation
// surfaces as pti::ResourceExhaustedError on every transport — is pinned
// here too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "conform/conformance_cache.hpp"
#include "core/expected.hpp"
#include "core/resource_governor.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/introspect.hpp"
#include "reflect/type_builder.hpp"
#include "reflect/type_registry.hpp"
#include "reflect/value.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/async_transport.hpp"
#include "transport/peer.hpp"
#include "transport/peer_quota.hpp"
#include "transport/sim_network.hpp"
#include "transport/socket_transport.hpp"
#include "util/epoch.hpp"
#include "util/error.hpp"
#include "util/interning.hpp"

namespace pti {
namespace {

using conform::CachedVerdict;
using conform::ConformanceCache;
using transport::AssemblyHub;
using transport::AsyncTransport;
using transport::CodeRequest;
using transport::ErrorReply;
using transport::Message;
using transport::Peer;
using transport::PeerQuotaConfig;
using transport::PeerQuotaTable;
using transport::PushAck;
using transport::SimNetwork;
using transport::SocketTransport;
using transport::SocketTransportConfig;
using transport::TypeInfoRequest;
using util::EpochManager;
using util::InternedName;
using util::SymbolTable;

// --- EpochManager ------------------------------------------------------------

TEST(EpochManager, ReclaimsImmediatelyWhenUnpinned) {
  EpochManager em;
  bool deleted = false;
  em.retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
  EXPECT_EQ(em.retired_count(), 1u);
  EXPECT_TRUE(em.quiescent());
  EXPECT_EQ(em.try_reclaim(), 1u);
  EXPECT_TRUE(deleted);
  EXPECT_EQ(em.retired_count(), 0u);
  EXPECT_EQ(em.reclaimed_total(), 1u);
}

TEST(EpochManager, PinDefersReclamation) {
  EpochManager em;
  bool deleted = false;
  {
    const EpochManager::Pin pin(em);
    EXPECT_FALSE(em.quiescent());
    // Retired while a pin from the same epoch is live: must survive.
    em.retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
    EXPECT_EQ(em.try_reclaim(), 0u);
    EXPECT_FALSE(deleted);
  }
  EXPECT_TRUE(em.quiescent());
  EXPECT_EQ(em.try_reclaim(), 1u);
  EXPECT_TRUE(deleted);
}

TEST(EpochManager, LaterPinDoesNotProtectEarlierRetire) {
  EpochManager em;
  bool deleted = false;
  em.retire(&deleted, [](void* p) { *static_cast<bool*>(p) = true; });
  em.advance();
  // This pin was taken AFTER the retire's epoch, so it cannot be holding
  // a reference to the retired object.
  const EpochManager::Pin pin(em);
  EXPECT_EQ(em.try_reclaim(), 1u);
  EXPECT_TRUE(deleted);
}

TEST(EpochManager, SlotsAreRecycledAcrossThreads) {
  EpochManager em;
  // Hundreds of short-lived pinning threads must not leak slots: the
  // Treiber free stack hands the same slots back out.
  for (int round = 0; round < 100; ++round) {
    std::thread([&em] { const EpochManager::Pin pin(em); }).join();
  }
  EXPECT_TRUE(em.quiescent());
  int n = 0;
  em.retire(&n, [](void*) {});
  EXPECT_EQ(em.try_reclaim(), 1u);
}

// --- SymbolTable eviction / hard cap ----------------------------------------

TEST(SymbolTableGovernance, EvictsOnlyColdNames) {
  SymbolTable table;
  EpochManager em;
  const InternedName cold = table.intern("governance.cold");
  const InternedName hot = table.intern("governance.hot");
  table.advance_tick();
  table.advance_tick();
  // Touch `hot` after the ticks so only `cold` is idle.
  EXPECT_EQ(table.find("governance.hot"), hot);
  EXPECT_EQ(table.evict_cold(em, 2, 100), 1u);
  EXPECT_FALSE(table.find("governance.cold").valid());
  EXPECT_TRUE(table.folded(cold).empty());
  EXPECT_EQ(table.hash(cold), 0u);
  EXPECT_EQ(table.find("governance.hot"), hot);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_GE(em.try_reclaim(), 1u);  // the retired folded string
}

TEST(SymbolTableGovernance, InUseVetoBlocksEviction) {
  SymbolTable table;
  EpochManager em;
  const InternedName pinned = table.intern("governance.pinned");
  table.advance_tick();
  table.advance_tick();
  EXPECT_EQ(table.evict_cold(em, 1, 100,
                             [&](InternedName id) { return id == pinned; }),
            0u);
  EXPECT_EQ(table.find("governance.pinned"), pinned);
}

TEST(SymbolTableGovernance, EvictedSlotsAreRecycled) {
  SymbolTable table;
  EpochManager em;
  const auto shard_of = [](std::string_view name) {
    const std::uint64_t h = util::fold_hash(name);
    return (h ^ (h >> 32)) & 15u;
  };
  const std::string first = "governance.recycle.me";
  // Recycling is per shard, so the successor must fold into the same one.
  std::string second;
  for (int i = 0;; ++i) {
    second = "governance.recycled." + std::to_string(i);
    if (shard_of(second) == shard_of(first)) break;
  }
  const InternedName old_id = table.intern(first);
  table.advance_tick();
  ASSERT_EQ(table.evict_cold(em, 1, 1), 1u);
  // The next same-shard intern reuses the slot: the id VALUE repeats, but
  // it now means the new name — which is exactly why long-lived
  // structures must veto eviction of ids they hold.
  const InternedName fresh = table.intern(second);
  EXPECT_EQ(fresh, old_id);
  EXPECT_EQ(table.folded(fresh), util::to_lower(second));
  EXPECT_EQ(table.size(), 1u);
  (void)em.try_reclaim();
}

TEST(SymbolTableGovernance, MaxEvictBoundsOneSweep) {
  SymbolTable table;
  EpochManager em;
  for (int i = 0; i < 64; ++i) {
    (void)table.intern("governance.bulk." + std::to_string(i));
  }
  table.advance_tick();
  EXPECT_EQ(table.evict_cold(em, 1, 10), 10u);
  EXPECT_EQ(table.size(), 54u);
  (void)em.try_reclaim();
}

TEST(SymbolTableGovernance, ShardCapThrowsClassifiedResourceExhausted) {
  SymbolTable table;
  // Fill ONE shard to its 256K-slot cap: generate names and keep those
  // whose folded hash lands in shard 0 (mirrors the internal placement:
  // xor-folded FNV & (16 - 1)). Filtering keeps this to ~256K interns
  // instead of ~4M.
  const auto shard_of = [](std::string_view name) {
    const std::uint64_t h = util::fold_hash(name);
    return (h ^ (h >> 32)) & 15u;
  };
  constexpr std::uint32_t kShardCap = 256u * 1024u;
  std::uint32_t interned = 0;
  std::uint64_t i = 0;
  try {
    while (interned <= kShardCap) {
      const std::string name = "capfill." + std::to_string(i++);
      if (shard_of(name) != 0) continue;
      (void)table.intern(name);
      ++interned;
    }
    FAIL() << "shard cap did not throw";
  } catch (const pti::ResourceExhaustedError& e) {
    EXPECT_EQ(interned, kShardCap);
    // The classification layer maps it to ErrorCode::ResourceExhausted —
    // NOT std::length_error or a generic internal error.
    try {
      throw;
    } catch (...) {
      const core::Error error = core::Error::from_current_exception();
      EXPECT_EQ(error.code, core::ErrorCode::ResourceExhausted);
    }
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
}

// --- ConformanceCache eviction ----------------------------------------------

class CacheGovernanceTest : public ::testing::Test {
 protected:
  [[nodiscard]] static ConformanceCache::Key key_of(std::string_view source,
                                                    std::string_view target) {
    SymbolTable& symbols = SymbolTable::global();
    return {symbols.intern(source), symbols.intern(target), 7u};
  }

  void insert(const ConformanceCache::Key& key, bool conformant) {
    cache_.insert(key.source, key.target, key.options_fingerprint,
                  CachedVerdict{conformant, {}});
  }

  [[nodiscard]] const CachedVerdict* lookup(const ConformanceCache::Key& key) {
    return cache_.lookup(key.source, key.target, key.options_fingerprint);
  }

  ConformanceCache cache_;
  EpochManager em_;
};

TEST_F(CacheGovernanceTest, EvictColdRemovesOnlyIdleEntries) {
  const auto cold = key_of("cachegov.cold.src", "cachegov.cold.dst");
  const auto hot = key_of("cachegov.hot.src", "cachegov.hot.dst");
  insert(cold, true);
  insert(hot, false);
  cache_.advance_tick();
  cache_.advance_tick();
  ASSERT_NE(lookup(hot), nullptr);  // stamps hot at the current tick
  const std::size_t evicted = cache_.evict_cold(em_, 2, 100);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(lookup(cold), nullptr);
  ASSERT_NE(lookup(hot), nullptr);
  EXPECT_FALSE(lookup(hot)->conformant);
  EXPECT_EQ(cache_.stats().evictions, 1u);
  (void)em_.try_reclaim();
}

TEST_F(CacheGovernanceTest, EpochClearEmptiesEverything) {
  const auto a = key_of("cachegov.clear.a", "cachegov.clear.b");
  const auto b = key_of("cachegov.clear.c", "cachegov.clear.d");
  insert(a, true);
  insert(b, true);
  cache_.clear(em_);
  EXPECT_EQ(lookup(a), nullptr);
  EXPECT_EQ(lookup(b), nullptr);
  EXPECT_EQ(cache_.stats().evictions, 2u);
  EXPECT_GE(em_.try_reclaim(), 2u);
}

TEST_F(CacheGovernanceTest, PinnedVerdictSurvivesEviction) {
  const auto key = key_of("cachegov.pin.src", "cachegov.pin.dst");
  insert(key, true);
  const EpochManager::Pin pin(em_);
  const CachedVerdict* held = lookup(key);
  ASSERT_NE(held, nullptr);
  cache_.advance_tick();
  cache_.advance_tick();
  EXPECT_EQ(cache_.evict_cold(em_, 1, 100), 1u);
  EXPECT_EQ(lookup(key), nullptr);  // unreachable for NEW readers...
  EXPECT_EQ(em_.try_reclaim(), 0u);  // ...but not freed under our pin
  EXPECT_TRUE(held->conformant);     // still safely dereferenceable
}

// --- PeerQuotaTable ----------------------------------------------------------

TEST(PeerQuota, DisabledTableAdmitsEverything) {
  PeerQuotaTable table;
  EXPECT_FALSE(table.enabled());
  table.set_default({});  // no limits -> still disabled
  EXPECT_FALSE(table.enabled());
}

TEST(PeerQuota, FrameSizeCapRejects) {
  PeerQuotaTable table;
  PeerQuotaConfig config;
  config.max_frame_bytes = 100;
  table.set_default(config);
  EXPECT_TRUE(table.enabled());
  EXPECT_NO_THROW(table.admit_frame("mallory", 100, 0));
  EXPECT_THROW(table.admit_frame("mallory", 101, 0), pti::ResourceExhaustedError);
  EXPECT_EQ(table.stats().rejected_frame_size, 1u);
}

TEST(PeerQuota, TokenBucketRefillsOverTime) {
  PeerQuotaTable table;
  PeerQuotaConfig config;
  config.bytes_per_sec = 1000;  // bucket depth defaults to the rate
  table.set_default(config);
  EXPECT_NO_THROW(table.admit_frame("mallory", 1000, 0));
  EXPECT_THROW(table.admit_frame("mallory", 600, 0), pti::ResourceExhaustedError);
  EXPECT_EQ(table.stats().rejected_rate, 1u);
  // Half a (virtual) second refills 500 bytes.
  EXPECT_NO_THROW(table.admit_frame("mallory", 500, 500'000'000));
  EXPECT_THROW(table.admit_frame("mallory", 1, 500'000'000),
               pti::ResourceExhaustedError);
  // A rejected frame consumes nothing: the 500 bytes accrued by the next
  // half second are all still available.
  EXPECT_NO_THROW(table.admit_frame("mallory", 500, 1'000'000'000));
}

TEST(PeerQuota, BurstBytesSetsBucketDepth) {
  PeerQuotaTable table;
  PeerQuotaConfig config;
  config.bytes_per_sec = 10;
  config.burst_bytes = 5000;
  table.set_default(config);
  EXPECT_NO_THROW(table.admit_frame("mallory", 5000, 0));
  // The bucket never refills past its depth.
  EXPECT_THROW(table.admit_frame("mallory", 5001, 3'600'000'000'000ULL),
               pti::ResourceExhaustedError);
}

TEST(PeerQuota, InflightGuardReleasesSlot) {
  PeerQuotaTable table;
  PeerQuotaConfig config;
  config.max_inflight = 2;
  table.set_default(config);
  auto a = table.acquire_inflight("mallory");
  auto b = table.acquire_inflight("mallory");
  EXPECT_THROW((void)table.acquire_inflight("mallory"), pti::ResourceExhaustedError);
  EXPECT_EQ(table.stats().rejected_inflight, 1u);
  {
    PeerQuotaTable::InflightGuard c = std::move(a);  // slot travels with the move
    EXPECT_THROW((void)table.acquire_inflight("mallory"),
                 pti::ResourceExhaustedError);
  }
  EXPECT_NO_THROW((void)table.acquire_inflight("mallory"));
}

TEST(PeerQuota, NameBudgetIsCumulative) {
  PeerQuotaTable table;
  PeerQuotaConfig config;
  config.max_new_names = 10;
  table.set_default(config);
  EXPECT_NO_THROW(table.charge_new_names("mallory", 6));
  EXPECT_NO_THROW(table.charge_new_names("mallory", 4));
  EXPECT_THROW(table.charge_new_names("mallory", 1), pti::ResourceExhaustedError);
  EXPECT_EQ(table.stats().rejected_names, 1u);
  // A rejected charge consumes nothing; zero-count charges always pass.
  EXPECT_NO_THROW(table.charge_new_names("mallory", 0));
  // Budgets are per peer.
  EXPECT_NO_THROW(table.charge_new_names("honest", 10));
}

TEST(PeerQuota, PerPeerOverrideBeatsDefault) {
  PeerQuotaTable table;
  PeerQuotaConfig generous;
  generous.max_frame_bytes = 1000;
  PeerQuotaConfig strict;
  strict.max_frame_bytes = 10;
  table.set_default(generous);
  table.set_quota("MALLORY", strict);  // case-insensitive, like endpoint maps
  EXPECT_THROW(table.admit_frame("mallory", 11, 0), pti::ResourceExhaustedError);
  EXPECT_NO_THROW(table.admit_frame("honest", 11, 0));
}

TEST(PeerQuota, IdentityFloodSharesOverflowBucket) {
  PeerQuotaTable table;
  PeerQuotaConfig config;
  config.max_new_names = 5;
  table.set_default(config);
  table.set_max_tracked_peers(2);
  table.charge_new_names("peer-a", 1);
  table.charge_new_names("peer-b", 1);
  EXPECT_EQ(table.tracked_peers(), 2u);
  // Every identity past the cap shares ONE budget: a flood of fresh names
  // starves itself, not the table.
  EXPECT_NO_THROW(table.charge_new_names("flood-1", 3));
  EXPECT_NO_THROW(table.charge_new_names("flood-2", 2));
  EXPECT_THROW(table.charge_new_names("flood-3", 1), pti::ResourceExhaustedError);
  EXPECT_EQ(table.tracked_peers(), 2u);
}

// --- Quota enforcement at the transport seam ---------------------------------

TEST(TransportQuota, SimNetworkRejectsOversizedFrame) {
  SimNetwork net;
  net.attach("server", [](const Message& m) {
    return Message{"server", m.sender, PushAck{true, "ok"}};
  });
  PeerQuotaConfig config;
  config.max_frame_bytes = 8;  // smaller than any real message
  net.set_default_peer_quota(config);
  EXPECT_THROW((void)net.send(Message{"mallory", "server", CodeRequest{"x"}}),
               pti::ResourceExhaustedError);
  ASSERT_NE(net.peer_quotas(), nullptr);
  EXPECT_EQ(net.peer_quotas()->stats().rejected_frame_size, 1u);
  // Lifting the quota (or never configuring one) admits the same message.
  SimNetwork open_net;
  open_net.attach("server", [](const Message& m) {
    return Message{"server", m.sender, PushAck{true, "ok"}};
  });
  EXPECT_NO_THROW((void)open_net.send(Message{"mallory", "server", CodeRequest{"x"}}));
}

TEST(TransportQuota, SimNetworkChargesTypeInfoNames) {
  SimNetwork net;
  net.attach("server", [](const Message& m) {
    return Message{"server", m.sender, PushAck{true, "ok"}};
  });
  PeerQuotaConfig config;
  config.max_new_names = 2;
  net.set_default_peer_quota(config);
  TypeInfoRequest flood;
  flood.type_names = {"quota.fresh.Alpha", "quota.fresh.Beta", "quota.fresh.Gamma"};
  EXPECT_THROW((void)net.send(Message{"mallory", "server", std::move(flood)}),
               pti::ResourceExhaustedError);
  TypeInfoRequest small;
  small.type_names = {"quota.fresh.Delta"};
  EXPECT_NO_THROW((void)net.send(Message{"mallory", "server", std::move(small)}));
}

TEST(TransportQuota, AsyncTransportFailsFutureWithResourceExhausted) {
  AsyncTransport net;
  net.attach("server", [](const Message& m) {
    return Message{"server", m.sender, PushAck{true, "ok"}};
  });
  PeerQuotaConfig config;
  config.max_frame_bytes = 8;
  net.set_default_peer_quota(config);
  auto future = net.send_async(Message{"mallory", "server", CodeRequest{"x"}});
  EXPECT_THROW((void)future.get(), pti::ResourceExhaustedError);
  EXPECT_THROW((void)net.send(Message{"mallory", "server", CodeRequest{"x"}}),
               pti::ResourceExhaustedError);
  net.drain();
}

TEST(TransportQuota, SocketTransportCrossesWireAsResourceFault) {
  SocketTransport net;
  net.attach("server", [](const Message& m) {
    return Message{"server", m.sender, PushAck{true, "ok"}};
  });
  PeerQuotaConfig config;
  config.max_frame_bytes = 64;
  net.set_default_peer_quota(config);
  // The rejection happens server-side AFTER the frame crossed the wire,
  // comes back as an unforgeable "resource|" fault frame, and is
  // re-raised with the same type the in-process transports throw.
  try {
    (void)net.send(Message{"mallory", "server", CodeRequest{"a-code-request"}});
    FAIL() << "quota violation did not surface";
  } catch (const pti::ResourceExhaustedError& e) {
    EXPECT_NE(std::string(e.what()).find("mallory"), std::string::npos);
  }
  EXPECT_EQ(net.peer_quotas()->stats().rejected_frame_size, 1u);
  EXPECT_NO_THROW((void)net.send(Message{"srv", "server", CodeRequest{"x"}}));
  net.drain();
}

TEST(TransportQuota, RateLimitRecoversOnVirtualClock) {
  SimNetwork net;
  net.attach("server", [](const Message& m) {
    return Message{"server", m.sender, PushAck{true, "ok"}};
  });
  PeerQuotaConfig config;
  config.bytes_per_sec = 100;  // one ~66-byte request fits, two do not
  net.set_default_peer_quota(config);
  const Message request{"mallory", "server", CodeRequest{"x"}};
  (void)net.send(request);  // drains most of the bucket
  EXPECT_THROW((void)net.send(request), pti::ResourceExhaustedError);
  // The bucket refills on the transport's virtual clock.
  net.clock().advance_ns(2'000'000'000ULL);
  EXPECT_NO_THROW((void)net.send(request));
}

// --- Peer-level classification ----------------------------------------------

TEST(PeerGovernance, ResourceReplyRethrownTyped) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  Peer client("client", net, hub);
  // A serving peer that hits a quota mid-handling answers with an in-band
  // classified ErrorReply; the pushing side must rethrow it typed, not as
  // a generic ProtocolError.
  net.attach("server", [](const Message& m) {
    return Message{"server", m.sender,
                   ErrorReply{"resource-exhausted: name budget exhausted"}};
  });
  client.host_assembly(fixtures::team_a_people());
  const reflect::Value args[] = {reflect::Value("Alice")};
  auto object = client.domain().instantiate("teamA.Person", args);
  EXPECT_THROW((void)client.send_object("server", object),
               pti::ResourceExhaustedError);
}

// --- TypeRegistry::references ------------------------------------------------

TEST(RegistryReferences, CoversQualifiedAndSimpleIds) {
  reflect::TypeRegistry registry;
  registry.add(reflect::introspect(
      *reflect::TypeBuilder("refgov", "Widget").field("id", "int32").build()));
  SymbolTable& symbols = SymbolTable::global();
  EXPECT_TRUE(registry.references(symbols.find("refgov.Widget")));
  EXPECT_TRUE(registry.references(symbols.find("Widget")));  // simple-name index
  EXPECT_FALSE(registry.references(symbols.intern("refgov.NeverRegistered")));
  EXPECT_FALSE(registry.references(InternedName{}));
}

// --- ResourceGovernor --------------------------------------------------------

TEST(ResourceGovernor, SweepEvictsTransientsButNeverRegistryNames) {
  core::ResourceGovernor governor({.min_idle_ticks = 1, .max_evict_per_sweep = 64});
  reflect::TypeRegistry registry;
  registry.add(reflect::introspect(
      *reflect::TypeBuilder("governed", "Kept").field("id", "int32").build()));
  governor.watch(registry);
  SymbolTable& symbols = SymbolTable::global();
  const InternedName kept = symbols.find("governed.Kept");
  ASSERT_TRUE(kept.valid());
  (void)symbols.intern("governed.transient.name");
  const std::size_t before = symbols.size();
  // Two sweeps age the transient past min_idle_ticks and evict it.
  (void)governor.sweep();
  core::SweepReport report = governor.sweep();
  for (int i = 0; i < 4 && symbols.find("governed.transient.name").valid(); ++i) {
    report = governor.sweep();  // other suites' leftovers may fill the cap
  }
  EXPECT_FALSE(symbols.find("governed.transient.name").valid());
  EXPECT_EQ(symbols.find("governed.Kept"), kept);
  EXPECT_EQ(symbols.folded(kept), "governed.kept");
  EXPECT_LT(symbols.size(), before);
  EXPECT_GE(governor.sweeps(), 2u);
  EXPECT_GT(report.epoch, 0u);
}

TEST(ResourceGovernor, SweepEvictsColdCacheEntries) {
  core::ResourceGovernor governor({.min_idle_ticks = 2, .max_evict_per_sweep = 64});
  ConformanceCache cache;
  governor.watch(cache);
  SymbolTable& symbols = SymbolTable::global();
  cache.insert(symbols.intern("govcache.src"), symbols.intern("govcache.dst"), 1,
               CachedVerdict{true, {}});
  (void)governor.sweep();
  (void)governor.sweep();
  const core::SweepReport report = governor.sweep();
  EXPECT_GE(report.cache_evicted + cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(symbols.find("govcache.src"), symbols.find("govcache.dst"), 1),
            nullptr);
}

TEST(ResourceGovernor, AddVetoProtectsExternalHolders) {
  core::ResourceGovernor governor({.min_idle_ticks = 1, .max_evict_per_sweep = 256});
  SymbolTable& symbols = SymbolTable::global();
  const InternedName held = symbols.intern("govveto.held.elsewhere");
  governor.add_veto([held](InternedName id) { return id == held; });
  for (int i = 0; i < 6; ++i) (void)governor.sweep();
  EXPECT_EQ(symbols.find("govveto.held.elsewhere"), held);
}

TEST(ResourceGovernor, BackgroundSweeperStartsAndStops) {
  core::ResourceGovernor governor;
  governor.start(std::chrono::milliseconds(1));
  governor.start(std::chrono::milliseconds(1));  // idempotent
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (governor.sweeps() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(governor.sweeps(), 0u);
  governor.stop();
  governor.stop();  // idempotent
}

}  // namespace
}  // namespace pti
