// Tests for the v2 handle-based public API: TypeHandle identity, the
// Expected/try_ error channel (and its agreement with the throwing
// overloads), Subscription RAII semantics, batch conformance, and the
// pluggable Transport seam.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"
#include "transport/sim_network.hpp"

namespace pti::core {
namespace {

using reflect::Value;

class ApiV2Test : public ::testing::Test {
 protected:
  ApiV2Test()
      : alice_(system_.create_runtime("alice")), bob_(system_.create_runtime("bob")) {
    alice_.publish_assembly(fixtures::team_a_people());
    bob_.publish_assembly(fixtures::team_b_people());
  }

  InteropSystem system_;
  InteropRuntime& alice_;
  InteropRuntime& bob_;
};

// --- TypeHandle --------------------------------------------------------------

TEST_F(ApiV2Test, TypeResolvesOnceAndCompares) {
  const TypeHandle person = alice_.type("teamA.Person");
  ASSERT_TRUE(person.valid());
  EXPECT_EQ(person.qualified_name(), "teamA.Person");
  EXPECT_EQ(person.description().name(), "Person");

  // Simple-name and differently-cased lookups resolve to the same handle.
  EXPECT_EQ(alice_.type("Person"), person);
  EXPECT_EQ(alice_.type("TEAMA.PERSON"), person);

  // Unknown names give an invalid handle, not an exception.
  const TypeHandle unknown = alice_.type("no.Such");
  EXPECT_FALSE(unknown.valid());
  EXPECT_FALSE(unknown == person);
  EXPECT_THROW((void)unknown.description(), reflect::ReflectError);

  const auto missing = alice_.try_type("no.Such");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, ErrorCode::UnknownType);
}

TEST_F(ApiV2Test, PublishAssemblyReturnsHandles) {
  const auto handles = alice_.publish_assembly(fixtures::bank_accounts());
  ASSERT_FALSE(handles.empty());
  for (const TypeHandle& h : handles) {
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(alice_.type(h.qualified_name()), h);
  }
  const auto failed = alice_.try_publish_assembly(nullptr);
  ASSERT_FALSE(failed.has_value());
  EXPECT_THROW(alice_.publish_assembly(nullptr), transport::TransportError);
}

TEST_F(ApiV2Test, HandlesStayValidAcrossLaterPublishes) {
  const TypeHandle person = alice_.type("teamA.Person");
  alice_.publish_assembly(fixtures::bank_accounts());  // registry grows
  EXPECT_EQ(person.qualified_name(), "teamA.Person");  // pointer still good
  EXPECT_EQ(alice_.type("teamA.Person"), person);
}

// --- make / call / adapt -----------------------------------------------------

TEST_F(ApiV2Test, MakeAndCallThroughHandles) {
  const TypeHandle person = alice_.type("teamA.Person");
  const Value args[] = {Value("Ada")};
  auto obj = alice_.make(person, args);
  EXPECT_EQ(alice_.call(obj, "getName").as_string(), "Ada");

  auto tried = alice_.try_make(person, args);
  ASSERT_TRUE(tried.has_value());
  EXPECT_EQ(alice_.call(*tried, "getName").as_string(), "Ada");
}

TEST_F(ApiV2Test, MakeErrorPaths) {
  // Unknown type, string form: try_ reports UnknownType; throwing form
  // raises the v1 ReflectError.
  auto unknown = alice_.try_make("no.Such");
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.error().code, ErrorCode::UnknownType);
  EXPECT_THROW((void)alice_.make("no.Such"), reflect::ReflectError);

  // Invalid handle.
  auto invalid = alice_.try_make(TypeHandle{});
  ASSERT_FALSE(invalid.has_value());
  EXPECT_EQ(invalid.error().code, ErrorCode::InvalidHandle);
  EXPECT_THROW((void)alice_.make(TypeHandle{}), reflect::ReflectError);

  // Known description whose code is not loaded locally: bob knows nothing
  // about teamA yet, so alice's handle naming a teamA type has no local
  // counterpart on bob — and a description-only type cannot be made.
  auto imported = bob_.try_make("teamA.Person");
  ASSERT_FALSE(imported.has_value());
  EXPECT_EQ(imported.error().code, ErrorCode::UnknownType);

  // Error::raise() rethrows the original exception type.
  EXPECT_THROW(unknown.error().raise(), reflect::ReflectError);
}

TEST_F(ApiV2Test, CallErrorPath) {
  const Value args[] = {Value("Ada")};
  auto person = alice_.make(alice_.type("teamA.Person"), args);
  auto missing = alice_.try_call(person, "noSuchMethod");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, ErrorCode::Reflection);
  EXPECT_THROW((void)alice_.call(person, "noSuchMethod"), pti::Error);
}

TEST_F(ApiV2Test, AdaptThroughHandlesAndErrorPaths) {
  alice_.publish_assembly(fixtures::bank_accounts());
  const Value args[] = {Value("Ada")};
  auto person = alice_.make(alice_.type("teamA.Person"), args);

  // Conformant adaptation works and is callable.
  const TypeHandle named = alice_.type("teamA.INamed");
  auto as_named = alice_.adapt(person, named);
  EXPECT_EQ(alice_.call(as_named, "getName").as_string(), "Ada");
  auto tried = alice_.try_adapt(person, named);
  ASSERT_TRUE(tried.has_value());

  // Non-conformant adaptation: NonConformant via try_, throws via adapt.
  const TypeHandle account = alice_.type("bank.Account");
  auto refused = alice_.try_adapt(person, account);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, ErrorCode::NonConformant);
  EXPECT_FALSE(refused.error().message.empty());
  EXPECT_THROW((void)alice_.adapt(person, account), proxy::NonConformantError);

  // Unknown target name and invalid handle.
  auto unknown = alice_.try_adapt(person, "no.Such");
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.error().code, ErrorCode::UnknownType);
  auto invalid = alice_.try_adapt(person, TypeHandle{});
  ASSERT_FALSE(invalid.has_value());
  EXPECT_EQ(invalid.error().code, ErrorCode::InvalidHandle);
}

// --- conformance -------------------------------------------------------------

TEST_F(ApiV2Test, ConformanceThroughHandles) {
  alice_.publish_assembly(fixtures::bank_accounts());
  const TypeHandle person = alice_.type("teamA.Person");
  const TypeHandle named = alice_.type("teamA.INamed");
  const TypeHandle account = alice_.type("bank.Account");

  EXPECT_TRUE(alice_.check_conformance(person, named).conformant);
  EXPECT_FALSE(alice_.check_conformance(account, person).conformant);
  EXPECT_TRUE(alice_.conforms(person, named));
  EXPECT_FALSE(alice_.conforms(account, person));
  EXPECT_FALSE(alice_.conforms(TypeHandle{}, named));

  auto tried = alice_.try_check_conformance(person, named);
  ASSERT_TRUE(tried.has_value());
  EXPECT_TRUE(tried->conformant);
  auto invalid = alice_.try_check_conformance(TypeHandle{}, named);
  ASSERT_FALSE(invalid.has_value());
  EXPECT_EQ(invalid.error().code, ErrorCode::InvalidHandle);
}

TEST_F(ApiV2Test, BatchConformanceMatchesIndividualVerdicts) {
  alice_.publish_assembly(fixtures::bank_accounts());
  const TypeHandle person = alice_.type("teamA.Person");
  const TypeHandle named = alice_.type("teamA.INamed");
  const TypeHandle account = alice_.type("bank.Account");

  std::vector<InteropRuntime::HandlePair> pairs;
  for (int i = 0; i < 100; ++i) {
    pairs.emplace_back(person, named);
    pairs.emplace_back(account, person);
    pairs.emplace_back(TypeHandle{}, named);  // invalid -> false
  }
  const std::vector<bool> verdicts = alice_.check_conformance(pairs);
  ASSERT_EQ(verdicts.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); i += 3) {
    EXPECT_TRUE(verdicts[i]);
    EXPECT_FALSE(verdicts[i + 1]);
    EXPECT_FALSE(verdicts[i + 2]);
  }

  // The span form writes into caller storage.
  bool out[6] = {};
  alice_.check_conformance(std::span<const InteropRuntime::HandlePair>(pairs.data(), 6),
                           out);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_TRUE(out[3]);
}

// --- subscriptions -----------------------------------------------------------

TEST_F(ApiV2Test, SubscriptionDeliversAndUnsubscribes) {
  const TypeHandle person_b = bob_.type("teamB.Person");
  int calls = 0;
  Subscription sub = bob_.subscribe(person_b, [&](const auto&) { ++calls; });
  EXPECT_TRUE(sub.active());
  EXPECT_EQ(bob_.handler_count(person_b), 1u);

  const Value args[] = {Value("Ada")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(calls, 1);

  sub.unsubscribe();
  EXPECT_FALSE(sub.active());
  EXPECT_EQ(bob_.handler_count(person_b), 0u);
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(calls, 1);  // handler no longer fires (interest still matches)
}

TEST_F(ApiV2Test, SubscriptionRaiiAndRelease) {
  const TypeHandle person_b = bob_.type("teamB.Person");
  int raii_calls = 0;
  int released_calls = 0;
  {
    Subscription scoped = bob_.subscribe(person_b, [&](const auto&) { ++raii_calls; });
    bob_.subscribe(person_b, [&](const auto&) { ++released_calls; }).release();
    EXPECT_EQ(bob_.handler_count(person_b), 2u);
  }  // `scoped` unsubscribes here; the released handler stays
  EXPECT_EQ(bob_.handler_count(person_b), 1u);

  const Value args[] = {Value("Ada")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(raii_calls, 0);
  EXPECT_EQ(released_calls, 1);
}

TEST_F(ApiV2Test, SubscriptionMoveTransfersOwnership) {
  const TypeHandle person_b = bob_.type("teamB.Person");
  Subscription a = bob_.subscribe(person_b, [](const auto&) {});
  Subscription b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_EQ(bob_.handler_count(person_b), 1u);

  Subscription c = bob_.subscribe(person_b, [](const auto&) {});
  c = std::move(b);  // move-assign unsubscribes c's old handler first
  EXPECT_EQ(bob_.handler_count(person_b), 1u);
  c.unsubscribe();
  c.unsubscribe();  // idempotent
  EXPECT_EQ(bob_.handler_count(person_b), 0u);
}

TEST_F(ApiV2Test, UnsubscribeFromInsideHandlerIsSafe) {
  const TypeHandle person_b = bob_.type("teamB.Person");
  int first_calls = 0;
  int second_calls = 0;
  Subscription first;
  first = bob_.subscribe(person_b, [&](const auto&) {
    ++first_calls;
    first.unsubscribe();  // self-removal mid-dispatch
  });
  Subscription second = bob_.subscribe(person_b, [&](const auto&) { ++second_calls; });

  const Value args[] = {Value("Ada")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(first_calls, 1);   // removed itself after the first delivery
  EXPECT_EQ(second_calls, 2);  // unaffected by the mid-dispatch removal
}

TEST_F(ApiV2Test, SweepDestroyingHandlerThatOwnsAnotherSubscriptionIsSafe) {
  // A handler retired mid-dispatch is destroyed by the deferred sweep; its
  // closure owns the Subscription of ANOTHER handler on the same interest,
  // so destroying it reenters remove_handler while the sweep walks the
  // handler map. Regression test for a use-after-free found by review.
  const TypeHandle person_b = bob_.type("teamB.Person");
  int inner_calls = 0;
  auto inner = std::make_shared<Subscription>(
      bob_.subscribe(person_b, [&](const auto&) { ++inner_calls; }));

  auto outer = std::make_shared<Subscription>();
  *outer = bob_.subscribe(person_b, [outer, inner](const auto&) {
    outer->unsubscribe();  // retire self mid-dispatch -> sweep destroys
                           // this closure, dropping the last refs to
                           // `outer` AND `inner` during the sweep
  });
  inner.reset();
  outer.reset();

  const Value args[] = {Value("Ada")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(inner_calls, 1);  // inner fired before the sweep removed it
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(inner_calls, 1);  // both handlers gone, nothing dangles
  EXPECT_EQ(bob_.handler_count(person_b), 0u);
}

TEST(ApiV2Teardown, RuntimeDestructionWithSelfOwningHandlerIsSafe) {
  // A handler closure owning its own Subscription is destroyed by
  // ~InteropRuntime; the Subscription's destructor reenters
  // remove_handler, which must see a drained (valid, empty) map.
  bool alive = true;
  {
    InteropSystem system;
    auto& rt = system.create_runtime("solo");
    rt.publish_assembly(fixtures::team_a_people());
    auto sub = std::make_shared<Subscription>();
    *sub = rt.subscribe(rt.type("teamA.Person"), [sub, &alive](const auto&) {
      (void)alive;
    });
  }  // runtime destructs with the handler never fired
  EXPECT_TRUE(alive);
}

TEST_F(ApiV2Test, MidDispatchSubscriberDoesNotSeeInFlightEvent) {
  const TypeHandle person_b = bob_.type("teamB.Person");
  int outer_calls = 0;
  int late_calls = 0;
  bob_.subscribe(person_b, [&](const auto&) {
    ++outer_calls;
    // Registering during dispatch must not deliver THIS event to the new
    // handler (and a self-resubscribing handler must not loop the walk).
    bob_.subscribe(person_b, [&](const auto&) { ++late_calls; }).release();
  }).release();

  const Value args[] = {Value("Ada")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(outer_calls, 1);
  EXPECT_EQ(late_calls, 0);  // subscribed after delivery started

  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(outer_calls, 2);
  EXPECT_EQ(late_calls, 1);  // fires from the next delivery on
}

TEST_F(ApiV2Test, RepublishDifferentAssemblyUnderSameNameIsReported) {
  // Build an impostor assembly named like the already-loaded teamA bundle
  // but carrying a type the registry never saw.
  const std::string loaded_name = fixtures::team_a_people()->name();
  auto impostor = std::make_shared<reflect::Assembly>(loaded_name);
  const auto bank = fixtures::bank_accounts();
  for (const auto& type : bank->types()) {
    impostor->add_type(type);
  }
  auto result = alice_.try_publish_assembly(impostor);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::UnknownType);

  // Re-publishing the SAME assembly stays idempotent and returns handles.
  const auto handles = alice_.publish_assembly(fixtures::team_a_people());
  ASSERT_FALSE(handles.empty());
  for (const TypeHandle& h : handles) EXPECT_TRUE(h.valid());
}

TEST_F(ApiV2Test, SubscribeErrorPaths) {
  auto invalid = bob_.try_subscribe(TypeHandle{}, [](const auto&) {});
  ASSERT_FALSE(invalid.has_value());
  EXPECT_EQ(invalid.error().code, ErrorCode::InvalidHandle);
  EXPECT_THROW((void)bob_.subscribe(TypeHandle{}, [](const auto&) {}),
               reflect::ReflectError);

  auto null_handler = bob_.try_subscribe(bob_.type("teamB.Person"), nullptr);
  ASSERT_FALSE(null_handler.has_value());

  // v1 string shim still throws ProtocolError for unknown interests.
  EXPECT_THROW(bob_.subscribe("no.Such", [](const auto&) {}), transport::ProtocolError);
}

// --- send --------------------------------------------------------------------

TEST_F(ApiV2Test, SendErrorPaths) {
  const Value args[] = {Value("Ada")};
  auto person = alice_.make(alice_.type("teamA.Person"), args);

  auto unknown_peer = alice_.try_send("nobody", person);
  ASSERT_FALSE(unknown_peer.has_value());
  EXPECT_EQ(unknown_peer.error().code, ErrorCode::UnknownPeer);
  EXPECT_THROW((void)alice_.send("nobody", person), transport::NetworkError);

  auto null_object = alice_.try_send("bob", nullptr);
  ASSERT_FALSE(null_object.has_value());
  EXPECT_EQ(null_object.error().code, ErrorCode::Protocol);
  EXPECT_THROW((void)alice_.send("bob", nullptr), transport::ProtocolError);

  // A successful try_send reports the ack.
  bob_.subscribe("teamB.Person", [](const auto&) {});
  auto ack = alice_.try_send("bob", person);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->delivered);
}

// --- pass-by-reference -------------------------------------------------------

TEST_F(ApiV2Test, ImportRemoteThroughHandles) {
  const Value args[] = {Value("Ada")};
  auto person = alice_.make(alice_.type("teamA.Person"), args);
  const std::uint64_t id = alice_.export_object(person);

  // String import fetches the description; afterwards bob can hold a
  // handle and adapt through it.
  auto ref = bob_.import_remote("alice", id, "teamA.Person");
  const TypeHandle person_a = bob_.type("teamA.Person");
  ASSERT_TRUE(person_a.valid());
  auto as_b = bob_.adapt(ref, bob_.type("teamB.Person"));
  EXPECT_EQ(bob_.call(as_b, "getPersonName").as_string(), "Ada");

  // Handle import skips the fetch entirely.
  auto ref2 = bob_.import_remote("alice", id, person_a);
  EXPECT_EQ(bob_.call(ref2, "getName").as_string(), "Ada");
}

TEST_F(ApiV2Test, ImportRemoteErrorPaths) {
  auto null_export = alice_.try_export_object(nullptr);
  ASSERT_FALSE(null_export.has_value());
  EXPECT_EQ(null_export.error().code, ErrorCode::Remoting);

  // Unknown host: the description fetch dies on the network.
  auto no_host = bob_.try_import_remote("ghost", 1, "teamA.Person");
  ASSERT_FALSE(no_host.has_value());
  EXPECT_EQ(no_host.error().code, ErrorCode::Network);
  EXPECT_THROW((void)bob_.import_remote("ghost", 1, "teamA.Person"),
               transport::NetworkError);

  // Invalid handle import.
  auto invalid = bob_.try_import_remote("alice", 1, TypeHandle{});
  ASSERT_FALSE(invalid.has_value());
  EXPECT_EQ(invalid.error().code, ErrorCode::InvalidHandle);

  // Dangling reference: exported, imported, then unexported — the remote
  // invocation fails cleanly on both channels.
  const Value args[] = {Value("Ada")};
  auto person = alice_.make(alice_.type("teamA.Person"), args);
  const std::uint64_t id = alice_.export_object(person);
  auto ref = bob_.import_remote("alice", id, "teamA.Person");
  alice_.remoting().unexport(id);
  auto dangling = bob_.try_call(ref, "getName");
  ASSERT_FALSE(dangling.has_value());
  EXPECT_EQ(dangling.error().code, ErrorCode::Remoting);
  EXPECT_THROW((void)bob_.call(ref, "getName"), remoting::RemotingError);
}

// --- transport seam ----------------------------------------------------------

/// Transport decorator: counts sends, then delegates to a SimNetwork. The
/// point of the test is that the whole stack runs against the interface.
class CountingTransport final : public transport::Transport {
 public:
  void attach(std::string_view name, Handler handler) override {
    inner_.attach(name, std::move(handler));
  }
  void detach(std::string_view name) override { inner_.detach(name); }
  [[nodiscard]] bool is_attached(std::string_view name) const noexcept override {
    return inner_.is_attached(name);
  }
  transport::Message send(const transport::Message& request) override {
    ++sends;
    return inner_.send(request);
  }
  void set_default_link(const transport::LinkConfig& config) noexcept override {
    inner_.set_default_link(config);
  }
  void set_link(std::string_view from, std::string_view to,
                const transport::LinkConfig& config) override {
    inner_.set_link(from, to, config);
  }
  [[nodiscard]] const transport::NetStats& stats() const noexcept override {
    return inner_.stats();
  }
  void reset_stats() noexcept override { inner_.reset_stats(); }
  [[nodiscard]] util::SimClock& clock() noexcept override { return inner_.clock(); }

  int sends = 0;

 private:
  transport::SimNetwork inner_;
};

TEST(ApiV2Transport, SystemRunsOnCustomTransport) {
  auto transport = std::make_unique<CountingTransport>();
  CountingTransport& counter = *transport;
  InteropSystem system(std::move(transport));
  auto& alice = system.create_runtime("alice");
  auto& bob = system.create_runtime("bob");
  alice.publish_assembly(fixtures::team_a_people());
  bob.publish_assembly(fixtures::team_b_people());

  int delivered = 0;
  auto sub = bob.subscribe(bob.type("teamB.Person"), [&](const auto&) { ++delivered; });
  const Value args[] = {Value("Ada")};
  const auto ack = alice.send("bob", alice.make(alice.type("teamA.Person"), args));
  EXPECT_TRUE(ack.delivered);
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(counter.sends, 0);  // every protocol message crossed the seam
  EXPECT_GT(system.network().stats().bytes, 0u);
}

TEST(ApiV2Transport, NullTransportIsRejected) {
  EXPECT_THROW(InteropSystem(std::unique_ptr<transport::Transport>{}),
               transport::TransportError);
}

}  // namespace
}  // namespace pti::core
