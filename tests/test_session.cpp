// transport::SessionTable + the session-layer protocol — the differential
// suite pinning ISSUE 9's contract:
//
//   * cold-then-warm over all three transports: after first contact, a
//     push is exactly ONE framed exchange (request + SessionAck — the
//     NetStats message delta is 2), and every delivery — cold or warm, on
//     any transport — hands the application byte-identical objects;
//   * Reset recovery: a receiver that evicted a sender's session (LRU cap)
//     answers Reset, and the sender transparently replays once with all
//     intros — the push still lands;
//   * hostile consistency: a quota refusal before OR mid-session commits
//     nothing on either side, and the very next admitted push succeeds
//     without a reset;
//   * invalidation: add_interest and governor sweeps bump the verdict
//     generation, so a cached REJECT can never outlive the interest set or
//     the reclamation pass that made it stale.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/resource_governor.hpp"
#include "protocol_fuzz_common.hpp"
#include "serial/envelope.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/async_transport.hpp"
#include "transport/peer.hpp"
#include "transport/sim_network.hpp"
#include "transport/socket_transport.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pti {
namespace {

using transport::AssemblyHub;
using transport::AsyncTransport;
using transport::Message;
using transport::Peer;
using transport::PeerConfig;
using transport::PeerQuotaConfig;
using transport::ProtocolMode;
using transport::PushAck;
using transport::SessionIntro;
using transport::SessionPush;
using transport::SimNetwork;
using transport::SocketTransport;

/// A fixed, guaranteed-conformant shape (no RNG: every transport run must
/// serialize the identical graph so delivered bytes can be compared).
[[nodiscard]] fuzz::Schema fixed_schema() {
  fuzz::Schema schema;
  schema.fields = {{"f0", "int32"}, {"f1", "string"}, {"f2", "int64"}};
  schema.has_child = true;
  schema.child_fields = {{"c0", "string"}, {"c1", "int32"}};
  return schema;
}

[[nodiscard]] fuzz::ValuePlan fixed_values(const fuzz::Schema& schema) {
  util::Rng rng(0x5E55BEEFULL);  // fixed seed => identical values every run
  return fuzz::random_values(schema, rng);
}

/// Serializes a delivered object back to payload bytes through the
/// receiver's own registry — the byte-identity probe.
[[nodiscard]] std::vector<std::uint8_t> payload_bytes_of(Peer& receiver,
                                                         const transport::DeliveredObject& d) {
  serial::EnvelopeBuilder builder(receiver.serializers().get("soap"),
                                  &receiver.domain().registry());
  return builder.build(reflect::Value(d.object)).payload;
}

/// The differential core: one sender/receiver session pair over `net`,
/// one cold push, then three synchronous warm pushes and one async warm
/// push — each warmed exchange must cost exactly two messages (request +
/// ack) and deliver bytes identical to the cold delivery. Returns the
/// delivered payload bytes via `payload_out` so callers can compare runs
/// across transports.
void run_cold_then_warm(transport::Transport& net, const std::string& tag,
                        ProtocolMode mode, std::vector<std::uint8_t>& payload_out) {
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig config{.mode = mode, .use_sessions = true};
  Peer sender("sender", net, hub, config);
  Peer receiver("receiver", net, hub, config);

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);  // Copy-mode receiver derivation draws nothing
  sender.host_assembly(fuzz::sender_assembly(tag + "s", schema));
  receiver.host_assembly(
      fuzz::receiver_assembly(tag + "r", schema, fuzz::InterestMode::Copy, dummy));
  receiver.add_interest(tag + "r.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);

  // Cold push: intros ride inline, so there is never a TypeInfoRequest —
  // Optimistic still pays one nested code fetch (4 messages total), Eager
  // prepays the assembly inside the push (one exchange even when cold).
  const std::uint64_t cold_before = net.stats().messages.get();
  const PushAck cold =
      sender.send_object("receiver", fuzz::make_object(sender, tag + "s", schema, values));
  ASSERT_TRUE(cold.delivered) << cold.detail;
  const std::uint64_t cold_messages = net.stats().messages.get() - cold_before;
  EXPECT_EQ(cold_messages, mode == ProtocolMode::Optimistic ? 4u : 2u);
  EXPECT_EQ(receiver.stats().typeinfo_requests, 0u)
      << "descriptions must piggyback as intros, never as nested fetches";
  EXPECT_EQ(receiver.stats().session_intros, 2u);  // Thing + Child

  // Warmed pushes: exactly one framed exchange, decided from the session's
  // verdict cache.
  constexpr int kWarmPushes = 3;
  for (int i = 0; i < kWarmPushes; ++i) {
    const std::uint64_t before = net.stats().messages.get();
    const PushAck warm = sender.send_object(
        "receiver", fuzz::make_object(sender, tag + "s", schema, values));
    ASSERT_TRUE(warm.delivered) << warm.detail;
    EXPECT_EQ(warm.detail, cold.detail);
    EXPECT_EQ(net.stats().messages.get() - before, 2u)
        << "warm push " << i << " took more than one framed exchange";
  }
  // And the async path shares the same session state and cost.
  {
    const std::uint64_t before = net.stats().messages.get();
    auto future = sender.send_object_async(
        "receiver", fuzz::make_object(sender, tag + "s", schema, values));
    const PushAck warm = future.get();
    ASSERT_TRUE(warm.delivered) << warm.detail;
    EXPECT_EQ(net.stats().messages.get() - before, 2u);
  }
  EXPECT_EQ(receiver.stats().session_verdict_hits, kWarmPushes + 1u);
  EXPECT_EQ(receiver.stats().session_pushes, kWarmPushes + 2u);
  EXPECT_EQ(receiver.stats().session_resets, 0u);
  EXPECT_EQ(sender.stats().session_retries, 0u);

  // Byte-identical deliveries: every warm delivery re-serializes to the
  // exact bytes of the cold one.
  const auto delivered = receiver.delivered_snapshot();
  ASSERT_EQ(delivered.size(), kWarmPushes + 2u);
  payload_out = payload_bytes_of(receiver, delivered.front());
  ASSERT_FALSE(payload_out.empty());
  for (std::size_t d = 1; d < delivered.size(); ++d) {
    EXPECT_EQ(delivered[d].interest_type, delivered.front().interest_type);
    EXPECT_EQ(payload_bytes_of(receiver, delivered[d]), payload_out)
        << "delivery " << d << " differs from the cold delivery";
  }
  for (const auto& [field, sent] : values.fields) {
    fuzz::expect_same_value(delivered.front().object->get(field), sent,
                            tag + " field " + field);
  }
}

TEST(SessionLayer, WarmedPushIsOneExchangeOnAllThreeTransports) {
  // The same fixed round over the simulator, the thread-pool transport and
  // real loopback sockets: identical one-exchange behavior, and the
  // delivered payload bytes agree across all three.
  std::vector<std::uint8_t> sim_payload;
  std::vector<std::uint8_t> async_payload;
  std::vector<std::uint8_t> socket_payload;
  {
    SimNetwork net;
    run_cold_then_warm(net, "sescw", ProtocolMode::Optimistic, sim_payload);
  }
  {
    AsyncTransport net;
    run_cold_then_warm(net, "sescw", ProtocolMode::Optimistic, async_payload);
    net.drain();
  }
  {
    SocketTransport net;
    run_cold_then_warm(net, "sescw", ProtocolMode::Optimistic, socket_payload);
  }
  EXPECT_EQ(async_payload, sim_payload);
  EXPECT_EQ(socket_payload, sim_payload);
}

TEST(SessionLayer, EagerSessionIsOneExchangeEvenWhenCold) {
  // Eager + sessions prepays descriptions AND assembly bytes inside the
  // push itself: the run_cold_then_warm helper asserts the cold exchange
  // already costs exactly 2 messages in Eager mode.
  std::vector<std::uint8_t> payload;
  SimNetwork net;
  run_cold_then_warm(net, "seseg", ProtocolMode::Eager, payload);
}

TEST(SessionLayer, BatchedWindowTravelsAsOneFrame) {
  // max_batch = 3: three async pushes to the same recipient fill the
  // window and cross the wire as ONE SessionBatch frame — two messages
  // for three deliveries — with per-slot acks resolving every future.
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  config.session.max_batch = 3;
  Peer sender("sender", net, hub, config);
  Peer receiver("receiver", net, hub, config);

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);
  sender.host_assembly(fuzz::sender_assembly("sbw", schema));
  receiver.host_assembly(
      fuzz::receiver_assembly("sbwr", schema, fuzz::InterestMode::Copy, dummy));
  receiver.add_interest("sbwr.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);

  // Warm the session synchronously so the batch below is pure warm path.
  const PushAck cold =
      sender.send_object("receiver", fuzz::make_object(sender, "sbw", schema, values));
  ASSERT_TRUE(cold.delivered) << cold.detail;

  const std::uint64_t before = net.stats().messages.get();
  std::vector<std::future<PushAck>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(sender.send_object_async(
        "receiver", fuzz::make_object(sender, "sbw", schema, values)));
  }
  for (auto& f : futures) {
    const PushAck ack = f.get();
    ASSERT_TRUE(ack.delivered) << ack.detail;
    EXPECT_EQ(ack.detail, cold.detail);
  }
  EXPECT_EQ(net.stats().messages.get() - before, 2u)
      << "a full window must travel as one framed exchange";
  EXPECT_EQ(receiver.stats().session_batches, 1u);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 3u);
  EXPECT_EQ(receiver.stats().session_resets, 0u);
  EXPECT_EQ(sender.stats().session_retries, 0u);
  EXPECT_EQ(receiver.delivered_snapshot().size(), 4u);
}

TEST(SessionLayer, PartialWindowFlushesOnSyncSendAndExplicitFlush) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  config.session.max_batch = 8;
  Peer sender("sender", net, hub, config);
  Peer receiver("receiver", net, hub, config);

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);
  sender.host_assembly(fuzz::sender_assembly("sbf", schema));
  receiver.host_assembly(
      fuzz::receiver_assembly("sbfr", schema, fuzz::InterestMode::Copy, dummy));
  receiver.add_interest("sbfr.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);
  const auto make = [&] { return fuzz::make_object(sender, "sbf", schema, values); };

  ASSERT_TRUE(sender.send_object("receiver", make()).delivered);

  // Two parked pushes, then a synchronous send: the sync path must flush
  // the window FIRST (order preserved), then run its own exchange.
  auto f0 = sender.send_object_async("receiver", make());
  auto f1 = sender.send_object_async("receiver", make());
  const std::uint64_t before = net.stats().messages.get();
  const PushAck sync = sender.send_object("receiver", make());
  ASSERT_TRUE(sync.delivered) << sync.detail;
  EXPECT_EQ(net.stats().messages.get() - before, 4u)
      << "one batch frame for the window, one frame for the sync push";
  ASSERT_TRUE(f0.get().delivered);
  ASSERT_TRUE(f1.get().delivered);
  EXPECT_EQ(receiver.stats().session_batches, 1u);

  // An explicit flush drains a lone parked push; a second flush is a no-op.
  auto f2 = sender.send_object_async("receiver", make());
  sender.flush_session_batches();
  ASSERT_TRUE(f2.get().delivered);
  EXPECT_EQ(receiver.stats().session_batches, 2u);
  const std::uint64_t idle = net.stats().messages.get();
  sender.flush_session_batches();
  EXPECT_EQ(net.stats().messages.get(), idle);
  EXPECT_EQ(receiver.delivered_snapshot().size(), 5u);
}

TEST(SessionLayer, SharedIntroRegistryElidesSecondSenderDescriptions) {
  // alice and bob host the SAME generated assembly (identical description
  // XML). alice's cold push ships the descriptions; carol's ack advertises
  // their content hashes into the hub-level registry; bob's cold push then
  // skips the description bytes entirely — his intros still bind wire ids,
  // carol still delivers, and nobody ever falls back to a TypeInfoRequest.
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  Peer alice("alice", net, hub, config);
  Peer bob("bob", net, hub, config);
  Peer carol("carol", net, hub, config);

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);
  // ONE assembly instance hosted by both senders: "the same type" means
  // the same assembly (same GUIDs, so byte-identical description XML) —
  // two independently built look-alikes are distinct types and would
  // rightly hash apart.
  const auto shared_assembly = fuzz::sender_assembly("sirs", schema);
  alice.host_assembly(shared_assembly);
  bob.host_assembly(shared_assembly);
  carol.host_assembly(
      fuzz::receiver_assembly("sirr", schema, fuzz::InterestMode::Copy, dummy));
  carol.add_interest("sirr.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);

  const PushAck first =
      alice.send_object("carol", fuzz::make_object(alice, "sirs", schema, values));
  ASSERT_TRUE(first.delivered) << first.detail;
  EXPECT_EQ(alice.stats().session_intro_skips, 0u);
  EXPECT_GT(hub->intro_registry().known_count("carol"), 0u);

  const std::uint64_t bytes_before = net.stats().bytes.get();
  const PushAck second =
      bob.send_object("carol", fuzz::make_object(bob, "sirs", schema, values));
  const std::uint64_t second_bytes = net.stats().bytes.get() - bytes_before;
  ASSERT_TRUE(second.delivered) << second.detail;
  EXPECT_EQ(bob.stats().session_intro_skips, 2u);  // Thing + Child elided
  EXPECT_EQ(carol.stats().typeinfo_requests, 0u);
  EXPECT_EQ(carol.stats().session_resets, 0u);
  EXPECT_EQ(carol.delivered_snapshot().size(), 2u);

  // The elided cold push is strictly smaller than the described one. Both
  // runs repeat the identical protocol otherwise (optimistic, one nested
  // code fetch), so the delta is exactly the description bytes.
  SimNetwork isolated;
  auto fresh_hub = std::make_shared<AssemblyHub>();
  Peer dave("dave", isolated, fresh_hub, config);
  Peer erin("erin", isolated, fresh_hub, config);
  dave.host_assembly(fuzz::sender_assembly("sirs", schema));
  erin.host_assembly(
      fuzz::receiver_assembly("sirr", schema, fuzz::InterestMode::Copy, dummy));
  erin.add_interest("sirr.Thing");
  const std::uint64_t cold_before = isolated.stats().bytes.get();
  ASSERT_TRUE(
      dave.send_object("erin", fuzz::make_object(dave, "sirs", schema, values)).delivered);
  const std::uint64_t described_bytes = isolated.stats().bytes.get() - cold_before;
  EXPECT_LT(second_bytes, described_bytes);
}

TEST(SessionLayer, EvictedSessionResetsAndReplaysTransparently) {
  // carol remembers at most ONE sender session: alice and bob pushing
  // alternately evict each other every time. Every evicted sender sees a
  // Reset ack and must replay once with all intros — the application-level
  // result (delivered == true) never changes.
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig sender_config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  PeerConfig receiver_config = sender_config;
  receiver_config.session.max_peer_sessions = 1;
  Peer alice("alice", net, hub, sender_config);
  Peer bob("bob", net, hub, sender_config);
  Peer carol("carol", net, hub, receiver_config);

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);
  alice.host_assembly(fuzz::sender_assembly("sevA", schema));
  bob.host_assembly(fuzz::sender_assembly("sevB", schema));
  carol.host_assembly(
      fuzz::receiver_assembly("sevRa", schema, fuzz::InterestMode::Copy, dummy));
  carol.host_assembly(
      fuzz::receiver_assembly("sevRb", schema, fuzz::InterestMode::Copy, dummy));
  carol.add_interest("sevRa.Thing");
  carol.add_interest("sevRb.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);

  for (int round = 0; round < 3; ++round) {
    const PushAck a =
        alice.send_object("carol", fuzz::make_object(alice, "sevA", schema, values));
    ASSERT_TRUE(a.delivered) << "alice round " << round << ": " << a.detail;
    const PushAck b =
        bob.send_object("carol", fuzz::make_object(bob, "sevB", schema, values));
    ASSERT_TRUE(b.delivered) << "bob round " << round << ": " << b.detail;
    EXPECT_EQ(carol.sessions().inbound_sessions(), 1u);
  }

  // Round 0 establishes both sessions (bob's cold push evicts alice's
  // session silently — his own intros are fresh, so nothing resets); from
  // round 1 on, every push comes from the just-evicted sender: 2 resets
  // per round, each followed by exactly one replay.
  EXPECT_EQ(carol.stats().session_resets, 4u);
  EXPECT_EQ(alice.stats().session_retries + bob.stats().session_retries, 4u);
  EXPECT_EQ(carol.stats().objects_delivered, 6u);
  EXPECT_EQ(carol.delivered_snapshot().size(), 6u);
}

TEST(SessionLayer, QuotaRefusalLeavesSessionConsistent) {
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  Peer sender("sender", net, hub, config);
  Peer receiver("receiver", net, hub, config);

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);
  sender.host_assembly(fuzz::sender_assembly("sqfs", schema));
  receiver.host_assembly(
      fuzz::receiver_assembly("sqfr", schema, fuzz::InterestMode::Copy, dummy));
  receiver.add_interest("sqfr.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);
  const auto push = [&] {
    return sender.send_object("receiver",
                              fuzz::make_object(sender, "sqfs", schema, values));
  };

  // Phase 1: the cold push (payload + inline intros) exceeds the frame cap
  // and is refused AT THE SEAM — the receiver never sees it, so neither
  // side commits anything.
  PeerQuotaConfig strict;
  strict.max_frame_bytes = 64;
  net.set_peer_quota("sender", strict);
  EXPECT_THROW((void)push(), pti::ResourceExhaustedError);
  EXPECT_EQ(receiver.stats().session_pushes, 0u);
  EXPECT_EQ(receiver.sessions().inbound_sessions(), 0u);

  // Phase 2: lift the quota — the next push still carries its intros
  // (nothing was marked introduced) and simply succeeds.
  net.set_peer_quota("sender", PeerQuotaConfig{});
  const PushAck cold = push();
  ASSERT_TRUE(cold.delivered) << cold.detail;
  EXPECT_EQ(receiver.stats().session_intros, 2u);

  // Phase 3: tighten the cap mid-session, below even the warm push size.
  // The refusal must not poison the established session on either side.
  net.set_peer_quota("sender", strict);
  EXPECT_THROW((void)push(), pti::ResourceExhaustedError);

  // Phase 4: lift again — the warmed path resumes untouched: verdict hit,
  // one exchange, no reset, no replay.
  net.set_peer_quota("sender", PeerQuotaConfig{});
  const std::uint64_t before = net.stats().messages.get();
  const PushAck warm = push();
  ASSERT_TRUE(warm.delivered) << warm.detail;
  EXPECT_EQ(net.stats().messages.get() - before, 2u);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 1u);
  EXPECT_EQ(receiver.stats().session_resets, 0u);
  EXPECT_EQ(sender.stats().session_retries, 0u);
}

TEST(SessionLayer, HostileIntroNamesAreChargedBeforeTheHandlerRuns) {
  // A hand-crafted SessionPush flooding never-interned intro names is the
  // session-mode variant of the TypeInfoRequest name flood: the distinct-
  // name budget must refuse it at the transport seam, leaving the
  // receiver's session table untouched.
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  Peer receiver("receiver", net, hub, config);

  PeerQuotaConfig strict;
  strict.max_new_names = 2;
  net.set_default_peer_quota(strict);

  SessionPush flood;
  flood.token = 77;
  for (int i = 0; i < 3; ++i) {
    SessionIntro intro;
    intro.wire_id = static_cast<std::uint32_t>(i + 1);
    intro.type_name = "sessflood.never.N" + std::to_string(i);
    flood.intros.push_back(std::move(intro));
  }
  EXPECT_THROW((void)net.send(Message{"mallory", "receiver", std::move(flood)}),
               pti::ResourceExhaustedError);
  EXPECT_EQ(receiver.stats().session_pushes, 0u);
  EXPECT_EQ(receiver.sessions().inbound_sessions(), 0u);
  ASSERT_NE(net.peer_quotas(), nullptr);
  EXPECT_EQ(net.peer_quotas()->stats().rejected_names, 1u);
}

TEST(SessionLayer, AddInterestInvalidatesCachedRejects) {
  // A cached session REJECT must not survive a new interest: add_interest
  // bumps the verdict generation, so the next push re-runs conformance and
  // delivers.
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  Peer sender("sender", net, hub, config);
  Peer receiver("receiver", net, hub, config);

  const fuzz::Schema schema = fixed_schema();
  sender.host_assembly(fuzz::sender_assembly("sivs", schema));
  const fuzz::ValuePlan values = fixed_values(schema);
  const auto push = [&] {
    return sender.send_object("receiver",
                              fuzz::make_object(sender, "sivs", schema, values));
  };

  // No interests yet: rejected, and the rejection verdict is cached —
  // the second push is decided from the cache in one exchange.
  EXPECT_FALSE(push().delivered);
  const std::uint64_t before = net.stats().messages.get();
  EXPECT_FALSE(push().delivered);
  EXPECT_EQ(net.stats().messages.get() - before, 2u);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 1u);

  // The new interest conforms: the stale REJECT must not be served.
  util::Rng dummy(1);
  receiver.host_assembly(
      fuzz::receiver_assembly("sivr", schema, fuzz::InterestMode::Copy, dummy));
  receiver.add_interest("sivr.Thing");
  const PushAck after = push();
  ASSERT_TRUE(after.delivered) << after.detail;
  EXPECT_EQ(receiver.stats().session_verdict_hits, 1u);  // recomputed, not served
  EXPECT_EQ(receiver.stats().objects_delivered, 1u);

  // And the recomputed ACCEPT is itself cached again.
  EXPECT_TRUE(push().delivered);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 2u);
}

TEST(SessionLayer, GovernorSweepInvalidatesCachedVerdicts) {
  // The reclamation contract: a governor post-sweep hook wired to
  // sessions().invalidate_verdicts() makes every sweep bump the
  // generation, so verdicts cached before the sweep are recomputed — a
  // sweep can therefore never leave a stale verdict servable.
  SimNetwork net;
  auto hub = std::make_shared<AssemblyHub>();
  const PeerConfig config{.mode = ProtocolMode::Optimistic, .use_sessions = true};
  Peer sender("sender", net, hub, config);
  Peer receiver("receiver", net, hub, config);

  core::ResourceGovernor governor;
  governor.add_post_sweep_hook([&receiver] { receiver.sessions().invalidate_verdicts(); });

  const fuzz::Schema schema = fixed_schema();
  util::Rng dummy(1);
  sender.host_assembly(fuzz::sender_assembly("sgvs", schema));
  receiver.host_assembly(
      fuzz::receiver_assembly("sgvr", schema, fuzz::InterestMode::Copy, dummy));
  receiver.add_interest("sgvr.Thing");
  const fuzz::ValuePlan values = fixed_values(schema);
  const auto push = [&] {
    return sender.send_object("receiver",
                              fuzz::make_object(sender, "sgvs", schema, values));
  };

  ASSERT_TRUE(push().delivered);
  ASSERT_TRUE(push().delivered);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 1u);

  const std::uint64_t generation = receiver.sessions().generation();
  (void)governor.sweep();
  EXPECT_GT(receiver.sessions().generation(), generation);

  // Recomputed (still delivered — the interest is intact), then cached
  // again under the new generation.
  ASSERT_TRUE(push().delivered);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 1u);
  ASSERT_TRUE(push().delivered);
  EXPECT_EQ(receiver.stats().session_verdict_hits, 2u);
}

}  // namespace
}  // namespace pti
