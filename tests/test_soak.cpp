// Adversarial soak gate — hours-compressed hostile churn against the
// resource-governance stack (ISSUE 6 tentpole, part 3).
//
// Four hostile workloads run concurrently against one SocketTransport
// (real wire) while a ResourceGovernor sweeps in the background and a
// legitimate peer keeps pushing objects through the full protocol:
//
//   name flood        "mallory" streams TypeInfoRequests full of fresh
//                     names until her cumulative name budget trips.
//   near-cap frames   "goliath" replays frames close to (and above) his
//                     frame cap until the size cap and the bytes/sec
//                     token bucket both reject.
//   churn storm       endpoints attach/detach continuously while fresh
//                     transient names are interned straight into the
//                     global symbol table — the governor must evict them
//                     as fast as they appear.
//   partition/heal    a SimNetwork link is cut and restored in a loop;
//                     sends must fail while cut and succeed after heal.
//
// The gate asserts the two bounds the whole design promises: resident
// set size and global interned-name count stay below fixed ceilings no
// matter how long the churn runs, while the legitimate peer never sees
// a ResourceExhausted rejection.
//
// Env knobs (all optional; defaults keep plain ctest fast):
//   PTI_SOAK_SECONDS       churn duration (default 2; CI soak uses 600+)
//   PTI_SOAK_MAX_RSS_MB    RSS ceiling in MiB (default 1536 — roomy
//                          enough for sanitizer builds)
//   PTI_SOAK_MAX_INTERNED  global interned-name ceiling (default 200000)
//   PTI_SOAK_REPORT        path for a JSON metrics report (default: none)

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/resource_governor.hpp"
#include "fixtures/sample_types.hpp"
#include "reflect/value.hpp"
#include "transport/peer.hpp"
#include "transport/peer_quota.hpp"
#include "transport/sim_network.hpp"
#include "transport/socket_transport.hpp"
#include "util/epoch.hpp"
#include "util/error.hpp"
#include "util/interning.hpp"

namespace {

using namespace pti;
using namespace pti::transport;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

/// Resident set in MiB from /proc/self/status. Returns 0.0 where the file
/// does not exist (non-Linux), which auto-passes the RSS ceiling.
double rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

struct SoakMetrics {
  double rss_start_mb = 0.0;
  double rss_peak_mb = 0.0;
  double rss_end_mb = 0.0;
  std::size_t interned_peak = 0;
  std::size_t interned_end = 0;
  std::uint64_t legit_acks = 0;
  std::uint64_t flood_rejections = 0;
  std::uint64_t frame_rejections = 0;
  std::uint64_t frame_accepted = 0;
  std::uint64_t churn_cycles = 0;
  std::uint64_t partition_cycles = 0;
  std::uint64_t governor_sweeps = 0;
  std::uint64_t names_reclaimed = 0;
};

void write_report(const char* path, std::uint64_t seconds, const SoakMetrics& m,
                  const PeerQuotaStats& q) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"seconds\": " << seconds << ",\n"
      << "  \"rss_start_mb\": " << m.rss_start_mb << ",\n"
      << "  \"rss_peak_mb\": " << m.rss_peak_mb << ",\n"
      << "  \"rss_end_mb\": " << m.rss_end_mb << ",\n"
      << "  \"interned_peak\": " << m.interned_peak << ",\n"
      << "  \"interned_end\": " << m.interned_end << ",\n"
      << "  \"legit_acks\": " << m.legit_acks << ",\n"
      << "  \"flood_rejections\": " << m.flood_rejections << ",\n"
      << "  \"frame_rejections\": " << m.frame_rejections << ",\n"
      << "  \"frame_accepted\": " << m.frame_accepted << ",\n"
      << "  \"churn_cycles\": " << m.churn_cycles << ",\n"
      << "  \"partition_cycles\": " << m.partition_cycles << ",\n"
      << "  \"governor_sweeps\": " << m.governor_sweeps << ",\n"
      << "  \"names_reclaimed\": " << m.names_reclaimed << ",\n"
      << "  \"quota_rejected_frame_size\": " << q.rejected_frame_size << ",\n"
      << "  \"quota_rejected_rate\": " << q.rejected_rate << ",\n"
      << "  \"quota_rejected_inflight\": " << q.rejected_inflight << ",\n"
      << "  \"quota_rejected_names\": " << q.rejected_names << "\n"
      << "}\n";
}

TEST(Soak, HostileChurnStaysBounded) {
  const std::uint64_t seconds = env_u64("PTI_SOAK_SECONDS", 2);
  const double max_rss_mb = static_cast<double>(env_u64("PTI_SOAK_MAX_RSS_MB", 1536));
  const std::size_t max_interned =
      static_cast<std::size_t>(env_u64("PTI_SOAK_MAX_INTERNED", 200'000));

  SocketTransport net;
  {
    // Legitimate peers get room to breathe; the two hostile identities get
    // the budgets the scenarios are designed to exhaust.
    PeerQuotaTable& quotas = *net.peer_quotas();
    quotas.set_default(PeerQuotaConfig{.bytes_per_sec = 8'000'000,
                                       .max_inflight = 32,
                                       .max_frame_bytes = 256 * 1024});
    quotas.set_quota("mallory",
                     PeerQuotaConfig{.max_frame_bytes = 8192, .max_new_names = 200});
    quotas.set_quota("goliath",
                     PeerQuotaConfig{.bytes_per_sec = 20'000, .max_frame_bytes = 2048});
  }

  auto hub = std::make_shared<AssemblyHub>();
  Peer alice("alice", net, hub);
  Peer server("server", net, hub);
  alice.host_assembly(fixtures::team_a_people());
  server.host_assembly(fixtures::team_b_people());
  server.add_interest("teamB.Person");

  core::ResourceGovernor governor(
      core::GovernorConfig{.min_idle_ticks = 2, .max_evict_per_sweep = 4096});
  governor.watch(alice.domain().registry());
  governor.watch(server.domain().registry());
  governor.watch(alice.conformance_cache());
  governor.watch(server.conformance_cache());
  governor.start(std::chrono::milliseconds(5));

  SoakMetrics metrics;
  metrics.rss_start_mb = rss_mb();
  metrics.rss_peak_mb = metrics.rss_start_mb;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> legit_acks{0};
  std::atomic<std::uint64_t> legit_rejections{0};
  std::atomic<std::uint64_t> flood_rejections{0};
  std::atomic<std::uint64_t> frame_rejections{0};
  std::atomic<std::uint64_t> frame_accepted{0};
  std::atomic<std::uint64_t> churn_cycles{0};

  std::vector<std::thread> workers;

  // Name flood: every request carries a batch of names the symbol table has
  // never seen, so the cumulative budget (200) trips within a few batches
  // and every batch after that is refused before the handler runs.
  workers.emplace_back([&] {
    std::uint64_t iter = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TypeInfoRequest request;
      for (int k = 0; k < 32; ++k) {
        request.type_names.push_back("soak.flood." + std::to_string(iter) + "." +
                                     std::to_string(k));
      }
      ++iter;
      try {
        (void)net.send(Message{"mallory", "server", std::move(request)});
      } catch (const pti::ResourceExhaustedError&) {
        flood_rejections.fetch_add(1, std::memory_order_relaxed);
      } catch (const Error&) {
        // Transient wire faults are the other threads' business.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Near-cap frame replay: payloads hover around goliath's 2048-byte frame
  // cap. Oversized ones trip the size cap outright; the in-cap ones drain
  // the 20 kB/s token bucket and then bounce off the rate limiter until
  // the virtual clock (advanced by the driver below) refills it.
  workers.emplace_back([&] {
    std::uint64_t iter = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool oversized = (iter++ % 4) == 0;
      const std::size_t body = oversized ? 4096 : 1900;
      try {
        (void)net.send(Message{"goliath", "server", CodeRequest{std::string(body, 'g')}});
        frame_accepted.fetch_add(1, std::memory_order_relaxed);
      } catch (const pti::ResourceExhaustedError&) {
        frame_rejections.fetch_add(1, std::memory_order_relaxed);
      } catch (const Error&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Churn storm: endpoints come and go while fresh transient names pour
  // into the global symbol table (the same pressure a flood of refused
  // description batches leaves behind). The governor must evict them as
  // fast as they appear or the interned ceiling blows.
  workers.emplace_back([&] {
    util::SymbolTable& symbols = util::SymbolTable::global();
    std::uint64_t iter = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string endpoint = "soak.ep." + std::to_string(iter % 8);
      net.attach(endpoint, [](const Message& m) {
        return Message{m.recipient, m.sender, PushAck{true, "churn"}};
      });
      net.detach(endpoint);
      for (int k = 0; k < 64; ++k) {
        (void)symbols.intern("soak.churn." + std::to_string(iter) + "." +
                             std::to_string(k));
      }
      ++iter;
      churn_cycles.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Legitimate traffic: the full optimistic protocol, end to end, for the
  // whole soak. One ResourceExhausted here and the gate fails — quotas
  // must only ever bite the hostile identities.
  workers.emplace_back([&] {
    std::uint64_t iter = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        const reflect::Value args[] = {reflect::Value("Alice-" + std::to_string(iter++))};
        const PushAck ack =
            alice.send_object("server", alice.domain().instantiate("teamA.Person", args));
        if (ack.delivered) legit_acks.fetch_add(1, std::memory_order_relaxed);
      } catch (const pti::ResourceExhaustedError&) {
        legit_rejections.fetch_add(1, std::memory_order_relaxed);
      } catch (const Error&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Driver: advance the transports' virtual clock in lock-step with real
  // time (token buckets refill against it), run the partition/heal cycle
  // on a SimNetwork, and sample the two bounded quantities.
  SimNetwork sim;
  sim.attach("sim.b", [](const Message& m) {
    return Message{"sim.b", m.sender, PushAck{true, "pong"}};
  });
  std::uint64_t partition_cycles = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  auto last_tick = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto now = std::chrono::steady_clock::now();
    const auto delta_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_tick);
    last_tick = now;
    net.clock().advance_ns(static_cast<std::uint64_t>(delta_ns.count()));

    sim.partition("sim.a", "sim.b");
    EXPECT_THROW((void)sim.send(Message{"sim.a", "sim.b", CodeRequest{"cut"}}),
                 NetworkError);
    sim.heal_partition("sim.a", "sim.b");
    const Message pong = sim.send(Message{"sim.a", "sim.b", CodeRequest{"healed"}});
    EXPECT_TRUE(std::get<PushAck>(pong.payload).delivered);
    ++partition_cycles;

    metrics.rss_peak_mb = std::max(metrics.rss_peak_mb, rss_mb());
    metrics.interned_peak =
        std::max(metrics.interned_peak, util::SymbolTable::global().size());
    // The ceilings hold THROUGHOUT the run, not just at the end.
    ASSERT_LE(util::SymbolTable::global().size(), max_interned)
        << "interned-name count escaped its ceiling mid-soak";
    if (metrics.rss_peak_mb > 0.0) {
      ASSERT_LE(metrics.rss_peak_mb, max_rss_mb) << "RSS escaped its ceiling mid-soak";
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();

  // Drain: a few quiescent sweeps so everything transient and cold is gone.
  governor.stop();
  for (int i = 0; i < 8; ++i) (void)governor.sweep();

  metrics.rss_end_mb = rss_mb();
  metrics.interned_end = util::SymbolTable::global().size();
  metrics.legit_acks = legit_acks.load();
  metrics.flood_rejections = flood_rejections.load();
  metrics.frame_rejections = frame_rejections.load();
  metrics.frame_accepted = frame_accepted.load();
  metrics.churn_cycles = churn_cycles.load();
  metrics.partition_cycles = partition_cycles;
  metrics.governor_sweeps = governor.sweeps();
  metrics.names_reclaimed = util::EpochManager::global().reclaimed_total();
  const PeerQuotaStats quota_stats = net.peer_quotas()->stats();
  if (const char* path = std::getenv("PTI_SOAK_REPORT"); path != nullptr && *path) {
    write_report(path, seconds, metrics, quota_stats);
  }

  // Every hostile workload actually engaged its quota dimension...
  EXPECT_GT(metrics.flood_rejections, 0u);
  EXPECT_GT(quota_stats.rejected_names, 0u);
  EXPECT_GT(metrics.frame_rejections, 0u);
  EXPECT_GT(quota_stats.rejected_frame_size, 0u);
  EXPECT_GT(quota_stats.rejected_rate, 0u);
  EXPECT_GT(metrics.frame_accepted, 0u);  // bucket refilled — not a blanket ban
  EXPECT_GT(metrics.churn_cycles, 0u);
  EXPECT_GT(metrics.partition_cycles, 0u);
  // ...the governor ran and actually reclaimed the transient churn...
  EXPECT_GT(metrics.governor_sweeps, 0u);
  EXPECT_GT(metrics.names_reclaimed, 0u);
  // ...the legitimate peer sailed through untouched...
  EXPECT_GT(metrics.legit_acks, 0u);
  EXPECT_EQ(legit_rejections.load(), 0u);
  // ...and both bounds held at the end as they did throughout.
  EXPECT_LE(metrics.interned_end, max_interned);
  if (metrics.rss_end_mb > 0.0) {
    EXPECT_LE(metrics.rss_end_mb, max_rss_mb);
  }
}

}  // namespace
