// Tests for the public API layer (InteropSystem / InteropRuntime).
#include <gtest/gtest.h>

#include "core/interop.hpp"
#include "fixtures/sample_types.hpp"

namespace pti::core {
namespace {

using reflect::Value;

class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : alice_(system_.create_runtime("alice")), bob_(system_.create_runtime("bob")) {
    alice_.publish_assembly(fixtures::team_a_people());
    bob_.publish_assembly(fixtures::team_b_people());
  }

  InteropSystem system_;
  InteropRuntime& alice_;
  InteropRuntime& bob_;
};

TEST_F(CoreTest, SystemManagesRuntimes) {
  EXPECT_EQ(system_.find("alice"), &alice_);
  EXPECT_EQ(system_.find("ALICE"), &alice_);  // case-insensitive
  EXPECT_EQ(system_.find("nobody"), nullptr);
  EXPECT_EQ(system_.runtimes().size(), 2u);
  EXPECT_THROW((void)system_.create_runtime("alice"), transport::TransportError);
}

TEST_F(CoreTest, MakeAndCall) {
  const Value args[] = {Value("Ada")};
  auto person = alice_.make("teamA.Person", args);
  EXPECT_EQ(alice_.call(person, "getName").as_string(), "Ada");
  // Simple-name resolution works for unambiguous types.
  auto another = alice_.make("Person", args);
  EXPECT_EQ(another->type_name(), "teamA.Person");
}

TEST_F(CoreTest, SubscribeSendAdaptFlow) {
  std::vector<std::string> names;
  bob_.subscribe("teamB.Person", [&](const transport::DeliveredObject& ev) {
    names.push_back(bob_.call(ev.adapted, "getPersonName").as_string());
  });

  const Value args[] = {Value("Ada")};
  const auto ack = alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_TRUE(ack.delivered);
  EXPECT_EQ(names, (std::vector<std::string>{"Ada"}));
}

TEST_F(CoreTest, MultipleSubscribersOnOneInterest) {
  int calls = 0;
  bob_.subscribe("teamB.Person", [&](const auto&) { ++calls; });
  bob_.subscribe("teamB.Person", [&](const auto&) { ++calls; });
  const Value args[] = {Value("X")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(calls, 2);
}

TEST_F(CoreTest, AdaptAndConformanceQueries) {
  const Value args[] = {Value("Ada")};
  auto person = alice_.make("teamA.Person", args);

  // alice can query conformance between her local descriptions.
  alice_.publish_assembly(fixtures::bank_accounts());
  const auto ok = alice_.check_conformance("teamA.Person", "teamA.INamed");
  EXPECT_TRUE(ok.conformant);
  const auto bad = alice_.check_conformance("bank.Account", "teamA.Person");
  EXPECT_FALSE(bad.conformant);

  auto as_named = alice_.adapt(person, "teamA.INamed");
  EXPECT_EQ(alice_.call(as_named, "getName").as_string(), "Ada");
}

TEST_F(CoreTest, ExportImportRemote) {
  const Value args[] = {Value("Ada")};
  auto person = alice_.make("teamA.Person", args);
  const std::uint64_t id = alice_.export_object(person);

  auto ref = bob_.import_remote("alice", id, "teamA.Person");
  auto as_b = bob_.adapt(ref, "teamB.Person");
  EXPECT_EQ(bob_.call(as_b, "getPersonName").as_string(), "Ada");
}

TEST_F(CoreTest, StatsAreReachable) {
  bob_.subscribe("teamB.Person", [](const auto&) {});
  const Value args[] = {Value("Ada")};
  (void)alice_.send("bob", alice_.make("teamA.Person", args));
  EXPECT_EQ(alice_.stats().objects_sent, 1u);
  EXPECT_EQ(bob_.stats().objects_delivered, 1u);
  EXPECT_GT(system_.network().stats().bytes, 0u);
}

TEST_F(CoreTest, PerRuntimeConfiguration) {
  transport::PeerConfig config;
  config.payload_encoding = "binary";
  InteropRuntime& carol = system_.create_runtime("carol", config);
  carol.publish_assembly(fixtures::team_b_people());
  carol.subscribe("teamB.Person", [](const auto&) {});

  const Value args[] = {Value("Ada")};
  const auto ack = alice_.send("carol", alice_.make("teamA.Person", args));
  EXPECT_TRUE(ack.delivered);
  EXPECT_EQ(carol.peer().config().payload_encoding, "binary");
}

}  // namespace
}  // namespace pti::core
