// Protocol messages of the optimistic transport protocol (paper Fig. 1)
// plus the remoting messages of Section 6.2.
//
//   ObjectPush       (1) object arrives, wrapped in the hybrid envelope
//   TypeInfoRequest  (2) receiver asks for unknown type descriptions
//   TypeInfoResponse (3) sender returns XML type descriptions
//   CodeRequest      (4) types conform: receiver asks for the assembly
//   CodeResponse     (5) code arrives, object becomes usable
//   InvokeRequest/InvokeResponse — pass-by-reference remote invocations
//   PushAck / ErrorReply — outcome signalling
//
// Wire sizes are modelled analytically (header + real content bytes); the
// dominant contributors — envelopes, XML descriptions, assembly code — are
// measured from their true serialized size.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace pti::transport {

struct ObjectPush {
  std::vector<std::uint8_t> envelope;  ///< serial::Envelope bytes
  /// Eager-mode extras: descriptions and assemblies shipped up front.
  std::vector<std::string> eager_descriptions_xml;
  std::vector<std::string> eager_assembly_names;
  std::uint64_t eager_assembly_bytes = 0;
};

struct PushAck {
  bool delivered = false;
  std::string detail;  ///< interest type on success, reason on rejection
};

struct TypeInfoRequest {
  std::vector<std::string> type_names;
};

struct TypeInfoResponse {
  std::vector<std::string> descriptions_xml;  ///< one per known requested type
  std::vector<std::string> unknown;           ///< requested names this peer lacks
};

struct CodeRequest {
  std::string assembly_name;
};

struct CodeResponse {
  std::string assembly_name;
  bool found = false;
  std::uint64_t code_bytes = 0;  ///< simulated size of the shipped assembly
};

struct InvokeRequest {
  std::uint64_t object_id = 0;
  std::string method_name;
  std::vector<std::uint8_t> args_envelope;  ///< list-of-arguments envelope
};

struct InvokeResponse {
  bool ok = false;
  std::vector<std::uint8_t> result_envelope;  ///< valid when ok
  std::string error;                          ///< valid when !ok
};

struct ErrorReply {
  std::string message;
};

/// One type description piggybacked inline on a SessionPush: binds a
/// session-scoped wire id to a named type the receiver has not seen from
/// this sender yet. Carries everything a cold TypeInfoResponse would, so
/// the nested fetch exchange disappears.
struct SessionIntro {
  std::uint32_t wire_id = 0;
  std::string type_name;
  std::string description_xml;
  std::string assembly_name;
  std::string download_path;
};

/// Session-mode object push: the envelope's type set travels as compact
/// wire ids (established by earlier intros) and the payload travels raw,
/// without the XML envelope wrapper. First-contact types ride along as
/// inline intros — a warmed push is exactly one framed exchange.
struct SessionPush {
  std::uint64_t token = 0;                ///< sender-chosen session identity
  std::vector<std::uint32_t> wire_types;  ///< envelope type set, root first
  std::string encoding;                   ///< payload serializer name
  std::vector<std::uint8_t> payload;      ///< raw serialized object bytes
  std::vector<SessionIntro> intros;       ///< first-contact descriptions
  /// Eager-mode extras: assemblies prepaid alongside the intros.
  std::vector<std::string> intro_assembly_names;
  std::uint64_t intro_assembly_bytes = 0;
};

enum class SessionStatus : std::uint8_t {
  Ok = 0,     ///< session recognised, verdict in `delivered`/`detail`
  Reset = 1,  ///< receiver lost the session state: replay with intros
};

struct SessionAck {
  SessionStatus status = SessionStatus::Ok;
  bool delivered = false;
  std::string detail;  ///< interest type on success, reason on rejection
  /// Content hashes (FNV-64 of the canonical description XML) of type
  /// descriptions this receiver already holds. Advertised on Reset and on
  /// the first ack of a session so senders — and, through the hub intro
  /// registry, *other* senders — can skip re-shipping those descriptions.
  std::vector<std::uint64_t> known_desc_hashes;
};

/// Several session pushes to the same recipient in one framed exchange.
/// Entries correlate positionally with the ack's slots: entry i is
/// answered by SessionBatchAck::entries[i], and each slot carries a full
/// per-entry verdict so one refused entry never desynchronises the rest.
struct SessionBatch {
  std::vector<SessionPush> entries;
};

struct SessionBatchAck {
  std::vector<SessionAck> entries;  ///< one verdict per batch entry, in order
};

using MessagePayload =
    std::variant<ObjectPush, PushAck, TypeInfoRequest, TypeInfoResponse, CodeRequest,
                 CodeResponse, InvokeRequest, InvokeResponse, ErrorReply, SessionPush,
                 SessionAck, SessionBatch, SessionBatchAck>;

struct Message {
  std::string sender;
  std::string recipient;
  MessagePayload payload;

  [[nodiscard]] std::size_t wire_size() const noexcept;
  [[nodiscard]] const char* kind_name() const noexcept;
};

}  // namespace pti::transport
