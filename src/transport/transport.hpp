// Transport — the abstract message-passing seam between peers.
//
// A Transport routes request/response Message exchanges between named
// endpoints and accounts for their cost. It is the interface every layer
// above src/transport/ programs against: Peer, Remoting and the core
// InteropSystem/InteropRuntime never name a concrete transport, so a
// future async or multi-threaded transport plugs in underneath the whole
// stack without touching it (the PR-2 stores underneath are already
// thread-safe; this seam is where such a transport would attach).
//
// SimNetwork (sim_network.hpp) is the first implementation: the
// deterministic in-process simulator standing in for the paper's testbed.
// Simulator-only controls (fault injection, drop schedules) stay on the
// concrete class; everything a protocol layer legitimately needs — send,
// endpoint attachment, link cost configuration, traffic stats, the
// virtual clock charged per traversal — is part of this interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "transport/message.hpp"
#include "util/sim_clock.hpp"

namespace pti::transport {

/// Cost model of one directed link: fixed latency plus bandwidth-
/// proportional transmission time, and an optional loss rate.
struct LinkConfig {
  std::uint64_t latency_ns = 1'000'000;           ///< 1 ms one-way
  double bandwidth_bytes_per_sec = 12'500'000.0;  ///< 100 Mbit/s
  double drop_probability = 0.0;
};

/// Aggregate traffic counters — the quantity the optimistic protocol is
/// designed to save.
struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;

  void reset() noexcept { *this = {}; }
};

class Transport {
 public:
  /// A handler consumes a request and produces the response message.
  using Handler = std::function<Message(const Message&)>;

  virtual ~Transport() = default;

  /// Registers `handler` as the endpoint reachable under `name`.
  virtual void attach(std::string_view name, Handler handler) = 0;
  virtual void detach(std::string_view name) = 0;
  [[nodiscard]] virtual bool is_attached(std::string_view name) const noexcept = 0;

  /// Synchronous exchange: delivers the request to the recipient's handler
  /// and returns its response, charging both traversals. Throws
  /// NetworkError on unknown recipients or transmission failure.
  virtual Message send(const Message& request) = 0;

  /// Cost configuration: the default link and per-directed-link overrides.
  virtual void set_default_link(const LinkConfig& config) noexcept = 0;
  virtual void set_link(std::string_view from, std::string_view to,
                        const LinkConfig& config) = 0;

  [[nodiscard]] virtual const NetStats& stats() const noexcept = 0;
  virtual void reset_stats() noexcept = 0;

  /// The clock charged per message traversal. A simulated transport
  /// advances virtual time; a real one would track elapsed wall time.
  [[nodiscard]] virtual util::SimClock& clock() noexcept = 0;
};

/// Factory for the default simulated transport, so transport consumers
/// (the core layer) never name the concrete SimNetwork type.
[[nodiscard]] std::unique_ptr<Transport> make_sim_network(std::uint64_t rng_seed = 42);

}  // namespace pti::transport
