// Transport — the abstract message-passing seam between peers.
//
// A Transport routes request/response Message exchanges between named
// endpoints and accounts for their cost. It is the interface every layer
// above src/transport/ programs against: Peer, Remoting and the core
// InteropSystem/InteropRuntime never name a concrete transport, so any
// implementation plugs in underneath the whole stack without touching it.
//
// Three implementations ship with the library:
//   * SimNetwork (sim_network.hpp) — the deterministic single-threaded
//     simulator standing in for the paper's testbed, with fault injection
//     (drop schedules, partitions) for protocol-hardening tests;
//   * AsyncTransport (async_transport.hpp) — a thread-pool-backed
//     transport with per-endpoint inbox queues, non-blocking send_async,
//     backpressure, and the same deterministic virtual-clock cost model;
//   * SocketTransport (socket_transport.hpp) — the real wire: every
//     message is serialized by serial::FrameCodec and crosses loopback
//     TCP as length-prefixed binary frames, with the same cost model
//     charged on the modelled sizes and the true framed bytes counted
//     separately.
//
// Endpoint contract (identical for every implementation):
//   * attach() registers a handler under a name; attaching a name that is
//     already attached throws TransportError — silent replacement hid
//     misconfigured universes and made detach() ambiguous. The empty name
//     is rejected everywhere: it is reserved by the wire protocol, where
//     an *unaddressed* message (empty sender and recipient) marks a
//     transport-level fault frame that no endpoint may be able to forge.
//   * detach() unregisters the endpoint. It is safe to call while the
//     endpoint's handler is executing — including from inside the handler
//     itself — and after it returns no *new* deliveries to that name
//     begin. A concurrent transport must keep the handler object alive
//     until in-flight executions finish (see AsyncTransport for the
//     blocking guarantees that make destroying the handler's owner safe).
//     Detaching a name that is not attached is a no-op.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string_view>

#include "transport/message.hpp"
#include "util/atomic_counter.hpp"
#include "util/sim_clock.hpp"

namespace pti::transport {

/// Cost model of one directed link: fixed latency plus bandwidth-
/// proportional transmission time, and an optional loss rate.
struct LinkConfig {
  std::uint64_t latency_ns = 1'000'000;           ///< 1 ms one-way
  double bandwidth_bytes_per_sec = 12'500'000.0;  ///< 100 Mbit/s
  double drop_probability = 0.0;
};

/// Per-peer resource budget — the hostile-peer governance knobs enforced
/// at the transport seam (admission of inbound frames) and at the
/// registry boundary (distinct-name budget). Zero means "unlimited" for
/// every field, so a default-constructed config governs nothing.
///
/// Enforcement points (see PeerQuotaTable in peer_quota.hpp):
///  * max_frame_bytes  — an inbound message whose wire size exceeds this
///    is rejected before its handler runs.
///  * bytes_per_sec / burst_bytes — token bucket over the transport's
///    virtual clock; a frame is admitted only when the peer's accumulated
///    byte allowance covers it. burst_bytes of 0 defaults the bucket
///    depth to one second of rate.
///  * max_inflight     — concurrent exchanges the peer may have executing.
///  * max_new_names    — distinct type names the peer may cause the local
///    SymbolTable/TypeRegistry to intern, cumulatively; the backstop that
///    keeps a name-flooding peer from growing process-lifetime state.
///
/// Every violation surfaces as pti::ResourceExhaustedError, classified
/// core::ErrorCode::ResourceExhausted, and crosses the wire as an
/// unforgeable "resource|" fault frame.
struct PeerQuotaConfig {
  std::uint64_t bytes_per_sec = 0;   ///< token-bucket refill rate (0 = off)
  std::uint64_t burst_bytes = 0;     ///< bucket depth (0 = 1s of rate)
  std::uint32_t max_inflight = 0;    ///< concurrent exchanges (0 = off)
  std::uint64_t max_frame_bytes = 0; ///< per-message wire-size cap (0 = off)
  std::uint64_t max_new_names = 0;   ///< cumulative interned-name budget (0 = off)

  /// True when at least one field actually constrains something.
  [[nodiscard]] bool limits_anything() const noexcept {
    return bytes_per_sec != 0 || max_inflight != 0 || max_frame_bytes != 0 ||
           max_new_names != 0;
  }
};

class PeerQuotaTable;

/// Aggregate traffic counters — the quantity the optimistic protocol is
/// designed to save. Counters are relaxed atomics so concurrent transports
/// can charge them from many threads; cross-field consistency is only
/// guaranteed at quiescent points.
struct NetStats {
  util::RelaxedCounter messages;
  util::RelaxedCounter bytes;
  util::RelaxedCounter drops;

  void reset() noexcept {
    messages = 0;
    bytes = 0;
    drops = 0;
  }
};

class Transport {
 public:
  /// A handler consumes a request and produces the response message.
  using Handler = std::function<Message(const Message&)>;

  /// Completion callback of an asynchronous exchange: exactly one of
  /// `response` (on success) or `error` (the exception the synchronous
  /// send() would have thrown) is meaningful; `error` is null on success.
  using SendCallback = std::function<void(Message response, std::exception_ptr error)>;

  virtual ~Transport() = default;

  /// Registers `handler` as the endpoint reachable under `name`. Throws
  /// TransportError when `name` is already attached (see the endpoint
  /// contract above).
  virtual void attach(std::string_view name, Handler handler) = 0;
  virtual void detach(std::string_view name) = 0;
  [[nodiscard]] virtual bool is_attached(std::string_view name) const noexcept = 0;

  /// Synchronous exchange: delivers the request to the recipient's handler
  /// and returns its response, charging both traversals. Throws
  /// NetworkError on unknown recipients or transmission failure.
  virtual Message send(const Message& request) = 0;

  /// Non-blocking exchange: the returned future is fulfilled with the
  /// response, or with the exception send() would have thrown. The default
  /// implementation performs the exchange synchronously before returning —
  /// a correct (if unpipelined) fallback that keeps simple transports like
  /// SimNetwork working without their own queueing machinery.
  [[nodiscard]] virtual std::future<Message> send_async(Message request);

  /// Callback form of send_async. The callback may run on an arbitrary
  /// transport thread (the calling thread under the default fallback) and
  /// must not block it. Exactly one invocation per send.
  virtual void send_async(Message request, SendCallback on_complete);

  /// Cost configuration: the default link and per-directed-link overrides.
  virtual void set_default_link(const LinkConfig& config) noexcept = 0;
  virtual void set_link(std::string_view from, std::string_view to,
                        const LinkConfig& config) = 0;

  /// Hostile-peer governance: quota applied to peers without a per-peer
  /// override, and per-peer overrides. The defaults are no-ops so
  /// transports (and test doubles) that do not govern resources need not
  /// care; the three shipped implementations all enforce via a shared
  /// PeerQuotaTable. Peer identity is the declarative `sender` field of
  /// the request — authenticating it is the ROADMAP's TLS/auth item.
  virtual void set_default_peer_quota(const PeerQuotaConfig& config);
  virtual void set_peer_quota(std::string_view peer, const PeerQuotaConfig& config);
  /// The enforcing table, or nullptr when this transport does not govern.
  /// Upper layers (Peer) use it to charge the distinct-name budget at the
  /// registry boundary.
  [[nodiscard]] virtual PeerQuotaTable* peer_quotas() noexcept;

  [[nodiscard]] virtual const NetStats& stats() const noexcept = 0;
  virtual void reset_stats() noexcept = 0;

  /// The clock charged per message traversal. A simulated transport
  /// advances virtual time; a real one would track elapsed wall time.
  [[nodiscard]] virtual util::SimClock& clock() noexcept = 0;
};

/// Factory for the default simulated transport, so transport consumers
/// (the core layer) never name the concrete SimNetwork type.
[[nodiscard]] std::unique_ptr<Transport> make_sim_network(std::uint64_t rng_seed = 42);

/// Shared accounting core of the in-process transports: charges one
/// successful traversal (message count, bytes, latency + transmission
/// time on the virtual clock) per the link's cost model. Keeping this in
/// one place is what keeps SimNetwork's and AsyncTransport's byte counts
/// and clock charges comparable.
void charge_traversal(const LinkConfig& link, std::size_t wire_bytes, NetStats& stats,
                      util::SimClock& clock) noexcept;

/// Addresses `response` back to the requester. The routing is derived
/// from the request — a handler cannot spoof the response's endpoints.
void address_response(const Message& request, Message& response) noexcept;

}  // namespace pti::transport
