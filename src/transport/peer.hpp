// Peer — one participant in the distributed system, implementing the
// paper's optimistic transport protocol (Fig. 1):
//
//   1. an object arrives wrapped in a hybrid envelope (type names +
//      download paths + payload) — no descriptions, no code;
//   2. the receiver requests descriptions for the type names it does not
//      know yet;
//   3. descriptions arrive; the receiver checks implicit structural
//      conformance against its types of interest (fetching further
//      referenced descriptions on demand);
//   4. only if some interest conforms does it request the code;
//   5. the code (assembly) arrives, the object is deserialized and handed
//      to the application wrapped as the interest type.
//
// Non-conformant pushes are rejected after step 3 — the saving the paper's
// protocol exists for: neither the (large) code nor redundant descriptions
// ever cross the wire. A Peer can also run in Eager mode (ships
// descriptions + assemblies with every object), the baseline benchmark E5
// compares against.
//
// Thread safety: a Peer tolerates concurrent *inbound* requests (a
// concurrent transport delivers on worker threads) and concurrent
// send_object()/send_object_async() calls from application threads — the
// stores underneath (registry, symbol table, conformance cache, domain,
// hub) are thread-safe, the stats are atomic, and the interest/delivered
// lists are guarded here. Configuration stays single-threaded: call
// add_interest / set_delivery_handler / set_extra_handler / host_assembly
// before (or between, from one thread) traffic, not during it. The
// delivery handler itself may run on any transport thread and must be
// thread-safe. delivered() returns a reference that is only stable at
// quiescent points; concurrent readers use delivered_count() /
// delivered_snapshot().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "conform/conformance_cache.hpp"
#include "conform/conformance_checker.hpp"
#include "proxy/dynamic_proxy.hpp"
#include "reflect/domain.hpp"
#include "serial/envelope.hpp"
#include "serial/object_serializer.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/protocol_stats.hpp"
#include "transport/session.hpp"
#include "transport/transport.hpp"
#include "util/interning.hpp"

namespace pti::transport {

enum class ProtocolMode : std::uint8_t {
  Optimistic,  ///< the paper's protocol: metadata and code on demand
  Eager,       ///< baseline: descriptions + assemblies with every object
};

/// Which conformance relation gates delivery (the paper's rules vs the
/// Section 2 baselines). All modes still produce adaptation plans through
/// the checker; the matcher only decides *whether* an interest matches.
enum class MatcherKind : std::uint8_t {
  ImplicitStructural,  ///< the paper's rule (default)
  Exact,               ///< type identity only (.NET CTS / plain RMI)
  Nominal,             ///< identity or declared subtyping (CORBA-style)
  TaggedStructural,    ///< Läufer et al.: tagged types, exact signatures
};

struct PeerConfig {
  ProtocolMode mode = ProtocolMode::Optimistic;
  MatcherKind matcher = MatcherKind::ImplicitStructural;
  /// Payload serializer for pass-by-value objects ("soap", "binary", "xml").
  std::string payload_encoding = "soap";
  conform::ConformanceOptions conformance{};
  bool use_conformance_cache = true;
  /// Cap on description-fetch rounds per conformance decision.
  std::size_t max_fetch_rounds = 16;
  /// Keep every DeliveredObject in delivered() (the test/diagnostic
  /// record). Long-running or benchmarked peers turn this off — the
  /// delivery handler still fires per object, but nothing accumulates.
  bool retain_delivered = true;
  /// Session-layer protocol: pushes travel as SessionPush frames carrying
  /// compact wire ids and raw payload bytes; first-contact types ride
  /// along as inline intros and conformance verdicts are cached per
  /// session, so a warmed push is exactly one framed exchange.
  bool use_sessions = false;
  SessionConfig session{};
};

/// What the application receives when a pushed object matched an interest.
struct DeliveredObject {
  std::shared_ptr<reflect::DynObject> object;   ///< the raw deserialized object
  std::shared_ptr<reflect::DynObject> adapted;  ///< usable as the interest type
  std::string interest_type;                    ///< which interest matched
  /// Interned id of the matched interest's qualified name — the key the
  /// core layer dispatches handlers on without touching the string.
  util::InternedName interest_id;
  std::string sender;
};

class Peer {
 public:
  Peer(std::string name, Transport& network, std::shared_ptr<AssemblyHub> hub,
       PeerConfig config = {});
  ~Peer();
  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] reflect::Domain& domain() noexcept { return domain_; }
  [[nodiscard]] conform::ConformanceChecker& checker() noexcept { return checker_; }
  [[nodiscard]] conform::ConformanceCache& conformance_cache() noexcept { return cache_; }
  [[nodiscard]] proxy::ProxyFactory& proxies() noexcept { return proxies_; }
  [[nodiscard]] ProtocolStats& stats() noexcept { return stats_; }
  [[nodiscard]] const PeerConfig& config() const noexcept { return config_; }
  [[nodiscard]] Transport& network() noexcept { return network_; }
  [[nodiscard]] serial::SerializerRegistry& serializers() noexcept { return serializers_; }
  /// The session-layer state (wire-id tables, verdict cache). Present in
  /// every peer; only consulted when config().use_sessions is set. Wire a
  /// governor's post-sweep hook to sessions().invalidate_verdicts() so
  /// reclamation never leaves a stale cached verdict servable.
  [[nodiscard]] SessionTable& sessions() noexcept { return sessions_; }

  /// Loads the assembly locally and hosts it for download by other peers
  /// (descriptions get download path "net://<peer>/<assembly>"). Returns
  /// the registered descriptions in assembly order (empty on re-host).
  std::vector<const reflect::TypeDescription*> host_assembly(
      std::shared_ptr<const reflect::Assembly> assembly);

  /// Declares a type of interest; the name must resolve in the local
  /// registry (you subscribe with *your* type). Returns the interned id of
  /// the interest's qualified name (the dispatch key). Registration goes
  /// through the hub's shared InterestIndex — the one matching engine.
  util::InternedName add_interest(std::string_view type_name);
  /// Interest declared by an already-resolved local description — the
  /// handle-based fast path (no registry lookup).
  util::InternedName add_interest(const reflect::TypeDescription& interest);
  /// Interests declared so far, in declaration order: an immutable shared
  /// snapshot — no per-query rebuild or allocation. The pointed-to vector
  /// never changes; later add_interest calls publish a fresh snapshot.
  [[nodiscard]] std::shared_ptr<const std::vector<std::string>> interests() const;
  /// Interned ids of the declared interests, in declaration order.
  [[nodiscard]] std::vector<util::InternedName> interest_ids() const;
  /// This peer's dense id in the hub's shared InterestIndex.
  [[nodiscard]] SubscriberId subscriber_id() const noexcept { return sub_; }

  using DeliveryHandler = std::function<void(const DeliveredObject&)>;
  void set_delivery_handler(DeliveryHandler handler) { on_delivery_ = std::move(handler); }

  /// Pass-by-value transfer of an object graph to another peer. Proxy
  /// wrappers are stripped before serialization (the wire carries real
  /// state). Throws NetworkError/ProtocolError on failure.
  PushAck send_object(std::string_view to, const std::shared_ptr<reflect::DynObject>& object);

  /// Non-blocking variant over Transport::send_async: serialization
  /// happens on the calling thread, the exchange on a transport thread.
  /// The future carries the PushAck or the exception send_object would
  /// have thrown. Under the synchronous fallback transports (SimNetwork)
  /// the exchange completes before this returns. In-flight async sends
  /// are tracked: ~Peer blocks until their completions have run, so the
  /// futures always resolve and never touch a dead peer.
  ///
  /// With config().session.max_batch > 1 (session mode only), async pushes
  /// to the same recipient queue in a batching window and travel as one
  /// SessionBatch frame once the window fills; the futures resolve when
  /// the batch's ack arrives. A partially filled window flushes on a
  /// synchronous send to that recipient, on flush_session_batches(), and
  /// at peer teardown.
  [[nodiscard]] std::future<PushAck> send_object_async(
      std::string_view to, const std::shared_ptr<reflect::DynObject>& object);

  /// Drains every pending batching window now (no-op when none). Call
  /// after a burst of send_object_async calls shorter than max_batch.
  void flush_session_batches();

  /// Objects delivered to this peer so far (most recent last). The
  /// reference is stable only at quiescent points — while transport
  /// threads are delivering, use delivered_count()/delivered_snapshot().
  [[nodiscard]] const std::vector<DeliveredObject>& delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::size_t delivered_count() const;
  [[nodiscard]] std::vector<DeliveredObject> delivered_snapshot() const;

  /// Extension point: a hook that may consume messages before the standard
  /// protocol handler (the remoting layer installs itself here).
  using ExtraHandler = std::function<std::optional<Message>(const Message&)>;
  void set_extra_handler(ExtraHandler handler) { extra_handler_ = std::move(handler); }

  /// Serializes a locally known user type description to XML (helper for
  /// protocol responses and tests).
  [[nodiscard]] std::string describe_type_xml(std::string_view type_name) const;

  /// Fetches missing descriptions from `from`; returns how many were newly
  /// registered. Public because the remoting layer runs the same
  /// description dance for invocation arguments and results.
  std::size_t fetch_descriptions(std::string_view from, std::vector<std::string> names);

  /// Runs protocol steps 2+4+5 (descriptions, then code) for a set of
  /// type-info entries without interest matching — the remoting layer's
  /// path for making argument/result types usable.
  void ensure_types_usable(const std::vector<serial::TypeInfoEntry>& types,
                           std::string_view counterpart);

 private:
  Message handle(const Message& request);
  Message handle_object_push(const Message& request, const ObjectPush& push);
  Message handle_session_push(const Message& request, const SessionPush& push);
  Message handle_session_batch(const Message& request, const SessionBatch& batch);
  [[nodiscard]] TypeInfoResponse handle_typeinfo(const TypeInfoRequest& request);
  [[nodiscard]] CodeResponse handle_code(const CodeRequest& request);

  /// Serializes the object graph into its envelope (types + payload) —
  /// shared front half of both push shapes.
  [[nodiscard]] serial::Envelope build_envelope(
      const std::shared_ptr<reflect::DynObject>& object);
  /// Serializes the object (and, in Eager mode, its metadata/code closure)
  /// into the wire payload of a push.
  [[nodiscard]] ObjectPush build_push(const std::shared_ptr<reflect::DynObject>& object);
  /// Converts a push response into the PushAck (or throws like send_object).
  [[nodiscard]] static PushAck ack_from_response(const Message& response,
                                                 std::string_view to);
  [[nodiscard]] static SessionAck session_ack_from_response(const Message& response,
                                                            std::string_view to);

  /// Transitive description closure of `roots` in deterministic DFS order
  /// (primitives and unknown names skipped) — what Eager mode ships and
  /// what session intros piggyback.
  [[nodiscard]] std::vector<const reflect::TypeDescription*> collect_closure(
      std::vector<std::string> roots);

  /// One planned SessionPush plus what to commit once it is acknowledged.
  struct SessionSend {
    SessionPush push;
    std::uint64_t token = 0;
    std::vector<std::string> names;
    std::vector<std::size_t> fresh;
  };
  [[nodiscard]] SessionSend build_session_push(const std::string& to,
                                               const serial::Envelope& envelope);
  PushAck send_object_session(std::string_view to, const serial::Envelope& envelope);
  void send_session_attempt(const std::string& recipient,
                            std::shared_ptr<const serial::Envelope> envelope,
                            std::shared_ptr<std::promise<PushAck>> promise,
                            int retries_left);

  /// One queued entry of a recipient's batching window.
  struct PendingPush {
    std::shared_ptr<const serial::Envelope> envelope;
    std::shared_ptr<std::promise<PushAck>> promise;
  };
  /// Dispatches one SessionBatch built from `items` (plans are made at
  /// flush time so wire ids and the token reflect the current session).
  void send_batch_attempt(const std::string& recipient, std::vector<PendingPush> items);
  void flush_batch_window(const std::string& recipient);

  /// The shared receiver half of kinds 9 and 11: runs the full session
  /// protocol for one push and returns its verdict (per batch entry too,
  /// so batching cannot change any observable decision).
  SessionAck process_session_push(const std::string& sender, const SessionPush& push);
  /// Attaches the known-description advertisement to an outgoing ack:
  /// hashes of the intro descriptions this push delivered, plus (on
  /// Reset) the receiver's whole known set, capped.
  void advertise_known_descriptions(const SessionPush& push, SessionAck& ack);
  SessionAck deliver_session_payload(const std::string& sender, const SessionPush& push,
                                     const std::string& matched_interest,
                                     util::InternedName matched_id);

  /// Conformance with on-demand description fetching (protocol step 3).
  [[nodiscard]] conform::CheckResult check_with_fetch(
      const reflect::TypeDescription& source, const reflect::TypeDescription& target,
      std::string_view sender);

  /// Downloads (if necessary) the assembly for a type-info entry.
  void ensure_code(const serial::TypeInfoEntry& entry, std::string_view sender,
                   bool& any_download);

  std::string name_;
  Transport& network_;
  std::shared_ptr<AssemblyHub> hub_;
  PeerConfig config_;

  reflect::Domain domain_;
  conform::ConformanceCache cache_;
  conform::ConformanceChecker checker_;
  proxy::ProxyFactory proxies_;
  serial::SerializerRegistry serializers_;

  /// This peer's subscriber slot in hub_->interests() — the shared
  /// inverted index that owns the interest registrations themselves.
  SubscriberId sub_ = kNoSubscriber;
  /// Guards publication of interest_names_ (reads just copy the
  /// shared_ptr; the pointed-to vector is immutable).
  mutable std::mutex interest_names_mutex_;
  std::shared_ptr<const std::vector<std::string>> interest_names_;

  /// Guards delivered_ (transport worker threads append concurrently).
  mutable std::mutex delivered_mutex_;
  std::vector<DeliveredObject> delivered_;

  /// Outbound async sends whose completion callback has not run yet.
  /// ~Peer waits for zero — the callbacks capture `this` for the stats.
  struct OutboundTracker {
    std::mutex mutex;
    std::condition_variable idle;
    std::size_t in_flight = 0;

    void add() {
      std::scoped_lock lock(mutex);
      ++in_flight;
    }
    void done() noexcept {
      // Notify UNDER the mutex: the waiter in wait_idle may destroy this
      // tracker the moment it re-acquires the lock and sees zero, so the
      // notify must complete before the lock is released.
      std::scoped_lock lock(mutex);
      --in_flight;
      idle.notify_all();
    }
    void wait_idle() {
      std::unique_lock lock(mutex);
      idle.wait(lock, [this] { return in_flight == 0; });
    }
  };
  OutboundTracker outbound_;

  DeliveryHandler on_delivery_;
  ExtraHandler extra_handler_;
  ProtocolStats stats_;
  SessionTable sessions_;

  /// Batching windows, one per recipient (session mode, max_batch > 1).
  /// The lock is never held across a network call: flush extracts the
  /// window under the lock and sends outside it.
  std::mutex batch_mutex_;
  std::unordered_map<std::string, std::vector<PendingPush>> batch_windows_;

  /// Content hashes (FNV-64 of canonical XML) of type descriptions this
  /// peer holds, as receiver — what gets advertised in Reset/first acks.
  mutable std::mutex desc_hashes_mutex_;
  std::unordered_set<std::uint64_t> known_desc_hashes_;
};

}  // namespace pti::transport
