#include "transport/peer_quota.hpp"

#include <algorithm>
#include <variant>

#include "util/error.hpp"
#include "util/interning.hpp"

namespace pti::transport {

void PeerQuotaTable::set_default(const PeerQuotaConfig& config) {
  std::unique_lock lock(mutex_);
  default_config_ = config;
  if (config.limits_anything()) enabled_.store(true, std::memory_order_relaxed);
}

void PeerQuotaTable::set_quota(std::string_view peer, const PeerQuotaConfig& config) {
  std::unique_lock lock(mutex_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    peers_.emplace(std::string(peer), std::make_unique<State>(config));
  } else {
    // Reconfigure in place: clamp the bucket to the new depth, keep the
    // cumulative name count (a budget, not a rate).
    State& state = *it->second;
    std::lock_guard bucket(state.bucket_mutex);
    state.config = config;
    state.tokens = std::min(state.tokens, bucket_depth(config));
  }
  if (config.limits_anything()) enabled_.store(true, std::memory_order_relaxed);
}

PeerQuotaTable::State& PeerQuotaTable::state_of(std::string_view peer) {
  {
    std::shared_lock lock(mutex_);
    const auto it = peers_.find(peer);
    if (it != peers_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = peers_.find(peer);
  if (it != peers_.end()) return *it->second;
  if (peers_.size() >= max_tracked_peers_.load(std::memory_order_relaxed)) {
    // Identity flood: peers beyond the tracking cap share one bucket, so
    // the table's own footprint stays bounded no matter how many fresh
    // sender names arrive.
    if (overflow_ == nullptr) overflow_ = std::make_unique<State>(default_config_);
    return *overflow_;
  }
  return *peers_.emplace(std::string(peer), std::make_unique<State>(default_config_))
              .first->second;
}

void PeerQuotaTable::admit_frame(std::string_view peer, std::size_t frame_bytes,
                                 std::uint64_t now_ns) {
  State& state = state_of(peer);
  // The whole admission runs under the peer's bucket mutex: `config` may
  // be reconfigured concurrently by set_quota(), which writes under the
  // same lock.
  std::lock_guard bucket(state.bucket_mutex);
  const PeerQuotaConfig& config = state.config;
  if (config.max_frame_bytes != 0 && frame_bytes > config.max_frame_bytes) {
    rejected_.frame_size.fetch_add(1, std::memory_order_relaxed);
    throw pti::ResourceExhaustedError(
        "peer '" + std::string(peer) + "' frame of " + std::to_string(frame_bytes) +
        " bytes exceeds its " + std::to_string(config.max_frame_bytes) +
        "-byte frame quota");
  }
  if (config.bytes_per_sec == 0) return;
  if (now_ns > state.last_refill_ns) {
    const std::uint64_t elapsed = now_ns - state.last_refill_ns;
    // 128-bit intermediate: elapsed_ns * rate overflows 64 bits after
    // ~half a minute at 100 MB/s.
    const auto refill = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(elapsed) * config.bytes_per_sec / 1'000'000'000u);
    state.tokens = std::min(bucket_depth(config), state.tokens + refill);
    state.last_refill_ns = now_ns;
  }
  if (frame_bytes > state.tokens) {
    rejected_.rate.fetch_add(1, std::memory_order_relaxed);
    throw pti::ResourceExhaustedError(
        "peer '" + std::string(peer) + "' exceeded its " +
        std::to_string(config.bytes_per_sec) + " bytes/sec quota (frame of " +
        std::to_string(frame_bytes) + " bytes, " + std::to_string(state.tokens) +
        " available)");
  }
  state.tokens -= frame_bytes;
}

PeerQuotaTable::InflightGuard PeerQuotaTable::acquire_inflight(std::string_view peer) {
  State& state = state_of(peer);
  const std::uint32_t max_inflight = state.snapshot_config().max_inflight;
  if (max_inflight == 0) return InflightGuard{};
  const std::uint32_t prior = state.inflight.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= max_inflight) {
    state.inflight.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.inflight.fetch_add(1, std::memory_order_relaxed);
    throw pti::ResourceExhaustedError(
        "peer '" + std::string(peer) + "' exceeded its in-flight exchange quota (" +
        std::to_string(max_inflight) + ")");
  }
  return InflightGuard{&state.inflight};
}

void PeerQuotaTable::charge_new_names(std::string_view peer, std::size_t count) {
  if (count == 0) return;
  State& state = state_of(peer);
  const std::uint64_t max_new_names = state.snapshot_config().max_new_names;
  if (max_new_names == 0) return;
  // CAS loop so a rejected charge consumes nothing: a peer at its budget
  // edge cannot burn the remainder with an oversized batch.
  std::uint64_t used = state.names_used.load(std::memory_order_relaxed);
  do {
    if (used + count > max_new_names) {
      rejected_.names.fetch_add(1, std::memory_order_relaxed);
      throw pti::ResourceExhaustedError(
          "peer '" + std::string(peer) + "' exceeded its distinct-name budget (" +
          std::to_string(max_new_names) + " names; " + std::to_string(count) +
          " more requested)");
    }
  } while (!state.names_used.compare_exchange_weak(used, used + count,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_relaxed));
}

PeerQuotaStats PeerQuotaTable::stats() const noexcept {
  PeerQuotaStats out;
  out.rejected_frame_size = rejected_.frame_size.load(std::memory_order_relaxed);
  out.rejected_rate = rejected_.rate.load(std::memory_order_relaxed);
  out.rejected_inflight = rejected_.inflight.load(std::memory_order_relaxed);
  out.rejected_names = rejected_.names.load(std::memory_order_relaxed);
  return out;
}

void PeerQuotaTable::reset_stats() noexcept {
  rejected_.frame_size.store(0, std::memory_order_relaxed);
  rejected_.rate.store(0, std::memory_order_relaxed);
  rejected_.inflight.store(0, std::memory_order_relaxed);
  rejected_.names.store(0, std::memory_order_relaxed);
}

std::size_t PeerQuotaTable::tracked_peers() const {
  std::shared_lock lock(mutex_);
  return peers_.size();
}

std::size_t count_new_names(const Message& message) {
  const util::SymbolTable& names = util::SymbolTable::global();
  if (const auto* info = std::get_if<TypeInfoRequest>(&message.payload)) {
    std::size_t fresh = 0;
    for (const std::string& name : info->type_names) {
      if (!names.find(name).valid()) ++fresh;
    }
    return fresh;
  }
  // Session pushes introduce type names inline instead of via a nested
  // TypeInfoRequest — the same distinct-name budget is charged here, at
  // the transport seam, before the handler can register anything.
  if (const auto* push = std::get_if<SessionPush>(&message.payload)) {
    std::size_t fresh = 0;
    for (const SessionIntro& intro : push->intros) {
      if (!names.find(intro.type_name).valid()) ++fresh;
    }
    return fresh;
  }
  // A batch charges the sum of its entries up front — the whole frame is
  // admitted or refused before any entry's handler runs, so a hostile
  // batch cannot smuggle names past the budget one entry at a time.
  if (const auto* batch = std::get_if<SessionBatch>(&message.payload)) {
    std::size_t fresh = 0;
    for (const SessionPush& entry : batch->entries) {
      for (const SessionIntro& intro : entry.intros) {
        if (!names.find(intro.type_name).valid()) ++fresh;
      }
    }
    return fresh;
  }
  return 0;
}

}  // namespace pti::transport
