#include "transport/async_transport.hpp"

#include <algorithm>
#include <utility>

#include "transport/transport_error.hpp"
#include "util/epoch.hpp"

namespace pti::transport {

namespace {

/// Endpoints whose handler is executing on THIS thread, innermost last.
/// Lets detach() recognize the reentrant case (handler detaching itself)
/// where waiting for executing == 0 would deadlock.
thread_local std::vector<const void*> tl_executing_here;

[[nodiscard]] bool executing_here(const void* endpoint) noexcept {
  return std::find(tl_executing_here.begin(), tl_executing_here.end(), endpoint) !=
         tl_executing_here.end();
}

}  // namespace

AsyncTransport::AsyncTransport(AsyncTransportConfig config)
    : config_(config), link_model_(config.rng_seed) {
  if (config_.max_inbox == 0) {
    throw TransportError("AsyncTransport needs max_inbox >= 1");
  }
  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncTransport::~AsyncTransport() {
  std::deque<Pending> orphaned;
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
    for (auto& [name, endpoint] : endpoints_) {
      total_queued_ -= endpoint->inbox.size();
      for (auto& pending : endpoint->inbox) orphaned.push_back(std::move(pending));
      endpoint->inbox.clear();
    }
    endpoints_.clear();
  }
  work_cv_.notify_all();
  state_cv_.notify_all();
  const auto error = std::make_exception_ptr(
      NetworkError("transport destroyed before the message was delivered"));
  for (auto& pending : orphaned) complete(pending, Message{}, error);
  for (auto& worker : workers_) worker.join();
}

void AsyncTransport::attach(std::string_view name, Handler handler) {
  if (!handler) throw TransportError("cannot attach a null handler");
  if (name.empty()) throw TransportError("endpoint name cannot be empty");
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->name = std::string(name);
  endpoint->handler = std::make_shared<Handler>(std::move(handler));
  std::unique_lock lock(mutex_);
  const auto [it, inserted] = endpoints_.emplace(endpoint->name, std::move(endpoint));
  if (!inserted) {
    throw TransportError("endpoint '" + std::string(name) +
                         "' is already attached (detach it first)");
  }
}

void AsyncTransport::detach(std::string_view name) {
  std::shared_ptr<Endpoint> endpoint;
  std::deque<Pending> orphaned;
  {
    std::unique_lock lock(mutex_);
    const auto it = endpoints_.find(name);
    if (it == endpoints_.end()) return;
    endpoint = it->second;
    total_queued_ -= endpoint->inbox.size();
    orphaned.swap(endpoint->inbox);
    endpoints_.erase(it);
    state_cv_.notify_all();
    // Quiescence guarantee: once detach returns, no handler execution is in
    // flight, so the caller may destroy the handler's owner. The reentrant
    // case (a handler detaching its own endpoint) cannot wait for itself;
    // it returns immediately — no *new* delivery begins either way.
    if (!executing_here(endpoint.get())) {
      state_cv_.wait(lock, [&] { return endpoint->executing == 0; });
    }
  }
  const auto error = std::make_exception_ptr(
      NetworkError("endpoint '" + std::string(name) + "' detached before delivery"));
  for (auto& pending : orphaned) complete(pending, Message{}, error);
}

bool AsyncTransport::is_attached(std::string_view name) const noexcept {
  std::unique_lock lock(mutex_);
  return endpoints_.find(name) != endpoints_.end();
}

void AsyncTransport::set_default_link(const LinkConfig& config) noexcept {
  link_model_.set_default_link(config);
}

void AsyncTransport::set_link(std::string_view from, std::string_view to,
                              const LinkConfig& config) {
  link_model_.set_link(from, to, config);
}

bool AsyncTransport::charge(const Message& message) {
  return link_model_.charge(message, stats_, clock_);
}

Message AsyncTransport::exchange(const Handler& handler, const Message& request) {
  // Epoch pin spanning admission + handler: everything this exchange reads
  // from the lock-free stores stays valid even while a ResourceGovernor
  // sweeps (see util/epoch.hpp).
  const util::EpochManager::Pin pin(util::EpochManager::global());
  PeerQuotaTable::InflightGuard inflight;
  if (quotas_.enabled()) {
    // Admission before any charge or handler work. The guard spans the
    // handler execution, so max_inflight counts exchanges actually
    // running, whichever path (sync send or worker) carried them here.
    quotas_.admit_frame(request.sender, request.wire_size(), clock_.now_ns());
    inflight = quotas_.acquire_inflight(request.sender);
    quotas_.charge_new_names(request.sender, count_new_names(request));
  }
  if (!charge(request)) {
    throw NetworkError("message " + std::string(request.kind_name()) + " from '" +
                       request.sender + "' to '" + request.recipient + "' was dropped");
  }
  Message response = handler(request);
  address_response(request, response);
  if (!charge(response)) {
    throw NetworkError("response " + std::string(response.kind_name()) + " from '" +
                       response.sender + "' was dropped");
  }
  return response;
}

Message AsyncTransport::send(const Message& request) {
  std::shared_ptr<Endpoint> endpoint;
  std::shared_ptr<Handler> handler;
  {
    std::unique_lock lock(mutex_);
    const auto it = endpoints_.find(request.recipient);
    if (it == endpoints_.end()) {
      throw NetworkError("no peer attached as '" + request.recipient + "'");
    }
    endpoint = it->second;
    handler = endpoint->handler;
    ++endpoint->executing;
    ++total_executing_;
  }
  tl_executing_here.push_back(endpoint.get());
  struct Release {
    AsyncTransport& transport;
    Endpoint& endpoint;
    ~Release() {
      tl_executing_here.pop_back();
      {
        std::unique_lock lock(transport.mutex_);
        --endpoint.executing;
        --transport.total_executing_;
      }
      transport.state_cv_.notify_all();
    }
  } release{*this, *endpoint};
  return exchange(*handler, request);
}

void AsyncTransport::complete(Pending& pending, Message response,
                              std::exception_ptr error) {
  // Completion runs on transport threads; a throwing callback must not
  // take a worker (or the destructor) down with it.
  try {
    if (pending.callback) {
      pending.callback(std::move(response), error);
    } else if (error) {
      pending.promise.set_exception(error);
    } else {
      pending.promise.set_value(std::move(response));
    }
  } catch (...) {
  }
}

std::future<Message> AsyncTransport::send_async(Message request) {
  Pending pending;
  pending.request = std::move(request);
  std::future<Message> future = pending.promise.get_future();
  enqueue(std::move(pending));
  return future;
}

void AsyncTransport::send_async(Message request, SendCallback on_complete) {
  if (!on_complete) throw TransportError("send_async requires a completion callback");
  Pending pending;
  pending.request = std::move(request);
  pending.callback = std::move(on_complete);
  enqueue(std::move(pending));
}

void AsyncTransport::enqueue(Pending pending) {
  std::exception_ptr failure;
  {
    std::unique_lock lock(mutex_);
    for (;;) {
      if (shutdown_) {
        failure = std::make_exception_ptr(NetworkError("transport is shutting down"));
        break;
      }
      const auto it = endpoints_.find(pending.request.recipient);
      if (it == endpoints_.end()) {
        failure = std::make_exception_ptr(
            NetworkError("no peer attached as '" + pending.request.recipient + "'"));
        break;
      }
      const std::shared_ptr<Endpoint>& endpoint = it->second;
      if (endpoint->inbox.size() < config_.max_inbox) {
        endpoint->inbox.push_back(std::move(pending));
        ++total_queued_;
        ready_.push_back(endpoint);
        work_cv_.notify_one();
        return;
      }
      if (config_.overflow == AsyncTransportConfig::Overflow::Reject) {
        failure = std::make_exception_ptr(
            TransportError("backpressure: inbox of '" + pending.request.recipient +
                           "' is full (" + std::to_string(config_.max_inbox) + ")"));
        break;
      }
      if (!tl_executing_here.empty()) {
        // Block policy, but the caller IS a handler execution (a worker or
        // a sync-send frame): waiting for inbox space that only workers
        // free would deadlock the pool. Fail fast instead — this is what
        // makes "send_async from handlers only enqueues" a sound rule.
        failure = std::make_exception_ptr(TransportError(
            "backpressure: inbox of '" + pending.request.recipient +
            "' is full and send_async was called from inside a handler "
            "(blocking here would deadlock the worker pool)"));
        break;
      }
      // Block until a worker frees inbox space (or the world changes).
      state_cv_.wait(lock);
    }
  }
  complete(pending, Message{}, failure);
}

void AsyncTransport::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !ready_.empty(); });
    if (shutdown_) return;
    const std::shared_ptr<Endpoint> endpoint = std::move(ready_.front());
    ready_.pop_front();
    if (endpoint->inbox.empty()) continue;  // flushed by a detach
    Pending pending = std::move(endpoint->inbox.front());
    endpoint->inbox.pop_front();
    --total_queued_;
    const std::shared_ptr<Handler> handler = endpoint->handler;
    ++endpoint->executing;
    ++total_executing_;
    lock.unlock();
    state_cv_.notify_all();  // inbox space freed; blocked senders may proceed

    tl_executing_here.push_back(endpoint.get());
    Message response;
    std::exception_ptr error;
    try {
      response = exchange(*handler, pending.request);
    } catch (...) {
      error = std::current_exception();
    }
    complete(pending, std::move(response), error);
    tl_executing_here.pop_back();

    lock.lock();
    --endpoint->executing;
    --total_executing_;
    if (endpoint->executing == 0 || (total_executing_ == 0 && total_queued_ == 0)) {
      state_cv_.notify_all();  // detach()/drain() waiters
    }
  }
}

void AsyncTransport::drain() {
  std::unique_lock lock(mutex_);
  state_cv_.wait(lock, [&] { return total_queued_ == 0 && total_executing_ == 0; });
}

std::size_t AsyncTransport::pending() const {
  std::unique_lock lock(mutex_);
  return total_queued_ + total_executing_;
}

}  // namespace pti::transport
