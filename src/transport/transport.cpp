#include "transport/transport.hpp"

#include "transport/transport_error.hpp"

namespace pti::transport {

void charge_traversal(const LinkConfig& link, std::size_t wire_bytes, NetStats& stats,
                      util::SimClock& clock) noexcept {
  ++stats.messages;
  stats.bytes += wire_bytes;
  const auto transmit_ns = static_cast<std::uint64_t>(
      static_cast<double>(wire_bytes) / link.bandwidth_bytes_per_sec * 1e9);
  clock.advance_ns(link.latency_ns + transmit_ns);
}

void address_response(const Message& request, Message& response) noexcept {
  response.sender = request.recipient;
  response.recipient = request.sender;
}

// Default fallback: the exchange happens synchronously on the calling
// thread; only the result delivery takes the asynchronous shape. Concrete
// transports with real queueing (AsyncTransport) override both overloads.

std::future<Message> Transport::send_async(Message request) {
  std::promise<Message> promise;
  std::future<Message> future = promise.get_future();
  try {
    promise.set_value(send(request));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  return future;
}

// Governance defaults: transports that do not enforce quotas accept the
// configuration silently (so callers can set policy before choosing a
// transport) and expose no table.

void Transport::set_default_peer_quota(const PeerQuotaConfig&) {}

void Transport::set_peer_quota(std::string_view, const PeerQuotaConfig&) {}

PeerQuotaTable* Transport::peer_quotas() noexcept { return nullptr; }

void Transport::send_async(Message request, SendCallback on_complete) {
  if (!on_complete) throw TransportError("send_async requires a completion callback");
  Message response;
  try {
    response = send(request);
  } catch (...) {
    on_complete(Message{}, std::current_exception());
    return;
  }
  on_complete(std::move(response), nullptr);
}

}  // namespace pti::transport
