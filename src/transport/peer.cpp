#include "transport/peer.hpp"

#include <algorithm>
#include <utility>

#include "conform/baselines.hpp"
#include "serial/typedesc_xml.hpp"
#include "serial/xml_object_serializer.hpp"
#include "transport/peer_quota.hpp"
#include "transport/transport_error.hpp"
#include "util/hash.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

using conform::CheckResult;
using reflect::DynObject;
using reflect::TypeDescription;
using serial::Envelope;
using serial::TypeInfoEntry;

namespace {

/// Parses "net://host/assembly" download paths; returns the host, or empty
/// when the path has another shape.
[[nodiscard]] std::string_view download_host(std::string_view path) noexcept {
  constexpr std::string_view kScheme = "net://";
  if (!util::starts_with(path, kScheme)) return {};
  path.remove_prefix(kScheme.size());
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

/// ErrorReply classification prefix for quota rejections. Peer-level
/// errors travel in-band as addressed ErrorReply messages; this prefix is
/// what lets the requesting side rethrow the typed ResourceExhaustedError
/// instead of a generic ProtocolError — the in-band mirror of the socket
/// transport's "resource|" fault-frame prefix.
constexpr std::string_view kResourceReplyPrefix = "resource-exhausted: ";

/// Cap on hashes a Reset ack advertises: bounds the ack's wire size while
/// still covering every description universe the tests and benches build.
/// A description beyond the cap is simply re-shipped — a byte cost, never
/// a correctness issue.
constexpr std::size_t kMaxAdvertisedHashes = 256;

}  // namespace

Peer::Peer(std::string name, Transport& network, std::shared_ptr<AssemblyHub> hub,
           PeerConfig config)
    : name_(std::move(name)),
      network_(network),
      hub_(std::move(hub)),
      config_(std::move(config)),
      checker_(domain_.registry(), config_.conformance,
               config_.use_conformance_cache ? &cache_ : nullptr),
      proxies_(domain_, checker_),
      sessions_(config_.session) {
  if (!hub_) throw TransportError("peer '" + name_ + "' needs an assembly hub");
  sub_ = hub_->interests().add_subscriber();
  interest_names_ = std::make_shared<const std::vector<std::string>>();
  serializers_ = serial::SerializerRegistry::with_defaults();
  // The XML serializer honours field visibility when it can see the
  // descriptions (XmlSerializer semantics).
  serializers_.add(std::make_shared<serial::XmlObjectSerializer>(&domain_.registry()));
  if (!serializers_.has(config_.payload_encoding)) {
    throw TransportError("unknown payload encoding '" + config_.payload_encoding + "'");
  }
  network_.attach(name_, [this](const Message& m) { return handle(m); });
}

Peer::~Peer() {
  // Drain the batching windows first: queued pushes hold promises whose
  // futures callers may still be waiting on, and their sends must enter
  // the outbound tracker before wait_idle below.
  flush_session_batches();
  // A concurrent transport's detach blocks until in-flight executions of
  // this peer's handler finish; then wait for our own outbound async-send
  // completions (their callbacks capture `this`). Only after both
  // quiescence points is member destruction safe — and only then may the
  // subscriber slot be returned to the shared index (no handler can be
  // mid-match on it anymore).
  network_.detach(name_);
  outbound_.wait_idle();
  if (sub_ != kNoSubscriber) hub_->interests().remove_subscriber(sub_);
}

std::vector<const TypeDescription*> Peer::host_assembly(
    std::shared_ptr<const reflect::Assembly> assembly) {
  if (!assembly) throw TransportError("cannot host a null assembly");
  const std::string path = "net://" + name_ + "/" + assembly->name();
  hub_->publish(assembly);
  return domain_.load_assembly(std::move(assembly), path);
}

util::InternedName Peer::add_interest(std::string_view type_name) {
  const TypeDescription* d = domain_.registry().find(type_name);
  if (d == nullptr) {
    throw ProtocolError("interest type '" + std::string(type_name) +
                        "' is not known to peer '" + name_ + "'");
  }
  return add_interest(*d);
}

util::InternedName Peer::add_interest(const TypeDescription& interest) {
  const util::InternedName id = interest.name_id();
  InterestIndex& index = hub_->interests();
  std::scoped_lock lock(interest_names_mutex_);
  {
    util::EpochManager::Pin pin(index.epochs());
    if (const auto* entries = index.interests_of(sub_)) {
      for (const auto& entry : *entries) {
        if (entry.interest == id) return id;  // already declared
      }
    }
  }
  index.add_interest(sub_, id, interest.fingerprint());
  // Publish a fresh immutable name snapshot; readers holding the old one
  // keep a valid (if stale) view.
  auto names = std::make_shared<std::vector<std::string>>(*interest_names_);
  names->push_back(interest.qualified_name());
  interest_names_ = std::move(names);
  // A new interest can turn a cached session REJECT into an accept; cached
  // verdicts must be recomputed against the widened interest set.
  sessions_.invalidate_verdicts();
  return id;
}

std::shared_ptr<const std::vector<std::string>> Peer::interests() const {
  std::scoped_lock lock(interest_names_mutex_);
  return interest_names_;
}

std::vector<util::InternedName> Peer::interest_ids() const {
  InterestIndex& index = hub_->interests();
  std::vector<util::InternedName> out;
  util::EpochManager::Pin pin(index.epochs());
  if (const auto* entries = index.interests_of(sub_)) {
    out.reserve(entries->size());
    for (const auto& entry : *entries) out.push_back(entry.interest);
  }
  return out;
}

std::size_t Peer::delivered_count() const {
  std::scoped_lock lock(delivered_mutex_);
  return delivered_.size();
}

std::vector<DeliveredObject> Peer::delivered_snapshot() const {
  std::scoped_lock lock(delivered_mutex_);
  return delivered_;
}

std::string Peer::describe_type_xml(std::string_view type_name) const {
  const TypeDescription* d =
      const_cast<reflect::TypeRegistry&>(domain_.registry()).find(type_name);
  if (d == nullptr) {
    throw ProtocolError("peer '" + name_ + "' does not know type '" +
                        std::string(type_name) + "'");
  }
  return serial::type_description_to_string(*d);
}

Envelope Peer::build_envelope(const std::shared_ptr<DynObject>& object) {
  if (!object) throw ProtocolError("cannot send a null object");
  // The wire carries real state, never proxy wrappers.
  const std::shared_ptr<DynObject> real = proxies_.unwrap(object);

  serial::ObjectSerializer& serializer = serializers_.get(config_.payload_encoding);
  serial::EnvelopeBuilder builder(serializer, &domain_.registry());
  return builder.build(reflect::Value(real));
}

std::vector<const TypeDescription*> Peer::collect_closure(std::vector<std::string> roots) {
  std::set<std::string, util::ICaseLess> visited;
  std::vector<const TypeDescription*> closure;
  // LIFO frontier, exactly the historical traversal: the emitted order is
  // part of the wire format (eager description lists and session intro
  // order are pinned by the cross-transport equivalence tests).
  std::vector<std::string>& frontier = roots;
  while (!frontier.empty()) {
    const std::string type_name = std::move(frontier.back());
    frontier.pop_back();
    if (!visited.insert(type_name).second) continue;
    const TypeDescription* d = domain_.registry().find(type_name);
    if (d == nullptr || d->kind() == reflect::TypeKind::Primitive) continue;
    closure.push_back(d);
    if (!d->superclass().empty()) frontier.push_back(d->superclass());
    for (const auto& itf : d->interfaces()) frontier.push_back(itf);
    for (const auto& f : d->fields()) frontier.push_back(f.type_name);
    for (const auto& m : d->methods()) {
      frontier.push_back(m.return_type);
      for (const auto& p : m.params) frontier.push_back(p.type_name);
    }
    for (const auto& c : d->constructors()) {
      for (const auto& p : c.params) frontier.push_back(p.type_name);
    }
  }
  return closure;
}

ObjectPush Peer::build_push(const std::shared_ptr<DynObject>& object) {
  const Envelope envelope = build_envelope(object);

  ObjectPush push;
  push.envelope = envelope.to_bytes();

  if (config_.mode == ProtocolMode::Eager) {
    // Ship the transitive description closure and every implementing
    // assembly up front — the baseline the optimistic protocol beats.
    std::vector<std::string> roots;
    roots.reserve(envelope.types.size());
    for (const auto& t : envelope.types) roots.push_back(t.type_name);
    std::set<std::string, util::ICaseLess> assemblies;
    for (const TypeDescription* d : collect_closure(std::move(roots))) {
      push.eager_descriptions_xml.push_back(serial::type_description_to_string(*d));
      if (!d->assembly_name().empty()) assemblies.insert(d->assembly_name());
    }
    for (const auto& assembly_name : assemblies) {
      if (const auto assembly = hub_->fetch(assembly_name)) {
        push.eager_assembly_names.push_back(assembly_name);
        push.eager_assembly_bytes += assembly->simulated_code_size();
      }
    }
  }
  return push;
}

PushAck Peer::ack_from_response(const Message& response, std::string_view to) {
  if (const auto* ack = std::get_if<PushAck>(&response.payload)) return *ack;
  if (const auto* err = std::get_if<ErrorReply>(&response.payload)) {
    if (util::starts_with(err->message, kResourceReplyPrefix)) {
      throw pti::ResourceExhaustedError(
          "push to '" + std::string(to) + "' rejected: " +
          err->message.substr(kResourceReplyPrefix.size()));
    }
    throw ProtocolError("push to '" + std::string(to) + "' failed: " + err->message);
  }
  throw ProtocolError("unexpected response to ObjectPush: " +
                      std::string(response.kind_name()));
}

SessionAck Peer::session_ack_from_response(const Message& response, std::string_view to) {
  if (const auto* ack = std::get_if<SessionAck>(&response.payload)) return *ack;
  if (const auto* err = std::get_if<ErrorReply>(&response.payload)) {
    if (util::starts_with(err->message, kResourceReplyPrefix)) {
      throw pti::ResourceExhaustedError(
          "push to '" + std::string(to) + "' rejected: " +
          err->message.substr(kResourceReplyPrefix.size()));
    }
    throw ProtocolError("push to '" + std::string(to) + "' failed: " + err->message);
  }
  throw ProtocolError("unexpected response to SessionPush: " +
                      std::string(response.kind_name()));
}

Peer::SessionSend Peer::build_session_push(const std::string& to,
                                           const Envelope& envelope) {
  SessionSend out;
  out.names.reserve(envelope.types.size());
  for (const auto& t : envelope.types) out.names.push_back(t.type_name);
  SessionTable::SendPlan plan = sessions_.plan_send(to, out.names);
  out.token = plan.token;
  out.fresh = plan.fresh;

  out.push.token = plan.token;
  out.push.wire_types = std::move(plan.wire_ids);
  out.push.encoding = envelope.encoding;
  out.push.payload = envelope.payload;

  if (!plan.fresh.empty()) {
    // First contact for some envelope types: their description closure
    // rides along inline, so the receiver's conformance check needs no
    // nested TypeInfoRequest exchange.
    std::vector<std::string> roots;
    roots.reserve(plan.fresh.size());
    for (const std::size_t i : plan.fresh) roots.push_back(out.names[i]);
    const std::vector<const TypeDescription*> closure = collect_closure(std::move(roots));

    std::set<std::string, util::ICaseLess> envelope_names(out.names.begin(),
                                                          out.names.end());
    std::vector<std::string> extra_names;
    std::vector<const TypeDescription*> extras;
    for (const TypeDescription* d : closure) {
      if (envelope_names.insert(d->qualified_name()).second) {
        extra_names.push_back(d->qualified_name());
        extras.push_back(d);
      }
    }
    const SessionTable::SendPlan extra_plan =
        sessions_.plan_extras(to, plan.token, extra_names);

    // Shared-intro elision: when the hub's registry says this receiver
    // already holds a description (it advertised the content hash to some
    // sender of this universe), the intro keeps its wire-id/name binding
    // but drops the description bytes — a hot type's description crosses
    // the wire once per receiver, not once per sender/receiver pair.
    const auto elide_known = [&](SessionIntro& intro) {
      if (intro.description_xml.empty()) return;
      const std::uint64_t hash = util::fnv1a64(intro.description_xml);
      if (hub_->intro_registry().knows(to, hash)) {
        intro.description_xml.clear();
        ++stats_.session_intro_skips;
      }
    };
    // Intro XML carries type CONTENT only: provenance (assembly name,
    // download path) already rides in the intro's own fields and differs
    // per hosting peer, which would make the same type hash apart per
    // sender and defeat cross-sender elision.
    const auto content_xml = [](const TypeDescription& d) {
      TypeDescription content = d;
      content.set_assembly_name("");
      content.set_download_path("");
      return serial::type_description_to_string(content);
    };

    for (const std::size_t i : plan.fresh) {
      SessionIntro intro;
      intro.wire_id = out.push.wire_types[i];
      intro.type_name = out.names[i];
      intro.assembly_name = envelope.types[i].assembly_name;
      intro.download_path = envelope.types[i].download_path;
      if (const TypeDescription* d = domain_.registry().find(out.names[i])) {
        if (d->kind() != reflect::TypeKind::Primitive) {
          intro.description_xml = content_xml(*d);
        }
      }
      elide_known(intro);
      out.push.intros.push_back(std::move(intro));
    }
    for (const std::size_t j : extra_plan.fresh) {
      const TypeDescription* d = extras[j];
      SessionIntro intro;
      intro.wire_id = extra_plan.wire_ids[j];
      intro.type_name = extra_names[j];
      intro.assembly_name = d->assembly_name();
      intro.download_path = d->download_path();
      intro.description_xml = content_xml(*d);
      elide_known(intro);
      out.push.intros.push_back(std::move(intro));
    }
    for (const std::size_t j : extra_plan.fresh) {
      out.names.push_back(extra_names[j]);
      out.fresh.push_back(out.names.size() - 1);
    }

    if (config_.mode == ProtocolMode::Eager) {
      // Eager + session: prepay the assemblies of everything introduced,
      // mirroring the eager ObjectPush — a warmed eager push ships none.
      std::set<std::string, util::ICaseLess> assemblies;
      for (const TypeDescription* d : closure) {
        if (!d->assembly_name().empty()) assemblies.insert(d->assembly_name());
      }
      for (const auto& assembly_name : assemblies) {
        if (const auto assembly = hub_->fetch(assembly_name)) {
          out.push.intro_assembly_names.push_back(assembly_name);
          out.push.intro_assembly_bytes += assembly->simulated_code_size();
        }
      }
    }
  }
  return out;
}

PushAck Peer::send_object_session(std::string_view to, const Envelope& envelope) {
  const std::string recipient(to);
  // Flush-on-sync: a synchronous send must not overtake pushes already
  // queued in this recipient's batching window.
  flush_batch_window(recipient);
  for (int attempt = 0; attempt < 2; ++attempt) {
    SessionSend send = build_session_push(recipient, envelope);
    const Message response =
        network_.send(Message{name_, recipient, std::move(send.push)});
    ++stats_.objects_sent;
    const SessionAck ack = session_ack_from_response(response, recipient);
    hub_->intro_registry().record_all(recipient, ack.known_desc_hashes);
    if (ack.status == SessionStatus::Reset) {
      // The receiver lost the session (eviction, restart): start a new
      // token and replay once with every type introduced inline.
      sessions_.reset_peer(recipient);
      ++stats_.session_retries;
      continue;
    }
    sessions_.commit_send(recipient, send.token, send.names, send.fresh);
    return PushAck{ack.delivered, ack.detail};
  }
  throw ProtocolError("session push to '" + recipient + "' kept resetting");
}

PushAck Peer::send_object(std::string_view to,
                          const std::shared_ptr<DynObject>& object) {
  if (config_.use_sessions) return send_object_session(to, build_envelope(object));
  ObjectPush push = build_push(object);
  const Message response =
      network_.send(Message{name_, std::string(to), std::move(push)});
  ++stats_.objects_sent;
  return ack_from_response(response, to);
}

void Peer::send_session_attempt(const std::string& recipient,
                                std::shared_ptr<const Envelope> envelope,
                                std::shared_ptr<std::promise<PushAck>> promise,
                                int retries_left) {
  try {
    SessionSend send = build_session_push(recipient, *envelope);
    auto token = send.token;
    outbound_.add();
    try {
      network_.send_async(
          Message{name_, recipient, std::move(send.push)},
          [this, recipient, envelope, promise, retries_left, token,
           names = std::move(send.names), fresh = std::move(send.fresh)](
              Message response, std::exception_ptr error) {
            struct Done {
              OutboundTracker& tracker;
              ~Done() { tracker.done(); }
            } done{outbound_};
            if (error) {
              promise->set_exception(error);
              return;
            }
            ++stats_.objects_sent;
            try {
              const SessionAck ack = session_ack_from_response(response, recipient);
              hub_->intro_registry().record_all(recipient, ack.known_desc_hashes);
              if (ack.status == SessionStatus::Reset) {
                sessions_.reset_peer(recipient);
                if (retries_left > 0) {
                  // Replay once with a fresh token, from the transport
                  // thread — Resets are rare, the nested send is bounded.
                  ++stats_.session_retries;
                  send_session_attempt(recipient, envelope, promise,
                                       retries_left - 1);
                  return;
                }
                throw ProtocolError("session push to '" + recipient +
                                    "' kept resetting");
              }
              sessions_.commit_send(recipient, token, names, fresh);
              promise->set_value(PushAck{ack.delivered, ack.detail});
            } catch (...) {
              promise->set_exception(std::current_exception());
            }
          });
    } catch (...) {
      outbound_.done();
      throw;
    }
  } catch (...) {
    promise->set_exception(std::current_exception());
  }
}

std::future<PushAck> Peer::send_object_async(std::string_view to,
                                             const std::shared_ptr<DynObject>& object) {
  if (config_.use_sessions) {
    auto promise = std::make_shared<std::promise<PushAck>>();
    std::future<PushAck> future = promise->get_future();
    auto envelope = std::make_shared<const Envelope>(build_envelope(object));
    const std::string recipient(to);
    if (config_.session.max_batch > 1) {
      // Batching window: queue the push; a full window travels as one
      // SessionBatch frame. The send happens outside the lock.
      std::vector<PendingPush> ready;
      {
        std::scoped_lock lock(batch_mutex_);
        std::vector<PendingPush>& window = batch_windows_[recipient];
        window.push_back(PendingPush{std::move(envelope), std::move(promise)});
        if (window.size() >= config_.session.max_batch) {
          ready = std::move(window);
          batch_windows_.erase(recipient);
        }
      }
      if (!ready.empty()) send_batch_attempt(recipient, std::move(ready));
      return future;
    }
    send_session_attempt(recipient, std::move(envelope), std::move(promise), 1);
    return future;
  }
  ObjectPush push = build_push(object);
  auto promise = std::make_shared<std::promise<PushAck>>();
  std::future<PushAck> future = promise->get_future();
  const std::string recipient(to);
  outbound_.add();
  try {
    network_.send_async(
        Message{name_, recipient, std::move(push)},
        [this, promise, recipient](Message response, std::exception_ptr error) {
          // `this` stays valid: ~Peer waits for outbound_ to drain, and
          // the transport invokes every callback exactly once (failed/
          // detached sends included).
          struct Done {
            OutboundTracker& tracker;
            ~Done() { tracker.done(); }
          } done{outbound_};
          if (error) {
            promise->set_exception(error);
            return;
          }
          ++stats_.objects_sent;
          try {
            promise->set_value(ack_from_response(response, recipient));
          } catch (...) {
            promise->set_exception(std::current_exception());
          }
        });
  } catch (...) {
    outbound_.done();
    throw;
  }
  return future;
}

void Peer::flush_batch_window(const std::string& recipient) {
  std::vector<PendingPush> ready;
  {
    std::scoped_lock lock(batch_mutex_);
    const auto it = batch_windows_.find(recipient);
    if (it == batch_windows_.end()) return;
    ready = std::move(it->second);
    batch_windows_.erase(it);
  }
  if (!ready.empty()) send_batch_attempt(recipient, std::move(ready));
}

void Peer::flush_session_batches() {
  std::vector<std::pair<std::string, std::vector<PendingPush>>> ready;
  {
    std::scoped_lock lock(batch_mutex_);
    ready.reserve(batch_windows_.size());
    for (auto& [recipient, window] : batch_windows_) {
      if (!window.empty()) ready.emplace_back(recipient, std::move(window));
    }
    batch_windows_.clear();
  }
  for (auto& [recipient, items] : ready) send_batch_attempt(recipient, std::move(items));
}

void Peer::send_batch_attempt(const std::string& recipient,
                              std::vector<PendingPush> items) {
  auto pending = std::make_shared<std::vector<PendingPush>>(std::move(items));
  const auto fail_all = [pending](std::exception_ptr error) {
    for (PendingPush& item : *pending) {
      try {
        item.promise->set_exception(error);
      } catch (const std::future_error&) {
        // Slot already resolved before the failure — keep its verdict.
      }
    }
  };
  try {
    // Plans are made at flush time, in queue order: wire ids and the token
    // reflect the session as the receiver will see it, entry by entry.
    auto sends = std::make_shared<std::vector<SessionSend>>();
    sends->reserve(pending->size());
    SessionBatch batch;
    batch.entries.reserve(pending->size());
    for (const PendingPush& item : *pending) {
      sends->push_back(build_session_push(recipient, *item.envelope));
      batch.entries.push_back(std::move(sends->back().push));
    }
    outbound_.add();
    try {
      network_.send_async(
          Message{name_, recipient, std::move(batch)},
          [this, recipient, pending, sends, fail_all](Message response,
                                                      std::exception_ptr error) {
            struct Done {
              OutboundTracker& tracker;
              ~Done() { tracker.done(); }
            } done{outbound_};
            if (error) {
              fail_all(error);
              return;
            }
            stats_.objects_sent += pending->size();
            try {
              const auto* acks = std::get_if<SessionBatchAck>(&response.payload);
              if (acks == nullptr) {
                if (const auto* err = std::get_if<ErrorReply>(&response.payload)) {
                  if (util::starts_with(err->message, kResourceReplyPrefix)) {
                    throw pti::ResourceExhaustedError(
                        "batched push to '" + recipient + "' rejected: " +
                        err->message.substr(kResourceReplyPrefix.size()));
                  }
                  throw ProtocolError("batched push to '" + recipient +
                                      "' failed: " + err->message);
                }
                throw ProtocolError("unexpected response to SessionBatch: " +
                                    std::string(response.kind_name()));
              }
              if (acks->entries.size() != pending->size()) {
                throw ProtocolError(
                    "batch ack carries " + std::to_string(acks->entries.size()) +
                    " verdicts for " + std::to_string(pending->size()) + " entries");
              }
              // Per-entry commit on the entry's own ack slot: a Reset in
              // slot i replays entry i alone; every other slot keeps its
              // verdict and its wire-id commits.
              for (std::size_t i = 0; i < acks->entries.size(); ++i) {
                const SessionAck& ack = acks->entries[i];
                hub_->intro_registry().record_all(recipient, ack.known_desc_hashes);
                PendingPush& item = (*pending)[i];
                if (ack.status == SessionStatus::Reset) {
                  sessions_.reset_peer(recipient);
                  ++stats_.session_retries;
                  send_session_attempt(recipient, item.envelope, item.promise, 1);
                  continue;
                }
                sessions_.commit_send(recipient, (*sends)[i].token, (*sends)[i].names,
                                      (*sends)[i].fresh);
                item.promise->set_value(PushAck{ack.delivered, ack.detail});
              }
            } catch (...) {
              fail_all(std::current_exception());
            }
          });
    } catch (...) {
      outbound_.done();
      throw;
    }
  } catch (...) {
    fail_all(std::current_exception());
  }
}

Message Peer::handle(const Message& request) {
  if (extra_handler_) {
    if (auto handled = extra_handler_(request)) return std::move(*handled);
  }
  try {
    if (const auto* push = std::get_if<ObjectPush>(&request.payload)) {
      return handle_object_push(request, *push);
    }
    if (const auto* spush = std::get_if<SessionPush>(&request.payload)) {
      return handle_session_push(request, *spush);
    }
    if (const auto* batch = std::get_if<SessionBatch>(&request.payload)) {
      return handle_session_batch(request, *batch);
    }
    if (const auto* ti = std::get_if<TypeInfoRequest>(&request.payload)) {
      return Message{name_, request.sender, handle_typeinfo(*ti)};
    }
    if (const auto* code = std::get_if<CodeRequest>(&request.payload)) {
      return Message{name_, request.sender, handle_code(*code)};
    }
    return Message{name_, request.sender,
                   ErrorReply{std::string("peer '") + name_ + "' cannot handle " +
                              request.kind_name()}};
  } catch (const pti::ResourceExhaustedError& e) {
    return Message{name_, request.sender,
                   ErrorReply{std::string(kResourceReplyPrefix) + e.what()}};
  } catch (const Error& e) {
    return Message{name_, request.sender, ErrorReply{e.what()}};
  }
}

TypeInfoResponse Peer::handle_typeinfo(const TypeInfoRequest& request) {
  TypeInfoResponse response;
  for (const auto& type_name : request.type_names) {
    const TypeDescription* d = domain_.registry().find(type_name);
    if (d == nullptr || d->kind() == reflect::TypeKind::Primitive) {
      response.unknown.push_back(type_name);
    } else {
      response.descriptions_xml.push_back(serial::type_description_to_string(*d));
      ++stats_.typeinfo_served;
    }
  }
  return response;
}

CodeResponse Peer::handle_code(const CodeRequest& request) {
  CodeResponse response;
  response.assembly_name = request.assembly_name;
  if (domain_.has_assembly(request.assembly_name) && hub_->has(request.assembly_name)) {
    response.found = true;
    response.code_bytes = hub_->fetch(request.assembly_name)->simulated_code_size();
    ++stats_.code_served;
  }
  return response;
}

std::size_t Peer::fetch_descriptions(std::string_view from, std::vector<std::string> names) {
  // Deduplicate and drop what we already know.
  std::set<std::string, util::ICaseLess> unique;
  std::vector<std::string> wanted;
  for (auto& n : names) {
    if (domain_.registry().find(n) != nullptr) continue;
    if (unique.insert(n).second) wanted.push_back(std::move(n));
  }
  if (wanted.empty()) return 0;

  ++stats_.typeinfo_requests;
  const Message response =
      network_.send(Message{name_, std::string(from), TypeInfoRequest{std::move(wanted)}});
  const auto* info = std::get_if<TypeInfoResponse>(&response.payload);
  if (info == nullptr) {
    throw ProtocolError("unexpected response to TypeInfoRequest: " +
                        std::string(response.kind_name()));
  }
  std::vector<TypeDescription> parsed;
  parsed.reserve(info->descriptions_xml.size());
  for (const auto& xml_text : info->descriptions_xml) {
    parsed.push_back(serial::type_description_from_string(xml_text));
  }
  // Registry-boundary name governance: registering a description makes its
  // name permanent (TypeRegistry is append-only), so before anything is
  // added the supplying peer's distinct-name budget is charged for every
  // description we do not already hold. Over budget, the whole batch is
  // refused (ResourceExhaustedError) and nothing sticks — the transient
  // interns the parse created stay cold and reclaimable by eviction.
  if (PeerQuotaTable* quotas = network_.peer_quotas();
      quotas != nullptr && quotas->enabled()) {
    std::size_t fresh = 0;
    for (const auto& d : parsed) {
      if (domain_.registry().find_by_id(d.name_id()) == nullptr) ++fresh;
    }
    quotas->charge_new_names(from, fresh);
  }
  std::size_t registered = 0;
  for (auto& d : parsed) {
    domain_.registry().add(std::move(d));
    ++registered;
  }
  return registered;
}

CheckResult Peer::check_with_fetch(const TypeDescription& source,
                                   const TypeDescription& target,
                                   std::string_view sender) {
  CheckResult result = checker_.check(source, target);
  std::size_t rounds = 0;
  while (result.needs_more_types() && config_.mode == ProtocolMode::Optimistic &&
         rounds < config_.max_fetch_rounds) {
    ++rounds;
    if (fetch_descriptions(sender, result.missing_types) == 0) {
      break;  // the sender cannot help further
    }
    result = checker_.check(source, target);
  }
  return result;
}

void Peer::ensure_code(const TypeInfoEntry& entry, std::string_view sender,
                       bool& any_download) {
  if (domain_.is_loaded(entry.type_name)) return;

  // Resolve which assembly implements the type: the envelope carries it;
  // the registered description is the fallback.
  std::string assembly_name = entry.assembly_name;
  std::string path = entry.download_path;
  if (assembly_name.empty()) {
    if (const TypeDescription* d = domain_.registry().find(entry.type_name)) {
      assembly_name = d->assembly_name();
      path = d->download_path();
    }
  }
  if (assembly_name.empty()) {
    throw ProtocolError("no assembly known for type '" + entry.type_name + "'");
  }
  if (domain_.has_assembly(assembly_name)) return;  // another type loaded it

  std::string host{download_host(path)};
  if (host.empty()) host = std::string(sender);

  ++stats_.code_requests;
  any_download = true;
  const Message response =
      network_.send(Message{name_, host, CodeRequest{assembly_name}});
  const auto* code = std::get_if<CodeResponse>(&response.payload);
  if (code == nullptr || !code->found) {
    throw ProtocolError("assembly '" + assembly_name + "' is not available from '" +
                        host + "'");
  }
  const auto assembly = hub_->fetch(assembly_name);
  if (!assembly) {
    throw ProtocolError("assembly '" + assembly_name +
                        "' acknowledged but missing from the hub");
  }
  domain_.load_assembly(assembly, path);
}

void Peer::ensure_types_usable(const std::vector<TypeInfoEntry>& types,
                               std::string_view counterpart) {
  std::vector<std::string> unknown;
  for (const auto& t : types) {
    if (domain_.registry().find(t.type_name) == nullptr) unknown.push_back(t.type_name);
  }
  if (!unknown.empty()) {
    fetch_descriptions(counterpart, unknown);
    for (const auto& t : types) {
      if (domain_.registry().find(t.type_name) == nullptr) {
        throw ProtocolError("'" + std::string(counterpart) +
                            "' could not describe type '" + t.type_name + "'");
      }
    }
  }
  bool any_download = false;
  for (const auto& entry : types) {
    ensure_code(entry, counterpart, any_download);
  }
}

SessionAck Peer::deliver_session_payload(const std::string& sender,
                                         const SessionPush& push,
                                         const std::string& matched_interest,
                                         util::InternedName matched_id) {
  serial::ObjectSerializer& serializer = serializers_.get(push.encoding);
  const reflect::Value root = serializer.deserialize(push.payload);
  if (root.kind() != reflect::ValueKind::Object || !root.as_object()) {
    ++stats_.objects_rejected;
    return SessionAck{SessionStatus::Ok, false, "payload root is not an object", {}};
  }

  DeliveredObject delivered;
  delivered.object = root.as_object();
  domain_.fill_missing_fields(*delivered.object);
  delivered.adapted = proxies_.wrap(delivered.object, matched_interest);
  delivered.interest_type = matched_interest;
  delivered.interest_id = matched_id;
  delivered.sender = sender;
  if (config_.retain_delivered) {
    std::scoped_lock lock(delivered_mutex_);
    delivered_.push_back(delivered);
  }
  ++stats_.objects_delivered;
  if (on_delivery_) on_delivery_(delivered);

  return SessionAck{SessionStatus::Ok, true, matched_interest, {}};
}

void Peer::advertise_known_descriptions(const SessionPush& push, SessionAck& ack) {
  // The ack attests content the receiver now verifiably holds: the hash of
  // every intro description this push delivered. A Reset ack additionally
  // carries the receiver's whole known set (capped) so the replay — and,
  // through the hub registry, every other sender — skips those bytes.
  std::vector<std::uint64_t> delivered;
  for (const SessionIntro& intro : push.intros) {
    if (!intro.description_xml.empty()) {
      delivered.push_back(util::fnv1a64(intro.description_xml));
    }
  }
  if (delivered.empty() && ack.status != SessionStatus::Reset) return;
  std::scoped_lock lock(desc_hashes_mutex_);
  for (const std::uint64_t hash : delivered) known_desc_hashes_.insert(hash);
  if (ack.status == SessionStatus::Reset) {
    for (const std::uint64_t hash : known_desc_hashes_) {
      if (ack.known_desc_hashes.size() >= kMaxAdvertisedHashes) break;
      ack.known_desc_hashes.push_back(hash);
    }
  } else {
    ack.known_desc_hashes = std::move(delivered);
  }
}

Message Peer::handle_session_push(const Message& request, const SessionPush& push) {
  SessionAck ack = process_session_push(request.sender, push);
  advertise_known_descriptions(push, ack);
  return Message{name_, request.sender, std::move(ack)};
}

Message Peer::handle_session_batch(const Message& request, const SessionBatch& batch) {
  // One framed exchange, one verdict slot per entry, processed strictly in
  // order through the same per-push protocol as kind 9 — batching changes
  // the wire shape, never a decision or the order decisions are made in.
  ++stats_.session_batches;
  SessionBatchAck out;
  out.entries.reserve(batch.entries.size());
  for (const SessionPush& entry : batch.entries) {
    SessionAck ack = process_session_push(request.sender, entry);
    advertise_known_descriptions(entry, ack);
    out.entries.push_back(std::move(ack));
  }
  return Message{name_, request.sender, std::move(out)};
}

SessionAck Peer::process_session_push(const std::string& sender, const SessionPush& push) {
  ++stats_.objects_received;
  ++stats_.session_pushes;

  // Session bookkeeping first: adopt/refresh the inbound session, learn
  // the inline intros (idempotent), register their descriptions. The
  // distinct-name budget for intro names was already charged at the
  // transport seam (count_new_names), before this handler ran.
  sessions_.open_inbound(sender, push.token);
  for (const SessionIntro& intro : push.intros) {
    if (sessions_.learn(sender, push.token, intro)) ++stats_.session_intros;
    if (!intro.description_xml.empty() &&
        domain_.registry().find(intro.type_name) == nullptr) {
      // The XML is content-only; provenance comes from the intro fields.
      TypeDescription d = serial::type_description_from_string(intro.description_xml);
      d.set_assembly_name(intro.assembly_name);
      d.set_download_path(intro.download_path);
      domain_.registry().add(std::move(d));
    }
  }
  // Eager-mode extras: assemblies prepaid alongside the intros.
  for (const auto& assembly_name : push.intro_assembly_names) {
    if (!domain_.has_assembly(assembly_name)) {
      if (const auto assembly = hub_->fetch(assembly_name)) {
        domain_.load_assembly(assembly, "");
      }
    }
  }

  if (push.wire_types.empty()) {
    ++stats_.objects_rejected;
    return SessionAck{SessionStatus::Ok, false, "envelope carries no object types", {}};
  }

  std::vector<TypeInfoEntry> entries;
  if (!sessions_.resolve(sender, push.token, push.wire_types, entries)) {
    // Unknown wire ids: the session that established them is gone (evicted
    // or replaced). Tell the sender to replay with intros.
    ++stats_.session_resets;
    return SessionAck{SessionStatus::Reset, false, "session state lost", {}};
  }

  // The warmed path: a decisive verdict cached for this exact envelope
  // type set under the current invalidation generation. No registry walk,
  // no conformance check, no nested exchange.
  const std::uint32_t root_id = push.wire_types.front();
  if (auto verdict = sessions_.find_verdict(sender, push.token, root_id, push.wire_types)) {
    ++stats_.session_verdict_hits;
    if (!verdict->conformant) {
      ++stats_.objects_rejected;
      return SessionAck{SessionStatus::Ok, false, verdict->detail, {}};
    }
    if (verdict->code_ready) {
      ++stats_.code_cache_hits;
    } else {
      const std::uint64_t gen = sessions_.generation();
      bool any_download = false;
      for (const auto& entry : entries) ensure_code(entry, sender, any_download);
      if (!any_download) ++stats_.code_cache_hits;
      verdict->code_ready = true;
      sessions_.store_verdict(sender, push.token, root_id, *verdict, gen);
    }
    return deliver_session_payload(sender, push, verdict->matched_interest,
                                   verdict->matched_id);
  }

  // Cold half: the full protocol, same semantics and same observable
  // decisions as a cold ObjectPush — only the transport shape differs.
  // The generation is read before any conformance work so a concurrent
  // invalidation discards (rather than corrupts) the cached outcome.
  const std::uint64_t gen = sessions_.generation();

  std::vector<std::string> unknown;
  for (const auto& entry : entries) {
    if (domain_.registry().find(entry.type_name) == nullptr) {
      unknown.push_back(entry.type_name);
    }
  }
  if (unknown.empty()) {
    ++stats_.typeinfo_cache_hits;
  } else {
    if (config_.mode != ProtocolMode::Optimistic) {
      throw ProtocolError("eager push from '" + sender + "' missing descriptions");
    }
    fetch_descriptions(sender, unknown);
    for (const auto& entry : entries) {
      if (domain_.registry().find(entry.type_name) == nullptr) {
        throw ProtocolError("sender '" + sender + "' could not describe type '" +
                            entry.type_name + "'");
      }
    }
  }

  const TypeDescription* pushed = domain_.registry().find(entries.front().type_name);
  bool undecided = false;
  const auto accept = [&](const InterestEntry& entry) {
    const TypeDescription* interest = domain_.registry().find_by_id(entry.interest);
    if (interest == nullptr) return false;
    const CheckResult result = check_with_fetch(*pushed, *interest, sender);
    if (result.needs_more_types()) undecided = true;
    if (!result.conformant) return false;
    switch (config_.matcher) {
      case MatcherKind::ImplicitStructural:
        return true;
      case MatcherKind::Exact:
        return result.plan.kind() == conform::ConformanceKind::Identity;
      case MatcherKind::Nominal:
        return result.plan.kind() == conform::ConformanceKind::Identity ||
               result.plan.kind() == conform::ConformanceKind::Explicit;
      case MatcherKind::TaggedStructural: {
        conform::TaggedStructuralMatcher tagged(domain_.registry());
        return tagged.matches(*pushed, *interest);
      }
    }
    return false;
  };
  SessionTable::Verdict verdict;
  verdict.wire_types = push.wire_types;
  if (const auto match = hub_->interests().match_first(sub_, accept)) {
    verdict.conformant = true;
    verdict.matched_interest =
        domain_.registry().find_by_id(match->interest)->qualified_name();
    verdict.matched_id = match->interest;
  }
  if (!verdict.conformant) {
    ++stats_.objects_rejected;
    verdict.detail = "no interest conforms to '" + entries.front().type_name + "'";
    // An undecided rejection (the sender could not supply every referenced
    // description) stays uncached: a later push may resolve differently.
    if (!undecided) sessions_.store_verdict(sender, push.token, root_id, verdict, gen);
    return SessionAck{SessionStatus::Ok, false, verdict.detail, {}};
  }

  bool any_download = false;
  for (const auto& entry : entries) {
    ensure_code(entry, sender, any_download);
  }
  if (!any_download) ++stats_.code_cache_hits;
  verdict.code_ready = true;
  sessions_.store_verdict(sender, push.token, root_id, verdict, gen);

  return deliver_session_payload(sender, push, verdict.matched_interest,
                                 verdict.matched_id);
}

Message Peer::handle_object_push(const Message& request, const ObjectPush& push) {
  ++stats_.objects_received;
  const std::string& sender = request.sender;

  // Eager extras land first (descriptions and pre-paid assemblies).
  for (const auto& xml_text : push.eager_descriptions_xml) {
    domain_.registry().add(serial::type_description_from_string(xml_text));
  }
  for (const auto& assembly_name : push.eager_assembly_names) {
    if (!domain_.has_assembly(assembly_name)) {
      if (const auto assembly = hub_->fetch(assembly_name)) {
        domain_.load_assembly(assembly, "");
      }
    }
  }

  Envelope envelope = Envelope::from_bytes(push.envelope);
  if (envelope.types.empty()) {
    ++stats_.objects_rejected;
    return Message{name_, sender, PushAck{false, "envelope carries no object types"}};
  }

  // Protocol step 2: obtain descriptions for unknown envelope types.
  std::vector<std::string> unknown;
  for (const auto& t : envelope.types) {
    if (domain_.registry().find(t.type_name) == nullptr) unknown.push_back(t.type_name);
  }
  if (unknown.empty()) {
    ++stats_.typeinfo_cache_hits;
  } else {
    if (config_.mode != ProtocolMode::Optimistic) {
      throw ProtocolError("eager push from '" + sender + "' missing descriptions");
    }
    fetch_descriptions(sender, unknown);
    for (const auto& t : envelope.types) {
      if (domain_.registry().find(t.type_name) == nullptr) {
        throw ProtocolError("sender '" + sender + "' could not describe type '" +
                            t.type_name + "'");
      }
    }
  }

  // Protocol step 3: conformance against the interest set, gated by the
  // configured matcher (the paper's rule by default, a Section 2 baseline
  // otherwise). The declaration-ordered scan lives in the hub's shared
  // InterestIndex now (match_first pins its snapshot for the duration);
  // the accept predicate below is the full checker — potentially
  // fetching, hence slow — and first match wins, exactly as before.
  const TypeDescription* pushed =
      domain_.registry().find(envelope.types.front().type_name);
  const auto accept = [&](const InterestEntry& entry) {
    const TypeDescription* interest = domain_.registry().find_by_id(entry.interest);
    if (interest == nullptr) return false;
    const CheckResult result = check_with_fetch(*pushed, *interest, sender);
    if (!result.conformant) return false;
    switch (config_.matcher) {
      case MatcherKind::ImplicitStructural:
        return true;
      case MatcherKind::Exact:
        return result.plan.kind() == conform::ConformanceKind::Identity;
      case MatcherKind::Nominal:
        return result.plan.kind() == conform::ConformanceKind::Identity ||
               result.plan.kind() == conform::ConformanceKind::Explicit;
      case MatcherKind::TaggedStructural: {
        conform::TaggedStructuralMatcher tagged(domain_.registry());
        return tagged.matches(*pushed, *interest);
      }
    }
    return false;
  };
  std::string matched_interest;
  util::InternedName matched_id;
  if (const auto match = hub_->interests().match_first(sub_, accept)) {
    matched_interest = domain_.registry().find_by_id(match->interest)->qualified_name();
    matched_id = match->interest;
  }
  if (matched_interest.empty()) {
    // The optimistic pay-off: no conformant interest, no code download.
    ++stats_.objects_rejected;
    return Message{name_, sender,
                   PushAck{false, "no interest conforms to '" +
                                      envelope.types.front().type_name + "'"}};
  }

  // Protocol step 4+5: download code for every type in the object graph.
  bool any_download = false;
  for (const auto& entry : envelope.types) {
    ensure_code(entry, sender, any_download);
  }
  if (!any_download) ++stats_.code_cache_hits;

  // Deserialize and hand over, wrapped as the interest type.
  serial::ObjectSerializer& serializer = serializers_.get(envelope.encoding);
  const reflect::Value root = serializer.deserialize(envelope.payload);
  if (root.kind() != reflect::ValueKind::Object || !root.as_object()) {
    ++stats_.objects_rejected;
    return Message{name_, sender, PushAck{false, "payload root is not an object"}};
  }

  DeliveredObject delivered;
  delivered.object = root.as_object();
  // Lossy payload encodings (public-only XML) may have dropped private
  // fields; restore the declared shape now that the code is loaded.
  domain_.fill_missing_fields(*delivered.object);
  delivered.adapted = proxies_.wrap(delivered.object, matched_interest);
  delivered.interest_type = matched_interest;
  delivered.interest_id = matched_id;
  delivered.sender = sender;
  if (config_.retain_delivered) {
    std::scoped_lock lock(delivered_mutex_);
    delivered_.push_back(delivered);
  }
  ++stats_.objects_delivered;
  if (on_delivery_) on_delivery_(delivered);

  return Message{name_, sender, PushAck{true, matched_interest}};
}

}  // namespace pti::transport
