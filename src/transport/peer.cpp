#include "transport/peer.hpp"

#include <algorithm>
#include <utility>

#include "conform/baselines.hpp"
#include "serial/typedesc_xml.hpp"
#include "serial/xml_object_serializer.hpp"
#include "transport/peer_quota.hpp"
#include "transport/transport_error.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

using conform::CheckResult;
using reflect::DynObject;
using reflect::TypeDescription;
using serial::Envelope;
using serial::TypeInfoEntry;

namespace {

/// Parses "net://host/assembly" download paths; returns the host, or empty
/// when the path has another shape.
[[nodiscard]] std::string_view download_host(std::string_view path) noexcept {
  constexpr std::string_view kScheme = "net://";
  if (!util::starts_with(path, kScheme)) return {};
  path.remove_prefix(kScheme.size());
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? path : path.substr(0, slash);
}

/// ErrorReply classification prefix for quota rejections. Peer-level
/// errors travel in-band as addressed ErrorReply messages; this prefix is
/// what lets the requesting side rethrow the typed ResourceExhaustedError
/// instead of a generic ProtocolError — the in-band mirror of the socket
/// transport's "resource|" fault-frame prefix.
constexpr std::string_view kResourceReplyPrefix = "resource-exhausted: ";

}  // namespace

Peer::Peer(std::string name, Transport& network, std::shared_ptr<AssemblyHub> hub,
           PeerConfig config)
    : name_(std::move(name)),
      network_(network),
      hub_(std::move(hub)),
      config_(std::move(config)),
      checker_(domain_.registry(), config_.conformance,
               config_.use_conformance_cache ? &cache_ : nullptr),
      proxies_(domain_, checker_) {
  if (!hub_) throw TransportError("peer '" + name_ + "' needs an assembly hub");
  sub_ = hub_->interests().add_subscriber();
  interest_names_ = std::make_shared<const std::vector<std::string>>();
  serializers_ = serial::SerializerRegistry::with_defaults();
  // The XML serializer honours field visibility when it can see the
  // descriptions (XmlSerializer semantics).
  serializers_.add(std::make_shared<serial::XmlObjectSerializer>(&domain_.registry()));
  if (!serializers_.has(config_.payload_encoding)) {
    throw TransportError("unknown payload encoding '" + config_.payload_encoding + "'");
  }
  network_.attach(name_, [this](const Message& m) { return handle(m); });
}

Peer::~Peer() {
  // A concurrent transport's detach blocks until in-flight executions of
  // this peer's handler finish; then wait for our own outbound async-send
  // completions (their callbacks capture `this`). Only after both
  // quiescence points is member destruction safe — and only then may the
  // subscriber slot be returned to the shared index (no handler can be
  // mid-match on it anymore).
  network_.detach(name_);
  outbound_.wait_idle();
  if (sub_ != kNoSubscriber) hub_->interests().remove_subscriber(sub_);
}

std::vector<const TypeDescription*> Peer::host_assembly(
    std::shared_ptr<const reflect::Assembly> assembly) {
  if (!assembly) throw TransportError("cannot host a null assembly");
  const std::string path = "net://" + name_ + "/" + assembly->name();
  hub_->publish(assembly);
  return domain_.load_assembly(std::move(assembly), path);
}

util::InternedName Peer::add_interest(std::string_view type_name) {
  const TypeDescription* d = domain_.registry().find(type_name);
  if (d == nullptr) {
    throw ProtocolError("interest type '" + std::string(type_name) +
                        "' is not known to peer '" + name_ + "'");
  }
  return add_interest(*d);
}

util::InternedName Peer::add_interest(const TypeDescription& interest) {
  const util::InternedName id = interest.name_id();
  InterestIndex& index = hub_->interests();
  std::scoped_lock lock(interest_names_mutex_);
  {
    util::EpochManager::Pin pin(index.epochs());
    if (const auto* entries = index.interests_of(sub_)) {
      for (const auto& entry : *entries) {
        if (entry.interest == id) return id;  // already declared
      }
    }
  }
  index.add_interest(sub_, id, interest.fingerprint());
  // Publish a fresh immutable name snapshot; readers holding the old one
  // keep a valid (if stale) view.
  auto names = std::make_shared<std::vector<std::string>>(*interest_names_);
  names->push_back(interest.qualified_name());
  interest_names_ = std::move(names);
  return id;
}

std::shared_ptr<const std::vector<std::string>> Peer::interests() const {
  std::scoped_lock lock(interest_names_mutex_);
  return interest_names_;
}

std::vector<util::InternedName> Peer::interest_ids() const {
  InterestIndex& index = hub_->interests();
  std::vector<util::InternedName> out;
  util::EpochManager::Pin pin(index.epochs());
  if (const auto* entries = index.interests_of(sub_)) {
    out.reserve(entries->size());
    for (const auto& entry : *entries) out.push_back(entry.interest);
  }
  return out;
}

std::size_t Peer::delivered_count() const {
  std::scoped_lock lock(delivered_mutex_);
  return delivered_.size();
}

std::vector<DeliveredObject> Peer::delivered_snapshot() const {
  std::scoped_lock lock(delivered_mutex_);
  return delivered_;
}

std::string Peer::describe_type_xml(std::string_view type_name) const {
  const TypeDescription* d =
      const_cast<reflect::TypeRegistry&>(domain_.registry()).find(type_name);
  if (d == nullptr) {
    throw ProtocolError("peer '" + name_ + "' does not know type '" +
                        std::string(type_name) + "'");
  }
  return serial::type_description_to_string(*d);
}

ObjectPush Peer::build_push(const std::shared_ptr<DynObject>& object) {
  if (!object) throw ProtocolError("cannot send a null object");
  // The wire carries real state, never proxy wrappers.
  const std::shared_ptr<DynObject> real = proxies_.unwrap(object);

  serial::ObjectSerializer& serializer = serializers_.get(config_.payload_encoding);
  serial::EnvelopeBuilder builder(serializer, &domain_.registry());
  const Envelope envelope = builder.build(reflect::Value(real));

  ObjectPush push;
  push.envelope = envelope.to_bytes();

  if (config_.mode == ProtocolMode::Eager) {
    // Ship the transitive description closure and every implementing
    // assembly up front — the baseline the optimistic protocol beats.
    std::set<std::string, util::ICaseLess> visited;
    std::vector<std::string> frontier;
    for (const auto& t : envelope.types) frontier.push_back(t.type_name);
    std::set<std::string, util::ICaseLess> assemblies;
    while (!frontier.empty()) {
      const std::string type_name = std::move(frontier.back());
      frontier.pop_back();
      if (!visited.insert(type_name).second) continue;
      const TypeDescription* d = domain_.registry().find(type_name);
      if (d == nullptr || d->kind() == reflect::TypeKind::Primitive) continue;
      push.eager_descriptions_xml.push_back(serial::type_description_to_string(*d));
      if (!d->assembly_name().empty()) assemblies.insert(d->assembly_name());
      if (!d->superclass().empty()) frontier.push_back(d->superclass());
      for (const auto& itf : d->interfaces()) frontier.push_back(itf);
      for (const auto& f : d->fields()) frontier.push_back(f.type_name);
      for (const auto& m : d->methods()) {
        frontier.push_back(m.return_type);
        for (const auto& p : m.params) frontier.push_back(p.type_name);
      }
      for (const auto& c : d->constructors()) {
        for (const auto& p : c.params) frontier.push_back(p.type_name);
      }
    }
    for (const auto& assembly_name : assemblies) {
      if (const auto assembly = hub_->fetch(assembly_name)) {
        push.eager_assembly_names.push_back(assembly_name);
        push.eager_assembly_bytes += assembly->simulated_code_size();
      }
    }
  }
  return push;
}

PushAck Peer::ack_from_response(const Message& response, std::string_view to) {
  if (const auto* ack = std::get_if<PushAck>(&response.payload)) return *ack;
  if (const auto* err = std::get_if<ErrorReply>(&response.payload)) {
    if (util::starts_with(err->message, kResourceReplyPrefix)) {
      throw pti::ResourceExhaustedError(
          "push to '" + std::string(to) + "' rejected: " +
          err->message.substr(kResourceReplyPrefix.size()));
    }
    throw ProtocolError("push to '" + std::string(to) + "' failed: " + err->message);
  }
  throw ProtocolError("unexpected response to ObjectPush: " +
                      std::string(response.kind_name()));
}

PushAck Peer::send_object(std::string_view to,
                          const std::shared_ptr<DynObject>& object) {
  ObjectPush push = build_push(object);
  const Message response =
      network_.send(Message{name_, std::string(to), std::move(push)});
  ++stats_.objects_sent;
  return ack_from_response(response, to);
}

std::future<PushAck> Peer::send_object_async(std::string_view to,
                                             const std::shared_ptr<DynObject>& object) {
  ObjectPush push = build_push(object);
  auto promise = std::make_shared<std::promise<PushAck>>();
  std::future<PushAck> future = promise->get_future();
  const std::string recipient(to);
  outbound_.add();
  try {
    network_.send_async(
        Message{name_, recipient, std::move(push)},
        [this, promise, recipient](Message response, std::exception_ptr error) {
          // `this` stays valid: ~Peer waits for outbound_ to drain, and
          // the transport invokes every callback exactly once (failed/
          // detached sends included).
          struct Done {
            OutboundTracker& tracker;
            ~Done() { tracker.done(); }
          } done{outbound_};
          if (error) {
            promise->set_exception(error);
            return;
          }
          ++stats_.objects_sent;
          try {
            promise->set_value(ack_from_response(response, recipient));
          } catch (...) {
            promise->set_exception(std::current_exception());
          }
        });
  } catch (...) {
    outbound_.done();
    throw;
  }
  return future;
}

Message Peer::handle(const Message& request) {
  if (extra_handler_) {
    if (auto handled = extra_handler_(request)) return std::move(*handled);
  }
  try {
    if (const auto* push = std::get_if<ObjectPush>(&request.payload)) {
      return handle_object_push(request, *push);
    }
    if (const auto* ti = std::get_if<TypeInfoRequest>(&request.payload)) {
      return Message{name_, request.sender, handle_typeinfo(*ti)};
    }
    if (const auto* code = std::get_if<CodeRequest>(&request.payload)) {
      return Message{name_, request.sender, handle_code(*code)};
    }
    return Message{name_, request.sender,
                   ErrorReply{std::string("peer '") + name_ + "' cannot handle " +
                              request.kind_name()}};
  } catch (const pti::ResourceExhaustedError& e) {
    return Message{name_, request.sender,
                   ErrorReply{std::string(kResourceReplyPrefix) + e.what()}};
  } catch (const Error& e) {
    return Message{name_, request.sender, ErrorReply{e.what()}};
  }
}

TypeInfoResponse Peer::handle_typeinfo(const TypeInfoRequest& request) {
  TypeInfoResponse response;
  for (const auto& type_name : request.type_names) {
    const TypeDescription* d = domain_.registry().find(type_name);
    if (d == nullptr || d->kind() == reflect::TypeKind::Primitive) {
      response.unknown.push_back(type_name);
    } else {
      response.descriptions_xml.push_back(serial::type_description_to_string(*d));
      ++stats_.typeinfo_served;
    }
  }
  return response;
}

CodeResponse Peer::handle_code(const CodeRequest& request) {
  CodeResponse response;
  response.assembly_name = request.assembly_name;
  if (domain_.has_assembly(request.assembly_name) && hub_->has(request.assembly_name)) {
    response.found = true;
    response.code_bytes = hub_->fetch(request.assembly_name)->simulated_code_size();
    ++stats_.code_served;
  }
  return response;
}

std::size_t Peer::fetch_descriptions(std::string_view from, std::vector<std::string> names) {
  // Deduplicate and drop what we already know.
  std::set<std::string, util::ICaseLess> unique;
  std::vector<std::string> wanted;
  for (auto& n : names) {
    if (domain_.registry().find(n) != nullptr) continue;
    if (unique.insert(n).second) wanted.push_back(std::move(n));
  }
  if (wanted.empty()) return 0;

  ++stats_.typeinfo_requests;
  const Message response =
      network_.send(Message{name_, std::string(from), TypeInfoRequest{std::move(wanted)}});
  const auto* info = std::get_if<TypeInfoResponse>(&response.payload);
  if (info == nullptr) {
    throw ProtocolError("unexpected response to TypeInfoRequest: " +
                        std::string(response.kind_name()));
  }
  std::vector<TypeDescription> parsed;
  parsed.reserve(info->descriptions_xml.size());
  for (const auto& xml_text : info->descriptions_xml) {
    parsed.push_back(serial::type_description_from_string(xml_text));
  }
  // Registry-boundary name governance: registering a description makes its
  // name permanent (TypeRegistry is append-only), so before anything is
  // added the supplying peer's distinct-name budget is charged for every
  // description we do not already hold. Over budget, the whole batch is
  // refused (ResourceExhaustedError) and nothing sticks — the transient
  // interns the parse created stay cold and reclaimable by eviction.
  if (PeerQuotaTable* quotas = network_.peer_quotas();
      quotas != nullptr && quotas->enabled()) {
    std::size_t fresh = 0;
    for (const auto& d : parsed) {
      if (domain_.registry().find_by_id(d.name_id()) == nullptr) ++fresh;
    }
    quotas->charge_new_names(from, fresh);
  }
  std::size_t registered = 0;
  for (auto& d : parsed) {
    domain_.registry().add(std::move(d));
    ++registered;
  }
  return registered;
}

CheckResult Peer::check_with_fetch(const TypeDescription& source,
                                   const TypeDescription& target,
                                   std::string_view sender) {
  CheckResult result = checker_.check(source, target);
  std::size_t rounds = 0;
  while (result.needs_more_types() && config_.mode == ProtocolMode::Optimistic &&
         rounds < config_.max_fetch_rounds) {
    ++rounds;
    if (fetch_descriptions(sender, result.missing_types) == 0) {
      break;  // the sender cannot help further
    }
    result = checker_.check(source, target);
  }
  return result;
}

void Peer::ensure_code(const TypeInfoEntry& entry, std::string_view sender,
                       bool& any_download) {
  if (domain_.is_loaded(entry.type_name)) return;

  // Resolve which assembly implements the type: the envelope carries it;
  // the registered description is the fallback.
  std::string assembly_name = entry.assembly_name;
  std::string path = entry.download_path;
  if (assembly_name.empty()) {
    if (const TypeDescription* d = domain_.registry().find(entry.type_name)) {
      assembly_name = d->assembly_name();
      path = d->download_path();
    }
  }
  if (assembly_name.empty()) {
    throw ProtocolError("no assembly known for type '" + entry.type_name + "'");
  }
  if (domain_.has_assembly(assembly_name)) return;  // another type loaded it

  std::string host{download_host(path)};
  if (host.empty()) host = std::string(sender);

  ++stats_.code_requests;
  any_download = true;
  const Message response =
      network_.send(Message{name_, host, CodeRequest{assembly_name}});
  const auto* code = std::get_if<CodeResponse>(&response.payload);
  if (code == nullptr || !code->found) {
    throw ProtocolError("assembly '" + assembly_name + "' is not available from '" +
                        host + "'");
  }
  const auto assembly = hub_->fetch(assembly_name);
  if (!assembly) {
    throw ProtocolError("assembly '" + assembly_name +
                        "' acknowledged but missing from the hub");
  }
  domain_.load_assembly(assembly, path);
}

void Peer::ensure_types_usable(const std::vector<TypeInfoEntry>& types,
                               std::string_view counterpart) {
  std::vector<std::string> unknown;
  for (const auto& t : types) {
    if (domain_.registry().find(t.type_name) == nullptr) unknown.push_back(t.type_name);
  }
  if (!unknown.empty()) {
    fetch_descriptions(counterpart, unknown);
    for (const auto& t : types) {
      if (domain_.registry().find(t.type_name) == nullptr) {
        throw ProtocolError("'" + std::string(counterpart) +
                            "' could not describe type '" + t.type_name + "'");
      }
    }
  }
  bool any_download = false;
  for (const auto& entry : types) {
    ensure_code(entry, counterpart, any_download);
  }
}

Message Peer::handle_object_push(const Message& request, const ObjectPush& push) {
  ++stats_.objects_received;
  const std::string& sender = request.sender;

  // Eager extras land first (descriptions and pre-paid assemblies).
  for (const auto& xml_text : push.eager_descriptions_xml) {
    domain_.registry().add(serial::type_description_from_string(xml_text));
  }
  for (const auto& assembly_name : push.eager_assembly_names) {
    if (!domain_.has_assembly(assembly_name)) {
      if (const auto assembly = hub_->fetch(assembly_name)) {
        domain_.load_assembly(assembly, "");
      }
    }
  }

  Envelope envelope = Envelope::from_bytes(push.envelope);
  if (envelope.types.empty()) {
    ++stats_.objects_rejected;
    return Message{name_, sender, PushAck{false, "envelope carries no object types"}};
  }

  // Protocol step 2: obtain descriptions for unknown envelope types.
  std::vector<std::string> unknown;
  for (const auto& t : envelope.types) {
    if (domain_.registry().find(t.type_name) == nullptr) unknown.push_back(t.type_name);
  }
  if (unknown.empty()) {
    ++stats_.typeinfo_cache_hits;
  } else {
    if (config_.mode != ProtocolMode::Optimistic) {
      throw ProtocolError("eager push from '" + sender + "' missing descriptions");
    }
    fetch_descriptions(sender, unknown);
    for (const auto& t : envelope.types) {
      if (domain_.registry().find(t.type_name) == nullptr) {
        throw ProtocolError("sender '" + sender + "' could not describe type '" +
                            t.type_name + "'");
      }
    }
  }

  // Protocol step 3: conformance against the interest set, gated by the
  // configured matcher (the paper's rule by default, a Section 2 baseline
  // otherwise). The declaration-ordered scan lives in the hub's shared
  // InterestIndex now (match_first pins its snapshot for the duration);
  // the accept predicate below is the full checker — potentially
  // fetching, hence slow — and first match wins, exactly as before.
  const TypeDescription* pushed =
      domain_.registry().find(envelope.types.front().type_name);
  const auto accept = [&](const InterestEntry& entry) {
    const TypeDescription* interest = domain_.registry().find_by_id(entry.interest);
    if (interest == nullptr) return false;
    const CheckResult result = check_with_fetch(*pushed, *interest, sender);
    if (!result.conformant) return false;
    switch (config_.matcher) {
      case MatcherKind::ImplicitStructural:
        return true;
      case MatcherKind::Exact:
        return result.plan.kind() == conform::ConformanceKind::Identity;
      case MatcherKind::Nominal:
        return result.plan.kind() == conform::ConformanceKind::Identity ||
               result.plan.kind() == conform::ConformanceKind::Explicit;
      case MatcherKind::TaggedStructural: {
        conform::TaggedStructuralMatcher tagged(domain_.registry());
        return tagged.matches(*pushed, *interest);
      }
    }
    return false;
  };
  std::string matched_interest;
  util::InternedName matched_id;
  if (const auto match = hub_->interests().match_first(sub_, accept)) {
    matched_interest = domain_.registry().find_by_id(match->interest)->qualified_name();
    matched_id = match->interest;
  }
  if (matched_interest.empty()) {
    // The optimistic pay-off: no conformant interest, no code download.
    ++stats_.objects_rejected;
    return Message{name_, sender,
                   PushAck{false, "no interest conforms to '" +
                                      envelope.types.front().type_name + "'"}};
  }

  // Protocol step 4+5: download code for every type in the object graph.
  bool any_download = false;
  for (const auto& entry : envelope.types) {
    ensure_code(entry, sender, any_download);
  }
  if (!any_download) ++stats_.code_cache_hits;

  // Deserialize and hand over, wrapped as the interest type.
  serial::ObjectSerializer& serializer = serializers_.get(envelope.encoding);
  const reflect::Value root = serializer.deserialize(envelope.payload);
  if (root.kind() != reflect::ValueKind::Object || !root.as_object()) {
    ++stats_.objects_rejected;
    return Message{name_, sender, PushAck{false, "payload root is not an object"}};
  }

  DeliveredObject delivered;
  delivered.object = root.as_object();
  // Lossy payload encodings (public-only XML) may have dropped private
  // fields; restore the declared shape now that the code is loaded.
  domain_.fill_missing_fields(*delivered.object);
  delivered.adapted = proxies_.wrap(delivered.object, matched_interest);
  delivered.interest_type = matched_interest;
  delivered.interest_id = matched_id;
  delivered.sender = sender;
  if (config_.retain_delivered) {
    std::scoped_lock lock(delivered_mutex_);
    delivered_.push_back(delivered);
  }
  ++stats_.objects_delivered;
  if (on_delivery_) on_delivery_(delivered);

  return Message{name_, sender, PushAck{true, matched_interest}};
}

}  // namespace pti::transport
