#include "transport/assembly_hub.hpp"

#include <mutex>

#include "transport/transport_error.hpp"

namespace pti::transport {

void AssemblyHub::publish(std::shared_ptr<const reflect::Assembly> assembly) {
  if (!assembly) throw TransportError("cannot publish a null assembly");
  std::unique_lock lock(mutex_);
  assemblies_[assembly->name()] = std::move(assembly);
}

std::shared_ptr<const reflect::Assembly> AssemblyHub::fetch(
    std::string_view name) const noexcept {
  std::shared_lock lock(mutex_);
  const auto it = assemblies_.find(name);
  return it == assemblies_.end() ? nullptr : it->second;
}

bool AssemblyHub::has(std::string_view name) const noexcept {
  std::shared_lock lock(mutex_);
  return assemblies_.find(name) != assemblies_.end();
}

}  // namespace pti::transport
