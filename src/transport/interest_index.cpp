#include "transport/interest_index.hpp"

#include <algorithm>

#include "transport/transport_error.hpp"
#include "util/error.hpp"

namespace pti::transport {

// ---------------------------------------------------------------------------
// PostingList
// ---------------------------------------------------------------------------

InterestIndex::PostingList::Dir::Dir(std::uint32_t capacity)
    : chunk_capacity(capacity), chunks(new std::atomic<Chunk*>[capacity]) {
  for (std::uint32_t i = 0; i < capacity; ++i) chunks[i].store(nullptr, std::memory_order_relaxed);
}

InterestIndex::PostingList::Dir::~Dir() {
  if (!owns_chunks) return;
  for (std::uint32_t i = 0; i < chunk_capacity; ++i) {
    delete chunks[i].load(std::memory_order_relaxed);
  }
}

InterestIndex::PostingList::~PostingList() { delete dir_.load(std::memory_order_relaxed); }

InterestIndex::PostingList::Dir* InterestIndex::PostingList::ensure_capacity(
    std::uint32_t needed_slots, util::EpochManager& em) {
  Dir* dir = dir_.load(std::memory_order_relaxed);
  const std::uint32_t needed_chunks = (needed_slots + kChunkSize - 1) / kChunkSize;
  if (dir != nullptr && needed_chunks <= dir->chunk_capacity) return dir;
  const std::uint32_t capacity =
      std::max<std::uint32_t>({4, needed_chunks, dir ? dir->chunk_capacity * 2 : 0});
  Dir* grown = new Dir(capacity);
  if (dir != nullptr) {
    for (std::uint32_t i = 0; i < dir->chunk_capacity; ++i) {
      grown->chunks[i].store(dir->chunks[i].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    }
    grown->count.store(dir->count.load(std::memory_order_relaxed), std::memory_order_relaxed);
    // The successor now references the same chunks: the retired shell must
    // not free them when its epoch expires.
    dir->owns_chunks = false;
  }
  dir_.store(grown, std::memory_order_release);
  if (dir != nullptr) em.retire(dir);
  return grown;
}

void InterestIndex::PostingList::append(std::uint32_t value, util::EpochManager& em) {
  Dir* dir = dir_.load(std::memory_order_relaxed);
  const std::uint32_t slot = dir ? dir->count.load(std::memory_order_relaxed) : 0;
  dir = ensure_capacity(slot + 1, em);
  const std::uint32_t chunk_idx = slot / kChunkSize;
  Chunk* chunk = dir->chunks[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    for (auto& s : chunk->slots) s.store(kTombstone, std::memory_order_relaxed);
    dir->chunks[chunk_idx].store(chunk, std::memory_order_release);
  }
  chunk->slots[slot % kChunkSize].store(value, std::memory_order_relaxed);
  dir->count.store(slot + 1, std::memory_order_release);
  live_.fetch_add(1, std::memory_order_relaxed);
}

bool InterestIndex::PostingList::erase(std::uint32_t value, util::EpochManager& em) {
  Dir* dir = dir_.load(std::memory_order_relaxed);
  if (dir == nullptr) return false;
  const std::uint32_t n = dir->count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    Chunk* chunk = dir->chunks[i / kChunkSize].load(std::memory_order_relaxed);
    auto& cell = chunk->slots[i % kChunkSize];
    if (cell.load(std::memory_order_relaxed) != value) continue;
    cell.store(kTombstone, std::memory_order_relaxed);
    live_.fetch_sub(1, std::memory_order_relaxed);
    ++tombstones_;
    // Compact once tombstones dominate, so churn cannot grow a posting
    // list beyond ~2x its live population.
    if (tombstones_ >= kChunkSize && tombstones_ > live()) compact(em);
    return true;
  }
  return false;
}

void InterestIndex::PostingList::compact(util::EpochManager& em) {
  Dir* old_dir = dir_.load(std::memory_order_relaxed);
  if (old_dir == nullptr) return;
  const std::uint32_t n = old_dir->count.load(std::memory_order_relaxed);
  std::vector<std::uint32_t> kept;
  kept.reserve(live());
  for (std::uint32_t i = 0; i < n; ++i) {
    Chunk* chunk = old_dir->chunks[i / kChunkSize].load(std::memory_order_relaxed);
    const std::uint32_t v = chunk->slots[i % kChunkSize].load(std::memory_order_relaxed);
    if (v != kTombstone) kept.push_back(v);
  }
  const std::uint32_t chunk_count =
      std::max<std::uint32_t>(4, (static_cast<std::uint32_t>(kept.size()) + kChunkSize - 1) /
                                     kChunkSize);
  Dir* fresh = new Dir(chunk_count);
  for (std::uint32_t i = 0; i < kept.size(); ++i) {
    const std::uint32_t chunk_idx = i / kChunkSize;
    Chunk* chunk = fresh->chunks[chunk_idx].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      for (auto& s : chunk->slots) s.store(kTombstone, std::memory_order_relaxed);
      fresh->chunks[chunk_idx].store(chunk, std::memory_order_relaxed);
    }
    chunk->slots[i % kChunkSize].store(kept[i], std::memory_order_relaxed);
  }
  fresh->count.store(static_cast<std::uint32_t>(kept.size()), std::memory_order_relaxed);
  dir_.store(fresh, std::memory_order_release);
  tombstones_ = 0;
  // The old dir still owns its (now unreachable) chunks: pinned readers
  // may be mid-iteration over them, so both dir and chunks free together
  // once every such pin has released.
  em.retire(old_dir);
}

std::size_t InterestIndex::PostingList::collect(std::vector<std::uint32_t>& out) const {
  const Dir* dir = dir_.load(std::memory_order_acquire);
  if (dir == nullptr) return 0;
  const std::uint32_t n = dir->count.load(std::memory_order_acquire);
  std::size_t appended = 0;
  for (std::uint32_t base = 0; base < n; base += kChunkSize) {
    const Chunk* chunk = dir->chunks[base / kChunkSize].load(std::memory_order_acquire);
    const std::uint32_t limit = std::min(n - base, kChunkSize);
    for (std::uint32_t i = 0; i < limit; ++i) {
      const std::uint32_t v = chunk->slots[i].load(std::memory_order_relaxed);
      if (v != kTombstone) {
        out.push_back(v);
        ++appended;
      }
    }
  }
  return appended;
}

void InterestIndex::PostingList::for_each(const std::function<bool(std::uint32_t)>& fn) const {
  const Dir* dir = dir_.load(std::memory_order_acquire);
  if (dir == nullptr) return;
  const std::uint32_t n = dir->count.load(std::memory_order_acquire);
  for (std::uint32_t base = 0; base < n; base += kChunkSize) {
    const Chunk* chunk = dir->chunks[base / kChunkSize].load(std::memory_order_acquire);
    const std::uint32_t limit = std::min(n - base, kChunkSize);
    for (std::uint32_t i = 0; i < limit; ++i) {
      const std::uint32_t v = chunk->slots[i].load(std::memory_order_relaxed);
      if (v != kTombstone && !fn(v)) return;
    }
  }
}

// ---------------------------------------------------------------------------
// InterestIndex
// ---------------------------------------------------------------------------

InterestIndex::InterestIndex(util::EpochManager* epochs)
    : epochs_(epochs != nullptr ? *epochs : util::EpochManager::global()) {}

InterestIndex::~InterestIndex() {
  for (auto& chunk_ptr : slot_chunks_) {
    SlotChunk* chunk = chunk_ptr.load(std::memory_order_relaxed);
    if (chunk == nullptr) continue;
    for (auto& slot : chunk->slots) {
      delete slot.interests.load(std::memory_order_relaxed);
    }
    delete chunk;
  }
}

InterestIndex::SubscriberSlot* InterestIndex::slot_of(SubscriberId sub) const noexcept {
  if (sub == kNoSubscriber) return nullptr;
  const std::uint32_t chunk_idx = sub / kSlotChunkSize;
  if (chunk_idx >= kMaxSlotChunks) return nullptr;
  SlotChunk* chunk = slot_chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk->slots[sub % kSlotChunkSize];
}

SubscriberId InterestIndex::add_subscriber() {
  std::scoped_lock lock(subscriber_mutex_);
  SubscriberId id = kNoSubscriber;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    if (slot_high_water_ >= kMaxSlotChunks * kSlotChunkSize) {
      throw pti::ResourceExhaustedError("InterestIndex subscriber capacity exhausted");
    }
    id = slot_high_water_++;
    const std::uint32_t chunk_idx = id / kSlotChunkSize;
    if (slot_chunks_[chunk_idx].load(std::memory_order_relaxed) == nullptr) {
      slot_chunks_[chunk_idx].store(new SlotChunk(), std::memory_order_release);
    }
  }
  SubscriberSlot* slot = slot_of(id);
  slot->live.store(true, std::memory_order_release);
  subscribers_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void InterestIndex::remove_subscriber(SubscriberId sub) {
  std::scoped_lock lock(subscriber_mutex_);
  SubscriberSlot* slot = slot_of(sub);
  if (slot == nullptr || !slot->live.load(std::memory_order_relaxed)) return;
  const std::vector<InterestEntry>* current =
      slot->interests.load(std::memory_order_relaxed);
  if (current != nullptr) {
    for (const InterestEntry& entry : *current) {
      bool emptied = false;
      std::uint64_t posting_fingerprint = 0;
      {
        Shard& shard = shards_[shard_of(entry.interest)];
        std::unique_lock shard_lock(shard.mutex);
        const auto it = shard.postings.find(entry.interest);
        if (it != shard.postings.end() &&
            it->second->subscribers.erase(sub, epochs_)) {
          entries_.fetch_sub(1, std::memory_order_relaxed);
          if (it->second->subscribers.live() == 0) {
            emptied = true;
            posting_fingerprint = it->second->fingerprint;
          }
        }
      }
      if (emptied) bucket_remove(posting_fingerprint, entry.interest);
    }
    slot->interests.store(nullptr, std::memory_order_release);
    epochs_.retire(const_cast<std::vector<InterestEntry>*>(current));
  }
  slot->live.store(false, std::memory_order_release);
  free_ids_.push_back(sub);
  subscribers_.fetch_sub(1, std::memory_order_relaxed);
}

bool InterestIndex::is_live(SubscriberId sub) const noexcept {
  const SubscriberSlot* slot = slot_of(sub);
  return slot != nullptr && slot->live.load(std::memory_order_acquire);
}

void InterestIndex::add_interest(SubscriberId sub, util::InternedName interest,
                                 std::uint64_t fingerprint) {
  if (!interest.valid()) throw TransportError("cannot register an invalid interest id");
  std::scoped_lock lock(subscriber_mutex_);
  SubscriberSlot* slot = slot_of(sub);
  if (slot == nullptr || !slot->live.load(std::memory_order_relaxed)) {
    throw TransportError("interest registered for an unknown subscriber");
  }
  const std::vector<InterestEntry>* current =
      slot->interests.load(std::memory_order_relaxed);
  if (current != nullptr) {
    for (const InterestEntry& entry : *current) {
      if (entry.interest == interest) return;  // idempotent per (sub, interest)
    }
  }
  auto* grown = current != nullptr ? new std::vector<InterestEntry>(*current)
                                   : new std::vector<InterestEntry>();
  grown->push_back(InterestEntry{interest, fingerprint});
  slot->interests.store(grown, std::memory_order_release);
  if (current != nullptr) epochs_.retire(const_cast<std::vector<InterestEntry>*>(current));

  bool first_subscriber = false;
  std::uint64_t posting_fingerprint = 0;
  {
    Shard& shard = shards_[shard_of(interest)];
    std::unique_lock shard_lock(shard.mutex);
    auto& posting = shard.postings[interest];
    if (posting == nullptr) {
      posting = std::make_unique<Posting>();
      posting->fingerprint = fingerprint;
    }
    first_subscriber = posting->subscribers.live() == 0;
    posting->subscribers.append(sub, epochs_);
    posting_fingerprint = posting->fingerprint;
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
  // Bucket maintenance happens after the posting lock is released: writers
  // are already serialized by subscriber_mutex_, so keeping the two shard
  // lock families disjoint costs nothing and means the index never nests
  // one shard mutex inside another.
  if (first_subscriber) bucket_add(posting_fingerprint, interest);
}

bool InterestIndex::remove_interest(SubscriberId sub, util::InternedName interest) {
  std::scoped_lock lock(subscriber_mutex_);
  SubscriberSlot* slot = slot_of(sub);
  if (slot == nullptr || !slot->live.load(std::memory_order_relaxed)) return false;
  const std::vector<InterestEntry>* current =
      slot->interests.load(std::memory_order_relaxed);
  if (current == nullptr) return false;
  auto* shrunk = new std::vector<InterestEntry>();
  shrunk->reserve(current->size());
  bool found = false;
  for (const InterestEntry& entry : *current) {
    if (entry.interest == interest) {
      found = true;
      continue;
    }
    shrunk->push_back(entry);
  }
  if (!found) {
    delete shrunk;
    return false;
  }
  slot->interests.store(shrunk, std::memory_order_release);
  epochs_.retire(const_cast<std::vector<InterestEntry>*>(current));

  bool emptied = false;
  std::uint64_t posting_fingerprint = 0;
  {
    Shard& shard = shards_[shard_of(interest)];
    std::unique_lock shard_lock(shard.mutex);
    const auto it = shard.postings.find(interest);
    if (it != shard.postings.end() && it->second->subscribers.erase(sub, epochs_)) {
      entries_.fetch_sub(1, std::memory_order_relaxed);
      if (it->second->subscribers.live() == 0) {
        emptied = true;
        posting_fingerprint = it->second->fingerprint;
      }
    }
  }
  if (emptied) bucket_remove(posting_fingerprint, interest);
  return true;
}

const std::vector<InterestEntry>* InterestIndex::interests_of(
    SubscriberId sub) const noexcept {
  const SubscriberSlot* slot = slot_of(sub);
  if (slot == nullptr) return nullptr;
  return slot->interests.load(std::memory_order_acquire);
}

std::optional<InterestEntry> InterestIndex::match_first(
    SubscriberId sub, const std::function<bool(const InterestEntry&)>& accept) const {
  util::EpochManager::Pin pin(epochs_);
  const std::vector<InterestEntry>* interests = interests_of(sub);
  if (interests == nullptr) return std::nullopt;
  for (const InterestEntry& entry : *interests) {
    if (accept(entry)) return entry;
  }
  return std::nullopt;
}

const InterestIndex::Posting* InterestIndex::find_posting(util::InternedName interest) const {
  const Shard& shard = shards_[shard_of(interest)];
  std::shared_lock lock(shard.mutex);
  const auto it = shard.postings.find(interest);
  return it == shard.postings.end() ? nullptr : it->second.get();
}

std::size_t InterestIndex::collect_subscribers(util::InternedName interest,
                                               std::vector<SubscriberId>& out) const {
  const Posting* posting = find_posting(interest);
  if (posting == nullptr) return 0;
  return posting->subscribers.collect(out);
}

std::size_t InterestIndex::collect_interests(std::vector<util::InternedName>& out) const {
  const std::size_t before = out.size();
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [interest, posting] : shard.postings) {
      if (posting->subscribers.live() > 0) out.push_back(interest);
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
            [](util::InternedName a, util::InternedName b) { return a.value() < b.value(); });
  return out.size() - before;
}

void InterestIndex::bucket_add(std::uint64_t fingerprint, util::InternedName interest) {
  BucketShard& shard = bucket_shards_[bucket_shard_of(fingerprint)];
  std::unique_lock lock(shard.mutex);
  auto& bucket = shard.buckets[fingerprint];
  if (bucket == nullptr) bucket = std::make_unique<PostingList>();
  bucket->append(interest.value(), epochs_);
}

void InterestIndex::bucket_remove(std::uint64_t fingerprint, util::InternedName interest) {
  BucketShard& shard = bucket_shards_[bucket_shard_of(fingerprint)];
  std::unique_lock lock(shard.mutex);
  const auto it = shard.buckets.find(fingerprint);
  if (it != shard.buckets.end()) it->second->erase(interest.value(), epochs_);
}

std::size_t InterestIndex::equivalence_candidates(std::uint64_t fingerprint,
                                                  std::vector<util::InternedName>& out) const {
  const BucketShard& shard = bucket_shards_[bucket_shard_of(fingerprint)];
  const PostingList* bucket = nullptr;
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.buckets.find(fingerprint);
    if (it == shard.buckets.end()) return 0;
    bucket = it->second.get();
  }
  std::size_t appended = 0;
  bucket->for_each([&](std::uint32_t raw) {
    out.push_back(util::InternedName(raw));
    ++appended;
    return true;
  });
  return appended;
}

std::size_t InterestIndex::collect_matches(
    const std::function<bool(const InterestEntry&)>& accept, std::vector<SubscriberId>& out,
    std::vector<util::InternedName>& interest_scratch) const {
  util::EpochManager::Pin pin(epochs_);
  interest_scratch.clear();
  out.clear();
  collect_interests(interest_scratch);
  for (const util::InternedName interest : interest_scratch) {
    const Posting* posting = find_posting(interest);
    if (posting == nullptr || posting->subscribers.live() == 0) continue;
    if (!accept(InterestEntry{interest, posting->fingerprint})) continue;
    posting->subscribers.collect(out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out.size();
}

std::size_t InterestIndex::subscriber_count() const noexcept {
  return subscribers_.load(std::memory_order_relaxed);
}

std::size_t InterestIndex::entry_count() const noexcept {
  return entries_.load(std::memory_order_relaxed);
}

std::size_t InterestIndex::interest_count() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    for (const auto& [interest, posting] : shard.postings) {
      if (posting->subscribers.live() > 0) ++count;
    }
  }
  return count;
}

}  // namespace pti::transport
