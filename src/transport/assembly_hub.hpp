// AssemblyHub — the in-process stand-in for "downloadable code".
//
// In the paper, an assembly downloaded from a peer is real CLR code the
// runtime links in. C++ cannot link code received over a wire, so the hub
// holds every assembly that exists anywhere in the simulated universe;
// the *protocol* still transfers descriptions and charges the network for
// the assembly's simulated byte size, and a peer may load an assembly from
// the hub only after a successful CodeResponse. The substitution keeps
// every protocol-visible behaviour (message sequence, byte counts, cache
// effects) intact — only the mechanics of code transport are simulated.
//
// Thread safety: fully thread-safe (one shared_mutex; publish exclusive,
// fetch/has shared). Assemblies are immutable once published, and the hub
// never erases, so the shared_ptrs handed out stay valid.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "reflect/assembly.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

class AssemblyHub {
 public:
  void publish(std::shared_ptr<const reflect::Assembly> assembly);
  [[nodiscard]] std::shared_ptr<const reflect::Assembly> fetch(
      std::string_view name) const noexcept;
  [[nodiscard]] bool has(std::string_view name) const noexcept;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<const reflect::Assembly>, util::ICaseLess>
      assemblies_;
};

}  // namespace pti::transport
