// AssemblyHub — the in-process stand-in for "downloadable code".
//
// In the paper, an assembly downloaded from a peer is real CLR code the
// runtime links in. C++ cannot link code received over a wire, so the hub
// holds every assembly that exists anywhere in the simulated universe;
// the *protocol* still transfers descriptions and charges the network for
// the assembly's simulated byte size, and a peer may load an assembly from
// the hub only after a successful CodeResponse. The substitution keeps
// every protocol-visible behaviour (message sequence, byte counts, cache
// effects) intact — only the mechanics of code transport are simulated.
//
// The hub is also the one object every peer of a universe shares, which
// makes it the natural owner of that universe's InterestIndex: peers
// register their interests here, so the real transports and any
// population-scale driver match through ONE engine (PR 8).
//
// Thread safety: fully thread-safe (one shared_mutex; publish exclusive,
// fetch/has shared). Assemblies are immutable once published, and the hub
// never erases, so the shared_ptrs handed out stay valid. The
// InterestIndex carries its own concurrency contract (see its header).
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "reflect/assembly.hpp"
#include "transport/interest_index.hpp"
#include "transport/intro_registry.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

class AssemblyHub {
 public:
  void publish(std::shared_ptr<const reflect::Assembly> assembly);
  [[nodiscard]] std::shared_ptr<const reflect::Assembly> fetch(
      std::string_view name) const noexcept;
  [[nodiscard]] bool has(std::string_view name) const noexcept;

  /// The universe's shared interest-matching engine. Every Peer registers
  /// here; the megasim builds its own hub, so both paths are this one.
  [[nodiscard]] InterestIndex& interests() noexcept { return interests_; }
  [[nodiscard]] const InterestIndex& interests() const noexcept { return interests_; }

  /// Which receiver already holds which type description (by content
  /// hash). Shared across every sender of the universe, so a description
  /// advertised to one sender lets every other sender skip its bytes.
  [[nodiscard]] IntroRegistry& intro_registry() noexcept { return intro_registry_; }
  [[nodiscard]] const IntroRegistry& intro_registry() const noexcept {
    return intro_registry_;
  }

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<const reflect::Assembly>, util::ICaseLess>
      assemblies_;
  InterestIndex interests_;
  IntroRegistry intro_registry_;
};

}  // namespace pti::transport
