#pragma once

#include "util/error.hpp"

namespace pti::transport {

class TransportError : public Error {
 public:
  using Error::Error;
};

/// A message was dropped or the recipient is unreachable.
class NetworkError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// The optimistic protocol could not complete (missing descriptions after
/// retry budget, unavailable code, malformed envelope...).
class ProtocolError : public TransportError {
 public:
  using TransportError::TransportError;
};

}  // namespace pti::transport
