#include "transport/session.hpp"

#include <algorithm>
#include <utility>

namespace pti::transport {

SessionTable::SendPlan SessionTable::plan_send(const std::string& to,
                                               const std::vector<std::string>& names) {
  std::scoped_lock lock(outbound_mutex_);
  OutboundSession& session = outbound_[to];
  if (session.token == 0) {
    session.token = next_token_.fetch_add(1, std::memory_order_relaxed);
  }
  SendPlan plan;
  plan.token = session.token;
  plan.wire_ids.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto [it, inserted] = session.bindings.try_emplace(names[i]);
    if (inserted) it->second.wire_id = session.next_wire_id++;
    plan.wire_ids.push_back(it->second.wire_id);
    if (!it->second.introduced) plan.fresh.push_back(i);
  }
  return plan;
}

SessionTable::SendPlan SessionTable::plan_extras(const std::string& to,
                                                 std::uint64_t token,
                                                 const std::vector<std::string>& names) {
  std::scoped_lock lock(outbound_mutex_);
  SendPlan plan;
  plan.token = token;
  const auto it = outbound_.find(to);
  if (it == outbound_.end() || it->second.token != token) return plan;  // reset raced
  OutboundSession& session = it->second;
  plan.wire_ids.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto [binding, inserted] = session.bindings.try_emplace(names[i]);
    if (inserted) binding->second.wire_id = session.next_wire_id++;
    plan.wire_ids.push_back(binding->second.wire_id);
    if (!binding->second.introduced) plan.fresh.push_back(i);
  }
  return plan;
}

void SessionTable::commit_send(const std::string& to, std::uint64_t token,
                               const std::vector<std::string>& names,
                               const std::vector<std::size_t>& fresh) {
  std::scoped_lock lock(outbound_mutex_);
  const auto it = outbound_.find(to);
  if (it == outbound_.end() || it->second.token != token) return;  // session was reset
  for (const std::size_t index : fresh) {
    const auto binding = it->second.bindings.find(names[index]);
    if (binding != it->second.bindings.end()) binding->second.introduced = true;
  }
}

void SessionTable::reset_peer(const std::string& to) {
  std::scoped_lock lock(outbound_mutex_);
  outbound_.erase(to);
}

void SessionTable::open_inbound(const std::string& from, std::uint64_t token) {
  std::scoped_lock lock(inbound_mutex_);
  auto it = inbound_.find(from);
  if (it == inbound_.end()) {
    if (inbound_.size() >= config_.max_peer_sessions) {
      // Evict the least recently used sender; it will see one Reset and
      // replay with intros. Linear scan: eviction is the rare path and
      // max_peer_sessions is small.
      auto victim = inbound_.begin();
      for (auto scan = inbound_.begin(); scan != inbound_.end(); ++scan) {
        if (scan->second.last_use < victim->second.last_use) victim = scan;
      }
      inbound_.erase(victim);
    }
    it = inbound_.try_emplace(from).first;
    it->second.token = token;
  } else if (it->second.token != token) {
    // The sender started a new session (its side was reset): the old wire
    // map and verdicts belong to the dead token.
    it->second = InboundSession{};
    it->second.token = token;
  }
  it->second.last_use = ++use_clock_;
}

bool SessionTable::learn(const std::string& from, std::uint64_t token,
                         const SessionIntro& intro) {
  std::scoped_lock lock(inbound_mutex_);
  const auto it = inbound_.find(from);
  if (it == inbound_.end() || it->second.token != token) return false;
  serial::TypeInfoEntry entry;
  entry.type_name = intro.type_name;
  entry.assembly_name = intro.assembly_name;
  entry.download_path = intro.download_path;
  return it->second.wire_map.insert_or_assign(intro.wire_id, std::move(entry)).second;
}

bool SessionTable::resolve(const std::string& from, std::uint64_t token,
                           const std::vector<std::uint32_t>& wire_types,
                           std::vector<serial::TypeInfoEntry>& out) const {
  std::scoped_lock lock(inbound_mutex_);
  const auto it = inbound_.find(from);
  if (it == inbound_.end() || it->second.token != token) return false;
  out.clear();
  out.reserve(wire_types.size());
  for (const std::uint32_t id : wire_types) {
    const auto entry = it->second.wire_map.find(id);
    if (entry == it->second.wire_map.end()) return false;
    out.push_back(entry->second);
  }
  return true;
}

std::optional<SessionTable::Verdict> SessionTable::find_verdict(
    const std::string& from, std::uint64_t token, std::uint32_t root,
    const std::vector<std::uint32_t>& wire_types) const {
  const std::uint64_t gen = generation();
  std::scoped_lock lock(inbound_mutex_);
  const auto it = inbound_.find(from);
  if (it == inbound_.end() || it->second.token != token) return std::nullopt;
  const auto stored = it->second.verdicts.find(root);
  if (stored == it->second.verdicts.end()) return std::nullopt;
  if (stored->second.generation != gen) return std::nullopt;
  if (stored->second.verdict.wire_types != wire_types) return std::nullopt;
  return stored->second.verdict;
}

void SessionTable::store_verdict(const std::string& from, std::uint64_t token,
                                 std::uint32_t root, Verdict verdict,
                                 std::uint64_t gen) {
  // A verdict computed before an invalidation must not land: the generation
  // read before the computation is compared against the current one.
  if (gen != generation()) return;
  std::scoped_lock lock(inbound_mutex_);
  const auto it = inbound_.find(from);
  if (it == inbound_.end() || it->second.token != token) return;
  it->second.verdicts.insert_or_assign(root, InboundSession::StoredVerdict{
                                                 std::move(verdict), gen});
}

std::size_t SessionTable::outbound_sessions() const {
  std::scoped_lock lock(outbound_mutex_);
  return outbound_.size();
}

std::size_t SessionTable::inbound_sessions() const {
  std::scoped_lock lock(inbound_mutex_);
  return inbound_.size();
}

}  // namespace pti::transport
