#include "transport/message.hpp"

namespace pti::transport {

namespace {

constexpr std::size_t kHeaderSize = 48;  // routing, kind, framing

struct SizeVisitor {
  std::size_t operator()(const ObjectPush& m) const noexcept {
    std::size_t size = m.envelope.size() + m.eager_assembly_bytes;
    for (const auto& d : m.eager_descriptions_xml) size += d.size();
    for (const auto& n : m.eager_assembly_names) size += n.size() + 4;
    return size;
  }
  std::size_t operator()(const PushAck& m) const noexcept { return 2 + m.detail.size(); }
  std::size_t operator()(const TypeInfoRequest& m) const noexcept {
    std::size_t size = 4;
    for (const auto& n : m.type_names) size += n.size() + 4;
    return size;
  }
  std::size_t operator()(const TypeInfoResponse& m) const noexcept {
    std::size_t size = 4;
    for (const auto& d : m.descriptions_xml) size += d.size() + 4;
    for (const auto& u : m.unknown) size += u.size() + 4;
    return size;
  }
  std::size_t operator()(const CodeRequest& m) const noexcept {
    return m.assembly_name.size() + 4;
  }
  std::size_t operator()(const CodeResponse& m) const noexcept {
    return m.assembly_name.size() + 6 + static_cast<std::size_t>(m.code_bytes);
  }
  std::size_t operator()(const InvokeRequest& m) const noexcept {
    return 8 + m.method_name.size() + 4 + m.args_envelope.size();
  }
  std::size_t operator()(const InvokeResponse& m) const noexcept {
    return 2 + m.result_envelope.size() + m.error.size();
  }
  std::size_t operator()(const ErrorReply& m) const noexcept {
    return m.message.size() + 4;
  }
  std::size_t operator()(const SessionPush& m) const noexcept {
    std::size_t size = 8 + 4 * m.wire_types.size() + m.encoding.size() + 4 +
                       m.payload.size() + static_cast<std::size_t>(m.intro_assembly_bytes);
    for (const auto& i : m.intros) {
      size += 4 + i.type_name.size() + i.description_xml.size() + i.assembly_name.size() +
              i.download_path.size() + 16;
    }
    for (const auto& n : m.intro_assembly_names) size += n.size() + 4;
    return size;
  }
  std::size_t operator()(const SessionAck& m) const noexcept {
    return 3 + m.detail.size() + 8 * m.known_desc_hashes.size();
  }
  std::size_t operator()(const SessionBatch& m) const noexcept {
    std::size_t size = 4;
    for (const auto& entry : m.entries) size += (*this)(entry);
    return size;
  }
  std::size_t operator()(const SessionBatchAck& m) const noexcept {
    std::size_t size = 4;
    for (const auto& entry : m.entries) size += (*this)(entry);
    return size;
  }
};

struct KindVisitor {
  const char* operator()(const ObjectPush&) const noexcept { return "ObjectPush"; }
  const char* operator()(const PushAck&) const noexcept { return "PushAck"; }
  const char* operator()(const TypeInfoRequest&) const noexcept { return "TypeInfoRequest"; }
  const char* operator()(const TypeInfoResponse&) const noexcept {
    return "TypeInfoResponse";
  }
  const char* operator()(const CodeRequest&) const noexcept { return "CodeRequest"; }
  const char* operator()(const CodeResponse&) const noexcept { return "CodeResponse"; }
  const char* operator()(const InvokeRequest&) const noexcept { return "InvokeRequest"; }
  const char* operator()(const InvokeResponse&) const noexcept { return "InvokeResponse"; }
  const char* operator()(const ErrorReply&) const noexcept { return "ErrorReply"; }
  const char* operator()(const SessionPush&) const noexcept { return "SessionPush"; }
  const char* operator()(const SessionAck&) const noexcept { return "SessionAck"; }
  const char* operator()(const SessionBatch&) const noexcept { return "SessionBatch"; }
  const char* operator()(const SessionBatchAck&) const noexcept {
    return "SessionBatchAck";
  }
};

}  // namespace

std::size_t Message::wire_size() const noexcept {
  return kHeaderSize + sender.size() + recipient.size() + std::visit(SizeVisitor{}, payload);
}

const char* Message::kind_name() const noexcept {
  return std::visit(KindVisitor{}, payload);
}

}  // namespace pti::transport
