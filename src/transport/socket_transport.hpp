// SocketTransport — the real network implementation of the
// transport::Transport seam: every Message is serialized by
// serial::FrameCodec and crosses a loopback TCP connection as bytes, then
// is decoded and dispatched on the receiving side. This is the first path
// through the stack where the protocol's on-the-wire contract — not just
// its in-memory API — is exercised end to end.
//
// Shape:
//   * each transport owns one listening socket on 127.0.0.1 (port 0 picks
//     an ephemeral port; port() tells you which). An accept thread hands
//     every inbound connection to its own reader thread, which reads
//     frames, decodes them, runs the recipient endpoint's handler inline,
//     and writes the encoded response back on the same connection;
//   * send() is the synchronous exchange: it checks out an idle client
//     connection to the destination (or dials a new one), writes the
//     request frame, and blocks reading the response frame. A connection
//     carries at most one in-flight exchange, so no correlation ids are
//     needed and nested mid-protocol round trips (a handler send()ing from
//     a reader thread) simply use another connection;
//   * send_async() enqueues onto a small pool of outbound worker threads
//     that run the same synchronous exchange; all failures surface through
//     the future/callback, never as a throw — same contract as
//     AsyncTransport, including backpressure: the queue holds at most
//     `max_outbound` pending requests, an overflowing send_async either
//     blocks for space (Block, the default) or fails the future/callback
//     (Reject), and Block never applies on a transport thread (a handler
//     or completion callback fails fast instead of deadlocking the
//     threads that drain the queue);
//   * routing: a recipient resolves to (in order) an explicit add_route()
//     address, then the transport's own listener when the endpoint is
//     attached locally. Local recipients are NOT short-circuited
//     in-process — their messages cross the loopback wire like everyone
//     else's, which is what makes single-instance tests exercise the real
//     serialized path;
//   * cost accounting: the same per-link latency/bandwidth model as
//     SimNetwork/AsyncTransport, charged on the virtual clock against the
//     modelled wire_size() (so byte counts stay comparable across
//     transports); the *actual* framed bytes moved through the socket are
//     tracked separately in socket_stats(). The requester charges the
//     request, the responder charges the response — on a single instance
//     the totals are identical to SimNetwork's; across instances each
//     transport counts what it transmits. Per-link drop_probability is
//     honoured: a dropped request fails before any byte is written, a
//     dropped response answers with an unaddressed fault frame (worded
//     like SimNetwork's drop error) — the server never closes a served
//     request's connection with zero response bytes, which is what lets
//     the client retry a pooled connection that died before any response
//     byte arrived without ever re-executing a handler.
//
// Endpoint contract (pinned by tests/test_socket_transport.cpp, identical
// to AsyncTransport): attach() throws on a duplicate name; detach() blocks
// until in-flight executions of that endpoint's handler finish (reentrant
// self-detach returns immediately), after which destroying the handler's
// owner is safe.
//
// Error marshalling: C++ exception objects cannot cross a wire. A handler
// exception or transport-level failure on the responding side comes back
// as a reserved *unaddressed* ErrorReply frame (empty sender/recipient —
// unforgeable, since every real response is addressed by
// address_response()), which the requesting side rethrows as
// NetworkError/TransportError. Peer-level protocol errors are unaffected:
// Peer::handle already returns addressed ErrorReply messages in-band.
//
// Scope: the listener binds 127.0.0.1 only — this transport is the
// loopback/same-host deployment of the stack, not an internet-facing
// server (no TLS, no auth). FrameCodec's strict decoding plus FrameLimits
// keep a malformed or hostile byte stream from crashing the process: a
// connection that sends garbage gets a fault frame and is closed.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "serial/frame_codec.hpp"
#include "transport/link_cost_model.hpp"
#include "transport/message.hpp"
#include "transport/peer_quota.hpp"
#include "transport/transport.hpp"
#include "util/atomic_counter.hpp"
#include "util/sim_clock.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

struct SocketTransportConfig {
  /// Listening port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Worker threads serving send_async's outbound queue.
  std::size_t async_workers = 2;
  /// Cap on queued (not yet executing) send_async requests — the same
  /// overload protection AsyncTransport's max_inbox provides.
  std::size_t max_outbound = 1024;
  enum class Overflow : std::uint8_t {
    Block,   ///< send_async waits for queue space (flow control)
    Reject,  ///< send_async fails the future/callback with TransportError
  };
  Overflow overflow = Overflow::Block;
  /// Decode-side caps handed to the FrameCodec.
  serial::FrameLimits frame_limits{};
  /// Seed of the shared RNG stream behind per-link drop_probability.
  std::uint64_t rng_seed = 42;
  /// Listen backlog of the accept socket.
  int backlog = 64;
  /// Client connect attempts per dial: transient failures (ECONNREFUSED —
  /// the listener not accepting yet — and EAGAIN) are retried with capped
  /// exponential backoff + jitter up to this many attempts, then reported
  /// as NetworkError. 1 disables retrying.
  std::uint32_t connect_attempts = 4;
  /// First retry backoff; doubles per attempt up to the cap below (the
  /// drawn jitter adds up to half the current backoff).
  std::uint64_t connect_backoff_initial_us = 1'000;
  std::uint64_t connect_backoff_max_us = 50'000;
};

/// Real-byte traffic counters (framed bytes through the sockets), kept
/// separate from NetStats so the modelled cost numbers stay comparable
/// with SimNetwork/AsyncTransport while the true wire volume is visible.
struct SocketStats {
  util::RelaxedCounter connections_accepted;
  util::RelaxedCounter connections_dialed;
  util::RelaxedCounter connect_retries;  ///< transient-failure redials
  util::RelaxedCounter frames_sent;
  util::RelaxedCounter frames_received;
  util::RelaxedCounter wire_bytes_sent;
  util::RelaxedCounter wire_bytes_received;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// The port the listener actually bound (resolves ephemeral port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Routes `peer` to a remote transport's listener. Subsequent sends to
  /// `peer` dial 127.0.0.1:`port` instead of this transport's own
  /// listener. Replaces any previous route for the name.
  void add_route(std::string_view peer, std::uint16_t port);
  void remove_route(std::string_view peer);

  void attach(std::string_view name, Handler handler) override;
  void detach(std::string_view name) override;
  [[nodiscard]] bool is_attached(std::string_view name) const noexcept override;

  Message send(const Message& request) override;

  [[nodiscard]] std::future<Message> send_async(Message request) override;
  void send_async(Message request, SendCallback on_complete) override;

  void set_default_link(const LinkConfig& config) noexcept override;
  void set_link(std::string_view from, std::string_view to,
                const LinkConfig& config) override;

  /// Hostile-peer governance, enforced server-side in serve_request()
  /// before the handler runs; a rejection crosses back as an unforgeable
  /// "resource|" fault frame that the requesting side rethrows as
  /// pti::ResourceExhaustedError. Identity is the decoded frame's
  /// declarative sender field (authentication is the ROADMAP's TLS item).
  void set_default_peer_quota(const PeerQuotaConfig& config) override {
    quotas_.set_default(config);
  }
  void set_peer_quota(std::string_view peer, const PeerQuotaConfig& config) override {
    quotas_.set_quota(peer, config);
  }
  [[nodiscard]] PeerQuotaTable* peer_quotas() noexcept override { return &quotas_; }

  [[nodiscard]] const NetStats& stats() const noexcept override { return stats_; }
  void reset_stats() noexcept override { stats_.reset(); }
  [[nodiscard]] util::SimClock& clock() noexcept override { return clock_; }

  [[nodiscard]] const SocketStats& socket_stats() const noexcept { return socket_stats_; }

  /// Blocks until the outbound queue is empty and no handler is executing
  /// — the quiescent point for reading stats/delivered snapshots. Senders
  /// must have stopped submitting for this to terminate.
  void drain();

  /// Outbound queued + executing handler count right now (diagnostic).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Endpoint {
    std::string name;
    std::shared_ptr<Handler> handler;
    std::size_t executing = 0;  ///< in-flight handler executions
  };

  struct OutboundRequest {
    Message request;
    std::promise<Message> promise;
    SendCallback callback;  ///< used instead of the promise when non-null
  };

  /// Resolves the destination listener port for a recipient name; throws
  /// NetworkError when the name has no route and is not attached locally.
  [[nodiscard]] std::uint16_t resolve_port(const std::string& recipient) const;

  /// One synchronous framed exchange over a pooled connection.
  Message exchange_over_wire(const Message& request, std::uint16_t dest_port);

  /// Server side of one decoded request: dispatch + respond. Always
  /// returns a non-empty encoded frame — a dropped or unencodable
  /// response becomes a fault frame. Never close a served request's
  /// connection with zero response bytes: the client's stale-pool retry
  /// treats that as proof the request was never served.
  [[nodiscard]] std::vector<std::uint8_t> serve_request(Message request);

  /// Charges one traversal (modelled stats + virtual clock); false when
  /// the per-link drop probability fired.
  bool charge(const Message& message);

  [[nodiscard]] int dial(std::uint16_t dest_port);
  /// Pops an idle pooled connection (sets `pooled`) or dials a fresh one.
  [[nodiscard]] int checkout_connection(std::uint16_t dest_port, bool& pooled);
  void return_connection(std::uint16_t dest_port, int fd);

  void accept_loop();
  void connection_loop(int fd);
  void outbound_worker_loop();
  void enqueue_outbound(OutboundRequest outbound);
  /// Joins reader threads whose connection already closed (called from
  /// the accept loop so long-lived transports don't accumulate one
  /// finished thread per past connection).
  void reap_finished_connections();
  static void complete(OutboundRequest& outbound, Message response,
                       std::exception_ptr error);

  SocketTransportConfig config_;
  serial::FrameCodec codec_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex endpoints_mutex_;  ///< guards endpoints_
  std::condition_variable endpoints_cv_;  ///< wakes detach()/drain() waiters
  std::map<std::string, std::shared_ptr<Endpoint>, util::ICaseLess> endpoints_;
  std::size_t total_executing_ = 0;

  mutable std::shared_mutex routes_mutex_;  ///< guards routes_
  std::map<std::string, std::uint16_t, util::ICaseLess> routes_;

  mutable std::mutex pool_mutex_;  ///< guards idle_connections_
  std::unordered_map<std::uint16_t, std::vector<int>> idle_connections_;

  mutable std::mutex outbound_mutex_;  ///< guards outbound_/outbound workers
  std::condition_variable outbound_cv_;
  std::deque<OutboundRequest> outbound_;
  std::size_t outbound_executing_ = 0;

  /// One inbound connection: its fd (-1 once the reader closed it, which
  /// also marks the thread reapable) and the reader thread serving it.
  struct ServerConnection {
    int fd = -1;
    std::thread reader;
  };
  mutable std::mutex conn_mutex_;  ///< guards connections_
  std::vector<ServerConnection> connections_;

  LinkCostModel link_model_;
  PeerQuotaTable quotas_;
  NetStats stats_;
  SocketStats socket_stats_;
  std::atomic<std::uint64_t> dial_rng_;  ///< backoff-jitter SplitMix stream
  util::SimClock clock_;
  std::atomic<bool> shutdown_{false};

  std::thread accept_thread_;
  std::vector<std::thread> outbound_workers_;
};

}  // namespace pti::transport
