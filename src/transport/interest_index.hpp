// InterestIndex — the shared inverted interest index every matching path
// goes through (PR 8).
//
// Before this index, interest matching was per-peer lists: each Peer kept
// a vector of interned interest ids and every inbound push scanned it.
// That shape is fine for two peers and collapses at population scale —
// a publish that must find "who is interested in type T" among 10^5-10^6
// subscribers cannot afford to walk every peer. The index inverts the
// relation once, for everyone:
//
//   interest id           -> posting list of SubscriberIds   (fan-out)
//   structural fingerprint-> interest ids in that bucket     (implicit-
//                            conformance/equivalence candidates)
//   SubscriberId          -> declaration-ordered interest entries (the
//                            receive-path scan Peer used to own)
//
// One instance is shared by every peer of a universe (AssemblyHub owns
// the real transports' instance; the megasim scenario owns its own), so
// the simulator and the real transports exercise ONE matching engine.
//
// Concurrency contract (the epoch invariant):
//  * Mutations — add/remove_subscriber, add/remove_interest — take the
//    interest's shard lock (and the subscriber mutex) exclusively. They
//    are append-mostly: posting lists grow in place; removal tombstones;
//    compaction and copy-on-write snapshots RETIRE the superseded storage
//    through a util::EpochManager instead of freeing it.
//  * Snapshot reads — interests_of(), match_first(), collect_subscribers(),
//    equivalence_candidates() — touch only atomically published immutable
//    snapshots (a directory of chunks with a published count, or a COW
//    vector). Readers hold an EpochManager::Pin for as long as they use a
//    snapshot; the three shipped transports already pin per message
//    exchange, and match_first()/interests_of() callers outside a
//    transport handler must pin themselves. A pinned reader can therefore
//    never observe freed memory, no matter how many subscribes,
//    unsubscribes and compactions run concurrently.
//  * Reads are weakly consistent by design: a collect that overlaps a
//    subscribe/unsubscribe may or may not include the affected entry —
//    exactly the guarantee a distributed interest registry can offer.
//
// Determinism: posting lists preserve insertion order (compaction keeps
// relative order), subscriber ids are dense and reused LIFO, and every
// "all interests" view is handed out sorted by interned id — so a
// deterministic caller (the megasim) gets byte-identical iteration from
// byte-identical histories.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "util/epoch.hpp"
#include "util/interning.hpp"

namespace pti::transport {

/// Dense identity of one subscriber (peer) within one InterestIndex.
/// Issued by add_subscriber(); freed ids are reused.
using SubscriberId = std::uint32_t;
inline constexpr SubscriberId kNoSubscriber = 0xFFFFFFFFu;

/// One registered interest of one subscriber: the interned qualified name
/// of the interest type plus its structural fingerprint (the bucket key
/// for implicit-conformance candidates).
struct InterestEntry {
  util::InternedName interest;
  std::uint64_t fingerprint = 0;
};

class InterestIndex {
 public:
  /// `epochs` is the manager superseded storage retires through; the
  /// process-global manager when null.
  explicit InterestIndex(util::EpochManager* epochs = nullptr);
  ~InterestIndex();
  InterestIndex(const InterestIndex&) = delete;
  InterestIndex& operator=(const InterestIndex&) = delete;

  // --- subscriber lifecycle --------------------------------------------

  /// Issues a dense subscriber id (reusing freed ids, LIFO).
  [[nodiscard]] SubscriberId add_subscriber();
  /// Unregisters every interest of `sub` and frees the id for reuse.
  void remove_subscriber(SubscriberId sub);
  [[nodiscard]] bool is_live(SubscriberId sub) const noexcept;

  // --- interest registration (append-mostly mutations) -----------------

  /// Registers `interest` for `sub` (idempotent per pair). `fingerprint`
  /// is the interest type's structural fingerprint.
  void add_interest(SubscriberId sub, util::InternedName interest, std::uint64_t fingerprint);
  /// Removes one interest of `sub`; returns whether it was registered.
  bool remove_interest(SubscriberId sub, util::InternedName interest);

  // --- snapshot reads (hold an EpochManager::Pin across use) -----------

  /// Declaration-ordered interests of `sub`: an immutable snapshot, valid
  /// for the duration of the caller's Pin (nullptr when none registered).
  [[nodiscard]] const std::vector<InterestEntry>* interests_of(SubscriberId sub) const noexcept;

  /// The receive-path matching engine Peer and the megasim share: the
  /// first interest of `sub`, in declaration order, accepted by `accept`.
  /// Takes its own Pin, so the snapshot outlives concurrent unsubscribes
  /// for the duration of the scan.
  [[nodiscard]] std::optional<InterestEntry> match_first(
      SubscriberId sub, const std::function<bool(const InterestEntry&)>& accept) const;

  /// Appends the live subscribers of `interest` in subscription order;
  /// returns how many were appended. Weakly consistent under concurrent
  /// mutation; exact at quiescent points.
  std::size_t collect_subscribers(util::InternedName interest,
                                  std::vector<SubscriberId>& out) const;

  /// Appends every interest id with at least one subscriber, sorted by id
  /// value (deterministic); returns how many were appended.
  std::size_t collect_interests(std::vector<util::InternedName>& out) const;

  /// Appends the subscribed interests whose structural fingerprint equals
  /// `fingerprint` — the implicit-conformance candidates structurally
  /// identical to a pushed type. A candidate still needs the checker's
  /// verdict (fingerprints are hashes: equal means "almost surely equal").
  std::size_t equivalence_candidates(std::uint64_t fingerprint,
                                     std::vector<util::InternedName>& out) const;

  /// The publish-path fan-out: the union of subscribers over every live
  /// interest accepted by `accept`, sorted and deduplicated into `out`.
  /// `interest_scratch` is caller-owned scratch (cleared here) so a hot
  /// publisher loop allocates nothing once warm. Returns |out|.
  std::size_t collect_matches(const std::function<bool(const InterestEntry&)>& accept,
                              std::vector<SubscriberId>& out,
                              std::vector<util::InternedName>& interest_scratch) const;

  /// The manager snapshot readers must pin — callers outside a transport
  /// handler bracket their use of interests_of()/collect results in an
  /// EpochManager::Pin on exactly this manager.
  [[nodiscard]] util::EpochManager& epochs() const noexcept { return epochs_; }

  // --- observability ----------------------------------------------------

  [[nodiscard]] std::size_t subscriber_count() const noexcept;
  /// Distinct interests with at least one live subscriber.
  [[nodiscard]] std::size_t interest_count() const;
  /// Total live (subscriber, interest) registrations.
  [[nodiscard]] std::size_t entry_count() const noexcept;

 private:
  // ---- lock-free-readable posting list of u32 values -------------------
  //
  // Chunked append-only storage: a Dir holds atomic chunk pointers and a
  // published count; appends write the slot, then publish count with a
  // release store. Removal tombstones the slot. When tombstones dominate,
  // compaction builds a fresh Dir (+chunks) preserving order and retires
  // the old through the epoch manager; growth copies chunk POINTERS into
  // a larger Dir and retires only the old Dir shell.
  class PostingList {
   public:
    static constexpr std::uint32_t kChunkSize = 128;
    static constexpr std::uint32_t kTombstone = 0xFFFFFFFFu;

    PostingList() = default;
    ~PostingList();
    PostingList(const PostingList&) = delete;
    PostingList& operator=(const PostingList&) = delete;

    /// Mutations: caller holds the owning shard's exclusive lock.
    void append(std::uint32_t value, util::EpochManager& em);
    bool erase(std::uint32_t value, util::EpochManager& em);

    /// Snapshot read (caller pinned): appends live values in insertion
    /// order; returns how many were appended.
    std::size_t collect(std::vector<std::uint32_t>& out) const;
    /// Snapshot read (caller pinned): first live value accepted by `fn`.
    void for_each(const std::function<bool(std::uint32_t)>& fn) const;

    [[nodiscard]] std::uint32_t live() const noexcept {
      return live_.load(std::memory_order_relaxed);
    }

   private:
    struct Chunk {
      std::array<std::atomic<std::uint32_t>, kChunkSize> slots;
    };
    struct Dir {
      explicit Dir(std::uint32_t chunk_capacity);
      ~Dir();
      std::uint32_t chunk_capacity;
      /// Slots published to readers (always <= filled chunk space).
      std::atomic<std::uint32_t> count{0};
      /// Whether ~Dir owns (frees) the chunks — set on the CURRENT dir
      /// and on compaction-retired dirs; growth-retired dirs share their
      /// chunks with the successor and must not free them.
      bool owns_chunks = true;
      std::unique_ptr<std::atomic<Chunk*>[]> chunks;
    };

    [[nodiscard]] Dir* ensure_capacity(std::uint32_t needed_slots, util::EpochManager& em);
    void compact(util::EpochManager& em);

    std::atomic<Dir*> dir_{nullptr};
    std::atomic<std::uint32_t> live_{0};
    std::uint32_t tombstones_ = 0;  ///< mutator-side only (under shard lock)
  };

  // ---- inverted map + fingerprint buckets, sharded by interest id ------

  struct Posting {
    std::uint64_t fingerprint = 0;
    PostingList subscribers;
  };

  static constexpr std::size_t kShardCount = 16;
  struct Shard {
    mutable std::shared_mutex mutex;
    /// interest id -> posting. Append-only: a posting whose last
    /// subscriber leaves stays (empty) so readers never hold a dangling
    /// Posting*; churn re-adding the interest reuses it.
    std::unordered_map<util::InternedName, std::unique_ptr<Posting>> postings;
  };
  struct BucketShard {
    mutable std::shared_mutex mutex;
    /// structural fingerprint -> interest ids currently subscribed.
    std::unordered_map<std::uint64_t, std::unique_ptr<PostingList>> buckets;
  };

  [[nodiscard]] static std::size_t shard_of(util::InternedName interest) noexcept {
    return (interest.value() * 0x9E3779B9u >> 16) & (kShardCount - 1);
  }
  [[nodiscard]] static std::size_t bucket_shard_of(std::uint64_t fp) noexcept {
    return static_cast<std::size_t>((fp ^ (fp >> 32)) & (kShardCount - 1));
  }

  /// Posting for `interest`, or nullptr. Shared shard lock for the map
  /// probe only; the returned pointer is stable (postings are append-only).
  [[nodiscard]] const Posting* find_posting(util::InternedName interest) const;

  /// Adds/removes `interest` to its fingerprint bucket. Called AFTER the
  /// interest's posting shard lock has been released (all writers are
  /// serialized by subscriber_mutex_, which orders bucket membership
  /// transitions); takes the bucket shard lock inside. No shard mutex is
  /// ever held while acquiring another — there is no lock nesting below
  /// subscriber_mutex_.
  void bucket_add(std::uint64_t fingerprint, util::InternedName interest);
  void bucket_remove(std::uint64_t fingerprint, util::InternedName interest);

  // ---- subscriber slots (dense ids, chunked stable storage) ------------

  static constexpr std::uint32_t kSlotChunkSize = 1024;
  static constexpr std::uint32_t kMaxSlotChunks = 4096;  ///< 4M subscribers
  struct SubscriberSlot {
    /// COW snapshot of the declaration-ordered interests; retired on
    /// every update. nullptr == no interests.
    std::atomic<const std::vector<InterestEntry>*> interests{nullptr};
    std::atomic<bool> live{false};
  };
  struct SlotChunk {
    std::array<SubscriberSlot, kSlotChunkSize> slots;
  };

  [[nodiscard]] SubscriberSlot* slot_of(SubscriberId sub) const noexcept;

  util::EpochManager& epochs_;
  std::array<Shard, kShardCount> shards_;
  std::array<BucketShard, kShardCount> bucket_shards_;

  mutable std::mutex subscriber_mutex_;
  std::array<std::atomic<SlotChunk*>, kMaxSlotChunks> slot_chunks_{};
  std::uint32_t slot_high_water_ = 0;     ///< under subscriber_mutex_
  std::vector<SubscriberId> free_ids_;    ///< under subscriber_mutex_
  std::atomic<std::size_t> subscribers_{0};
  std::atomic<std::size_t> entries_{0};
};

}  // namespace pti::transport
