// Per-peer protocol counters — the observable quantities behind the
// paper's "optimistic transport protocol saves network resources" claim.
//
// Counters are relaxed atomics (util::RelaxedCounter): with a concurrent
// transport many worker threads bump one peer's stats at once, and tests
// and monitors read them while traffic flows. Each counter is torn-free
// and monotone; cross-counter consistency (e.g. delivered + rejected ==
// received) holds at quiescent points — after the transport drained and
// the sender threads joined.
#pragma once

#include <string>

#include "util/atomic_counter.hpp"

namespace pti::transport {

struct ProtocolStats {
  // sender side
  util::RelaxedCounter objects_sent;
  util::RelaxedCounter typeinfo_served;
  util::RelaxedCounter code_served;

  // receiver side
  util::RelaxedCounter objects_received;
  util::RelaxedCounter objects_delivered;    ///< matched an interest, made usable
  util::RelaxedCounter objects_rejected;     ///< no conformant interest — no code download
  util::RelaxedCounter typeinfo_requests;    ///< description round trips initiated
  util::RelaxedCounter code_requests;        ///< assembly downloads initiated
  util::RelaxedCounter typeinfo_cache_hits;  ///< pushes fully served from known descriptions
  util::RelaxedCounter code_cache_hits;      ///< pushes needing no assembly download

  // session layer
  util::RelaxedCounter session_pushes;        ///< SessionPush messages received
  util::RelaxedCounter session_verdict_hits;  ///< pushes decided from the verdict cache
  util::RelaxedCounter session_intros;        ///< inline type intros learned
  util::RelaxedCounter session_resets;        ///< Reset acks issued (receiver side)
  util::RelaxedCounter session_retries;       ///< replays after a Reset (sender side)
  util::RelaxedCounter session_batches;       ///< SessionBatch frames received
  util::RelaxedCounter session_intro_skips;   ///< intro descriptions elided (sender side)

  void reset() noexcept {
    objects_sent = 0;
    typeinfo_served = 0;
    code_served = 0;
    objects_received = 0;
    objects_delivered = 0;
    objects_rejected = 0;
    typeinfo_requests = 0;
    code_requests = 0;
    typeinfo_cache_hits = 0;
    code_cache_hits = 0;
    session_pushes = 0;
    session_verdict_hits = 0;
    session_intros = 0;
    session_resets = 0;
    session_retries = 0;
    session_batches = 0;
    session_intro_skips = 0;
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace pti::transport
