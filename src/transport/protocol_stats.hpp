// Per-peer protocol counters — the observable quantities behind the
// paper's "optimistic transport protocol saves network resources" claim.
#pragma once

#include <cstdint>
#include <string>

namespace pti::transport {

struct ProtocolStats {
  // sender side
  std::uint64_t objects_sent = 0;
  std::uint64_t typeinfo_served = 0;
  std::uint64_t code_served = 0;

  // receiver side
  std::uint64_t objects_received = 0;
  std::uint64_t objects_delivered = 0;   ///< matched an interest, made usable
  std::uint64_t objects_rejected = 0;    ///< no conformant interest — no code download
  std::uint64_t typeinfo_requests = 0;   ///< description round trips initiated
  std::uint64_t code_requests = 0;       ///< assembly downloads initiated
  std::uint64_t typeinfo_cache_hits = 0; ///< pushes fully served from known descriptions
  std::uint64_t code_cache_hits = 0;     ///< pushes needing no assembly download

  void reset() noexcept { *this = {}; }

  [[nodiscard]] std::string summary() const;
};

}  // namespace pti::transport
