// LinkCostModel — the shared link-configuration + drop/cost core of the
// concurrent transports (AsyncTransport, SocketTransport): the default
// link plus per-directed-link overrides behind a shared_mutex, and one
// lock-free SplitMix64 stream behind per-link drop_probability. Both
// transports delegate here so their cost models cannot diverge.
// SimNetwork keeps its own single-threaded deterministic variant
// (util::Rng draws).
//
// Deliberately NOT part of transport.hpp: the seam header is included by
// every layer above src/transport/, none of which needs this machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>

#include "transport/transport.hpp"

namespace pti::transport {

class LinkCostModel {
 public:
  explicit LinkCostModel(std::uint64_t rng_seed) noexcept : rng_state_(rng_seed) {}

  void set_default_link(const LinkConfig& config) noexcept;
  void set_link(std::string_view from, std::string_view to, const LinkConfig& config);
  [[nodiscard]] LinkConfig link_for(std::string_view from, std::string_view to) const;

  /// Charges one traversal of `message` against `stats`/`clock`; false
  /// when the link's drop probability fired (the drop is counted).
  bool charge(const Message& message, NetStats& stats, util::SimClock& clock);

 private:
  [[nodiscard]] double next_uniform() noexcept;

  mutable std::shared_mutex mutex_;  ///< guards links_/default_link_
  std::unordered_map<std::uint64_t, LinkConfig> links_;
  LinkConfig default_link_;
  std::atomic<std::uint64_t> rng_state_;
};

}  // namespace pti::transport
