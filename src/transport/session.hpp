// SessionTable — per-peer-pair protocol session state, the round-trip
// killer behind ROADMAP's "steady-state push is one exchange".
//
// One table lives inside each session-mode Peer and holds both directions:
//
//   * outbound (this peer as sender): per target peer, a session token and
//     a type-name → wire-id map. Wire ids are allocated at *plan* time (so
//     concurrent sends to the same target never collide) but marked
//     "introduced" only when the receiver acknowledged the push that
//     carried the intro — a quota refusal or transport failure leaves the
//     type un-introduced and the next push simply re-sends the intro under
//     the same wire id (receiver-side learning is idempotent).
//
//   * inbound (this peer as receiver): per sender peer, the mirror wire-id
//     → TypeInfoEntry map plus a conformance verdict cache keyed by the
//     root wire id. A cached verdict is only served when (a) the stored
//     envelope type set matches exactly, and (b) the table's invalidation
//     generation has not moved since the verdict was stored. add_interest
//     and governor sweeps bump the generation, so sessions never serve a
//     verdict computed against a stale interest set or evicted cache
//     state — they re-validate instead.
//
// Invalidation contract (the reclamation invariant): sessions own every
// string they hold (type names, descriptions' provenance, matched interest
// names) — nothing here pins a SymbolTable entry or a ConformanceCache
// slot, so epoch reclamation proceeds underneath without coordination;
// correctness is preserved by the generation check alone.
//
// Thread safety: all methods are safe to call concurrently. The two
// directions use separate mutexes; no lock is ever held across a network
// call (callers plan → send → commit in separate steps).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serial/envelope.hpp"
#include "transport/message.hpp"
#include "util/interning.hpp"

namespace pti::transport {

struct SessionConfig {
  /// Receiver-side cap on concurrently remembered sender sessions; the
  /// least recently used session is evicted when a new sender arrives at
  /// the cap (the evicted sender sees one Reset and replays with intros).
  std::size_t max_peer_sessions = 256;
  /// Sender-side batching window: async session pushes to the same
  /// recipient queue up and flush as one SessionBatch frame once this many
  /// are pending (or earlier — a synchronous send, an explicit flush(), or
  /// peer teardown drains the window). 1, the default, disables batching:
  /// every push is its own framed exchange, exactly the PR-9 protocol.
  std::size_t max_batch = 1;
};

class SessionTable {
 public:
  explicit SessionTable(SessionConfig config = {}) : config_(config) {}

  // ---- sender side -------------------------------------------------

  struct SendPlan {
    std::uint64_t token = 0;
    /// Wire ids parallel to the names passed to plan_send/plan_extras.
    std::vector<std::uint32_t> wire_ids;
    /// Indexes into the names whose type still needs an inline intro.
    std::vector<std::size_t> fresh;
  };

  /// Plans a push of `names` (envelope type set, root first) to `to`:
  /// binds wire ids (allocating for unseen names) and reports which names
  /// the receiver has not acknowledged yet.
  SendPlan plan_send(const std::string& to, const std::vector<std::string>& names);

  /// Same binding for extra closure names riding along under an existing
  /// plan's token (supertypes, field types shipped so the receiver's
  /// conformance check needs no nested fetch).
  SendPlan plan_extras(const std::string& to, std::uint64_t token,
                       const std::vector<std::string>& names);

  /// Marks the planned names as introduced — call only after the receiver
  /// acknowledged the push with SessionStatus::Ok. A stale token (the
  /// session was reset while the push was in flight) commits nothing.
  void commit_send(const std::string& to, std::uint64_t token,
                   const std::vector<std::string>& names,
                   const std::vector<std::size_t>& fresh);

  /// Drops all outbound state for `to` (on SessionStatus::Reset): the next
  /// plan_send starts a new token with every type fresh.
  void reset_peer(const std::string& to);

  // ---- receiver side -----------------------------------------------

  /// Ensures an inbound session for (`from`, `token`) exists, replacing
  /// any session under a different token and evicting the least recently
  /// used sender at the cap.
  void open_inbound(const std::string& from, std::uint64_t token);

  /// Records one inline intro (idempotent; later intros for a known wire
  /// id win, which concurrent duplicate intros make identical anyway).
  /// Returns true when the wire id was not known yet.
  bool learn(const std::string& from, std::uint64_t token, const SessionIntro& intro);

  /// Resolves a push's wire ids to owned TypeInfoEntry copies. Returns
  /// false — the caller must reply Reset — when the session is gone, the
  /// token is stale, or any wire id is unknown.
  bool resolve(const std::string& from, std::uint64_t token,
               const std::vector<std::uint32_t>& wire_types,
               std::vector<serial::TypeInfoEntry>& out) const;

  /// A protocol-level conformance verdict cached per root wire id.
  struct Verdict {
    bool conformant = false;
    bool code_ready = false;  ///< every envelope type's assembly is loaded
    std::string matched_interest;
    util::InternedName matched_id;
    std::string detail;  ///< rejection reason when !conformant
    std::vector<std::uint32_t> wire_types;
  };

  /// Serves a cached verdict for the exact envelope type set, provided it
  /// was stored under the current invalidation generation.
  [[nodiscard]] std::optional<Verdict> find_verdict(
      const std::string& from, std::uint64_t token, std::uint32_t root,
      const std::vector<std::uint32_t>& wire_types) const;

  /// Stores a verdict computed while the generation was `gen`; discarded
  /// when the generation moved meanwhile (compare-and-store).
  void store_verdict(const std::string& from, std::uint64_t token, std::uint32_t root,
                     Verdict verdict, std::uint64_t gen);

  /// Invalidation: interest-set changes and governor sweeps call this;
  /// every cached verdict becomes unservable and is recomputed on next use.
  void invalidate_verdicts() noexcept {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  // ---- introspection (tests/diagnostics) ---------------------------

  [[nodiscard]] std::size_t outbound_sessions() const;
  [[nodiscard]] std::size_t inbound_sessions() const;

 private:
  struct OutboundSession {
    std::uint64_t token = 0;
    std::uint32_t next_wire_id = 1;  ///< 0 is reserved (never bound)
    struct Binding {
      std::uint32_t wire_id = 0;
      bool introduced = false;
    };
    std::unordered_map<std::string, Binding> bindings;
  };

  struct InboundSession {
    std::uint64_t token = 0;
    std::uint64_t last_use = 0;
    std::unordered_map<std::uint32_t, serial::TypeInfoEntry> wire_map;
    struct StoredVerdict {
      Verdict verdict;
      std::uint64_t generation = 0;
    };
    std::unordered_map<std::uint32_t, StoredVerdict> verdicts;
  };

  SessionConfig config_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> next_token_{1};

  mutable std::mutex outbound_mutex_;
  std::unordered_map<std::string, OutboundSession> outbound_;

  mutable std::mutex inbound_mutex_;
  std::uint64_t use_clock_ = 0;  ///< monotone LRU stamp, under inbound_mutex_
  std::unordered_map<std::string, InboundSession> inbound_;
};

}  // namespace pti::transport
