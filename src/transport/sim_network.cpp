#include "transport/sim_network.hpp"
#include "util/epoch.hpp"

#include <memory>

namespace pti::transport {

std::unique_ptr<Transport> make_sim_network(std::uint64_t rng_seed) {
  return std::make_unique<SimNetwork>(rng_seed);
}

void SimNetwork::attach(std::string_view name, Handler handler) {
  if (!handler) throw TransportError("cannot attach a null handler");
  if (name.empty()) throw TransportError("endpoint name cannot be empty");
  const auto [it, inserted] =
      handlers_.emplace(std::string(name), std::make_shared<Handler>(std::move(handler)));
  if (!inserted) {
    throw TransportError("endpoint '" + std::string(name) +
                         "' is already attached (detach it first)");
  }
}

void SimNetwork::detach(std::string_view name) {
  const auto it = handlers_.find(name);
  if (it != handlers_.end()) handlers_.erase(it);
}

bool SimNetwork::is_attached(std::string_view name) const noexcept {
  return handlers_.find(name) != handlers_.end();
}

void SimNetwork::set_link(std::string_view from, std::string_view to,
                          const LinkConfig& config) {
  util::SymbolTable& symbols = util::SymbolTable::global();
  links_[util::pair_key(symbols.intern(from), symbols.intern(to))] = config;
}

void SimNetwork::partition(std::string_view from, std::string_view to) {
  util::SymbolTable& symbols = util::SymbolTable::global();
  partitions_.insert(util::pair_key(symbols.intern(from), symbols.intern(to)));
}

void SimNetwork::heal_partition(std::string_view from, std::string_view to) {
  const util::SymbolTable& symbols = util::SymbolTable::global();
  const util::InternedName from_id = symbols.find(from);
  const util::InternedName to_id = symbols.find(to);
  if (from_id.valid() && to_id.valid()) {
    partitions_.erase(util::pair_key(from_id, to_id));
  }
}

bool SimNetwork::is_partitioned(std::string_view from,
                                std::string_view to) const noexcept {
  if (partitions_.empty()) return false;
  const util::SymbolTable& symbols = util::SymbolTable::global();
  const util::InternedName from_id = symbols.find(from);
  if (!from_id.valid()) return false;
  const util::InternedName to_id = symbols.find(to);
  if (!to_id.valid()) return false;
  return partitions_.contains(util::pair_key(from_id, to_id));
}

const LinkConfig& SimNetwork::link_for(std::string_view from,
                                       std::string_view to) const noexcept {
  if (links_.empty()) return default_link_;
  // Peer names on an overridden link were interned by set_link; a name the
  // symbol table has never seen cannot key an override.
  const util::SymbolTable& symbols = util::SymbolTable::global();
  const util::InternedName from_id = symbols.find(from);
  if (!from_id.valid()) return default_link_;
  const util::InternedName to_id = symbols.find(to);
  if (!to_id.valid()) return default_link_;
  const auto it = links_.find(util::pair_key(from_id, to_id));
  return it == links_.end() ? default_link_ : it->second;
}

bool SimNetwork::charge(const Message& message) {
  ++seen_;
  if (const auto it = scheduled_drops_.find(seen_); it != scheduled_drops_.end()) {
    scheduled_drops_.erase(it);
    ++stats_.drops;
    return false;
  }
  if (forced_drops_ > 0) {
    --forced_drops_;
    ++stats_.drops;
    return false;
  }
  if (is_partitioned(message.sender, message.recipient)) {
    ++stats_.drops;
    return false;
  }
  const LinkConfig& link = link_for(message.sender, message.recipient);
  if (link.drop_probability > 0.0 && rng_.next_bool(link.drop_probability)) {
    ++stats_.drops;
    return false;
  }
  charge_traversal(link, message.wire_size(), stats_, clock_);
  return true;
}

Message SimNetwork::send(const Message& request) {
  const auto it = handlers_.find(request.recipient);
  if (it == handlers_.end()) {
    throw NetworkError("no peer attached as '" + request.recipient + "'");
  }
  // Keep the handler alive across the call: the handler may detach itself
  // (or another endpoint may detach it via a nested send) mid-execution.
  const std::shared_ptr<Handler> handler = it->second;
  // Epoch pin spanning admission + handler: everything this exchange reads
  // from the lock-free stores stays valid even while a ResourceGovernor
  // sweeps (see util/epoch.hpp).
  const util::EpochManager::Pin pin(util::EpochManager::global());
  PeerQuotaTable::InflightGuard inflight;
  if (quotas_.enabled()) {
    // Admission before any charge or handler work: an over-budget sender
    // costs the admission check, nothing more. Violations propagate as
    // pti::ResourceExhaustedError straight to the (in-process) caller.
    quotas_.admit_frame(request.sender, request.wire_size(), clock_.now_ns());
    inflight = quotas_.acquire_inflight(request.sender);
    quotas_.charge_new_names(request.sender, count_new_names(request));
  }
  if (!charge(request)) {
    throw NetworkError("message " + std::string(request.kind_name()) + " from '" +
                       request.sender + "' to '" + request.recipient + "' was dropped");
  }
  Message response = (*handler)(request);
  address_response(request, response);
  if (!charge(response)) {
    throw NetworkError("response " + std::string(response.kind_name()) + " from '" +
                       response.sender + "' was dropped");
  }
  return response;
}

}  // namespace pti::transport
