// AsyncTransport — the thread-pool-backed implementation of the
// transport::Transport seam (the last single-threaded slice of the stack
// after PR 2 made the stores and PR 3 cut the interface).
//
// Shape:
//   * every attached endpoint owns an inbox queue; send_async() enqueues
//     the request and returns immediately (future or completion-callback);
//     a pool of worker threads drains the inboxes and runs the endpoint
//     handlers, so N peers process inbound traffic concurrently;
//   * send() remains the synchronous exchange: it runs the recipient's
//     handler inline on the calling thread (like SimNetwork), which keeps
//     nested mid-protocol round trips deadlock-free no matter how few
//     workers exist — a handler's sync sends never occupy a pool slot;
//   * backpressure: each inbox holds at most `max_inbox` pending requests;
//     an overflowing send_async either blocks until space frees (Block,
//     the default — flow control) or fails the future/callback with
//     TransportError (Reject). Block never applies to handler context:
//     a send_async issued from inside a handler (or completion callback)
//     fails fast on a full inbox instead of parking the worker on space
//     only workers can free — so handlers may always send_async safely;
//   * cost accounting is the same per-link latency/bandwidth model as
//     SimNetwork, charged on a virtual clock with relaxed atomic advances:
//     the final clock reading and byte counters are the deterministic sum
//     of per-message costs regardless of thread interleaving.
//
// Lifetime rules (see docs/API.md):
//   * attach() throws on a duplicate name; detach() blocks until in-flight
//     executions of that endpoint's handler have finished — so returning
//     from detach() makes destroying the handler's owner (a Peer) safe —
//     unless called from inside that very handler, in which case it only
//     marks the endpoint (no new deliveries) and returns;
//   * queued-but-undelivered requests of a detached endpoint fail their
//     futures/callbacks with NetworkError;
//   * destroy the transport only after detaching (or destroying) the
//     peers attached to it; the destructor fails whatever is still queued
//     and joins the workers.
//
// Fault injection stays on SimNetwork: this transport is about real
// concurrency, and probabilistic drops under racing threads would not be
// schedule-deterministic anyway. Per-link drop_probability is honoured
// (each message draws from one shared atomic RNG stream), but tests that
// need a *specific* message killed should use SimNetwork's schedules.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "transport/link_cost_model.hpp"
#include "transport/message.hpp"
#include "transport/peer_quota.hpp"
#include "transport/transport.hpp"
#include "util/sim_clock.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

struct AsyncTransportConfig {
  /// Worker threads draining the endpoint inboxes.
  std::size_t workers = 2;
  /// Per-endpoint cap on queued (not yet executing) requests.
  std::size_t max_inbox = 1024;
  enum class Overflow : std::uint8_t {
    Block,   ///< send_async waits for inbox space (flow control)
    Reject,  ///< send_async fails the future/callback with TransportError
  };
  Overflow overflow = Overflow::Block;
  /// Seed of the shared RNG stream behind per-link drop_probability.
  std::uint64_t rng_seed = 42;
};

class AsyncTransport final : public Transport {
 public:
  explicit AsyncTransport(AsyncTransportConfig config = {});
  ~AsyncTransport() override;
  AsyncTransport(const AsyncTransport&) = delete;
  AsyncTransport& operator=(const AsyncTransport&) = delete;

  void attach(std::string_view name, Handler handler) override;
  void detach(std::string_view name) override;
  [[nodiscard]] bool is_attached(std::string_view name) const noexcept override;

  Message send(const Message& request) override;

  /// Enqueues into the recipient's inbox and returns immediately; a worker
  /// performs the exchange. All failures — unknown recipient, drop,
  /// rejected backpressure, detach before delivery — surface through the
  /// future/callback, never as a throw from send_async itself.
  [[nodiscard]] std::future<Message> send_async(Message request) override;
  void send_async(Message request, SendCallback on_complete) override;

  void set_default_link(const LinkConfig& config) noexcept override;
  void set_link(std::string_view from, std::string_view to,
                const LinkConfig& config) override;

  /// Hostile-peer governance: enforced in the exchange core, so both the
  /// synchronous path and the worker-drained inboxes reject identically.
  /// Violations surface as pti::ResourceExhaustedError — thrown from
  /// send(), failing the future/callback for send_async().
  void set_default_peer_quota(const PeerQuotaConfig& config) override {
    quotas_.set_default(config);
  }
  void set_peer_quota(std::string_view peer, const PeerQuotaConfig& config) override {
    quotas_.set_quota(peer, config);
  }
  [[nodiscard]] PeerQuotaTable* peer_quotas() noexcept override { return &quotas_; }

  [[nodiscard]] const NetStats& stats() const noexcept override { return stats_; }
  void reset_stats() noexcept override { stats_.reset(); }
  [[nodiscard]] util::SimClock& clock() noexcept override { return clock_; }

  /// Blocks until every inbox is empty and no handler is executing — the
  /// quiescent point at which reading delivered()/stats() snapshots is
  /// exact. Senders must have stopped submitting for this to terminate.
  void drain();

  /// Queued + executing exchanges right now (diagnostic).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Pending {
    Message request;
    std::promise<Message> promise;
    SendCallback callback;  ///< used instead of the promise when non-null
  };

  // Detachment is encoded by erasure from endpoints_ (senders re-find by
  // name; workers check the inbox), so the struct carries no flag for it.
  struct Endpoint {
    std::string name;
    std::shared_ptr<Handler> handler;
    std::deque<Pending> inbox;
    std::size_t executing = 0;  ///< in-flight handler executions
  };

  /// Charges one traversal (stats + virtual clock); false when dropped.
  bool charge(const Message& message);

  /// The request/response exchange core shared by send() and the workers.
  /// The handler is kept alive by the caller's shared_ptr copy.
  Message exchange(const Handler& handler, const Message& request);

  static void complete(Pending& pending, Message response, std::exception_ptr error);
  void enqueue(Pending pending);
  void worker_loop();

  AsyncTransportConfig config_;

  mutable std::mutex mutex_;  ///< guards endpoints_/ready_/counters/shutdown_
  std::condition_variable work_cv_;   ///< wakes workers
  std::condition_variable state_cv_;  ///< wakes backpressure/detach/drain waiters
  std::map<std::string, std::shared_ptr<Endpoint>, util::ICaseLess> endpoints_;
  std::deque<std::shared_ptr<Endpoint>> ready_;  ///< endpoints with queued work
  std::size_t total_queued_ = 0;
  std::size_t total_executing_ = 0;
  bool shutdown_ = false;

  LinkCostModel link_model_;
  PeerQuotaTable quotas_;
  NetStats stats_;
  util::SimClock clock_;

  std::vector<std::thread> workers_;
};

}  // namespace pti::transport
