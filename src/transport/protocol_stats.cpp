#include "transport/protocol_stats.hpp"

#include <sstream>

namespace pti::transport {

std::string ProtocolStats::summary() const {
  std::ostringstream out;
  out << "sent=" << objects_sent << " received=" << objects_received
      << " delivered=" << objects_delivered << " rejected=" << objects_rejected
      << " typeinfo_req=" << typeinfo_requests << " code_req=" << code_requests
      << " typeinfo_cache_hits=" << typeinfo_cache_hits
      << " code_cache_hits=" << code_cache_hits
      << " session_pushes=" << session_pushes
      << " session_verdict_hits=" << session_verdict_hits
      << " session_intros=" << session_intros << " session_resets=" << session_resets
      << " session_retries=" << session_retries
      << " session_batches=" << session_batches
      << " session_intro_skips=" << session_intro_skips;
  return out.str();
}

}  // namespace pti::transport
