#include "transport/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <variant>

#include "transport/transport_error.hpp"
#include "util/epoch.hpp"

namespace pti::transport {

namespace {

/// Endpoints whose handler is executing on THIS thread, innermost last —
/// lets detach() recognize the reentrant case (handler detaching itself)
/// where waiting for executing == 0 would deadlock.
thread_local std::vector<const void*> tl_executing_here;

/// True on this transport's own threads (reader/outbound workers). A
/// Block-policy send_async from one of them must fail fast on a full
/// queue instead of parking a thread that the queue needs to drain.
thread_local bool tl_transport_thread = false;

[[nodiscard]] bool executing_here(const void* endpoint) noexcept {
  return std::find(tl_executing_here.begin(), tl_executing_here.end(), endpoint) !=
         tl_executing_here.end();
}

/// Fault-frame reason prefixes: the responding side classifies the failure
/// so the requesting side rethrows the right exception type.
constexpr std::string_view kNetworkFault = "network|";
constexpr std::string_view kTransportFault = "transport|";
constexpr std::string_view kResourceFault = "resource|";

/// A transport-level fault travels as an *unaddressed* ErrorReply frame.
/// Real responses are always addressed by address_response(), so an empty
/// sender+recipient cannot be produced by a handler exchange.
[[nodiscard]] bool is_fault(const Message& message) noexcept {
  return message.sender.empty() && message.recipient.empty() &&
         std::holds_alternative<ErrorReply>(message.payload);
}

/// Fault reasons embed strings the remote peer controls (a decoded
/// recipient name, a handler's e.what()), so they are bounded here: an
/// unbounded reason near max_body_bytes would make the fault frame itself
/// throw FrameError{Oversized}, turning a hostile-but-valid request into
/// an exception on the reader thread instead of a reply. The cap leaves
/// 128 bytes of body budget for the prefix, the truncation marker and the
/// frame's own string/length overhead; together with the constructor's
/// kMinBodyBytes floor this makes fault frames encodable under every
/// constructible FrameLimits — the invariant the client's stale-pool
/// retry rests on.
[[nodiscard]] std::vector<std::uint8_t> encode_fault(const serial::FrameCodec& codec,
                                                     std::string_view prefix,
                                                     std::string_view reason) {
  const std::size_t cap =
      std::min<std::size_t>(4096, codec.limits().max_body_bytes - 128);
  std::string text(prefix);
  if (reason.size() > cap) {
    text.append(reason.substr(0, cap));
    text.append("...[truncated]");
  } else {
    text.append(reason);
  }
  Message fault;
  fault.payload = ErrorReply{std::move(text)};
  return codec.encode(fault);
}

[[noreturn]] void raise_fault(const ErrorReply& fault) {
  const std::string& reason = fault.message;
  if (reason.starts_with(kNetworkFault)) {
    throw NetworkError(reason.substr(kNetworkFault.size()));
  }
  if (reason.starts_with(kTransportFault)) {
    throw TransportError(reason.substr(kTransportFault.size()));
  }
  if (reason.starts_with(kResourceFault)) {
    // Quota rejection on the serving side: re-raise with the same
    // classification (core::ErrorCode::ResourceExhausted) the in-process
    // transports throw, so callers branch identically on any transport.
    throw pti::ResourceExhaustedError(reason.substr(kResourceFault.size()));
  }
  throw TransportError(reason);
}

enum class ReadStatus { Ok, Eof, Error };

/// Reads exactly n bytes (retrying partial reads and EINTR). Eof means the
/// peer closed before the first byte; a close mid-buffer reports Error.
ReadStatus read_exact(int fd, std::uint8_t* buffer, std::size_t n,
                      std::size_t* received = nullptr) noexcept {
  std::size_t got = 0;
  ReadStatus status = ReadStatus::Ok;
  while (got < n) {
    const ssize_t r = ::recv(fd, buffer + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    status = (r == 0 && got == 0) ? ReadStatus::Eof : ReadStatus::Error;
    break;
  }
  if (received) *received = got;
  return status;
}

/// Reads a header-declared body in bounded chunks, growing the buffer
/// only as bytes actually arrive — a hostile header cannot commit
/// max_body_bytes of memory up front by declaring a body it never sends.
[[nodiscard]] bool read_body_bytes(int fd, std::vector<std::uint8_t>& body,
                                   std::size_t n, std::size_t& received) {
  constexpr std::size_t kChunk = 256 * 1024;
  body.clear();
  received = 0;
  while (received < n) {
    const std::size_t step = std::min(kChunk, n - received);
    body.resize(received + step);
    std::size_t step_got = 0;
    const ReadStatus status = read_exact(fd, body.data() + received, step, &step_got);
    received += step_got;
    if (status != ReadStatus::Ok) return false;
  }
  return true;
}

/// Writes all n bytes; MSG_NOSIGNAL keeps a closed peer from raising
/// SIGPIPE (the failure surfaces as an error return instead).
[[nodiscard]] bool write_all(int fd, const std::uint8_t* buffer, std::size_t n) noexcept {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buffer + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

[[nodiscard]] sockaddr_in loopback_address(std::uint16_t port) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(config),
      codec_(config.frame_limits),
      link_model_(config.rng_seed),
      // Decorrelated from the drop stream so enabling backoff jitter never
      // perturbs which messages a drop_probability test kills.
      dial_rng_(config.rng_seed ^ 0x9E3779B97F4A7C15ULL) {
  if (config_.max_outbound == 0) {
    throw TransportError("SocketTransport needs max_outbound >= 1");
  }
  // Fault frames (a prefix + bounded reason) must always be encodable —
  // the protocol never closes a served request's connection with zero
  // response bytes, and a body budget too small to hold a fault would
  // break that. 256 bytes also comfortably fits every fixed-size message.
  static constexpr std::size_t kMinBodyBytes = 256;
  if (config_.frame_limits.max_body_bytes < kMinBodyBytes) {
    throw TransportError("SocketTransport needs frame_limits.max_body_bytes >= " +
                         std::to_string(kMinBodyBytes) +
                         " (fault frames must stay encodable)");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw TransportError(std::string("cannot create listening socket: ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_address(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("cannot listen on 127.0.0.1:" + std::to_string(config_.port) +
                         ": " + reason);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  const std::size_t workers = std::max<std::size_t>(1, config_.async_workers);
  outbound_workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    outbound_workers_.emplace_back([this] { outbound_worker_loop(); });
  }
}

SocketTransport::~SocketTransport() {
  // 1. Stop the outbound side: raise shutdown *under the queue mutex* (a
  //    worker between its predicate check and blocking would otherwise
  //    miss the notification and sleep forever), wake + join the
  //    workers, then fail whatever they never picked up.
  {
    std::unique_lock lock(outbound_mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  outbound_cv_.notify_all();
  for (auto& worker : outbound_workers_) worker.join();
  std::deque<OutboundRequest> orphaned;
  {
    std::unique_lock lock(outbound_mutex_);
    orphaned.swap(outbound_);
  }
  const auto error = std::make_exception_ptr(
      NetworkError("transport destroyed before the message was delivered"));
  for (auto& outbound : orphaned) complete(outbound, Message{}, error);

  // 2. Stop accepting: shutdown() wakes the blocked accept(); the fd is
  //    closed only after the join so the accept thread can never call
  //    accept() on a closed descriptor number that a concurrent dial (or
  //    another transport) may already have reused.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);

  // 3. Kick every live inbound connection so its reader thread unblocks,
  //    then join them (each closes its own fd on the way out).
  {
    std::unique_lock lock(conn_mutex_);
    for (const ServerConnection& connection : connections_) {
      if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
    }
  }
  for (auto& connection : connections_) {
    if (connection.reader.joinable()) connection.reader.join();
  }

  // 4. Drop the idle client connections.
  std::unique_lock lock(pool_mutex_);
  for (auto& [port, fds] : idle_connections_) {
    for (const int fd : fds) ::close(fd);
  }
  idle_connections_.clear();
}

void SocketTransport::add_route(std::string_view peer, std::uint16_t port) {
  std::unique_lock lock(routes_mutex_);
  routes_[std::string(peer)] = port;
}

void SocketTransport::remove_route(std::string_view peer) {
  std::unique_lock lock(routes_mutex_);
  const auto it = routes_.find(peer);
  if (it != routes_.end()) routes_.erase(it);
}

void SocketTransport::attach(std::string_view name, Handler handler) {
  if (!handler) throw TransportError("cannot attach a null handler");
  if (name.empty()) {
    // The empty name is reserved: transport faults travel as *unaddressed*
    // ErrorReply frames, and an endpoint named "" could mint addressed
    // responses that collide with that shape (see is_fault).
    throw TransportError("endpoint name cannot be empty");
  }
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->name = std::string(name);
  endpoint->handler = std::make_shared<Handler>(std::move(handler));
  std::unique_lock lock(endpoints_mutex_);
  const auto [it, inserted] = endpoints_.emplace(endpoint->name, std::move(endpoint));
  if (!inserted) {
    throw TransportError("endpoint '" + std::string(name) +
                         "' is already attached (detach it first)");
  }
}

void SocketTransport::detach(std::string_view name) {
  std::unique_lock lock(endpoints_mutex_);
  const auto it = endpoints_.find(name);
  if (it == endpoints_.end()) return;
  const std::shared_ptr<Endpoint> endpoint = it->second;
  endpoints_.erase(it);
  // Quiescence guarantee: once detach returns, no handler execution is in
  // flight, so the caller may destroy the handler's owner. The reentrant
  // case (a handler detaching its own endpoint) cannot wait for itself;
  // no *new* delivery begins either way.
  if (!executing_here(endpoint.get())) {
    endpoints_cv_.wait(lock, [&] { return endpoint->executing == 0; });
  }
}

bool SocketTransport::is_attached(std::string_view name) const noexcept {
  std::unique_lock lock(endpoints_mutex_);
  return endpoints_.find(name) != endpoints_.end();
}

void SocketTransport::set_default_link(const LinkConfig& config) noexcept {
  link_model_.set_default_link(config);
}

void SocketTransport::set_link(std::string_view from, std::string_view to,
                               const LinkConfig& config) {
  link_model_.set_link(from, to, config);
}

bool SocketTransport::charge(const Message& message) {
  return link_model_.charge(message, stats_, clock_);
}

std::uint16_t SocketTransport::resolve_port(const std::string& recipient) const {
  {
    std::shared_lock lock(routes_mutex_);
    const auto it = routes_.find(recipient);
    if (it != routes_.end()) return it->second;
  }
  {
    std::unique_lock lock(endpoints_mutex_);
    if (endpoints_.find(recipient) != endpoints_.end()) return port_;
  }
  throw NetworkError("no peer attached as '" + recipient + "'");
}

int SocketTransport::dial(std::uint16_t dest_port) {
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, config_.connect_attempts);
  std::uint64_t backoff_us = std::max<std::uint64_t>(1, config_.connect_backoff_initial_us);
  const sockaddr_in addr = loopback_address(dest_port);
  for (std::uint32_t attempt = 1;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      throw NetworkError(std::string("cannot create socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      set_nodelay(fd);
      ++socket_stats_.connections_dialed;
      return fd;
    }
    const int saved_errno = errno;
    const std::string reason = std::strerror(saved_errno);
    ::close(fd);
    // Only transient refusals retry: ECONNREFUSED (listener not accepting
    // yet — e.g. the destination transport is still starting) and EAGAIN
    // (kernel ephemeral-resource pressure). Anything else — unreachable
    // network, bad address — fails the same dial() would have before.
    const bool transient = saved_errno == ECONNREFUSED || saved_errno == EAGAIN;
    if (!transient || attempt >= max_attempts ||
        shutdown_.load(std::memory_order_acquire)) {
      throw NetworkError("cannot connect to 127.0.0.1:" + std::to_string(dest_port) +
                         ": " + reason +
                         (attempt > 1 ? " (after " + std::to_string(attempt) +
                                            " attempts)"
                                      : std::string{}));
    }
    ++socket_stats_.connect_retries;
    // Capped exponential backoff with up to +50% SplitMix jitter, so a
    // herd of clients dialing a restarting server spreads out instead of
    // re-colliding on the same schedule.
    std::uint64_t z = dial_rng_.fetch_add(0x9E3779B97F4A7C15ULL,
                                          std::memory_order_relaxed) +
                      0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    const std::uint64_t jitter_us = backoff_us == 0 ? 0 : z % (backoff_us / 2 + 1);
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us + jitter_us));
    backoff_us = std::min(backoff_us * 2, std::max<std::uint64_t>(
                                              1, config_.connect_backoff_max_us));
  }
}

int SocketTransport::checkout_connection(std::uint16_t dest_port, bool& pooled) {
  {
    std::unique_lock lock(pool_mutex_);
    auto& idle = idle_connections_[dest_port];
    while (!idle.empty()) {
      const int fd = idle.back();
      idle.pop_back();
      // Liveness probe: an idle connection must have nothing to read. EOF
      // or stray bytes mean the server closed (or desynced) it — discard.
      std::uint8_t probe = 0;
      const ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pooled = true;
        return fd;
      }
      ::close(fd);
    }
  }
  pooled = false;
  return dial(dest_port);
}

void SocketTransport::return_connection(std::uint16_t dest_port, int fd) {
  if (shutdown_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  std::unique_lock lock(pool_mutex_);
  idle_connections_[dest_port].push_back(fd);
}

Message SocketTransport::exchange_over_wire(const Message& request,
                                            std::uint16_t dest_port) {
  std::vector<std::uint8_t> frame;
  try {
    frame = codec_.encode(request);
  } catch (const serial::FrameError& e) {
    // The seam's throw set is NetworkError/TransportError; an unencodable
    // request (body or list over FrameLimits) must not leak FrameError
    // out of send(), mirroring the undecodable-response translation below.
    throw TransportError("request " + std::string(request.kind_name()) +
                         " is not encodable: " + e.what());
  }
  for (;;) {
    bool pooled = false;
    const int fd = checkout_connection(dest_port, pooled);
    struct FdGuard {
      int fd;
      bool armed = true;
      ~FdGuard() {
        if (armed) ::close(fd);
      }
    } guard{fd};

    // A pooled connection can die between checkout's liveness probe and
    // its use here (the server closing it races with checkout). The server
    // never closes a connection with zero response bytes after reading a
    // request (served, dropped and faulting requests all answer with at
    // least a fault frame), so a close before the first response byte
    // proves the request was never served: the stale connection is
    // discarded and the exchange retried on another (the pool is finite;
    // once it drains, checkout dials fresh). Only a failure on a freshly
    // dialed connection — or one mid-response, where a retry could
    // re-execute the handler — is reported.
    if (!write_all(fd, frame.data(), frame.size())) {
      if (pooled) continue;
      throw NetworkError("connection to 127.0.0.1:" + std::to_string(dest_port) +
                         " failed while sending " + request.kind_name());
    }
    ++socket_stats_.frames_sent;
    socket_stats_.wire_bytes_sent += frame.size();

    std::array<std::uint8_t, serial::FrameCodec::kHeaderSize> header_bytes{};
    std::size_t header_got = 0;
    const ReadStatus header_status =
        read_exact(fd, header_bytes.data(), header_bytes.size(), &header_got);
    // Received bytes are counted before decoding (and before the failure
    // paths): they moved over the wire whether or not they parse.
    socket_stats_.wire_bytes_received += header_got;
    if (header_status != ReadStatus::Ok) {
      // Retry only a *clean* zero-byte close (Eof): every deliberate
      // server close after reading a request first writes at least a
      // fault frame, so a clean FIN with no response bytes proves the
      // request was never served. An abort (ECONNRESET and friends) gives
      // no such proof — the server may have died mid-handler — so it is
      // reported, never retried.
      if (pooled && header_status == ReadStatus::Eof) continue;
      throw NetworkError("connection closed before a response to " +
                         std::string(request.kind_name()) +
                         " arrived (response dropped?)");
    }
    Message response;
    try {
      const serial::FrameCodec::Header header = codec_.decode_header(header_bytes);
      std::vector<std::uint8_t> body;
      std::size_t body_got = 0;
      const bool body_ok = read_body_bytes(fd, body, header.body_bytes, body_got);
      socket_stats_.wire_bytes_received += body_got;  // partial reads count too
      if (!body_ok) {
        throw NetworkError("connection closed mid-response to " +
                           std::string(request.kind_name()));
      }
      ++socket_stats_.frames_received;
      response = codec_.decode_body(header, body);
    } catch (const serial::FrameError& e) {
      // The peer is not speaking our protocol (version skew, corruption):
      // surface it through the documented transport error family instead
      // of leaking serial::FrameError out of send().
      throw NetworkError("undecodable response frame from 127.0.0.1:" +
                         std::to_string(dest_port) + ": " + e.what());
    }

    if (is_fault(response)) {
      // Fault frames may follow a desynced stream; never pool the connection.
      raise_fault(std::get<ErrorReply>(response.payload));
    }
    guard.armed = false;
    return_connection(dest_port, fd);
    return response;
  }
}

Message SocketTransport::send(const Message& request) {
  if (shutdown_.load(std::memory_order_acquire)) {
    throw TransportError("transport is shutting down");
  }
  // Epoch pin for the whole exchange: the link-cost model and routing read
  // interned names lock-free, and a ResourceGovernor may be sweeping
  // concurrently (see util/epoch.hpp).
  const util::EpochManager::Pin pin(util::EpochManager::global());
  const std::uint16_t dest_port = resolve_port(request.recipient);
  if (!charge(request)) {
    throw NetworkError("message " + std::string(request.kind_name()) + " from '" +
                       request.sender + "' to '" + request.recipient + "' was dropped");
  }
  return exchange_over_wire(request, dest_port);
}

std::vector<std::uint8_t> SocketTransport::serve_request(Message request) {
  // Epoch pin spanning admission + handler: everything this request reads
  // from the lock-free stores stays valid even while a ResourceGovernor
  // sweeps (see util/epoch.hpp).
  const util::EpochManager::Pin pin(util::EpochManager::global());
  // Hostile-peer admission runs before the endpoint lookup and handler: a
  // peer over budget costs this check and one bounded fault frame,
  // nothing more. The in-flight slot is held for the whole service of the
  // request (guard scope spans the handler execution below).
  PeerQuotaTable::InflightGuard inflight;
  if (quotas_.enabled()) {
    try {
      quotas_.admit_frame(request.sender, request.wire_size(), clock_.now_ns());
      inflight = quotas_.acquire_inflight(request.sender);
      quotas_.charge_new_names(request.sender, count_new_names(request));
    } catch (const pti::ResourceExhaustedError& e) {
      return encode_fault(codec_, kResourceFault, e.what());
    }
  }
  std::shared_ptr<Endpoint> endpoint;
  std::shared_ptr<Handler> handler;
  {
    std::unique_lock lock(endpoints_mutex_);
    const auto it = endpoints_.find(request.recipient);
    if (it == endpoints_.end()) {
      return encode_fault(codec_, kNetworkFault,
                          "no peer attached as '" + request.recipient + "'");
    }
    endpoint = it->second;
    handler = endpoint->handler;
    ++endpoint->executing;
    ++total_executing_;
  }

  tl_executing_here.push_back(endpoint.get());
  Message response;
  std::string handler_fault;
  try {
    response = (*handler)(request);
    address_response(request, response);
  } catch (const std::exception& e) {
    handler_fault = "handler for '" + request.recipient + "' failed: " + e.what();
  } catch (...) {
    handler_fault = "handler for '" + request.recipient + "' failed";
  }
  tl_executing_here.pop_back();
  {
    std::unique_lock lock(endpoints_mutex_);
    --endpoint->executing;
    --total_executing_;
  }
  endpoints_cv_.notify_all();

  if (!handler_fault.empty()) {
    return encode_fault(codec_, kTransportFault, handler_fault);
  }
  if (!charge(response)) {
    // The modelled response drop answers with an unaddressed fault (same
    // wording as SimNetwork's drop error) instead of a silent close:
    // "connection closed with zero response bytes" must stay unambiguous
    // proof that the request was never served, because
    // exchange_over_wire's stale-pool retry re-sends exactly in that case.
    return encode_fault(codec_, kNetworkFault,
                        "response " + std::string(response.kind_name()) + " from '" +
                            response.sender + "' was dropped");
  }
  try {
    return codec_.encode(response);
  } catch (const serial::FrameError& e) {
    return encode_fault(codec_, kTransportFault,
                        "response to " + std::string(request.kind_name()) +
                            " is not encodable: " + e.what());
  }
}

void SocketTransport::reap_finished_connections() {
  // A reader marks its entry fd = -1 (under conn_mutex_) as its very last
  // locked action before returning, so a -1 entry's thread is exiting or
  // gone: joining it outside the lock cannot block on conn_mutex_.
  std::vector<ServerConnection> finished;
  {
    std::unique_lock lock(conn_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (it->fd < 0) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection.reader.joinable()) connection.reader.join();
  }
}

void SocketTransport::accept_loop() {
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource pressure must not kill the listener for the
        // transport's whole lifetime; back off briefly and retry.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener closed (shutdown) or unrecoverable
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    // Reap past connections' reader threads so a long-lived transport
    // serving churning clients doesn't accumulate one finished thread
    // per connection ever accepted.
    reap_finished_connections();
    set_nodelay(fd);
    ++socket_stats_.connections_accepted;
    // Register the entry before the reader runs (it is spawned under the
    // same lock): a short-lived connection must find its own entry to
    // mark reapable, never a later connection that reused the fd number.
    bool spawned = true;
    {
      std::unique_lock lock(conn_mutex_);
      connections_.push_back(ServerConnection{fd, {}});
      try {
        connections_.back().reader = std::thread([this, fd] { connection_loop(fd); });
      } catch (const std::system_error&) {
        // Thread creation failed under the same resource pressure the
        // accept() path above survives — an unhandled throw here would
        // std::terminate the process off the accept thread. Drop this
        // one connection and keep listening.
        connections_.pop_back();
        spawned = false;
      }
    }
    if (!spawned) {
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void SocketTransport::connection_loop(int fd) {
  tl_transport_thread = true;
  // True when a fully-read request got no (complete) reply onto the wire:
  // the close below must then abort (RST) instead of sending a clean FIN,
  // because the client's stale-pool retry reads "clean FIN, zero response
  // bytes" as proof the request was never served.
  bool served_without_reply = false;
  for (;;) {
    std::array<std::uint8_t, serial::FrameCodec::kHeaderSize> header_bytes{};
    std::size_t header_got = 0;
    const ReadStatus header_status =
        read_exact(fd, header_bytes.data(), header_bytes.size(), &header_got);
    // Received bytes are counted before decoding (partial reads included):
    // they moved over the wire whether or not they parse, and a hostile
    // stream must not undercount.
    socket_stats_.wire_bytes_received += header_got;
    if (header_status != ReadStatus::Ok) {
      break;  // clean close between frames, or a failure — either way done
    }
    serial::FrameCodec::Header header;
    std::vector<std::uint8_t> body;
    Message request;
    try {
      header = codec_.decode_header(header_bytes);
      std::size_t body_got = 0;
      const bool body_ok = read_body_bytes(fd, body, header.body_bytes, body_got);
      socket_stats_.wire_bytes_received += body_got;  // partial reads count too
      if (!body_ok) break;
      ++socket_stats_.frames_received;
      request = codec_.decode_body(header, body);
    } catch (const serial::FrameError& e) {
      // A malformed frame leaves the stream position untrustworthy: report
      // the fault, then close the connection rather than resynchronize.
      try {
        const std::vector<std::uint8_t> fault =
            encode_fault(codec_, kTransportFault, e.what());
        // Counters bump before the write: the requester may act on the
        // response the instant the syscall delivers it, and a post-write
        // bump could lag behind a stats reader on the requesting thread.
        ++socket_stats_.frames_sent;
        socket_stats_.wire_bytes_sent += fault.size();
        (void)write_all(fd, fault.data(), fault.size());
      } catch (...) {
        // Even the fault frame is unencodable (pathologically small
        // FrameLimits): closing the connection is the whole report.
      }
      break;
    }

    std::vector<std::uint8_t> response;
    try {
      response = serve_request(std::move(request));
    } catch (...) {
      // serve_request is total by construction (faults are bounded and
      // handler exceptions are caught inside it), but an escaped exception
      // here would std::terminate the process off this reader thread.
      // Attempt a minimal fault first — the handler may already have run,
      // so a zero-byte clean close would wrongly license the peer's
      // stale-pool retry into re-executing it.
      bool fault_written = false;
      try {
        const std::vector<std::uint8_t> fault =
            encode_fault(codec_, kTransportFault, "request handling failed");
        ++socket_stats_.frames_sent;
        socket_stats_.wire_bytes_sent += fault.size();
        fault_written = write_all(fd, fault.data(), fault.size());
      } catch (...) {
      }
      served_without_reply = !fault_written;
      break;
    }
    ++socket_stats_.frames_sent;
    socket_stats_.wire_bytes_sent += response.size();
    if (!write_all(fd, response.data(), response.size())) {
      // The handler ran but its reply could not be written (e.g. resource
      // pressure, not just a vanished client): never let this look like a
      // clean never-served close.
      served_without_reply = true;
      break;
    }
  }
  if (served_without_reply) {
    // Linger-zero close sends RST: the client observes an abort, which
    // the stale-pool retry is forbidden to retry, instead of a clean FIN.
    const linger hard{.l_onoff = 1, .l_linger = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  }
  std::unique_lock lock(conn_mutex_);
  ::close(fd);
  // Marking fd = -1 is this thread's last locked action: it tells the
  // reaper (and the destructor's shutdown sweep) that the fd is dead and
  // the thread is safe to join.
  for (ServerConnection& connection : connections_) {
    if (connection.fd == fd) {
      connection.fd = -1;
      break;
    }
  }
}

void SocketTransport::complete(OutboundRequest& outbound, Message response,
                               std::exception_ptr error) {
  // Completion runs on transport threads; a throwing callback must not
  // take a worker (or the destructor) down with it.
  try {
    if (outbound.callback) {
      outbound.callback(std::move(response), error);
    } else if (error) {
      outbound.promise.set_exception(error);
    } else {
      outbound.promise.set_value(std::move(response));
    }
  } catch (...) {
  }
}

void SocketTransport::enqueue_outbound(OutboundRequest outbound) {
  std::exception_ptr failure;
  {
    std::unique_lock lock(outbound_mutex_);
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) {
        failure = std::make_exception_ptr(NetworkError("transport is shutting down"));
        break;
      }
      if (outbound_.size() < config_.max_outbound) {
        outbound_.push_back(std::move(outbound));
        // notify_all: the CV is shared with drain() and backpressure
        // waiters, and notify_one could hand the wakeup to a waiter
        // whose predicate is false.
        outbound_cv_.notify_all();
        return;
      }
      if (config_.overflow == SocketTransportConfig::Overflow::Reject) {
        failure = std::make_exception_ptr(
            TransportError("backpressure: outbound queue is full (" +
                           std::to_string(config_.max_outbound) + ")"));
        break;
      }
      if (tl_transport_thread) {
        // Block policy, but the caller IS a transport thread (a reader
        // running a handler, or an outbound worker's completion
        // callback): waiting for queue space that only these threads
        // free would deadlock. Fail fast instead.
        failure = std::make_exception_ptr(TransportError(
            "backpressure: outbound queue is full and send_async was called "
            "from a transport thread (blocking here would deadlock)"));
        break;
      }
      outbound_cv_.wait(lock);
    }
  }
  complete(outbound, Message{}, failure);
}

std::future<Message> SocketTransport::send_async(Message request) {
  OutboundRequest outbound;
  outbound.request = std::move(request);
  std::future<Message> future = outbound.promise.get_future();
  enqueue_outbound(std::move(outbound));
  return future;
}

void SocketTransport::send_async(Message request, SendCallback on_complete) {
  if (!on_complete) throw TransportError("send_async requires a completion callback");
  OutboundRequest outbound;
  outbound.request = std::move(request);
  outbound.callback = std::move(on_complete);
  enqueue_outbound(std::move(outbound));
}

void SocketTransport::outbound_worker_loop() {
  tl_transport_thread = true;
  std::unique_lock lock(outbound_mutex_);
  for (;;) {
    outbound_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) || !outbound_.empty();
    });
    if (shutdown_.load(std::memory_order_acquire)) return;
    OutboundRequest outbound = std::move(outbound_.front());
    outbound_.pop_front();
    ++outbound_executing_;
    lock.unlock();
    outbound_cv_.notify_all();  // queue space freed; blocked senders proceed

    Message response;
    std::exception_ptr error;
    try {
      response = send(outbound.request);
    } catch (...) {
      error = std::current_exception();
    }
    complete(outbound, std::move(response), error);

    lock.lock();
    --outbound_executing_;
    if (outbound_.empty() && outbound_executing_ == 0) {
      outbound_cv_.notify_all();  // drain() waiters
    }
  }
}

void SocketTransport::drain() {
  for (;;) {
    {
      std::unique_lock lock(outbound_mutex_);
      outbound_cv_.wait(lock,
                        [&] { return outbound_.empty() && outbound_executing_ == 0; });
    }
    {
      std::unique_lock lock(endpoints_mutex_);
      endpoints_cv_.wait(lock, [&] { return total_executing_ == 0; });
    }
    // A handler finishing above may have enqueued more outbound work;
    // only a pass that finds both sides idle without waiting is quiescent.
    std::unique_lock outbound_lock(outbound_mutex_);
    std::unique_lock endpoints_lock(endpoints_mutex_);
    if (outbound_.empty() && outbound_executing_ == 0 && total_executing_ == 0) return;
  }
}

std::size_t SocketTransport::pending() const {
  std::unique_lock outbound_lock(outbound_mutex_);
  std::unique_lock endpoints_lock(endpoints_mutex_);
  return outbound_.size() + outbound_executing_ + total_executing_;
}

}  // namespace pti::transport
