// PeerQuotaTable — the shared enforcement core behind per-peer resource
// governance, playing the same role for quotas that LinkCostModel plays
// for traversal costs: one implementation, owned by value by all three
// transports, so rejection semantics and accounting stay identical across
// SimNetwork, AsyncTransport and SocketTransport.
//
// A table maps peer names (case-insensitive, like every endpoint map) to
// budget state for the four quota dimensions of PeerQuotaConfig:
//
//   admit_frame()        frame-size cap + bytes/sec token bucket, charged
//                        on the message's modelled wire size against the
//                        transport's virtual clock, BEFORE the handler
//                        runs — an over-budget peer costs one admission
//                        check, not a handler execution.
//   acquire_inflight()   RAII-guarded concurrent-exchange slot.
//   charge_new_names()   cumulative distinct-name budget, charged by the
//                        layer that interns on a peer's behalf (the
//                        transports for TypeInfoRequest name lists, Peer::
//                        fetch_descriptions at the registry boundary).
//
// Every violation throws pti::ResourceExhaustedError (classified
// core::ErrorCode::ResourceExhausted); in-process transports let it
// propagate to the caller, SocketTransport encodes it as an unforgeable
// "resource|" fault frame and re-raises it client-side.
//
// The table itself is governed: it tracks at most `max_tracked_peers`
// distinct peer states. Beyond that, unknown peers share one overflow
// bucket — a sender flooding fresh identities degrades its own service,
// not the table's memory bound.
//
// Thread safety: every member is safe from any thread. The peer map is
// behind a shared_mutex (states are created once and never erased, so
// admission normally takes the shared path); each state's token bucket is
// guarded by its own small mutex; counters are relaxed atomics. The
// enabled() fast path is a single relaxed load, so an unconfigured table
// costs nothing on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "transport/transport.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

/// Rejection counters by quota dimension (relaxed; exact at quiescence).
struct PeerQuotaStats {
  std::uint64_t rejected_frame_size = 0;
  std::uint64_t rejected_rate = 0;
  std::uint64_t rejected_inflight = 0;
  std::uint64_t rejected_names = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return rejected_frame_size + rejected_rate + rejected_inflight + rejected_names;
  }
};

class PeerQuotaTable {
 public:
  PeerQuotaTable() = default;
  PeerQuotaTable(const PeerQuotaTable&) = delete;
  PeerQuotaTable& operator=(const PeerQuotaTable&) = delete;

  /// Quota for peers without a per-peer override. Replaces the default
  /// for peers whose state has not yet been created; existing states keep
  /// the config they were created with (set_quota overrides per peer).
  void set_default(const PeerQuotaConfig& config);

  /// Per-peer override; creates or reconfigures the peer's state.
  void set_quota(std::string_view peer, const PeerQuotaConfig& config);

  /// True once any limiting config has been installed. Transports gate
  /// all enforcement behind this single relaxed load.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Admission of one inbound message from `peer` whose modelled wire
  /// size is `frame_bytes`, at virtual time `now_ns`: enforces the
  /// frame-size cap, then the bytes/sec token bucket. Throws
  /// pti::ResourceExhaustedError on rejection; no budget is consumed by a
  /// rejected frame beyond the tokens it could not afford.
  void admit_frame(std::string_view peer, std::size_t frame_bytes, std::uint64_t now_ns);

  /// RAII slot of a peer's max_inflight budget. Default-constructed (or
  /// moved-from) guards hold nothing.
  class InflightGuard {
   public:
    InflightGuard() noexcept = default;
    InflightGuard(InflightGuard&& other) noexcept
        : counter_(other.counter_) {
      other.counter_ = nullptr;
    }
    InflightGuard& operator=(InflightGuard&& other) noexcept {
      release();
      counter_ = other.counter_;
      other.counter_ = nullptr;
      return *this;
    }
    ~InflightGuard() { release(); }

   private:
    friend class PeerQuotaTable;
    explicit InflightGuard(std::atomic<std::uint32_t>* counter) noexcept
        : counter_(counter) {}
    void release() noexcept {
      if (counter_ != nullptr) counter_->fetch_sub(1, std::memory_order_acq_rel);
      counter_ = nullptr;
    }
    std::atomic<std::uint32_t>* counter_ = nullptr;
  };

  /// Claims one concurrent-exchange slot for `peer`, throwing
  /// pti::ResourceExhaustedError when max_inflight are already executing.
  [[nodiscard]] InflightGuard acquire_inflight(std::string_view peer);

  /// Charges `count` distinct new names against `peer`'s cumulative
  /// max_new_names budget; throws pti::ResourceExhaustedError when the
  /// budget cannot cover them (consuming nothing).
  void charge_new_names(std::string_view peer, std::size_t count);

  [[nodiscard]] PeerQuotaStats stats() const noexcept;
  void reset_stats() noexcept;

  /// Cap on tracked per-peer states (identity-flood protection). Peers
  /// beyond the cap share one overflow state under the default config.
  void set_max_tracked_peers(std::size_t cap) noexcept {
    max_tracked_peers_.store(cap, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t tracked_peers() const;

 private:
  struct State {
    explicit State(const PeerQuotaConfig& c) noexcept
        : config(c),
          tokens(c.burst_bytes != 0 ? c.burst_bytes : c.bytes_per_sec) {}

    PeerQuotaConfig config;             // guarded by bucket_mutex
    std::mutex bucket_mutex;        // guards config + tokens + last_refill_ns

    [[nodiscard]] PeerQuotaConfig snapshot_config() {
      std::lock_guard lock(bucket_mutex);
      return config;
    }
    std::uint64_t tokens;           // available bytes
    std::uint64_t last_refill_ns = 0;
    std::atomic<std::uint32_t> inflight{0};
    std::atomic<std::uint64_t> names_used{0};
  };

  /// The peer's state, created under the default config on first contact
  /// (or the shared overflow state past the tracking cap).
  [[nodiscard]] State& state_of(std::string_view peer);

  [[nodiscard]] std::uint64_t bucket_depth(const PeerQuotaConfig& c) const noexcept {
    return c.burst_bytes != 0 ? c.burst_bytes : c.bytes_per_sec;
  }

  mutable std::shared_mutex mutex_;  // guards peers_ + default_/overflow_
  std::map<std::string, std::unique_ptr<State>, util::ICaseLess> peers_;
  PeerQuotaConfig default_config_;
  std::unique_ptr<State> overflow_;  // lazily created shared bucket
  std::atomic<std::size_t> max_tracked_peers_{4096};
  std::atomic<bool> enabled_{false};

  struct {
    std::atomic<std::uint64_t> frame_size{0};
    std::atomic<std::uint64_t> rate{0};
    std::atomic<std::uint64_t> inflight{0};
    std::atomic<std::uint64_t> names{0};
  } rejected_;
};

/// Distinct type names in `message` that are not currently interned — the
/// amount charge_new_names() would need to cover before handling it. Only
/// TypeInfoRequest carries caller-controlled name lists that the serving
/// side interns on the requester's behalf.
[[nodiscard]] std::size_t count_new_names(const Message& message);

}  // namespace pti::transport
