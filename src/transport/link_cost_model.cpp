#include "transport/link_cost_model.hpp"

#include "util/interning.hpp"

namespace pti::transport {

void LinkCostModel::set_default_link(const LinkConfig& config) noexcept {
  std::unique_lock lock(mutex_);
  default_link_ = config;
}

void LinkCostModel::set_link(std::string_view from, std::string_view to,
                             const LinkConfig& config) {
  util::SymbolTable& symbols = util::SymbolTable::global();
  const std::uint64_t key = util::pair_key(symbols.intern(from), symbols.intern(to));
  std::unique_lock lock(mutex_);
  links_[key] = config;
}

LinkConfig LinkCostModel::link_for(std::string_view from, std::string_view to) const {
  std::shared_lock lock(mutex_);
  if (links_.empty()) return default_link_;
  const util::SymbolTable& symbols = util::SymbolTable::global();
  const util::InternedName from_id = symbols.find(from);
  if (!from_id.valid()) return default_link_;
  const util::InternedName to_id = symbols.find(to);
  if (!to_id.valid()) return default_link_;
  const auto it = links_.find(util::pair_key(from_id, to_id));
  return it == links_.end() ? default_link_ : it->second;
}

double LinkCostModel::next_uniform() noexcept {
  // One shared SplitMix64 stream: fetch_add hands every caller a distinct
  // state, so concurrent draws never repeat a value.
  std::uint64_t z =
      rng_state_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed) +
      0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool LinkCostModel::charge(const Message& message, NetStats& stats,
                           util::SimClock& clock) {
  const LinkConfig link = link_for(message.sender, message.recipient);
  if (link.drop_probability > 0.0 && next_uniform() < link.drop_probability) {
    ++stats.drops;
    return false;
  }
  charge_traversal(link, message.wire_size(), stats, clock);
  return true;
}

}  // namespace pti::transport
