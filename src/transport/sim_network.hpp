// Deterministic in-process network simulator — the single-threaded
// reference implementation of the transport::Transport seam.
//
// Substitutes for the paper's real testbed (two Windows hosts with .NET
// remoting): peers attach under a name; send() routes a message to the
// recipient's handler synchronously (handlers may send nested requests,
// which models the protocol's mid-flight round trips), charging virtual
// latency and bandwidth on a virtual clock and counting every byte — the
// quantity the optimistic protocol is designed to save.
//
// Fault injection: a deterministic per-message drop schedule, an optional
// drop probability (seeded RNG) and directed link partitions let tests
// exercise the protocol's failure paths reproducibly. These controls are
// simulator-specific and intentionally NOT part of the Transport
// interface.
//
// Thread safety: none — SimNetwork is the deterministic single-threaded
// simulator; drive it from one thread. transport::AsyncTransport is the
// concurrent implementation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "transport/message.hpp"
#include "transport/peer_quota.hpp"
#include "transport/transport.hpp"
#include "transport/transport_error.hpp"
#include "util/interning.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

class SimNetwork final : public Transport {
 public:
  explicit SimNetwork(std::uint64_t rng_seed = 42) : rng_(rng_seed) {}

  void attach(std::string_view name, Handler handler) override;
  void detach(std::string_view name) override;
  [[nodiscard]] bool is_attached(std::string_view name) const noexcept override;

  /// Synchronous exchange: admits the request against the sender's quota,
  /// charges it, dispatches to the recipient, charges the response,
  /// returns it. Throws NetworkError on unknown recipients or injected
  /// drops and pti::ResourceExhaustedError on quota rejection.
  Message send(const Message& request) override;

  /// Hostile-peer governance (shared PeerQuotaTable semantics).
  void set_default_peer_quota(const PeerQuotaConfig& config) override {
    quotas_.set_default(config);
  }
  void set_peer_quota(std::string_view peer, const PeerQuotaConfig& config) override {
    quotas_.set_quota(peer, config);
  }
  [[nodiscard]] PeerQuotaTable* peer_quotas() noexcept override { return &quotas_; }

  void set_default_link(const LinkConfig& config) noexcept override {
    default_link_ = config;
  }
  /// Per-directed-link override ("from->to").
  void set_link(std::string_view from, std::string_view to,
                const LinkConfig& config) override;

  /// Deterministically drops the next `count` messages entering the network.
  void inject_drop_next(std::size_t count = 1) noexcept { forced_drops_ += count; }

  /// Schedules the nth message from now (1-based) to be dropped — lets
  /// tests kill a specific protocol step (e.g. the TypeInfoRequest inside
  /// a push) while the surrounding messages go through.
  void inject_drop_at(std::uint64_t nth) { scheduled_drops_.insert(seen_ + nth); }

  /// Partitions the directed link from->to: every message on it is dropped
  /// (and counted) until heal_partition(). Partition both directions to
  /// model a full network split; one direction models an asymmetric fault
  /// (requests arrive, responses vanish).
  void partition(std::string_view from, std::string_view to);
  void heal_partition(std::string_view from, std::string_view to);
  void heal_all_partitions() noexcept { partitions_.clear(); }
  [[nodiscard]] bool is_partitioned(std::string_view from,
                                    std::string_view to) const noexcept;

  [[nodiscard]] const NetStats& stats() const noexcept override { return stats_; }
  void reset_stats() noexcept override { stats_.reset(); }
  [[nodiscard]] util::SimClock& clock() noexcept override { return clock_; }

 private:
  [[nodiscard]] const LinkConfig& link_for(std::string_view from,
                                           std::string_view to) const noexcept;
  /// Charges one message traversal; returns false when it was dropped.
  bool charge(const Message& message);

  // Handlers are held by shared_ptr so detach() — even from inside the
  // executing handler itself — never destroys a std::function mid-call;
  // send() keeps the executing handler alive with a local copy.
  std::map<std::string, std::shared_ptr<Handler>, util::ICaseLess> handlers_;
  // Keyed on pair_key(from, to) of interned peer names: charging a message
  // probes with two no-insert symbol lookups instead of concatenating four
  // lowered strings per send.
  std::unordered_map<std::uint64_t, LinkConfig> links_;
  std::unordered_set<std::uint64_t> partitions_;
  LinkConfig default_link_;
  PeerQuotaTable quotas_;
  NetStats stats_;
  util::SimClock clock_;
  util::Rng rng_;
  std::size_t forced_drops_ = 0;
  std::uint64_t seen_ = 0;
  std::set<std::uint64_t> scheduled_drops_;
};

}  // namespace pti::transport
