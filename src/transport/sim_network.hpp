// Deterministic in-process network simulator.
//
// Substitutes for the paper's real testbed (two Windows hosts with .NET
// remoting): peers attach under a name; send() routes a message to the
// recipient's handler synchronously (handlers may send nested requests,
// which models the protocol's mid-flight round trips), charging virtual
// latency and bandwidth on a virtual clock and counting every byte — the
// quantity the optimistic protocol is designed to save.
//
// Fault injection: a deterministic per-message drop schedule plus an
// optional drop probability (seeded RNG) let tests exercise the protocol's
// failure paths reproducibly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>

#include "transport/message.hpp"
#include "transport/transport_error.hpp"
#include "util/interning.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/string_util.hpp"

namespace pti::transport {

struct LinkConfig {
  std::uint64_t latency_ns = 1'000'000;          ///< 1 ms one-way
  double bandwidth_bytes_per_sec = 12'500'000.0;  ///< 100 Mbit/s
  double drop_probability = 0.0;
};

struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;

  void reset() noexcept { *this = {}; }
};

class SimNetwork {
 public:
  /// A handler consumes a request and produces the response message.
  using Handler = std::function<Message(const Message&)>;

  explicit SimNetwork(std::uint64_t rng_seed = 42) : rng_(rng_seed) {}

  void attach(std::string_view name, Handler handler);
  void detach(std::string_view name);
  [[nodiscard]] bool is_attached(std::string_view name) const noexcept;

  /// Synchronous exchange: charges the request, dispatches to the
  /// recipient, charges the response, returns it. Throws NetworkError on
  /// unknown recipients or injected drops.
  Message send(const Message& request);

  void set_default_link(const LinkConfig& config) noexcept { default_link_ = config; }
  /// Per-directed-link override ("from->to").
  void set_link(std::string_view from, std::string_view to, const LinkConfig& config);

  /// Deterministically drops the next `count` messages entering the network.
  void inject_drop_next(std::size_t count = 1) noexcept { forced_drops_ += count; }

  /// Schedules the nth message from now (1-based) to be dropped — lets
  /// tests kill a specific protocol step (e.g. the TypeInfoRequest inside
  /// a push) while the surrounding messages go through.
  void inject_drop_at(std::uint64_t nth) { scheduled_drops_.insert(seen_ + nth); }

  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }
  [[nodiscard]] util::SimClock& clock() noexcept { return clock_; }

 private:
  [[nodiscard]] const LinkConfig& link_for(std::string_view from,
                                           std::string_view to) const noexcept;
  /// Charges one message traversal; returns false when it was dropped.
  bool charge(const Message& message);

  std::map<std::string, Handler, util::ICaseLess> handlers_;
  // Keyed on pair_key(from, to) of interned peer names: charging a message
  // probes with two no-insert symbol lookups instead of concatenating four
  // lowered strings per send.
  std::unordered_map<std::uint64_t, LinkConfig> links_;
  LinkConfig default_link_;
  NetStats stats_;
  util::SimClock clock_;
  util::Rng rng_;
  std::size_t forced_drops_ = 0;
  std::uint64_t seen_ = 0;
  std::set<std::uint64_t> scheduled_drops_;
};

}  // namespace pti::transport
