// IntroRegistry — hub-level memory of which receiver already holds which
// type description, keyed by content hash.
//
// PR 9's session layer pays a type's description once per sender/receiver
// *pair*: every sender keeps its own per-target "introduced" bits, so a hot
// type fanned out by k senders crosses the wire k times per receiver. The
// registry fixes the unit of payment: receivers advertise the descriptions
// they hold as a set of FNV-64 content hashes (in Reset and first-contact
// SessionAcks), senders fold those advertisements in here, and because the
// registry hangs off the universe's shared AssemblyHub, the *second* sender
// of a hot type finds the receiver already covered and ships the intro
// without its description bytes — once per receiver, not once per pair.
//
// A hash attests content, not delivery: a sender that skips description
// bytes still ships the wire-id/name binding, and a receiver that somehow
// lacks the description falls back to the cold TypeInfoRequest fetch — the
// registry is a byte-saving hint, never a correctness dependency.
//
// Thread safety: fully thread-safe (one mutex; all operations are short).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pti::transport {

class IntroRegistry {
 public:
  /// Records that `receiver` holds the description whose canonical XML
  /// hashes (FNV-64) to `hash`.
  void record(const std::string& receiver, std::uint64_t hash) {
    std::scoped_lock lock(mutex_);
    known_[receiver].insert(hash);
  }

  /// Folds a receiver's advertised hash set in (one SessionAck's worth).
  void record_all(const std::string& receiver, const std::vector<std::uint64_t>& hashes) {
    if (hashes.empty()) return;
    std::scoped_lock lock(mutex_);
    auto& set = known_[receiver];
    set.insert(hashes.begin(), hashes.end());
  }

  [[nodiscard]] bool knows(const std::string& receiver, std::uint64_t hash) const {
    std::scoped_lock lock(mutex_);
    const auto it = known_.find(receiver);
    return it != known_.end() && it->second.count(hash) != 0;
  }

  [[nodiscard]] std::size_t known_count(const std::string& receiver) const {
    std::scoped_lock lock(mutex_);
    const auto it = known_.find(receiver);
    return it == known_.end() ? 0 : it->second.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> known_;
};

}  // namespace pti::transport
