// Minimal XML document object model.
//
// The paper represents type descriptions "as XML structures" (Section 5.2)
// and wraps serialized objects in an XML message (Section 6.2, Fig. 3).
// This DOM is the common substrate for the type-description format, the
// SOAP-style object serializer and the hybrid envelope.
//
// The model is element-centric: an element has a name, ordered attributes,
// child elements and accumulated character data. Mixed content (text
// interleaved between children) is concatenated into `text`, which is
// sufficient for every format in this library.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pti::xml {

struct XmlAttribute {
  std::string name;
  std::string value;
};

class XmlNode {
 public:
  XmlNode() = default;
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view more) { text_.append(more); }

  // --- attributes -------------------------------------------------------
  [[nodiscard]] const std::vector<XmlAttribute>& attributes() const noexcept {
    return attributes_;
  }
  /// Sets (or overwrites) an attribute; insertion order is preserved.
  XmlNode& set_attr(std::string_view name, std::string_view value);
  [[nodiscard]] std::optional<std::string_view> attr(std::string_view name) const noexcept;
  /// Attribute lookup that throws XmlError when absent — for required fields.
  [[nodiscard]] std::string_view required_attr(std::string_view name) const;
  [[nodiscard]] bool has_attr(std::string_view name) const noexcept;

  // --- children ---------------------------------------------------------
  [[nodiscard]] const std::vector<XmlNode>& children() const noexcept { return children_; }
  [[nodiscard]] std::vector<XmlNode>& children() noexcept { return children_; }
  /// Appends an empty child element and returns a reference to it.
  XmlNode& add_child(std::string name);
  XmlNode& add_child(XmlNode node);
  /// Convenience: append `<name>text</name>`.
  XmlNode& add_text_child(std::string name, std::string_view text);

  /// First child with the given element name, or nullptr.
  [[nodiscard]] const XmlNode* child(std::string_view name) const noexcept;
  /// First child with the given name; throws XmlError when absent.
  [[nodiscard]] const XmlNode& required_child(std::string_view name) const;
  /// All children with the given element name.
  [[nodiscard]] std::vector<const XmlNode*> children_named(std::string_view name) const;

  [[nodiscard]] bool operator==(const XmlNode& other) const noexcept;

 private:
  std::string name_;
  std::string text_;
  std::vector<XmlAttribute> attributes_;
  std::vector<XmlNode> children_;
};

}  // namespace pti::xml
