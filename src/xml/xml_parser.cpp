#include "xml/xml_parser.hpp"

#include <cstdint>
#include <string>

#include "xml/xml_error.hpp"

namespace pti::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  XmlNode parse_document() {
    skip_misc();
    if (at_end()) fail("document contains no root element");
    XmlNode root = parse_element();
    skip_misc();
    if (!at_end()) fail("content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw XmlError("XML parse error at line " + std::to_string(line_) + ", column " +
                   std::to_string(column_) + ": " + message);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= doc_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of document");
    return doc_[pos_];
  }

  [[nodiscard]] bool looking_at(std::string_view s) const noexcept {
    return doc_.size() - pos_ >= s.size() && doc_.substr(pos_, s.size()) == s;
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', found '" + peek() + "'");
    advance();
  }

  void expect_literal(std::string_view s) {
    for (char c : s) expect(c);
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = doc_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  /// Skips whitespace, comments, processing instructions and DOCTYPE.
  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (looking_at("<?")) {
        skip_until("?>");
      } else if (looking_at("<!--")) {
        skip_comment();
      } else if (looking_at("<!DOCTYPE")) {
        skip_doctype();
      } else {
        return;
      }
    }
  }

  void skip_until(std::string_view terminator) {
    while (!looking_at(terminator)) {
      if (at_end()) fail("unterminated construct, expected '" + std::string(terminator) + "'");
      advance();
    }
    for (std::size_t i = 0; i < terminator.size(); ++i) advance();
  }

  void skip_comment() {
    expect_literal("<!--");
    while (!looking_at("-->")) {
      if (at_end()) fail("unterminated comment");
      if (looking_at("--") && !looking_at("-->")) fail("'--' not allowed inside comment");
      advance();
    }
    expect_literal("-->");
  }

  void skip_doctype() {
    expect_literal("<!DOCTYPE");
    // The internal subset sits between '[' and ']'; markup declarations
    // inside it contain their own '>' which must not terminate the DOCTYPE.
    int bracket_depth = 0;
    while (true) {
      const char c = advance();
      if (c == '[') ++bracket_depth;
      else if (c == ']') --bracket_depth;
      else if (c == '>' && bracket_depth == 0) return;
    }
  }

  [[nodiscard]] static bool is_name_start(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  }

  [[nodiscard]] static bool is_name_char(char c) noexcept {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("invalid name start character");
    std::string name;
    while (!at_end() && is_name_char(doc_[pos_])) name.push_back(advance());
    return name;
  }

  void decode_entity(std::string& out) {
    expect('&');
    if (peek() == '#') {
      advance();
      std::uint32_t code = 0;
      if (peek() == 'x' || peek() == 'X') {
        advance();
        bool any = false;
        while (peek() != ';') {
          const char c = advance();
          int d;
          if (c >= '0' && c <= '9') d = c - '0';
          else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
          else { fail("invalid hexadecimal character reference"); }
          code = code * 16 + static_cast<std::uint32_t>(d);
          any = true;
        }
        if (!any) fail("empty character reference");
      } else {
        bool any = false;
        while (peek() != ';') {
          const char c = advance();
          if (c < '0' || c > '9') fail("invalid decimal character reference");
          code = code * 10 + static_cast<std::uint32_t>(c - '0');
          any = true;
        }
        if (!any) fail("empty character reference");
      }
      expect(';');
      append_utf8(out, code);
      return;
    }
    const std::string name = parse_name();
    expect(';');
    if (name == "amp") out += '&';
    else if (name == "lt") out += '<';
    else if (name == "gt") out += '>';
    else if (name == "quot") out += '"';
    else if (name == "apos") out += '\'';
    else fail("unknown entity '&" + name + ";'");
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    advance();
    std::string value;
    while (peek() != quote) {
      if (peek() == '&') {
        decode_entity(value);
      } else if (peek() == '<') {
        fail("'<' not allowed in attribute value");
      } else {
        value.push_back(advance());
      }
    }
    advance();  // closing quote
    return value;
  }

  XmlNode parse_element() {
    expect('<');
    XmlNode node(parse_name());
    while (true) {
      skip_whitespace();
      if (peek() == '/') {
        advance();
        expect('>');
        return node;  // self-closing
      }
      if (peek() == '>') {
        advance();
        break;
      }
      const std::string attr_name = parse_name();
      if (node.has_attr(attr_name)) fail("duplicate attribute '" + attr_name + "'");
      skip_whitespace();
      expect('=');
      skip_whitespace();
      node.set_attr(attr_name, parse_attribute_value());
    }
    parse_content(node);
    return node;
  }

  void parse_content(XmlNode& node) {
    std::string text;
    const auto flush_text = [&] {
      if (!text.empty()) {
        node.append_text(text);
        text.clear();
      }
    };
    while (true) {
      if (at_end()) fail("unterminated element <" + node.name() + ">");
      if (looking_at("<![CDATA[")) {
        for (std::size_t i = 0; i < 9; ++i) advance();
        while (!looking_at("]]>")) {
          if (at_end()) fail("unterminated CDATA section");
          text.push_back(advance());
        }
        expect_literal("]]>");
      } else if (looking_at("<!--")) {
        skip_comment();
      } else if (looking_at("<?")) {
        skip_until("?>");
      } else if (looking_at("</")) {
        flush_text();
        advance();
        advance();
        const std::string closing = parse_name();
        if (closing != node.name()) {
          fail("mismatched closing tag </" + closing + "> for <" + node.name() + ">");
        }
        skip_whitespace();
        expect('>');
        return;
      } else if (peek() == '<') {
        flush_text();
        node.add_child(parse_element());
      } else if (peek() == '&') {
        decode_entity(text);
      } else {
        text.push_back(advance());
      }
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

XmlNode parse(std::string_view document) {
  Parser parser(document);
  return parser.parse_document();
}

}  // namespace pti::xml
