#pragma once

#include "util/error.hpp"

namespace pti::xml {

/// Parse and access errors for the XML module; parse errors carry a
/// line/column position in the message.
class XmlError : public Error {
 public:
  using Error::Error;
};

}  // namespace pti::xml
