#include "xml/xml_writer.hpp"

namespace pti::xml {

namespace {

void append_escaped(std::string& out, std::string_view raw, bool attribute) {
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      case '\'':
        if (attribute) {
          out += "&apos;";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
}

void write_node(std::string& out, const XmlNode& node, const WriteOptions& opt, int depth) {
  const auto do_indent = [&](int d) {
    if (opt.indent) {
      out += '\n';
      out.append(static_cast<std::size_t>(d) * 2, ' ');
    }
  };

  if (depth > 0 || opt.declaration) do_indent(depth);
  out += '<';
  out += node.name();
  for (const auto& a : node.attributes()) {
    out += ' ';
    out += a.name;
    out += "=\"";
    append_escaped(out, a.value, /*attribute=*/true);
    out += '"';
  }
  if (node.children().empty() && node.text().empty()) {
    out += "/>";
    return;
  }
  out += '>';
  append_escaped(out, node.text(), /*attribute=*/false);
  for (const auto& c : node.children()) {
    write_node(out, c, opt, depth + 1);
  }
  if (!node.children().empty()) do_indent(depth);
  out += "</";
  out += node.name();
  out += '>';
}

}  // namespace

std::string escape_text(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  append_escaped(out, raw, /*attribute=*/false);
  return out;
}

std::string escape_attribute(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  append_escaped(out, raw, /*attribute=*/true);
  return out;
}

std::string write(const XmlNode& root, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  }
  // write_node indents from depth 0 when a declaration precedes it; when
  // there is no declaration the root starts at column 0 directly.
  if (!options.declaration) {
    WriteOptions opt = options;
    std::string body;
    write_node(body, root, opt, 0);
    return body;
  }
  write_node(out, root, options, 0);
  return out;
}

}  // namespace pti::xml
