#include "xml/xml_node.hpp"

#include "xml/xml_error.hpp"

namespace pti::xml {

XmlNode& XmlNode::set_attr(std::string_view name, std::string_view value) {
  for (auto& a : attributes_) {
    if (a.name == name) {
      a.value = std::string(value);
      return *this;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
  return *this;
}

std::optional<std::string_view> XmlNode::attr(std::string_view name) const noexcept {
  for (const auto& a : attributes_) {
    if (a.name == name) return std::string_view(a.value);
  }
  return std::nullopt;
}

std::string_view XmlNode::required_attr(std::string_view name) const {
  if (auto v = attr(name)) return *v;
  throw XmlError("element <" + name_ + "> is missing required attribute '" +
                 std::string(name) + "'");
}

bool XmlNode::has_attr(std::string_view name) const noexcept {
  return attr(name).has_value();
}

XmlNode& XmlNode::add_child(std::string name) {
  children_.emplace_back(std::move(name));
  return children_.back();
}

XmlNode& XmlNode::add_child(XmlNode node) {
  children_.push_back(std::move(node));
  return children_.back();
}

XmlNode& XmlNode::add_text_child(std::string name, std::string_view text) {
  XmlNode& c = add_child(std::move(name));
  c.set_text(std::string(text));
  return c;
}

const XmlNode* XmlNode::child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

const XmlNode& XmlNode::required_child(std::string_view name) const {
  if (const XmlNode* c = child(name)) return *c;
  throw XmlError("element <" + name_ + "> is missing required child <" +
                 std::string(name) + ">");
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c.name() == name) out.push_back(&c);
  }
  return out;
}

bool XmlNode::operator==(const XmlNode& other) const noexcept {
  if (name_ != other.name_ || text_ != other.text_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].value != other.attributes_[i].value) {
      return false;
    }
  }
  return children_ == other.children_;
}

}  // namespace pti::xml
