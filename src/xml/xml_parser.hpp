// Recursive-descent XML parser covering the subset the PTI wire formats
// use: elements, attributes, character data, entity references (named and
// numeric), CDATA sections, comments, processing instructions and a
// DOCTYPE prologue (skipped). Errors carry line/column positions.
#pragma once

#include <string_view>

#include "xml/xml_node.hpp"

namespace pti::xml {

/// Parses a complete document and returns its root element.
/// Throws XmlError on malformed input.
[[nodiscard]] XmlNode parse(std::string_view document);

}  // namespace pti::xml
