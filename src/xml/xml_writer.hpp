// XML serialization of the DOM with proper escaping. Supports compact
// output (for wire messages, where every byte is counted by the simulated
// network) and indented output (for the human-readable descriptions the
// paper advertises).
#pragma once

#include <string>
#include <string_view>

#include "xml/xml_node.hpp"

namespace pti::xml {

struct WriteOptions {
  bool indent = false;      ///< pretty-print with 2-space indentation
  bool declaration = true;  ///< emit `<?xml version="1.0" encoding="UTF-8"?>`
};

[[nodiscard]] std::string write(const XmlNode& root, const WriteOptions& options = {});

/// Escapes `&`, `<`, `>` (text) plus quotes (attributes).
[[nodiscard]] std::string escape_text(std::string_view raw);
[[nodiscard]] std::string escape_attribute(std::string_view raw);

}  // namespace pti::xml
