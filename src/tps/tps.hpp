// Type-based publish/subscribe enhanced with type interoperability —
// the paper's first application (Section 8, citing [Eugster/Guerraoui/
// Damm, OOPSLA 2001]).
//
// Classic TPS forces publishers and subscribers to agree a priori on event
// types. Here a subscriber subscribes with *its own* event type; events of
// any type that implicitly structurally conforms are delivered, adapted
// through a dynamic proxy. Non-conformant events are rejected by the
// optimistic protocol before any code is downloaded.
//
// Topology: a TpsDomain is a directory of nodes attached to one
// InteropSystem. publish() pushes the event to every *other* node that has
// at least one subscription; each receiving node's own conformance check
// decides delivery (multicast-by-conformance).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/interop.hpp"

namespace pti::tps {

struct PublishReport {
  std::size_t recipients = 0;  ///< nodes the event was pushed to
  std::size_t delivered = 0;   ///< nodes where a subscription conformed
};

class TpsDomain;

class TpsNode {
 public:
  TpsNode(TpsDomain& domain, core::InteropRuntime& runtime);

  [[nodiscard]] const std::string& name() const noexcept { return runtime_.name(); }
  [[nodiscard]] core::InteropRuntime& runtime() noexcept { return runtime_; }

  /// Publishes the node's event types + implementations.
  void offer_assembly(std::shared_ptr<const reflect::Assembly> assembly);

  using EventCallback = std::function<void(const transport::DeliveredObject&)>;
  /// Subscribes with a locally known event type.
  void subscribe(std::string_view event_type, EventCallback callback);
  [[nodiscard]] bool has_subscriptions() const noexcept { return subscriptions_ > 0; }

  /// Publishes an event to every subscribed node in the domain.
  PublishReport publish(const std::shared_ptr<reflect::DynObject>& event);

  /// Events delivered to this node, oldest first.
  [[nodiscard]] const std::vector<transport::DeliveredObject>& inbox() const noexcept {
    return runtime_.peer().delivered();
  }

 private:
  TpsDomain& domain_;
  core::InteropRuntime& runtime_;
  std::size_t subscriptions_ = 0;
};

class TpsDomain {
 public:
  explicit TpsDomain(core::InteropSystem& system) : system_(system) {}

  /// Creates a runtime + node registered in this domain.
  TpsNode& create_node(std::string name, transport::PeerConfig config = {});

  [[nodiscard]] core::InteropSystem& system() noexcept { return system_; }
  [[nodiscard]] const std::vector<std::unique_ptr<TpsNode>>& nodes() const noexcept {
    return nodes_;
  }

 private:
  core::InteropSystem& system_;
  std::vector<std::unique_ptr<TpsNode>> nodes_;
};

}  // namespace pti::tps
