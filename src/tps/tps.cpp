#include "tps/tps.hpp"

namespace pti::tps {

TpsNode::TpsNode(TpsDomain& domain, core::InteropRuntime& runtime)
    : domain_(domain), runtime_(runtime) {}

void TpsNode::offer_assembly(std::shared_ptr<const reflect::Assembly> assembly) {
  runtime_.publish_assembly(std::move(assembly));
}

void TpsNode::subscribe(std::string_view event_type, EventCallback callback) {
  runtime_.subscribe(event_type, std::move(callback));
  ++subscriptions_;
}

PublishReport TpsNode::publish(const std::shared_ptr<reflect::DynObject>& event) {
  PublishReport report;
  for (const auto& node : domain_.nodes()) {
    if (node.get() == this || !node->has_subscriptions()) continue;
    ++report.recipients;
    const transport::PushAck ack = runtime_.send(node->name(), event);
    if (ack.delivered) ++report.delivered;
  }
  return report;
}

TpsNode& TpsDomain::create_node(std::string name, transport::PeerConfig config) {
  core::InteropRuntime& runtime =
      system_.create_runtime(std::move(name), std::move(config));
  nodes_.push_back(std::make_unique<TpsNode>(*this, runtime));
  return *nodes_.back();
}

}  // namespace pti::tps
