// Scenario — scripted population-scale workloads over the megasim.
//
// A Scenario wires one universe together — SimNetwork (deterministic
// transport + fault injection), AssemblyHub (whose InterestIndex is THE
// matching engine), TypeUniverse, and N LightweightPeers — and drives it
// through a ScenarioScript: publish storms (Zipf-skewed over types),
// churn (leave/rejoin with LIFO subscriber-id reuse), partition/heal
// waves, and settles, all as events on the EventLoop.
//
// Matching paths. A publish routes to "every live subscriber whose
// interest could match" (interest family in the published type's schema
// group — the topic-routing approximation); each receiver then runs the
// exact conformance gate, so accepts AND rejects both occur and the
// optimistic protocol has something to save. Target discovery goes
// through InterestIndex::collect_matches by default; with
// `use_inverted_index = false` it walks every live peer's own interest
// list instead — the pre-PR-8 shape, kept as the benchmark baseline and
// as a correctness pin: both paths must produce identical target sets,
// so the whole scenario digest must be identical under either flag.
//
// Determinism. Same seed => byte-identical ScenarioResult digests,
// regardless of host machine, thread count, or how many other scenarios
// run concurrently in the process. Everything mixed into a digest is a
// stable scenario-local index (peer index, family index) — NEVER a raw
// interned id or pointer, which depend on global interleaving.
//
// Thread safety: a Scenario is single-threaded; run several independent
// Scenarios on several threads to use more cores.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/lightweight_peer.hpp"
#include "sim/type_universe.hpp"
#include "transport/assembly_hub.hpp"
#include "transport/sim_network.hpp"
#include "util/hash.hpp"

namespace pti::sim {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  std::size_t peers = 1000;
  std::size_t types = 32;        ///< type families in the universe
  std::size_t type_groups = 8;   ///< conformance islands
  std::size_t interests_per_peer = 2;
  double zipf_exponent = 1.0;    ///< skew of type popularity (0 = uniform)
  transport::ProtocolMode mode = transport::ProtocolMode::Optimistic;
  /// Session-layer pushes: wire ids + raw payload + inline intros; the
  /// verdict/accept stream must match non-session runs while wire bytes
  /// and exchange counts collapse.
  bool use_sessions = false;
  /// With use_sessions, >1 defers deliveries into a window and flushes
  /// them as SessionBatch frames of at most this many entries per
  /// (publisher, target) pair. Windows close as soon as any pair fills,
  /// and ALWAYS before churn/partition/heal events, so every delivery
  /// observes exactly the network and interest state it would have seen
  /// unbatched — the accept stream is byte-identical to session_batch=1.
  std::size_t session_batch = 1;
  bool use_inverted_index = true;
  std::size_t fanout_cap = 64;   ///< deliveries per publish (keeps storms tractable)
  std::uint64_t event_interval_ns = 50'000;  ///< virtual spacing of scripted events
  std::size_t reclaim_every = 4096;  ///< deliveries between epoch reclaim sweeps
};

struct ScenarioStats {
  std::uint64_t publishes = 0;
  std::uint64_t deliveries = 0;  ///< pushes actually sent (post cap/partition)
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;
  std::uint64_t drops = 0;
  std::uint64_t leaves = 0;
  std::uint64_t joins = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t typeinfo_requests = 0;
  std::uint64_t code_requests = 0;
  std::uint64_t code_bytes_fetched = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t virtual_time_ns = 0;
  std::uint64_t index_subscribers = 0;
  std::uint64_t index_entries = 0;
  std::uint64_t session_batch_frames = 0;   ///< SessionBatch frames flushed
  std::uint64_t session_batch_entries = 0;  ///< deliveries those frames carried
};

struct ScenarioResult {
  /// Every event in execution order (publishes, deliveries, verdicts,
  /// churn, partitions) — the "byte-identical run" pin.
  std::uint64_t trace_digest = util::kFnvOffset64;
  /// Only (target, family, verdict, matched interest) — what eager and
  /// optimistic sweeps must agree on.
  std::uint64_t accept_digest = util::kFnvOffset64;
  /// The final ScenarioStats, folded in field order.
  std::uint64_t stats_digest = util::kFnvOffset64;
  ScenarioStats stats;
};

/// The workload DSL: a value object listing phases; Scenario::run
/// schedules and executes them. Phases overlap in virtual time only
/// where the script says so (a partition wave's heals land inside the
/// following storm, which is the point).
class ScenarioScript {
 public:
  ScenarioScript& publish_storm(std::size_t publishes);
  /// `leaves` peers depart, then `rejoins` departed peers return
  /// (interleaved one-per-event; rejoin order is FIFO over departures).
  ScenarioScript& churn(std::size_t leaves, std::size_t rejoins);
  /// Partitions `pairs` live peer pairs (both directions), healing each
  /// after `heal_after_ns` of virtual time.
  ScenarioScript& partition_wave(std::size_t pairs, std::uint64_t heal_after_ns);
  /// Advances virtual time with no workload (lets scheduled heals land).
  ScenarioScript& settle(std::uint64_t idle_ns);

  /// The reference mix used by CI and the soak sweep: storm, churn,
  /// partitioned storm, settle — scaled to the population.
  [[nodiscard]] static ScenarioScript standard(std::size_t peers);

 private:
  friend class Scenario;
  struct Step {
    enum class Kind : std::uint8_t { PublishStorm, Churn, PartitionWave, Settle };
    Kind kind;
    std::size_t a = 0;  ///< publishes / leaves / pairs
    std::size_t b = 0;  ///< rejoins
    std::uint64_t duration_ns = 0;  ///< heal delay / idle time
  };
  std::vector<Step> steps_;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the script to completion and returns the digests. One run per
  /// Scenario instance.
  ScenarioResult run(const ScenarioScript& script);

  [[nodiscard]] TypeUniverse& universe() noexcept { return *universe_; }
  [[nodiscard]] transport::InterestIndex& interests() noexcept { return hub_.interests(); }
  [[nodiscard]] transport::SimNetwork& network() noexcept { return net_; }

 private:
  void fire_publish();
  void fire_churn_leave();
  void fire_churn_rejoin();
  void fire_partition(std::uint64_t heal_after_ns);

  /// Sorted, deduplicated, publisher-excluded, capped target subscriber
  /// set for a publish of `family` — via the inverted index or the
  /// per-peer-list baseline, per config (identical results by contract).
  void match_targets(std::uint32_t family, transport::SubscriberId publisher,
                     std::vector<transport::SubscriberId>& out);

  [[nodiscard]] std::uint32_t pick_live_peer();
  [[nodiscard]] std::uint32_t draw_family();
  void remove_from_live(std::uint32_t peer);
  void maybe_reclaim();

  /// Applies one delivery outcome to stats and digests — the ONE mixing
  /// block both the immediate path and the deferred flush go through, so
  /// batching cannot drift from the pinned fold.
  void mix_delivery(std::uint32_t target, std::uint32_t family,
                    const LightweightPeer::PushOutcome& outcome, std::uint32_t matched);
  /// Sends every deferred delivery as SessionBatch frames (grouped by
  /// (publisher, target) pair in first-touch order, chunks of at most
  /// session_batch entries) and mixes outcomes in original delivery order.
  void flush_session_batches();

  void mix_trace(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                 std::uint64_t d = 0) noexcept;

  ScenarioConfig config_;
  transport::SimNetwork net_;
  transport::AssemblyHub hub_;
  std::unique_ptr<TypeUniverse> universe_;
  EventLoop loop_;
  std::vector<std::unique_ptr<LightweightPeer>> peers_;

  std::vector<std::uint32_t> live_;      ///< live peer indexes (swap-removed)
  std::vector<std::size_t> live_pos_;    ///< peer index -> position in live_
  std::deque<std::uint32_t> departed_;   ///< churned-out peers, FIFO rejoin
  std::vector<std::uint32_t> sub_to_peer_;  ///< SubscriberId -> peer index
  std::vector<double> zipf_cdf_;

  std::vector<transport::SubscriberId> target_scratch_;
  std::vector<util::InternedName> interest_scratch_;

  /// Deferred-delivery window for batched session mode.
  struct PendingDelivery {
    std::uint32_t publisher;
    std::uint32_t target;
    std::uint32_t family;
  };
  bool defer_deliveries_ = false;  ///< use_sessions && session_batch > 1
  std::vector<PendingDelivery> pending_deliveries_;
  std::unordered_map<std::uint64_t, std::size_t> pending_pair_counts_;

  std::uint64_t cursor_ns_ = 0;  ///< schedule-time cursor for script phases
  std::size_t since_reclaim_ = 0;
  ScenarioStats stats_;
  std::uint64_t trace_digest_ = util::kFnvOffset64;
  std::uint64_t accept_digest_ = util::kFnvOffset64;
};

/// Builds a Scenario, runs `script`, returns the result.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config,
                                          const ScenarioScript& script);

}  // namespace pti::sim
