#include "sim/type_universe.hpp"

#include <algorithm>
#include <memory>
#include <string_view>
#include <utility>

#include "conform/conformance_checker.hpp"
#include "reflect/type_builder.hpp"
#include "reflect/value.hpp"
#include "serial/envelope.hpp"
#include "serial/typedesc_xml.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace pti::sim {

namespace {

constexpr const char* kScalarTypes[] = {"int32", "int64", "string"};

struct Member {
  std::string name;
  std::string type;
};

/// A group's base shape: every family of the group derives from it, so
/// conformance clusters by group.
std::vector<Member> base_schema(std::uint32_t group, util::Rng& rng) {
  std::vector<Member> fields;
  const std::size_t count = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < count; ++i) {
    fields.push_back({"g" + std::to_string(group) + "f" + std::to_string(i),
                      kScalarTypes[rng.next_below(3)]});
  }
  return fields;
}

void add_getter(reflect::TypeBuilder& builder, const std::string& field,
                const std::string& type) {
  builder.method("get_" + field, type, {},
                 [field](reflect::DynObject& self, reflect::Args) {
                   return self.get(field);
                 });
}

/// How a family's interest relates to its group's base schema — mirrors
/// the protocol-fuzz modes: Copy/Subset conform, Mutated does not.
enum class InterestShape : std::uint8_t { Copy, Subset, Mutated };

}  // namespace

TypeUniverse::TypeUniverse(const TypeUniverseConfig& config, transport::AssemblyHub& hub)
    : serializers_(serial::SerializerRegistry::with_defaults()),
      groups_(config.groups == 0 ? 1 : std::min(config.groups, config.families)) {
  if (config.families == 0) {
    throw pti::Error("TypeUniverse needs at least one type family");
  }
  util::Rng rng(config.seed);

  std::vector<std::vector<Member>> bases;
  bases.reserve(groups_);
  for (std::uint32_t g = 0; g < groups_; ++g) bases.push_back(base_schema(g, rng));

  families_.resize(config.families);
  const std::size_t count = config.families;
  for (std::uint32_t t = 0; t < count; ++t) {
    Family& family = families_[t];
    const std::vector<Member>& base = bases[group_of(t)];
    const std::string pub_ns = "u" + std::to_string(t);
    const std::string int_ns = "i" + std::to_string(t);
    family.publisher_type = pub_ns + ".Thing";
    family.interest_type = int_ns + ".Thing";
    family.assembly = pub_ns + ".gen";

    // Publisher: the group's full shape, fields + getters.
    reflect::TypeBuilder publisher(pub_ns, "Thing");
    for (const Member& m : base) {
      publisher.field(m.name, m.type);
      add_getter(publisher, m.name, m.type);
    }
    auto pub_assembly = std::make_shared<reflect::Assembly>(family.assembly);
    pub_assembly->add_type(publisher.build());
    family.code_size = pub_assembly->simulated_code_size();
    hub.publish(pub_assembly);
    domain_.load_assembly(pub_assembly, "net://origin/" + family.assembly);

    // Interest: getters derived per the drawn shape. Draw order is fixed
    // (one draw per family), so the population replays from the seed.
    const auto shape = static_cast<InterestShape>(rng.next_below(3));
    std::vector<Member> getters = base;
    if (shape == InterestShape::Subset && getters.size() > 1) {
      getters.resize(1 + rng.next_below(getters.size()));
    } else if (shape == InterestShape::Mutated) {
      Member& victim = getters[rng.next_below(getters.size())];
      if (rng.next_bool(0.5)) {
        // Token-disjoint name: no member-name rule can realize it.
        victim.name = "zz" + std::to_string(t);
      } else {
        victim.type = victim.type == "string" ? "int32" : "string";
      }
    }
    reflect::TypeBuilder interest(int_ns, "Thing");
    for (const Member& m : getters) add_getter(interest, m.name, m.type);
    auto int_assembly = std::make_shared<reflect::Assembly>(int_ns + ".gen");
    int_assembly->add_type(interest.build());
    hub.publish(int_assembly);
    domain_.load_assembly(int_assembly, "net://origin/" + int_ns + ".gen");
  }

  // Cache the lookups and wire artifacts per family.
  serial::ObjectSerializer& serializer = serializers_.get("soap");
  for (std::uint32_t t = 0; t < count; ++t) {
    Family& family = families_[t];
    const reflect::TypeDescription* pub_desc =
        domain_.registry().find(family.publisher_type);
    const reflect::TypeDescription* int_desc =
        domain_.registry().find(family.interest_type);
    family.description_xml = serial::type_description_to_string(*pub_desc);
    family.description_hash = util::fnv1a64(family.description_xml);
    family.interest_id = int_desc->name_id();
    family.interest_fingerprint = int_desc->fingerprint();
    family_by_type_name_.emplace(family.publisher_type, t);
    family_by_interest_name_.emplace(family.interest_type, t);
    family_by_interest_id_.emplace(family.interest_id, t);

    // One real envelope per family: deterministic field values, true
    // serialized bytes. Receivers resolve the family by content hash.
    auto object = domain_.instantiate(family.publisher_type);
    const std::vector<Member>& base = bases[group_of(t)];
    for (std::size_t i = 0; i < base.size(); ++i) {
      const Member& m = base[i];
      if (m.type == "int32") {
        object->set(m.name, reflect::Value(static_cast<std::int32_t>(rng.next_below(100000))));
      } else if (m.type == "int64") {
        object->set(m.name, reflect::Value(static_cast<std::int64_t>(rng.next_u64() >> 8)));
      } else {
        object->set(m.name, reflect::Value("v" + std::to_string(t) + "_" + std::to_string(i)));
      }
    }
    serial::EnvelopeBuilder builder(serializer, &domain_.registry());
    serial::Envelope env = builder.build(reflect::Value(std::move(object)));
    payload_encoding_ = env.encoding;
    family.payload = env.payload;
    family.envelope = env.to_bytes();
    const std::uint64_t h = util::fnv1a64(std::string_view(
        reinterpret_cast<const char*>(family.envelope.data()), family.envelope.size()));
    family_by_envelope_hash_.emplace(h, t);
  }

  // Ground truth: the real checker decides every (publisher, interest)
  // pair once. LightweightPeer's per-delivery verdict is a probe of this
  // matrix — same engine, amortized.
  conform::ConformanceChecker checker(domain_.registry(), {}, &cache_);
  matrix_.assign(count * count, false);
  for (std::uint32_t k = 0; k < count; ++k) {
    const reflect::TypeDescription* source =
        domain_.registry().find(families_[k].publisher_type);
    for (std::uint32_t j = 0; j < count; ++j) {
      const reflect::TypeDescription* target =
          domain_.registry().find(families_[j].interest_type);
      matrix_[static_cast<std::size_t>(k) * count + j] =
          checker.check(*source, *target).conformant;
    }
  }
}

std::uint32_t TypeUniverse::type_of_envelope(
    const std::vector<std::uint8_t>& bytes) const noexcept {
  const std::uint64_t h = util::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  const auto it = family_by_envelope_hash_.find(h);
  return it == family_by_envelope_hash_.end() ? kNoType : it->second;
}

std::uint32_t TypeUniverse::type_by_name(const std::string& qualified_name) const noexcept {
  const auto it = family_by_type_name_.find(qualified_name);
  return it == family_by_type_name_.end() ? kNoType : it->second;
}

std::uint32_t TypeUniverse::interest_of_id(util::InternedName id) const noexcept {
  const auto it = family_by_interest_id_.find(id);
  return it == family_by_interest_id_.end() ? kNoType : it->second;
}

std::uint32_t TypeUniverse::interest_by_type_name(
    const std::string& qualified_name) const noexcept {
  const auto it = family_by_interest_name_.find(qualified_name);
  return it == family_by_interest_name_.end() ? kNoType : it->second;
}

}  // namespace pti::sim
