#include "sim/lightweight_peer.hpp"

#include <utility>
#include <variant>

#include "transport/transport_error.hpp"
#include "util/error.hpp"

namespace pti::sim {

using transport::CodeRequest;
using transport::CodeResponse;
using transport::ErrorReply;
using transport::Message;
using transport::ObjectPush;
using transport::PushAck;
using transport::SessionAck;
using transport::SessionBatch;
using transport::SessionBatchAck;
using transport::SessionIntro;
using transport::SessionPush;
using transport::SessionStatus;
using transport::TypeInfoRequest;
using transport::TypeInfoResponse;

LightweightPeer::LightweightPeer(std::uint32_t index, transport::Transport& network,
                                 TypeUniverse& universe,
                                 transport::InterestIndex& interests,
                                 transport::ProtocolMode mode, bool use_sessions,
                                 transport::IntroRegistry* intro_registry)
    : index_(index),
      name_("p" + std::to_string(index)),
      network_(network),
      universe_(universe),
      interests_(interests),
      mode_(mode),
      known_(universe.type_count(), false),
      loaded_(universe.type_count(), false),
      use_sessions_(use_sessions),
      intro_registry_(intro_registry) {}

LightweightPeer::~LightweightPeer() {
  if (live_) leave();
}

void LightweightPeer::set_interests(std::vector<std::uint32_t> interest_families) {
  interest_families_ = std::move(interest_families);
}

void LightweightPeer::join() {
  if (live_) return;
  sub_ = interests_.add_subscriber();
  for (const std::uint32_t family : interest_families_) {
    interests_.add_interest(sub_, universe_.interest_id(family),
                            universe_.interest_fingerprint(family));
  }
  network_.attach(name_, [this](const Message& m) { return handle(m); });
  live_ = true;
}

void LightweightPeer::leave() {
  if (!live_) return;
  network_.detach(name_);
  interests_.remove_subscriber(sub_);
  sub_ = transport::kNoSubscriber;
  live_ = false;
}

SessionPush LightweightPeer::build_session_entry(const std::string& target,
                                                 std::uint32_t family, bool fresh) {
  SessionPush push;
  push.token = index_ + 1;
  push.wire_types = {family + 1};
  push.encoding = universe_.payload_encoding();
  push.payload = universe_.payload_bytes(family);
  if (fresh) {
    SessionIntro intro;
    intro.wire_id = family + 1;
    intro.type_name = universe_.publisher_type_name(family);
    intro.description_xml = universe_.description_xml(family);
    intro.assembly_name = universe_.assembly_name(family);
    intro.download_path = "net://origin/" + universe_.assembly_name(family);
    if (intro_registry_ != nullptr &&
        intro_registry_->knows(target, universe_.description_hash(family))) {
      // The target advertised this hash earlier (to us or to any other
      // sender): the wire binding still crosses, the XML does not.
      intro.description_xml.clear();
    }
    push.intros.push_back(std::move(intro));
    if (mode_ == transport::ProtocolMode::Eager) {
      push.intro_assembly_names.push_back(universe_.assembly_name(family));
      push.intro_assembly_bytes = universe_.assembly_code_size(family);
    }
  }
  return push;
}

LightweightPeer::PushOutcome LightweightPeer::publish_session(const std::string& target,
                                                              std::uint32_t family) {
  // Publishing makes us the origin: we hold the description and code.
  known_[family] = true;
  loaded_[family] = true;
  std::vector<bool>& sent = intro_sent_[target];
  if (sent.empty()) sent.assign(universe_.type_count(), false);

  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool fresh = !sent[family];
    SessionPush push = build_session_entry(target, family, fresh);
    ++counters_.pushes_sent;
    try {
      const Message response = network_.send(Message{name_, target, std::move(push)});
      if (const auto* ack = std::get_if<SessionAck>(&response.payload)) {
        if (intro_registry_ != nullptr) {
          intro_registry_->record_all(target, ack->known_desc_hashes);
        }
        if (ack->status == SessionStatus::Reset) {
          // The receiver lost the session: replay once with the intro.
          sent.assign(universe_.type_count(), false);
          continue;
        }
        if (fresh) sent[family] = true;  // commit-on-ack
        PushOutcome outcome{ack->delivered, false, kNoInterest};
        if (ack->delivered) outcome.matched = universe_.interest_by_type_name(ack->detail);
        return outcome;
      }
      return PushOutcome{false, true, kNoInterest};  // in-band fault (ErrorReply)
    } catch (const pti::Error&) {
      return PushOutcome{false, true, kNoInterest};  // drop, partition, or quota
    }
  }
  return PushOutcome{false, true, kNoInterest};  // reset twice: give up on this push
}

std::vector<LightweightPeer::PushOutcome> LightweightPeer::publish_batch_to(
    const std::string& target, const std::vector<std::uint32_t>& families) {
  std::vector<PushOutcome> out(families.size(), PushOutcome{false, true, kNoInterest});
  if (families.empty()) return out;
  std::vector<bool>& sent = intro_sent_[target];
  if (sent.empty()) sent.assign(universe_.type_count(), false);

  // Plans are built at flush time, exactly like transport::Peer's window:
  // the FIRST entry for a family carries the intro, later entries in the
  // same frame ride the binding the receiver learns while processing it.
  SessionBatch batch;
  batch.entries.reserve(families.size());
  std::vector<bool> fresh(families.size(), false);
  std::vector<bool> introduced_now(universe_.type_count(), false);
  for (std::size_t i = 0; i < families.size(); ++i) {
    const std::uint32_t family = families[i];
    known_[family] = true;
    loaded_[family] = true;
    fresh[i] = !sent[family] && !introduced_now[family];
    if (fresh[i]) introduced_now[family] = true;
    batch.entries.push_back(build_session_entry(target, family, fresh[i]));
    ++counters_.pushes_sent;
  }

  try {
    const Message response = network_.send(Message{name_, target, std::move(batch)});
    const auto* back = std::get_if<SessionBatchAck>(&response.payload);
    if (back == nullptr || back->entries.size() != families.size()) {
      return out;  // in-band fault (ErrorReply) or malformed ack: all dropped
    }
    for (std::size_t i = 0; i < families.size(); ++i) {
      const SessionAck& ack = back->entries[i];
      if (intro_registry_ != nullptr) {
        intro_registry_->record_all(target, ack.known_desc_hashes);
      }
      if (ack.status == SessionStatus::Reset) {
        // This slot lost the session: replay it individually with intros,
        // leaving every other slot's verdict untouched.
        sent.assign(universe_.type_count(), false);
        --counters_.pushes_sent;  // publish_session recounts the replay
        out[i] = publish_session(target, families[i]);
        continue;
      }
      if (fresh[i]) sent[families[i]] = true;  // commit-on-ack, per slot
      out[i] = PushOutcome{ack.delivered, false, kNoInterest};
      if (ack.delivered) out[i].matched = universe_.interest_by_type_name(ack.detail);
    }
    return out;
  } catch (const pti::Error&) {
    return out;  // the whole frame dropped: every entry is a drop
  }
}

LightweightPeer::PushOutcome LightweightPeer::publish_to(const std::string& target,
                                                         std::uint32_t family) {
  if (use_sessions_) return publish_session(target, family);
  ObjectPush push;
  push.envelope = universe_.envelope_bytes(family);
  if (mode_ == transport::ProtocolMode::Eager) {
    push.eager_descriptions_xml.push_back(universe_.description_xml(family));
    push.eager_assembly_names.push_back(universe_.assembly_name(family));
    push.eager_assembly_bytes = universe_.assembly_code_size(family);
  }
  // Publishing makes us the origin: we hold the description and code.
  known_[family] = true;
  loaded_[family] = true;
  ++counters_.pushes_sent;
  try {
    const Message response = network_.send(Message{name_, target, std::move(push)});
    if (const auto* ack = std::get_if<PushAck>(&response.payload)) {
      return PushOutcome{ack->delivered, false};
    }
    return PushOutcome{false, true};  // in-band fault (ErrorReply)
  } catch (const pti::Error&) {
    return PushOutcome{false, true};  // drop, partition, or quota rejection
  }
}

Message LightweightPeer::handle(const Message& request) {
  try {
    if (const auto* push = std::get_if<ObjectPush>(&request.payload)) {
      return handle_push(request, *push);
    }
    if (const auto* spush = std::get_if<SessionPush>(&request.payload)) {
      return handle_session_push(request, *spush);
    }
    if (const auto* batch = std::get_if<SessionBatch>(&request.payload)) {
      return handle_session_batch(request, *batch);
    }
    if (const auto* info = std::get_if<TypeInfoRequest>(&request.payload)) {
      TypeInfoResponse response;
      for (const std::string& type_name : info->type_names) {
        const std::uint32_t family = universe_.type_by_name(type_name);
        if (family == TypeUniverse::kNoType || !known_[family]) {
          response.unknown.push_back(type_name);
        } else {
          response.descriptions_xml.push_back(universe_.description_xml(family));
          ++counters_.typeinfo_served;
        }
      }
      return Message{name_, request.sender, std::move(response)};
    }
    if (const auto* code = std::get_if<CodeRequest>(&request.payload)) {
      CodeResponse response;
      response.assembly_name = code->assembly_name;
      // Assembly name "u<t>.gen" maps back to its family via the type map.
      const std::string type_name =
          code->assembly_name.size() > 4
              ? code->assembly_name.substr(0, code->assembly_name.size() - 4) + ".Thing"
              : std::string();
      const std::uint32_t family = universe_.type_by_name(type_name);
      if (family != TypeUniverse::kNoType && loaded_[family]) {
        response.found = true;
        response.code_bytes = universe_.assembly_code_size(family);
        ++counters_.code_served;
      }
      return Message{name_, request.sender, std::move(response)};
    }
    return Message{name_, request.sender,
                   ErrorReply{"lightweight peer '" + name_ + "' cannot handle " +
                              request.kind_name()}};
  } catch (const pti::Error& e) {
    // A nested fetch hit a drop or partition mid-handler: surface it as
    // the in-band fault the publisher counts as a drop.
    return Message{name_, request.sender, ErrorReply{e.what()}};
  }
}

Message LightweightPeer::handle_session_push(const Message& request,
                                             const SessionPush& push) {
  return Message{name_, request.sender, process_session_push(request.sender, push)};
}

Message LightweightPeer::handle_session_batch(const Message& request,
                                              const SessionBatch& batch) {
  // Strict order, one verdict per slot: the ack stream a batch produces is
  // exactly the concatenation of the per-push acks.
  SessionBatchAck back;
  back.entries.reserve(batch.entries.size());
  for (const SessionPush& entry : batch.entries) {
    back.entries.push_back(process_session_push(request.sender, entry));
  }
  return Message{name_, request.sender, std::move(back)};
}

SessionAck LightweightPeer::process_session_push(const std::string& sender,
                                                 const SessionPush& push) {
  ++counters_.pushes_received;
  last_matched_ = kNoInterest;

  std::vector<bool>& wire_known = session_known_[sender];
  if (wire_known.empty()) wire_known.assign(universe_.type_count(), false);
  // Descriptions that actually crossed the wire in this push get their
  // hashes advertised back, so ANY sender can skip those bytes next time.
  std::vector<std::uint64_t> advertised;
  for (const SessionIntro& intro : push.intros) {
    const std::uint32_t f = universe_.type_by_name(intro.type_name);
    if (f != TypeUniverse::kNoType && intro.wire_id == f + 1) {
      wire_known[f] = true;
      known_[f] = true;
      if (!intro.description_xml.empty()) {
        advertised.push_back(universe_.description_hash(f));
      }
    }
  }
  // Eager prepay: the intro's assembly arrived with the push.
  for (const std::string& assembly_name : push.intro_assembly_names) {
    for (const SessionIntro& intro : push.intros) {
      if (intro.assembly_name != assembly_name) continue;
      const std::uint32_t f = universe_.type_by_name(intro.type_name);
      if (f != TypeUniverse::kNoType) loaded_[f] = true;
    }
  }

  if (push.wire_types.empty()) {
    ++counters_.rejected;
    return SessionAck{SessionStatus::Ok, false, "no object types", std::move(advertised)};
  }
  const std::uint32_t wire = push.wire_types.front();
  if (wire == 0 || wire > universe_.type_count() || !wire_known[wire - 1]) {
    // A Reset ack carries the full known-description set: the sender's
    // replay can skip every description this receiver already holds.
    advertised.clear();
    for (std::uint32_t f = 0; f < universe_.type_count(); ++f) {
      if (known_[f]) advertised.push_back(universe_.description_hash(f));
    }
    return SessionAck{SessionStatus::Reset, false, "session state lost",
                      std::move(advertised)};
  }
  const std::uint32_t family = wire - 1;

  // Conformance: the same shared-index scan and matrix probe as the cold
  // path — session mode must agree on every verdict.
  const auto match = interests_.match_first(sub_, [&](const transport::InterestEntry& e) {
    const std::uint32_t interest = universe_.interest_of_id(e.interest);
    return interest != TypeUniverse::kNoType && universe_.conforms(family, interest);
  });
  if (!match) {
    ++counters_.rejected;
    return SessionAck{SessionStatus::Ok, false, "no interest conforms",
                      std::move(advertised)};
  }
  last_matched_ = universe_.interest_of_id(match->interest);

  // First acceptance from a cold optimistic session still fetches code in
  // a nested exchange; every later push skips it via loaded_.
  if (!loaded_[family]) {
    ++counters_.code_requests;
    const Message response =
        network_.send(Message{name_, sender, CodeRequest{universe_.assembly_name(family)}});
    const auto* code = std::get_if<CodeResponse>(&response.payload);
    if (code == nullptr || !code->found) {
      ++counters_.rejected;
      last_matched_ = kNoInterest;
      return SessionAck{SessionStatus::Ok, false, "code unavailable",
                        std::move(advertised)};
    }
    counters_.code_bytes_fetched += code->code_bytes;
    loaded_[family] = true;
  }

  ++counters_.accepted;
  return SessionAck{SessionStatus::Ok, true, universe_.interest_type_name(last_matched_),
                    std::move(advertised)};
}

Message LightweightPeer::handle_push(const Message& request, const ObjectPush& push) {
  ++counters_.pushes_received;
  last_matched_ = kNoInterest;
  const std::uint32_t family = universe_.type_of_envelope(push.envelope);
  if (family == TypeUniverse::kNoType) {
    ++counters_.rejected;
    return Message{name_, request.sender, PushAck{false, "unknown envelope"}};
  }

  // Eager extras land first, exactly as in Peer::handle_object_push.
  if (!push.eager_descriptions_xml.empty()) known_[family] = true;
  if (!push.eager_assembly_names.empty()) loaded_[family] = true;

  // Step 2: fetch the description when the type is unknown.
  if (!known_[family]) {
    ++counters_.typeinfo_requests;
    const Message response = network_.send(Message{
        name_, request.sender, TypeInfoRequest{{universe_.publisher_type_name(family)}}});
    const auto* info = std::get_if<TypeInfoResponse>(&response.payload);
    if (info == nullptr || info->descriptions_xml.empty()) {
      ++counters_.rejected;
      return Message{name_, request.sender, PushAck{false, "sender cannot describe"}};
    }
    known_[family] = true;
  }

  // Step 3: first conformant interest in declaration order, through the
  // SAME shared index engine Peer uses; the verdict itself is the
  // checker-built matrix.
  const auto match = interests_.match_first(sub_, [&](const transport::InterestEntry& e) {
    const std::uint32_t interest = universe_.interest_of_id(e.interest);
    return interest != TypeUniverse::kNoType && universe_.conforms(family, interest);
  });
  if (!match) {
    // The optimistic pay-off: rejection without any code download.
    ++counters_.rejected;
    return Message{name_, request.sender, PushAck{false, "no interest conforms"}};
  }
  last_matched_ = universe_.interest_of_id(match->interest);

  // Steps 4+5: download the code once per family.
  if (!loaded_[family]) {
    ++counters_.code_requests;
    const Message response = network_.send(
        Message{name_, request.sender, CodeRequest{universe_.assembly_name(family)}});
    const auto* code = std::get_if<CodeResponse>(&response.payload);
    if (code == nullptr || !code->found) {
      ++counters_.rejected;
      last_matched_ = kNoInterest;
      return Message{name_, request.sender, PushAck{false, "code unavailable"}};
    }
    counters_.code_bytes_fetched += code->code_bytes;
    loaded_[family] = true;
  }

  ++counters_.accepted;
  return Message{name_, request.sender,
                 PushAck{true, universe_.interest_type_name(last_matched_)}};
}

}  // namespace pti::sim
