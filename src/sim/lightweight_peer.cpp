#include "sim/lightweight_peer.hpp"

#include <utility>
#include <variant>

#include "transport/transport_error.hpp"
#include "util/error.hpp"

namespace pti::sim {

using transport::CodeRequest;
using transport::CodeResponse;
using transport::ErrorReply;
using transport::Message;
using transport::ObjectPush;
using transport::PushAck;
using transport::SessionAck;
using transport::SessionIntro;
using transport::SessionPush;
using transport::SessionStatus;
using transport::TypeInfoRequest;
using transport::TypeInfoResponse;

LightweightPeer::LightweightPeer(std::uint32_t index, transport::Transport& network,
                                 TypeUniverse& universe,
                                 transport::InterestIndex& interests,
                                 transport::ProtocolMode mode, bool use_sessions)
    : index_(index),
      name_("p" + std::to_string(index)),
      network_(network),
      universe_(universe),
      interests_(interests),
      mode_(mode),
      known_(universe.type_count(), false),
      loaded_(universe.type_count(), false),
      use_sessions_(use_sessions) {}

LightweightPeer::~LightweightPeer() {
  if (live_) leave();
}

void LightweightPeer::set_interests(std::vector<std::uint32_t> interest_families) {
  interest_families_ = std::move(interest_families);
}

void LightweightPeer::join() {
  if (live_) return;
  sub_ = interests_.add_subscriber();
  for (const std::uint32_t family : interest_families_) {
    interests_.add_interest(sub_, universe_.interest_id(family),
                            universe_.interest_fingerprint(family));
  }
  network_.attach(name_, [this](const Message& m) { return handle(m); });
  live_ = true;
}

void LightweightPeer::leave() {
  if (!live_) return;
  network_.detach(name_);
  interests_.remove_subscriber(sub_);
  sub_ = transport::kNoSubscriber;
  live_ = false;
}

LightweightPeer::PushOutcome LightweightPeer::publish_session(const std::string& target,
                                                              std::uint32_t family) {
  // Publishing makes us the origin: we hold the description and code.
  known_[family] = true;
  loaded_[family] = true;
  std::vector<bool>& sent = intro_sent_[target];
  if (sent.empty()) sent.assign(universe_.type_count(), false);

  for (int attempt = 0; attempt < 2; ++attempt) {
    SessionPush push;
    push.token = index_ + 1;
    push.wire_types = {family + 1};
    push.encoding = universe_.payload_encoding();
    push.payload = universe_.payload_bytes(family);
    const bool fresh = !sent[family];
    if (fresh) {
      SessionIntro intro;
      intro.wire_id = family + 1;
      intro.type_name = universe_.publisher_type_name(family);
      intro.description_xml = universe_.description_xml(family);
      intro.assembly_name = universe_.assembly_name(family);
      intro.download_path = "net://origin/" + universe_.assembly_name(family);
      push.intros.push_back(std::move(intro));
      if (mode_ == transport::ProtocolMode::Eager) {
        push.intro_assembly_names.push_back(universe_.assembly_name(family));
        push.intro_assembly_bytes = universe_.assembly_code_size(family);
      }
    }
    ++counters_.pushes_sent;
    try {
      const Message response = network_.send(Message{name_, target, std::move(push)});
      if (const auto* ack = std::get_if<SessionAck>(&response.payload)) {
        if (ack->status == SessionStatus::Reset) {
          // The receiver lost the session: replay once with the intro.
          sent.assign(universe_.type_count(), false);
          continue;
        }
        if (fresh) sent[family] = true;  // commit-on-ack
        return PushOutcome{ack->delivered, false};
      }
      return PushOutcome{false, true};  // in-band fault (ErrorReply)
    } catch (const pti::Error&) {
      return PushOutcome{false, true};  // drop, partition, or quota rejection
    }
  }
  return PushOutcome{false, true};  // reset twice: give up on this push
}

LightweightPeer::PushOutcome LightweightPeer::publish_to(const std::string& target,
                                                         std::uint32_t family) {
  if (use_sessions_) return publish_session(target, family);
  ObjectPush push;
  push.envelope = universe_.envelope_bytes(family);
  if (mode_ == transport::ProtocolMode::Eager) {
    push.eager_descriptions_xml.push_back(universe_.description_xml(family));
    push.eager_assembly_names.push_back(universe_.assembly_name(family));
    push.eager_assembly_bytes = universe_.assembly_code_size(family);
  }
  // Publishing makes us the origin: we hold the description and code.
  known_[family] = true;
  loaded_[family] = true;
  ++counters_.pushes_sent;
  try {
    const Message response = network_.send(Message{name_, target, std::move(push)});
    if (const auto* ack = std::get_if<PushAck>(&response.payload)) {
      return PushOutcome{ack->delivered, false};
    }
    return PushOutcome{false, true};  // in-band fault (ErrorReply)
  } catch (const pti::Error&) {
    return PushOutcome{false, true};  // drop, partition, or quota rejection
  }
}

Message LightweightPeer::handle(const Message& request) {
  try {
    if (const auto* push = std::get_if<ObjectPush>(&request.payload)) {
      return handle_push(request, *push);
    }
    if (const auto* spush = std::get_if<SessionPush>(&request.payload)) {
      return handle_session_push(request, *spush);
    }
    if (const auto* info = std::get_if<TypeInfoRequest>(&request.payload)) {
      TypeInfoResponse response;
      for (const std::string& type_name : info->type_names) {
        const std::uint32_t family = universe_.type_by_name(type_name);
        if (family == TypeUniverse::kNoType || !known_[family]) {
          response.unknown.push_back(type_name);
        } else {
          response.descriptions_xml.push_back(universe_.description_xml(family));
          ++counters_.typeinfo_served;
        }
      }
      return Message{name_, request.sender, std::move(response)};
    }
    if (const auto* code = std::get_if<CodeRequest>(&request.payload)) {
      CodeResponse response;
      response.assembly_name = code->assembly_name;
      // Assembly name "u<t>.gen" maps back to its family via the type map.
      const std::string type_name =
          code->assembly_name.size() > 4
              ? code->assembly_name.substr(0, code->assembly_name.size() - 4) + ".Thing"
              : std::string();
      const std::uint32_t family = universe_.type_by_name(type_name);
      if (family != TypeUniverse::kNoType && loaded_[family]) {
        response.found = true;
        response.code_bytes = universe_.assembly_code_size(family);
        ++counters_.code_served;
      }
      return Message{name_, request.sender, std::move(response)};
    }
    return Message{name_, request.sender,
                   ErrorReply{"lightweight peer '" + name_ + "' cannot handle " +
                              request.kind_name()}};
  } catch (const pti::Error& e) {
    // A nested fetch hit a drop or partition mid-handler: surface it as
    // the in-band fault the publisher counts as a drop.
    return Message{name_, request.sender, ErrorReply{e.what()}};
  }
}

Message LightweightPeer::handle_session_push(const Message& request,
                                             const SessionPush& push) {
  ++counters_.pushes_received;
  last_matched_ = kNoInterest;

  std::vector<bool>& wire_known = session_known_[request.sender];
  if (wire_known.empty()) wire_known.assign(universe_.type_count(), false);
  for (const SessionIntro& intro : push.intros) {
    const std::uint32_t f = universe_.type_by_name(intro.type_name);
    if (f != TypeUniverse::kNoType && intro.wire_id == f + 1) {
      wire_known[f] = true;
      known_[f] = true;
    }
  }
  // Eager prepay: the intro's assembly arrived with the push.
  for (const std::string& assembly_name : push.intro_assembly_names) {
    for (const SessionIntro& intro : push.intros) {
      if (intro.assembly_name != assembly_name) continue;
      const std::uint32_t f = universe_.type_by_name(intro.type_name);
      if (f != TypeUniverse::kNoType) loaded_[f] = true;
    }
  }

  if (push.wire_types.empty()) {
    ++counters_.rejected;
    return Message{name_, request.sender,
                   SessionAck{SessionStatus::Ok, false, "no object types"}};
  }
  const std::uint32_t wire = push.wire_types.front();
  if (wire == 0 || wire > universe_.type_count() || !wire_known[wire - 1]) {
    return Message{name_, request.sender,
                   SessionAck{SessionStatus::Reset, false, "session state lost"}};
  }
  const std::uint32_t family = wire - 1;

  // Conformance: the same shared-index scan and matrix probe as the cold
  // path — session mode must agree on every verdict.
  const auto match = interests_.match_first(sub_, [&](const transport::InterestEntry& e) {
    const std::uint32_t interest = universe_.interest_of_id(e.interest);
    return interest != TypeUniverse::kNoType && universe_.conforms(family, interest);
  });
  if (!match) {
    ++counters_.rejected;
    return Message{name_, request.sender,
                   SessionAck{SessionStatus::Ok, false, "no interest conforms"}};
  }
  last_matched_ = universe_.interest_of_id(match->interest);

  // First acceptance from a cold optimistic session still fetches code in
  // a nested exchange; every later push skips it via loaded_.
  if (!loaded_[family]) {
    ++counters_.code_requests;
    const Message response = network_.send(
        Message{name_, request.sender, CodeRequest{universe_.assembly_name(family)}});
    const auto* code = std::get_if<CodeResponse>(&response.payload);
    if (code == nullptr || !code->found) {
      ++counters_.rejected;
      last_matched_ = kNoInterest;
      return Message{name_, request.sender,
                     SessionAck{SessionStatus::Ok, false, "code unavailable"}};
    }
    counters_.code_bytes_fetched += code->code_bytes;
    loaded_[family] = true;
  }

  ++counters_.accepted;
  return Message{name_, request.sender,
                 SessionAck{SessionStatus::Ok, true,
                            universe_.interest_type_name(last_matched_)}};
}

Message LightweightPeer::handle_push(const Message& request, const ObjectPush& push) {
  ++counters_.pushes_received;
  last_matched_ = kNoInterest;
  const std::uint32_t family = universe_.type_of_envelope(push.envelope);
  if (family == TypeUniverse::kNoType) {
    ++counters_.rejected;
    return Message{name_, request.sender, PushAck{false, "unknown envelope"}};
  }

  // Eager extras land first, exactly as in Peer::handle_object_push.
  if (!push.eager_descriptions_xml.empty()) known_[family] = true;
  if (!push.eager_assembly_names.empty()) loaded_[family] = true;

  // Step 2: fetch the description when the type is unknown.
  if (!known_[family]) {
    ++counters_.typeinfo_requests;
    const Message response = network_.send(Message{
        name_, request.sender, TypeInfoRequest{{universe_.publisher_type_name(family)}}});
    const auto* info = std::get_if<TypeInfoResponse>(&response.payload);
    if (info == nullptr || info->descriptions_xml.empty()) {
      ++counters_.rejected;
      return Message{name_, request.sender, PushAck{false, "sender cannot describe"}};
    }
    known_[family] = true;
  }

  // Step 3: first conformant interest in declaration order, through the
  // SAME shared index engine Peer uses; the verdict itself is the
  // checker-built matrix.
  const auto match = interests_.match_first(sub_, [&](const transport::InterestEntry& e) {
    const std::uint32_t interest = universe_.interest_of_id(e.interest);
    return interest != TypeUniverse::kNoType && universe_.conforms(family, interest);
  });
  if (!match) {
    // The optimistic pay-off: rejection without any code download.
    ++counters_.rejected;
    return Message{name_, request.sender, PushAck{false, "no interest conforms"}};
  }
  last_matched_ = universe_.interest_of_id(match->interest);

  // Steps 4+5: download the code once per family.
  if (!loaded_[family]) {
    ++counters_.code_requests;
    const Message response = network_.send(
        Message{name_, request.sender, CodeRequest{universe_.assembly_name(family)}});
    const auto* code = std::get_if<CodeResponse>(&response.payload);
    if (code == nullptr || !code->found) {
      ++counters_.rejected;
      last_matched_ = kNoInterest;
      return Message{name_, request.sender, PushAck{false, "code unavailable"}};
    }
    counters_.code_bytes_fetched += code->code_bytes;
    loaded_[family] = true;
  }

  ++counters_.accepted;
  return Message{name_, request.sender,
                 PushAck{true, universe_.interest_type_name(last_matched_)}};
}

}  // namespace pti::sim
