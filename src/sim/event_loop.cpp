#include "sim/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace pti::sim {

void EventLoop::at(std::uint64_t time_ns, std::function<void()> action) {
  heap_.push_back(Event{std::max(time_ns, now_ns_), next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventLoop::Event EventLoop::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

void EventLoop::fire(Event event) {
  now_ns_ = std::max(now_ns_, event.time_ns);
  if (clock_ != nullptr) clock_->advance_to_ns(now_ns_);
  event.action();
}

std::size_t EventLoop::run() {
  std::size_t fired = 0;
  while (!heap_.empty()) {
    fire(pop());
    ++fired;
  }
  return fired;
}

std::size_t EventLoop::run_until(std::uint64_t time_ns) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.front().time_ns <= time_ns) {
    fire(pop());
    ++fired;
  }
  now_ns_ = std::max(now_ns_, time_ns);
  if (clock_ != nullptr) clock_->advance_to_ns(now_ns_);
  return fired;
}

}  // namespace pti::sim
