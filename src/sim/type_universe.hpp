// TypeUniverse — the megasim's deterministic population of types.
//
// Drives the same machinery the real peers use — TypeBuilder-built
// assemblies, one shared Domain/TypeRegistry, the real
// ConformanceChecker — but precomputes everything a million deliveries
// would otherwise recompute per message:
//
//   * one publisher type per family ("u<t>.Thing": fields + getters) and
//     one interest type ("i<t>.Thing": getters only), generated from
//     per-group base schemas so conformance is nontrivial: families of a
//     group share a schema (Copy/Subset interests conform; Mutated ones
//     do not; cross-group never);
//   * the T x T ground-truth conformance matrix, computed ONCE by the
//     real checker — LightweightPeer's receive-path verdict is a bit
//     probe where Peer's is a checker call, with identical semantics;
//   * per-family envelope bytes (real serial::Envelope serialization) and
//     an FNV(bytes) -> family map, so receivers resolve the pushed type
//     without an XML parse per delivery — the bytes still cross the
//     simulated wire at full size, so cost accounting stays honest;
//   * cached description XML and assembly sizes for TypeInfo/Code replies.
//
// Thread safety: construction is single-threaded; afterwards the universe
// is immutable and may be shared by any number of reading peers.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "conform/conformance_cache.hpp"
#include "reflect/domain.hpp"
#include "serial/object_serializer.hpp"
#include "transport/assembly_hub.hpp"
#include "util/interning.hpp"

namespace pti::sim {

struct TypeUniverseConfig {
  std::uint64_t seed = 1;
  std::size_t families = 32;  ///< distinct (publisher, interest) type pairs
  std::size_t groups = 8;     ///< schema-sharing clusters (conformance islands)
};

class TypeUniverse {
 public:
  static constexpr std::uint32_t kNoType = 0xFFFFFFFFu;

  /// Builds the population, loads every assembly into the shared domain
  /// and publishes it to `hub` (the universe's peers download from there).
  TypeUniverse(const TypeUniverseConfig& config, transport::AssemblyHub& hub);
  TypeUniverse(const TypeUniverse&) = delete;
  TypeUniverse& operator=(const TypeUniverse&) = delete;

  [[nodiscard]] std::size_t type_count() const noexcept { return families_.size(); }
  [[nodiscard]] std::uint32_t group_of(std::uint32_t family) const noexcept {
    return family % static_cast<std::uint32_t>(groups_);
  }

  // --- publisher side ---------------------------------------------------
  [[nodiscard]] const std::string& publisher_type_name(std::uint32_t family) const {
    return families_[family].publisher_type;
  }
  [[nodiscard]] const std::string& description_xml(std::uint32_t family) const {
    return families_[family].description_xml;
  }
  /// FNV-64 of the family's description XML — the content hash peers
  /// advertise and the intro registry stores, computed once per family.
  [[nodiscard]] std::uint64_t description_hash(std::uint32_t family) const noexcept {
    return families_[family].description_hash;
  }
  [[nodiscard]] const std::string& assembly_name(std::uint32_t family) const {
    return families_[family].assembly;
  }
  [[nodiscard]] std::uint64_t assembly_code_size(std::uint32_t family) const {
    return families_[family].code_size;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& envelope_bytes(std::uint32_t family) const {
    return families_[family].envelope;
  }
  /// Raw serialized payload of the family's canonical object — what a
  /// session-mode push carries instead of the full XML envelope.
  [[nodiscard]] const std::vector<std::uint8_t>& payload_bytes(std::uint32_t family) const {
    return families_[family].payload;
  }
  /// Serializer name of the precomputed payloads (same for every family).
  [[nodiscard]] const std::string& payload_encoding() const noexcept {
    return payload_encoding_;
  }
  /// Family whose precomputed envelope these bytes are; kNoType otherwise.
  [[nodiscard]] std::uint32_t type_of_envelope(
      const std::vector<std::uint8_t>& bytes) const noexcept;
  /// Family whose publisher type has this qualified name; kNoType otherwise.
  [[nodiscard]] std::uint32_t type_by_name(const std::string& qualified_name) const noexcept;

  // --- interest side ----------------------------------------------------
  [[nodiscard]] const std::string& interest_type_name(std::uint32_t family) const {
    return families_[family].interest_type;
  }
  [[nodiscard]] util::InternedName interest_id(std::uint32_t family) const noexcept {
    return families_[family].interest_id;
  }
  [[nodiscard]] std::uint64_t interest_fingerprint(std::uint32_t family) const noexcept {
    return families_[family].interest_fingerprint;
  }
  /// Family whose interest type has this interned id; kNoType otherwise.
  [[nodiscard]] std::uint32_t interest_of_id(util::InternedName id) const noexcept;
  /// Family whose interest type has this qualified name; kNoType otherwise.
  [[nodiscard]] std::uint32_t interest_by_type_name(
      const std::string& qualified_name) const noexcept;

  // --- ground truth -----------------------------------------------------
  /// Whether publisher type `publisher` conforms to interest `interest`,
  /// as decided once by the real ConformanceChecker.
  [[nodiscard]] bool conforms(std::uint32_t publisher, std::uint32_t interest) const noexcept {
    return matrix_[static_cast<std::size_t>(publisher) * families_.size() + interest];
  }

  [[nodiscard]] reflect::Domain& domain() noexcept { return domain_; }

 private:
  struct Family {
    std::string publisher_type;   ///< "u<t>.Thing"
    std::string interest_type;    ///< "i<t>.Thing"
    std::string assembly;         ///< publisher assembly name
    std::uint64_t code_size = 0;  ///< simulated size of that assembly
    std::string description_xml;  ///< publisher type description
    std::uint64_t description_hash = 0;  ///< FNV-64 of description_xml
    std::vector<std::uint8_t> envelope;
    std::vector<std::uint8_t> payload;  ///< envelope's raw payload bytes
    util::InternedName interest_id;
    std::uint64_t interest_fingerprint = 0;
  };

  reflect::Domain domain_;
  serial::SerializerRegistry serializers_;
  conform::ConformanceCache cache_;
  std::size_t groups_ = 1;
  std::string payload_encoding_;
  std::vector<Family> families_;
  std::vector<bool> matrix_;  ///< families x families, row = publisher
  std::unordered_map<std::uint64_t, std::uint32_t> family_by_envelope_hash_;
  std::unordered_map<std::string, std::uint32_t> family_by_type_name_;
  std::unordered_map<std::string, std::uint32_t> family_by_interest_name_;
  std::unordered_map<util::InternedName, std::uint32_t> family_by_interest_id_;
};

}  // namespace pti::sim
