// LightweightPeer — a full protocol participant at population weight.
//
// Where transport::Peer carries a Domain, checker, serializer registry,
// proxy factory and per-peer caches (~tens of KB plus per-message XML
// work), a LightweightPeer carries two bitsets and a counter block
// (~hundreds of bytes), which is what makes 10^5-10^6 of them tractable.
// What it does NOT lighten is the protocol: it attaches to the same
// Transport seam, exchanges the same ObjectPush/TypeInfoRequest/
// CodeRequest messages with real envelope bytes and real description XML
// crossing the (simulated) wire, registers interests in the same shared
// InterestIndex, and matches via the same match_first scan Peer uses.
// The differences are all precomputation, delegated to TypeUniverse:
//   * pushed-type resolution is a content-hash probe, not an XML parse;
//   * the conformance verdict is a matrix probe, not a checker run (the
//     matrix was filled by the real checker, once);
//   * "known descriptions" and "loaded assemblies" are bitsets over the
//     universe's families instead of registry/domain state.
//
// Optimistic mode fetches descriptions and code on demand and skips the
// code fetch entirely on rejection — the paper's saving. Eager mode ships
// both with every push. The accept/reject decisions are identical.
//
// Thread safety: none; drive from the owning scenario's event loop.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/type_universe.hpp"
#include "transport/interest_index.hpp"
#include "transport/intro_registry.hpp"
#include "transport/peer.hpp"
#include "transport/transport.hpp"

namespace pti::sim {

/// Per-peer protocol counters (aggregated by the scenario's digests).
struct PeerCounters {
  std::uint64_t pushes_sent = 0;
  std::uint64_t pushes_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t typeinfo_requests = 0;
  std::uint64_t typeinfo_served = 0;
  std::uint64_t code_requests = 0;
  std::uint64_t code_served = 0;
  std::uint64_t code_bytes_fetched = 0;
};

class LightweightPeer {
 public:
  static constexpr std::uint32_t kNoInterest = 0xFFFFFFFFu;

  LightweightPeer(std::uint32_t index, transport::Transport& network,
                  TypeUniverse& universe, transport::InterestIndex& interests,
                  transport::ProtocolMode mode, bool use_sessions = false,
                  transport::IntroRegistry* intro_registry = nullptr);
  ~LightweightPeer();
  LightweightPeer(const LightweightPeer&) = delete;
  LightweightPeer& operator=(const LightweightPeer&) = delete;

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool live() const noexcept { return live_; }
  [[nodiscard]] transport::SubscriberId subscriber() const noexcept { return sub_; }

  /// The interest families this peer subscribes with (fixed across
  /// leave/rejoin, so churn is reversible and deterministic). Set before
  /// the first join().
  void set_interests(std::vector<std::uint32_t> interest_families);
  [[nodiscard]] const std::vector<std::uint32_t>& interest_families() const noexcept {
    return interest_families_;
  }

  /// Attaches to the network and registers every interest in the shared
  /// index (idempotent when live).
  void join();
  /// Detaches and unregisters; the subscriber id returns to the index's
  /// free list (reused LIFO — part of the determinism contract).
  void leave();

  struct PushOutcome {
    bool delivered = false;  ///< receiver accepted (a conformant interest)
    bool dropped = false;    ///< the network dropped or faulted the exchange
    /// Interest family the receiver matched (kNoInterest unless delivered).
    /// Filled by the session paths from the ack detail; the cold path
    /// reports it via the receiver's last_matched_interest() instead.
    std::uint32_t matched = kNoInterest;
  };
  /// Publishes family `family` to `target` (one full protocol exchange).
  PushOutcome publish_to(const std::string& target, std::uint32_t family);
  /// Publishes several families to `target` as ONE SessionBatch frame
  /// (session mode only). Entries are processed by the receiver in order
  /// and acked positionally; a Reset slot is replayed individually, so a
  /// refused entry never desynchronises the rest. Per-entry outcomes come
  /// back in input order.
  std::vector<PushOutcome> publish_batch_to(const std::string& target,
                                            const std::vector<std::uint32_t>& families);

  /// Interest family matched by the most recent accepted push delivered
  /// TO this peer (kNoInterest when the last push was rejected). Valid
  /// between events on the single-threaded scenario loop.
  [[nodiscard]] std::uint32_t last_matched_interest() const noexcept {
    return last_matched_;
  }

  [[nodiscard]] const PeerCounters& counters() const noexcept { return counters_; }

 private:
  [[nodiscard]] transport::Message handle(const transport::Message& request);
  [[nodiscard]] transport::Message handle_push(const transport::Message& request,
                                               const transport::ObjectPush& push);
  [[nodiscard]] transport::Message handle_session_push(
      const transport::Message& request, const transport::SessionPush& push);
  [[nodiscard]] transport::Message handle_session_batch(
      const transport::Message& request, const transport::SessionBatch& batch);
  /// Receive-path core shared by single pushes and batch entries: learns
  /// intros, decides the verdict, advertises learned description hashes.
  [[nodiscard]] transport::SessionAck process_session_push(
      const std::string& sender, const transport::SessionPush& push);
  /// Builds one SessionPush for `family`; when `fresh`, attaches the intro
  /// (description bytes elided when the shared registry says `target`
  /// already advertised the hash).
  [[nodiscard]] transport::SessionPush build_session_entry(const std::string& target,
                                                           std::uint32_t family,
                                                           bool fresh);
  PushOutcome publish_session(const std::string& target, std::uint32_t family);

  std::uint32_t index_;
  std::string name_;
  transport::Transport& network_;
  TypeUniverse& universe_;
  transport::InterestIndex& interests_;
  transport::ProtocolMode mode_;

  bool live_ = false;
  transport::SubscriberId sub_ = transport::kNoSubscriber;
  std::vector<std::uint32_t> interest_families_;
  /// Families whose description / code this peer holds. Knowledge
  /// survives leave/rejoin (a rejoining peer keeps its caches), exactly
  /// like a real peer's registry.
  std::vector<bool> known_;
  std::vector<bool> loaded_;
  std::uint32_t last_matched_ = kNoInterest;
  PeerCounters counters_;

  /// Session mode: pushes travel as SessionPush frames (wire id = family
  /// index + 1, token = peer index + 1 — both scenario-local, digest-safe).
  /// Sender side tracks which families each target acknowledged an intro
  /// for (commit-on-ack); receiver side mirrors which wire ids each sender
  /// introduced. Both survive leave/rejoin, exactly like known_/loaded_.
  bool use_sessions_ = false;
  std::unordered_map<std::string, std::vector<bool>> intro_sent_;
  std::unordered_map<std::string, std::vector<bool>> session_known_;
  /// Scenario-shared intro registry (owned by the hub): receivers advertise
  /// description hashes in their acks; senders consult it to elide intro
  /// description bytes a target already holds. Byte-saving hint only —
  /// never consulted for a verdict.
  transport::IntroRegistry* intro_registry_ = nullptr;
};

}  // namespace pti::sim
