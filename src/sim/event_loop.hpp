// EventLoop — the deterministic discrete-event engine under the megasim.
//
// A seeded priority queue on a virtual clock: events are (time, seq)
// ordered, where seq is the global scheduling order, so two events at the
// same virtual instant always fire in the order they were scheduled —
// iteration is a pure function of (seed, schedule), never of host timing,
// thread count, or allocator behaviour. The loop owns the run's one RNG;
// every workload draw (which peer publishes, which type, who churns)
// happens at fire time from this RNG, so the whole scenario replays
// byte-identically from the seed.
//
// The loop advances the caller-supplied SimClock (the transport's clock)
// to each event's fire time, so message cost accounting and scripted
// workload share one notion of "now".
//
// Thread safety: none — one loop, one thread, exactly like SimNetwork.
// Determinism across host thread counts comes from running independent
// loops per thread, not from sharing one.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace pti::sim {

class EventLoop {
 public:
  /// `clock`, when given, is advanced to each event's fire time (the
  /// transport's virtual clock, typically). Null means timekeeping stays
  /// internal.
  explicit EventLoop(std::uint64_t seed, util::SimClock* clock = nullptr)
      : rng_(seed), clock_(clock) {}

  /// Schedules `action` at absolute virtual time `time_ns`. Times in the
  /// past are clamped to now: the event fires next, in schedule order.
  void at(std::uint64_t time_ns, std::function<void()> action);
  /// Schedules `action` at now + `delay_ns`.
  void after(std::uint64_t delay_ns, std::function<void()> action) {
    at(now_ns_ + delay_ns, std::move(action));
  }

  [[nodiscard]] std::uint64_t now_ns() const noexcept { return now_ns_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Runs until the queue is empty (events may schedule more events);
  /// returns how many events fired.
  std::size_t run();
  /// Runs every event with fire time <= `time_ns`, then advances the
  /// clock to `time_ns`; returns how many events fired.
  std::size_t run_until(std::uint64_t time_ns);

 private:
  struct Event {
    std::uint64_t time_ns;
    std::uint64_t seq;
    std::function<void()> action;
  };
  /// Min-heap order: earliest time first, scheduling order within a tick.
  struct Later {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time_ns != b.time_ns ? a.time_ns > b.time_ns : a.seq > b.seq;
    }
  };

  [[nodiscard]] Event pop();
  void fire(Event event);

  std::vector<Event> heap_;
  util::Rng rng_;
  util::SimClock* clock_;
  std::uint64_t now_ns_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pti::sim
