#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/epoch.hpp"

namespace pti::sim {

namespace {

/// Event tags mixed into the trace digest — stable small constants, never
/// pointers or interned ids.
enum : std::uint64_t {
  kTagPublish = 1,
  kTagDrop = 2,
  kTagAccept = 3,
  kTagReject = 4,
  kTagLeave = 5,
  kTagJoin = 6,
  kTagPartition = 7,
  kTagHeal = 8,
};

/// Splits one user seed into independent streams (universe, loop, net) so
/// reseeding one subsystem never perturbs another's draws.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return z ^ (z >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// ScenarioScript

ScenarioScript& ScenarioScript::publish_storm(std::size_t publishes) {
  steps_.push_back({Step::Kind::PublishStorm, publishes, 0, 0});
  return *this;
}

ScenarioScript& ScenarioScript::churn(std::size_t leaves, std::size_t rejoins) {
  steps_.push_back({Step::Kind::Churn, leaves, rejoins, 0});
  return *this;
}

ScenarioScript& ScenarioScript::partition_wave(std::size_t pairs,
                                               std::uint64_t heal_after_ns) {
  steps_.push_back({Step::Kind::PartitionWave, pairs, 0, heal_after_ns});
  return *this;
}

ScenarioScript& ScenarioScript::settle(std::uint64_t idle_ns) {
  steps_.push_back({Step::Kind::Settle, 0, 0, idle_ns});
  return *this;
}

ScenarioScript ScenarioScript::standard(std::size_t peers) {
  // Storm sizes scale sublinearly with the population so the 10^6 sweep
  // stays a fan-out stress (huge subscriber sets) rather than a pure
  // message-count grind.
  const std::size_t storm = std::max<std::size_t>(peers / 10, 16);
  const std::size_t churned = std::max<std::size_t>(peers / 20, 4);
  const std::size_t pairs = std::max<std::size_t>(peers / 100, 2);
  ScenarioScript script;
  script.publish_storm(storm)
      .churn(churned, churned / 2)
      .partition_wave(pairs, 500'000)
      .publish_storm(storm)
      .settle(2'000'000)
      .churn(churned / 2, churned / 2)
      .publish_storm(storm / 2);
  return script;
}

// ---------------------------------------------------------------------------
// Scenario

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      net_(derive_seed(config.seed, 3)),
      loop_(derive_seed(config.seed, 2), &net_.clock()) {
  defer_deliveries_ = config_.use_sessions && config_.session_batch > 1;
  TypeUniverseConfig universe_config;
  universe_config.seed = derive_seed(config.seed, 1);
  universe_config.families = config.types;
  universe_config.groups = config.type_groups;
  universe_ = std::make_unique<TypeUniverse>(universe_config, hub_);

  // Zipf CDF over families: weight of rank k is (k+1)^-s.
  zipf_cdf_.resize(universe_->type_count());
  double total = 0.0;
  for (std::size_t k = 0; k < zipf_cdf_.size(); ++k) {
    total += std::pow(static_cast<double>(k + 1), -config_.zipf_exponent);
    zipf_cdf_[k] = total;
  }
  for (double& c : zipf_cdf_) c /= total;

  // Build and join the population. Interests are drawn from the same
  // skewed distribution publishes use, so popular types have both the
  // most traffic and the most subscribers — the regime where an inverted
  // index pays and a per-peer scan drowns.
  const std::uint32_t count = static_cast<std::uint32_t>(config_.peers);
  peers_.reserve(count);
  live_.reserve(count);
  live_pos_.resize(count);
  sub_to_peer_.assign(count, 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto peer = std::make_unique<LightweightPeer>(
        i, net_, *universe_, hub_.interests(), config_.mode, config_.use_sessions,
        config_.use_sessions ? &hub_.intro_registry() : nullptr);
    std::vector<std::uint32_t> families;
    for (std::size_t k = 0; k < config_.interests_per_peer; ++k) {
      const std::uint32_t family = draw_family();
      if (std::find(families.begin(), families.end(), family) == families.end()) {
        families.push_back(family);
      }
    }
    peer->set_interests(std::move(families));
    peer->join();
    sub_to_peer_[peer->subscriber()] = i;
    live_pos_[i] = live_.size();
    live_.push_back(i);
    peers_.push_back(std::move(peer));
  }
  stats_.joins += count;
}

Scenario::~Scenario() = default;

ScenarioResult Scenario::run(const ScenarioScript& script) {
  cursor_ns_ = loop_.now_ns();
  for (const ScenarioScript::Step& step : script.steps_) {
    switch (step.kind) {
      case ScenarioScript::Step::Kind::PublishStorm:
        for (std::size_t i = 0; i < step.a; ++i) {
          loop_.at(cursor_ns_, [this] { fire_publish(); });
          cursor_ns_ += config_.event_interval_ns;
        }
        break;
      case ScenarioScript::Step::Kind::Churn:
        for (std::size_t i = 0; i < std::max(step.a, step.b); ++i) {
          if (i < step.a) {
            loop_.at(cursor_ns_, [this] { fire_churn_leave(); });
            cursor_ns_ += config_.event_interval_ns;
          }
          if (i < step.b) {
            loop_.at(cursor_ns_, [this] { fire_churn_rejoin(); });
            cursor_ns_ += config_.event_interval_ns;
          }
        }
        break;
      case ScenarioScript::Step::Kind::PartitionWave:
        for (std::size_t i = 0; i < step.a; ++i) {
          const std::uint64_t heal_after = step.duration_ns;
          loop_.at(cursor_ns_, [this, heal_after] { fire_partition(heal_after); });
          cursor_ns_ += config_.event_interval_ns;
        }
        break;
      case ScenarioScript::Step::Kind::Settle:
        cursor_ns_ += step.duration_ns;
        loop_.at(cursor_ns_, [] {});
        break;
    }
  }
  loop_.run();
  flush_session_batches();

  // Final reclaim sweep: with every event fired and no pins live, the
  // retired COW snapshots and directories must all free here — the leak
  // check the soak gate leans on.
  hub_.interests().epochs().try_reclaim();

  for (const auto& peer : peers_) {
    const PeerCounters& c = peer->counters();
    stats_.typeinfo_requests += c.typeinfo_requests;
    stats_.code_requests += c.code_requests;
    stats_.code_bytes_fetched += c.code_bytes_fetched;
  }
  stats_.net_messages = net_.stats().messages.get();
  stats_.net_bytes = net_.stats().bytes.get();
  stats_.net_drops = net_.stats().drops.get();
  stats_.virtual_time_ns = net_.clock().now_ns();
  stats_.index_subscribers = hub_.interests().subscriber_count();
  stats_.index_entries = hub_.interests().entry_count();

  ScenarioResult result;
  result.stats = stats_;
  result.trace_digest = trace_digest_;
  result.accept_digest = accept_digest_;
  std::uint64_t h = util::kFnvOffset64;
  const std::uint64_t fields[] = {
      stats_.publishes,   stats_.deliveries, stats_.accepts,
      stats_.rejects,     stats_.drops,      stats_.leaves,
      stats_.joins,       stats_.partitions, stats_.heals,
      stats_.typeinfo_requests, stats_.code_requests, stats_.code_bytes_fetched,
      stats_.net_messages, stats_.net_bytes, stats_.net_drops,
      stats_.virtual_time_ns, stats_.index_subscribers, stats_.index_entries,
      stats_.session_batch_frames, stats_.session_batch_entries,
  };
  for (const std::uint64_t field : fields) {
    h ^= field;
    h *= util::kFnvPrime64;
  }
  result.stats_digest = h;
  return result;
}

void Scenario::fire_publish() {
  if (live_.size() < 2) return;
  const std::uint32_t publisher = pick_live_peer();
  const std::uint32_t family = draw_family();
  ++stats_.publishes;
  match_targets(family, peers_[publisher]->subscriber(), target_scratch_);
  mix_trace(kTagPublish, publisher, family, target_scratch_.size());

  if (defer_deliveries_) {
    // Batched session mode: park the deliveries; the window closes when a
    // (publisher, target) pair fills or a state-changing event is next.
    bool full = false;
    for (const transport::SubscriberId sub : target_scratch_) {
      const std::uint32_t target = sub_to_peer_[sub];
      ++stats_.deliveries;
      pending_deliveries_.push_back({publisher, target, family});
      const std::uint64_t key = (std::uint64_t{publisher} << 32) | target;
      if (++pending_pair_counts_[key] >= config_.session_batch) full = true;
    }
    if (full) flush_session_batches();
    return;
  }

  for (const transport::SubscriberId sub : target_scratch_) {
    const std::uint32_t target = sub_to_peer_[sub];
    ++stats_.deliveries;
    const LightweightPeer::PushOutcome outcome =
        peers_[publisher]->publish_to(peers_[target]->name(), family);
    mix_delivery(target, family, outcome,
                 outcome.delivered ? peers_[target]->last_matched_interest()
                                   : LightweightPeer::kNoInterest);
    maybe_reclaim();
  }
}

void Scenario::mix_delivery(std::uint32_t target, std::uint32_t family,
                            const LightweightPeer::PushOutcome& outcome,
                            std::uint32_t matched) {
  if (outcome.dropped) {
    ++stats_.drops;
    mix_trace(kTagDrop, target, family);
  } else if (outcome.delivered) {
    ++stats_.accepts;
    mix_trace(kTagAccept, target, family, matched);
    accept_digest_ ^= (static_cast<std::uint64_t>(target) << 32) | family;
    accept_digest_ *= util::kFnvPrime64;
    accept_digest_ ^= (std::uint64_t{1} << 40) | matched;
    accept_digest_ *= util::kFnvPrime64;
  } else {
    ++stats_.rejects;
    mix_trace(kTagReject, target, family);
    accept_digest_ ^= (static_cast<std::uint64_t>(target) << 32) | family;
    accept_digest_ *= util::kFnvPrime64;
    accept_digest_ ^= std::uint64_t{0};
    accept_digest_ *= util::kFnvPrime64;
  }
}

void Scenario::flush_session_batches() {
  if (pending_deliveries_.empty()) return;
  // Group by (publisher, target) in first-touch order. The frames go out
  // group by group, but the digests fold in ORIGINAL delivery order below
  // — batching regroups the wire, never the verdict stream.
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < pending_deliveries_.size(); ++i) {
    const PendingDelivery& d = pending_deliveries_[i];
    const std::uint64_t key = (std::uint64_t{d.publisher} << 32) | d.target;
    const auto [it, inserted] = groups.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(i);
  }

  std::vector<LightweightPeer::PushOutcome> outcomes(pending_deliveries_.size());
  std::vector<std::uint32_t> families;
  for (const std::uint64_t key : order) {
    const std::vector<std::size_t>& slots = groups[key];
    for (std::size_t base = 0; base < slots.size(); base += config_.session_batch) {
      const std::size_t count = std::min(config_.session_batch, slots.size() - base);
      families.clear();
      for (std::size_t k = 0; k < count; ++k) {
        families.push_back(pending_deliveries_[slots[base + k]].family);
      }
      const PendingDelivery& head = pending_deliveries_[slots[base]];
      const std::vector<LightweightPeer::PushOutcome> out =
          peers_[head.publisher]->publish_batch_to(peers_[head.target]->name(), families);
      for (std::size_t k = 0; k < count; ++k) outcomes[slots[base + k]] = out[k];
      ++stats_.session_batch_frames;
      stats_.session_batch_entries += count;
    }
  }

  for (std::size_t i = 0; i < pending_deliveries_.size(); ++i) {
    const PendingDelivery& d = pending_deliveries_[i];
    mix_delivery(d.target, d.family, outcomes[i], outcomes[i].matched);
    maybe_reclaim();
  }
  pending_deliveries_.clear();
  pending_pair_counts_.clear();
}

void Scenario::fire_churn_leave() {
  flush_session_batches();
  if (live_.size() <= 1) return;
  const std::uint32_t peer = pick_live_peer();
  peers_[peer]->leave();
  remove_from_live(peer);
  departed_.push_back(peer);
  ++stats_.leaves;
  mix_trace(kTagLeave, peer);
}

void Scenario::fire_churn_rejoin() {
  flush_session_batches();
  if (departed_.empty()) return;
  const std::uint32_t peer = departed_.front();
  departed_.pop_front();
  peers_[peer]->join();
  sub_to_peer_[peers_[peer]->subscriber()] = peer;
  live_pos_[peer] = live_.size();
  live_.push_back(peer);
  ++stats_.joins;
  mix_trace(kTagJoin, peer);
}

void Scenario::fire_partition(std::uint64_t heal_after_ns) {
  flush_session_batches();
  if (live_.size() < 2) return;
  const std::uint32_t a = pick_live_peer();
  std::uint32_t b = pick_live_peer();
  if (a == b) b = live_[(live_pos_[a] + 1) % live_.size()];
  net_.partition(peers_[a]->name(), peers_[b]->name());
  net_.partition(peers_[b]->name(), peers_[a]->name());
  ++stats_.partitions;
  mix_trace(kTagPartition, a, b);
  loop_.after(heal_after_ns, [this, a, b] {
    // Close the window under the PRE-heal link state: deferred deliveries
    // must drop exactly where their unbatched counterparts would have.
    flush_session_batches();
    net_.heal_partition(peers_[a]->name(), peers_[b]->name());
    net_.heal_partition(peers_[b]->name(), peers_[a]->name());
    ++stats_.heals;
    mix_trace(kTagHeal, a, b);
  });
}

void Scenario::match_targets(std::uint32_t family, transport::SubscriberId publisher,
                             std::vector<transport::SubscriberId>& out) {
  out.clear();
  const std::uint32_t group = universe_->group_of(family);
  if (config_.use_inverted_index) {
    // Route through the shared engine: one scan over DISTINCT interests,
    // then a posting-list walk per match.
    hub_.interests().collect_matches(
        [&](const transport::InterestEntry& entry) {
          const std::uint32_t interest = universe_->interest_of_id(entry.interest);
          return interest != TypeUniverse::kNoType && universe_->group_of(interest) == group;
        },
        out, interest_scratch_);
  } else {
    // Baseline (pre-index shape): visit EVERY live peer's own interest
    // list — O(population) per publish regardless of how few types match.
    for (const std::uint32_t peer : live_) {
      for (const std::uint32_t interest : peers_[peer]->interest_families()) {
        if (universe_->group_of(interest) == group) {
          out.push_back(peers_[peer]->subscriber());
          break;
        }
      }
    }
    std::sort(out.begin(), out.end());
  }
  out.erase(std::remove(out.begin(), out.end(), publisher), out.end());
  if (out.size() > config_.fanout_cap) out.resize(config_.fanout_cap);
}

std::uint32_t Scenario::pick_live_peer() {
  return live_[loop_.rng().next_below(live_.size())];
}

std::uint32_t Scenario::draw_family() {
  const double u = loop_.rng().next_double();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const std::size_t rank =
      it == zipf_cdf_.end() ? zipf_cdf_.size() - 1
                            : static_cast<std::size_t>(it - zipf_cdf_.begin());
  return static_cast<std::uint32_t>(rank);
}

void Scenario::remove_from_live(std::uint32_t peer) {
  const std::size_t pos = live_pos_[peer];
  const std::uint32_t last = live_.back();
  live_[pos] = last;
  live_pos_[last] = pos;
  live_.pop_back();
}

void Scenario::maybe_reclaim() {
  if (++since_reclaim_ < config_.reclaim_every) return;
  since_reclaim_ = 0;
  hub_.interests().epochs().try_reclaim();
}

void Scenario::mix_trace(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                         std::uint64_t d) noexcept {
  trace_digest_ ^= a;
  trace_digest_ *= util::kFnvPrime64;
  trace_digest_ ^= b;
  trace_digest_ *= util::kFnvPrime64;
  trace_digest_ ^= c;
  trace_digest_ *= util::kFnvPrime64;
  trace_digest_ ^= d;
  trace_digest_ *= util::kFnvPrime64;
}

ScenarioResult run_scenario(const ScenarioConfig& config, const ScenarioScript& script) {
  Scenario scenario(config);
  return scenario.run(script);
}

}  // namespace pti::sim
