// Pass-by-reference semantics (paper Section 6.2).
//
// A peer exports an object and hands out a remote reference (host peer +
// object id + type name). On the importing side the reference is a
// synthetic DynObject carrying hidden routing fields; invoking it sends an
// InvokeRequest across the simulated network, with arguments passed by
// value (serialized in a hybrid envelope, types made usable on the server
// through the same optimistic description/code dance) and the result
// passed back by value the same way.
//
// The paper's key composition — "the interposing of a dynamic proxy as a
// wrapper is necessary since T_A and T_L are not explicitly compatible" —
// falls out naturally: Remoting implements proxy::RemoteInvoker, so a
// remote reference of type T_L can be wrapped by ProxyFactory::wrap into a
// dynamic proxy of the borrower's type T_A; invocations then flow
// dynamic proxy -> (rename/permute) -> remote reference -> network ->
// exporter -> real object.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "proxy/dynamic_proxy.hpp"
#include "reflect/dyn_object.hpp"
#include "transport/peer.hpp"

namespace pti::remoting {

/// Hidden fields of a remote-reference object.
inline constexpr std::string_view kRemotePeerField = "__pti.remote.peer";
inline constexpr std::string_view kRemoteIdField = "__pti.remote.oid";

class Remoting final : public proxy::RemoteInvoker {
 public:
  /// Installs itself on the peer (protocol hook + remote invoker).
  explicit Remoting(transport::Peer& peer);
  ~Remoting() override;
  Remoting(const Remoting&) = delete;
  Remoting& operator=(const Remoting&) = delete;

  // --- exporter side ------------------------------------------------------
  /// Makes `object` remotely invokable; returns its object id. The export
  /// table is guarded, so exports and inbound invocations may race (the
  /// rest of a Remoting's configuration is single-threaded, like Peer's).
  std::uint64_t export_object(std::shared_ptr<reflect::DynObject> object);
  void unexport(std::uint64_t object_id) noexcept;
  [[nodiscard]] std::size_t exported_count() const noexcept {
    std::scoped_lock lock(exported_mutex_);
    return exported_.size();
  }

  // --- importer side ------------------------------------------------------
  /// Builds a remote reference. Fetches the remote type's description from
  /// the host when it is not yet known locally (needed for conformance
  /// checks and proxy plans).
  [[nodiscard]] std::shared_ptr<reflect::DynObject> import_ref(std::string_view host_peer,
                                                               std::uint64_t object_id,
                                                               std::string_view type_name);

  /// import_ref() for a type already resolved locally (the core layer's
  /// handle-based path): skips the initial description fetch, but still
  /// completes the referenced-description closure from the host.
  [[nodiscard]] std::shared_ptr<reflect::DynObject> import_ref(
      std::string_view host_peer, std::uint64_t object_id,
      const reflect::TypeDescription& type);

  // --- proxy::RemoteInvoker -----------------------------------------------
  [[nodiscard]] bool is_remote_ref(const reflect::DynObject& obj) const noexcept override;
  reflect::Value invoke_remote(const reflect::DynObject& ref, std::string_view method_name,
                               reflect::Args args) override;

 private:
  /// Fetches (bounded) every description transitively referenced by the
  /// locally known user types but not yet resolvable, from `host_peer`.
  void complete_description_closure(std::string_view host_peer);

  std::optional<transport::Message> handle(const transport::Message& request);
  transport::InvokeResponse handle_invoke(std::string_view from,
                                          const transport::InvokeRequest& request);

  /// Pass-by-value marshalling of a value (argument list or result).
  [[nodiscard]] std::vector<std::uint8_t> marshal(const reflect::Value& value);
  [[nodiscard]] reflect::Value unmarshal(std::span<const std::uint8_t> envelope_bytes,
                                         std::string_view counterpart);

  transport::Peer& peer_;
  /// Guards exported_/next_id_ against concurrent exports + invocations.
  mutable std::mutex exported_mutex_;
  std::map<std::uint64_t, std::shared_ptr<reflect::DynObject>> exported_;
  std::uint64_t next_id_ = 1;
};

}  // namespace pti::remoting
