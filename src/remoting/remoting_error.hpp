#pragma once

#include "util/error.hpp"

namespace pti::remoting {

class RemotingError : public Error {
 public:
  using Error::Error;
};

}  // namespace pti::remoting
