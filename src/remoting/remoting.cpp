#include "remoting/remoting.hpp"

#include <vector>

#include "remoting/remoting_error.hpp"
#include "serial/envelope.hpp"
#include "transport/transport_error.hpp"

namespace pti::remoting {

using reflect::DynObject;
using reflect::Value;
using reflect::ValueKind;
using transport::InvokeRequest;
using transport::InvokeResponse;
using transport::Message;

Remoting::Remoting(transport::Peer& peer) : peer_(peer) {
  peer_.set_extra_handler([this](const Message& m) { return handle(m); });
  peer_.proxies().set_remote_invoker(this);
}

Remoting::~Remoting() {
  peer_.set_extra_handler({});
  peer_.proxies().set_remote_invoker(nullptr);
}

std::uint64_t Remoting::export_object(std::shared_ptr<DynObject> object) {
  if (!object) throw RemotingError("cannot export a null object");
  std::scoped_lock lock(exported_mutex_);
  const std::uint64_t id = next_id_++;
  exported_.emplace(id, std::move(object));
  return id;
}

void Remoting::unexport(std::uint64_t object_id) noexcept {
  std::scoped_lock lock(exported_mutex_);
  exported_.erase(object_id);
}

std::shared_ptr<DynObject> Remoting::import_ref(std::string_view host_peer,
                                                std::uint64_t object_id,
                                                std::string_view type_name) {
  // The local side needs the remote type's description — and the
  // descriptions it references (supertypes, member types) — for conformance
  // checks and proxy plans. It never needs its code: that is the point of
  // pass-by-reference. Fetch the transitive closure, bounded.
  if (peer_.domain().registry().find(type_name) == nullptr) {
    peer_.fetch_descriptions(host_peer, {std::string(type_name)});
    if (peer_.domain().registry().find(type_name) == nullptr) {
      throw RemotingError("host '" + std::string(host_peer) +
                          "' could not describe remote type '" + std::string(type_name) +
                          "'");
    }
  }
  return import_ref(host_peer, object_id, *peer_.domain().registry().find(type_name));
}

std::shared_ptr<DynObject> Remoting::import_ref(std::string_view host_peer,
                                                std::uint64_t object_id,
                                                const reflect::TypeDescription& type) {
  complete_description_closure(host_peer);
  auto ref = DynObject::make(type.qualified_name(), util::Guid{});
  ref->set(kRemotePeerField, Value(std::string(host_peer)));
  ref->set(kRemoteIdField, Value(static_cast<std::int64_t>(object_id)));
  return ref;
}

void Remoting::complete_description_closure(std::string_view host_peer) {
  for (int round = 0; round < 16; ++round) {
    std::vector<std::string> missing;
    for (const reflect::TypeDescription* d : peer_.domain().registry().user_types()) {
      const auto need = [&](const std::string& ref) {
        if (ref.empty()) return;
        if (peer_.domain().registry().resolve(ref, d->namespace_name()) == nullptr) {
          missing.push_back(ref);
        }
      };
      need(d->superclass());
      for (const auto& itf : d->interfaces()) need(itf);
      for (const auto& f : d->fields()) need(f.type_name);
      for (const auto& m : d->methods()) {
        need(m.return_type);
        for (const auto& p : m.params) need(p.type_name);
      }
      for (const auto& c : d->constructors()) {
        for (const auto& p : c.params) need(p.type_name);
      }
    }
    if (missing.empty() || peer_.fetch_descriptions(host_peer, std::move(missing)) == 0) {
      break;
    }
  }
}

bool Remoting::is_remote_ref(const DynObject& obj) const noexcept {
  return obj.has_field(kRemotePeerField) && obj.has_field(kRemoteIdField);
}

std::vector<std::uint8_t> Remoting::marshal(const Value& value) {
  // Strip proxy wrappers: the wire carries real state.
  Value real = value;
  if (value.kind() == ValueKind::Object && value.as_object()) {
    if (is_remote_ref(*value.as_object())) {
      throw RemotingError("remote references cannot be passed by value");
    }
    real = Value(peer_.proxies().unwrap(value.as_object()));
  } else if (value.kind() == ValueKind::List) {
    Value::List items;
    for (const Value& item : value.as_list()) {
      if (item.kind() == ValueKind::Object && item.as_object()) {
        if (is_remote_ref(*item.as_object())) {
          throw RemotingError("remote references cannot be passed by value");
        }
        items.push_back(Value(peer_.proxies().unwrap(item.as_object())));
      } else {
        items.push_back(item);
      }
    }
    real = Value(std::move(items));
  }
  serial::ObjectSerializer& serializer =
      peer_.serializers().get(peer_.config().payload_encoding);
  serial::EnvelopeBuilder builder(serializer, &peer_.domain().registry());
  return builder.build(real).to_bytes();
}

Value Remoting::unmarshal(std::span<const std::uint8_t> envelope_bytes,
                          std::string_view counterpart) {
  const serial::Envelope envelope = serial::Envelope::from_bytes(envelope_bytes);
  peer_.ensure_types_usable(envelope.types, counterpart);
  serial::ObjectSerializer& serializer = peer_.serializers().get(envelope.encoding);
  Value value = serializer.deserialize(envelope.payload);
  if (value.kind() == ValueKind::Object && value.as_object()) {
    peer_.domain().fill_missing_fields(*value.as_object());
  } else if (value.kind() == ValueKind::List) {
    for (Value& item : value.as_list()) {
      if (item.kind() == ValueKind::Object && item.as_object()) {
        peer_.domain().fill_missing_fields(*item.as_object());
      }
    }
  }
  return value;
}

Value Remoting::invoke_remote(const DynObject& ref, std::string_view method_name,
                              reflect::Args args) {
  const std::string host = ref.get(kRemotePeerField).as_string();
  const auto object_id =
      static_cast<std::uint64_t>(ref.get(kRemoteIdField).as_int64());

  InvokeRequest request;
  request.object_id = object_id;
  request.method_name = std::string(method_name);
  request.args_envelope = marshal(Value(Value::List(args.begin(), args.end())));

  const Message response =
      peer_.network().send(Message{peer_.name(), host, std::move(request)});
  const auto* reply = std::get_if<InvokeResponse>(&response.payload);
  if (reply == nullptr) {
    throw RemotingError("unexpected response to InvokeRequest: " +
                        std::string(response.kind_name()));
  }
  if (!reply->ok) {
    throw RemotingError("remote invocation of '" + std::string(method_name) + "' on '" +
                        host + "' failed: " + reply->error);
  }
  return unmarshal(reply->result_envelope, host);
}

InvokeResponse Remoting::handle_invoke(std::string_view from, const InvokeRequest& request) {
  InvokeResponse response;
  try {
    std::shared_ptr<DynObject> target;
    {
      std::scoped_lock lock(exported_mutex_);
      const auto it = exported_.find(request.object_id);
      if (it != exported_.end()) target = it->second;
    }
    if (!target) {
      throw RemotingError("no exported object with id " +
                          std::to_string(request.object_id));
    }
    const Value args_value = unmarshal(request.args_envelope, from);
    const Value::List& args = args_value.as_list();
    Value result = peer_.proxies().invoke(target, request.method_name,
                                          reflect::Args(args.data(), args.size()));
    // Results pass by value; strip any wrappers the local call produced.
    if (result.kind() == ValueKind::Object && result.as_object()) {
      result = Value(peer_.proxies().unwrap(result.as_object()));
    }
    response.ok = true;
    response.result_envelope = marshal(result);
  } catch (const Error& e) {
    response.ok = false;
    response.error = e.what();
  }
  return response;
}

std::optional<Message> Remoting::handle(const Message& request) {
  if (const auto* invoke = std::get_if<InvokeRequest>(&request.payload)) {
    return Message{peer_.name(), request.sender, handle_invoke(request.sender, *invoke)};
  }
  return std::nullopt;
}

}  // namespace pti::remoting
