#include "conform/conformance_checker.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "conform/conform_error.hpp"
#include "reflect/primitives.hpp"
#include "util/interning.hpp"
#include "util/levenshtein.hpp"
#include "util/string_util.hpp"

namespace pti::conform {

using reflect::ConstructorDescription;
using reflect::FieldDescription;
using reflect::MethodDescription;
using reflect::ParamDescription;
using reflect::TypeDescription;
using reflect::TypeKind;

namespace {

constexpr std::size_t kMaxFailures = 32;

void push_failure(std::vector<std::string>& failures, std::string message) {
  if (failures.size() < kMaxFailures) failures.push_back(std::move(message));
}

}  // namespace

/// Per-top-level-check state shared across the recursion. All pair keys
/// are util::pair_key() of the two descriptions' interned name ids — a
/// 64-bit integer, so guard/memo probes never fold or build strings.
struct ConformanceChecker::Ctx {
  /// Pairs (source, target) currently being checked; re-encountering one
  /// is the coinductive "assume conformant" case for recursive types.
  std::unordered_set<std::uint64_t> in_progress;
  /// Pairs completed within this top-level check. Without it, a pair
  /// referenced from several member positions (field type + return type,
  /// say) is recomputed per position — exponential on deep reference
  /// chains. Only assumption-free results are memoized (see
  /// check_with_ctx): a verdict derived from a still-open coinductive
  /// assumption is provisional until the enclosing pair closes.
  std::unordered_map<std::uint64_t, CheckResult> memo;
  /// Incremented whenever the coinductive "assume in-progress pair
  /// conformant" branch fires; used to detect provisional results.
  int assumption_events = 0;
  std::vector<std::string> missing_types;
  int depth = 0;
};

ConformanceChecker::ConformanceChecker(reflect::TypeResolver& resolver,
                                       ConformanceOptions options, ConformanceCache* cache)
    : resolver_(resolver),
      options_(options),
      options_fp_(options.fingerprint()),
      cache_(cache) {}

bool ConformanceChecker::equivalent(const TypeDescription& source,
                                    const TypeDescription& target) noexcept {
  if (!source.guid().is_nil() && source.guid() == target.guid()) return true;
  return source.structurally_equal(target);
}

bool ConformanceChecker::name_conforms(std::string_view source_name,
                                       std::string_view target_name) const {
  if (options_.allow_wildcards &&
      target_name.find_first_of("*?") != std::string_view::npos) {
    return util::wildcard_match(target_name, source_name);
  }
  return util::levenshtein_within(source_name, target_name, options_.max_name_distance,
                                  /*case_insensitive=*/true);
}

bool ConformanceChecker::member_name_conforms(std::string_view source_name,
                                              std::string_view target_name) const {
  if (options_.allow_wildcards &&
      target_name.find_first_of("*?") != std::string_view::npos) {
    return util::wildcard_match(target_name, source_name);
  }
  switch (options_.member_name_rule) {
    case MemberNameRule::Exact:
      return util::levenshtein_within(source_name, target_name,
                                      options_.max_name_distance, true);
    case MemberNameRule::Contains:
      return util::icontains(source_name, target_name) ||
             util::icontains(target_name, source_name);
    case MemberNameRule::TokenSubset:
      return util::token_subset_match(source_name, target_name);
  }
  return false;
}

CheckResult ConformanceChecker::check(const TypeDescription& source,
                                      const TypeDescription& target) {
  Ctx ctx;
  return check_with_ctx(source, target, ctx);
}

CheckResult ConformanceChecker::check(std::string_view source_name,
                                      std::string_view target_name) {
  CheckResult result;
  const TypeDescription* source = resolver_.resolve(source_name, "");
  const TypeDescription* target = resolver_.resolve(target_name, "");
  if (source == nullptr) result.missing_types.emplace_back(source_name);
  if (target == nullptr) result.missing_types.emplace_back(target_name);
  if (source == nullptr || target == nullptr) {
    push_failure(result.failures, "unresolved type name(s)");
    return result;
  }
  return check(*source, *target);
}

bool ConformanceChecker::conforms(const TypeDescription& source,
                                  const TypeDescription& target) {
  // Verdict-only fast path: a cached verdict answers without building a
  // CheckResult (no plan copy, no failure strings — zero allocations).
  // probe() leaves miss accounting to the lookup inside check().
  if (cache_ != nullptr) {
    if (const CachedVerdict* cached = cache_->probe(source, target, options_fp_)) {
      return cached->conformant;
    }
  }
  return check(source, target).conformant;
}

void ConformanceChecker::conforms_batch(std::span<const DescPair> pairs,
                                        std::span<bool> out) {
  constexpr std::size_t kBlock = 64;
  ConformanceCache::Key keys[kBlock];
  const CachedVerdict* cached[kBlock];
  for (std::size_t base = 0; base < pairs.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, pairs.size() - base);
    if (cache_ != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto& [source, target] = pairs[base + i];
        keys[i] = ConformanceCache::Key{
            source != nullptr ? source->name_id() : util::InternedName{},
            target != nullptr ? target->name_id() : util::InternedName{}, options_fp_};
      }
      cache_->probe_batch(std::span<const ConformanceCache::Key>(keys, n), cached);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& [source, target] = pairs[base + i];
        if (source == nullptr || target == nullptr) {
          out[base + i] = false;
        } else if (cached[i] != nullptr) {
          out[base + i] = cached[i]->conformant;
        } else {
          out[base + i] = check(*source, *target).conformant;
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const auto& [source, target] = pairs[base + i];
        out[base + i] =
            source != nullptr && target != nullptr && check(*source, *target).conformant;
      }
    }
  }
}

CheckResult ConformanceChecker::check_with_ctx(const TypeDescription& source,
                                               const TypeDescription& target, Ctx& ctx) {
  if (cache_ != nullptr) {
    if (const CachedVerdict* cached = cache_->lookup(source, target, options_fp_)) {
      CheckResult result;
      result.conformant = cached->conformant;
      result.plan = cached->plan;
      if (!result.conformant) {
        push_failure(result.failures, "cached verdict: not conformant");
      }
      return result;
    }
  }
  const std::uint64_t memo_key = util::pair_key(source.name_id(), target.name_id());
  if (const auto it = ctx.memo.find(memo_key); it != ctx.memo.end()) {
    return it->second;
  }
  const bool top_level = ctx.in_progress.empty();
  const int events_before = ctx.assumption_events;
  CheckResult result = compute(source, target, ctx);
  // A result that leaned on a coinductive assumption about a pair that is
  // still open is provisional; once the top-level pair closes, the
  // fixpoint is complete and the verdict is final either way.
  const bool final_verdict = top_level || ctx.assumption_events == events_before;
  if (final_verdict) {
    if (cache_ != nullptr && result.missing_types.empty()) {
      cache_->insert(source.name_id(), target.name_id(), options_fp_,
                     CachedVerdict{result.conformant, result.plan});
    }
    ctx.memo.emplace(memo_key, result);
  }
  return result;
}

CheckResult ConformanceChecker::compute(const TypeDescription& source,
                                        const TypeDescription& target, Ctx& ctx) {
  CheckResult result;
  const std::string src_name = source.qualified_name();
  const std::string tgt_name = target.qualified_name();

  // --- 1. identity: same platform type identity (GUID). -------------------
  if (!source.guid().is_nil() && source.guid() == target.guid()) {
    result.conformant = true;
    result.plan = ConformancePlan(src_name, tgt_name, ConformanceKind::Identity);
    return result;
  }

  // --- 2. the top type: everything conforms to `object`. ------------------
  if (reflect::canonical_primitive(tgt_name) == reflect::kObjectType) {
    result.conformant = true;
    result.plan = ConformancePlan(src_name, tgt_name, ConformanceKind::Explicit);
    return result;
  }

  // --- 3. primitives conform only to themselves (plus optional widening). --
  if (source.kind() == TypeKind::Primitive || target.kind() == TypeKind::Primitive) {
    if (source.kind() != target.kind()) {
      push_failure(result.failures, "primitive/non-primitive mismatch between '" +
                                        src_name + "' and '" + tgt_name + "'");
      return result;
    }
    const std::string_view s = reflect::canonical_primitive(src_name);
    const std::string_view t = reflect::canonical_primitive(tgt_name);
    bool ok = (s == t);
    if (!ok && options_.allow_numeric_widening) {
      ok = (s == reflect::kInt32Type &&
            (t == reflect::kInt64Type || t == reflect::kFloat64Type)) ||
           (s == reflect::kInt64Type && t == reflect::kFloat64Type);
    }
    if (ok) {
      result.conformant = true;
      result.plan = ConformancePlan(src_name, tgt_name,
                                    s == t ? ConformanceKind::Equivalent
                                           : ConformanceKind::Explicit);
    } else {
      push_failure(result.failures,
                   "primitive '" + src_name + "' does not conform to '" + tgt_name + "'");
    }
    return result;
  }

  // --- 4. equivalence: structurally equal descriptions. -------------------
  if (source.structurally_equal(target)) {
    result.conformant = true;
    result.plan = ConformancePlan(src_name, tgt_name, ConformanceKind::Equivalent);
    return result;
  }

  // --- 5. explicit conformance: nominal subtyping. ------------------------
  if (explicitly_conforms(source, target, ctx)) {
    result.conformant = true;
    result.plan = ConformancePlan(src_name, tgt_name, ConformanceKind::Explicit);
    result.missing_types = ctx.missing_types;
    return result;
  }

  // --- 6. implicit structural conformance (rule vi). ----------------------
  // Kind gating: a class may stand in for a class or an interface; an
  // interface has no state or constructors, so it can only stand in for
  // another interface.
  if (target.kind() == TypeKind::Class && source.kind() == TypeKind::Interface) {
    push_failure(result.failures, "interface '" + src_name +
                                      "' cannot conform to class '" + tgt_name + "'");
    return result;
  }

  ConformancePlan plan(src_name, tgt_name, ConformanceKind::ImplicitStructural);

  // Aspect (i): type names.
  if (options_.check_name && !name_conforms(source.name(), target.name())) {
    push_failure(result.failures, "name aspect: '" + source.name() +
                                      "' does not conform to '" + target.name() + "'");
    return result;
  }

  // Coinductive cycle handling for the recursive aspects.
  const std::uint64_t key = util::pair_key(source.name_id(), target.name_id());
  if (ctx.in_progress.contains(key)) {
    // Assumed conformant while the enclosing check of the same pair runs.
    ++ctx.assumption_events;
    result.conformant = true;
    result.plan = std::move(plan);
    return result;
  }
  ctx.in_progress.insert(key);

  bool ok = true;
  if (ok && options_.check_supertypes) {
    ok = check_supertypes(source, target, ctx, result.failures);
  }
  if (ok && options_.check_fields) {
    ok = check_fields(source, target, ctx, plan, result.failures);
  }
  if (ok && options_.check_methods) {
    ok = check_methods(source, target, ctx, plan, result.failures);
  }
  if (ok && options_.check_constructors) {
    ok = check_constructors(source, target, ctx, plan, result.failures);
  }

  ctx.in_progress.erase(key);

  result.conformant = ok;
  result.missing_types = ctx.missing_types;
  if (ok) result.plan = std::move(plan);
  return result;
}

bool ConformanceChecker::ref_conforms(std::string_view source_type,
                                      std::string_view source_ns,
                                      std::string_view target_type,
                                      std::string_view target_ns, Ctx& ctx) {
  const TypeDescription* source = resolver_.resolve(source_type, source_ns);
  const TypeDescription* target = resolver_.resolve(target_type, target_ns);
  if (source == nullptr) ctx.missing_types.emplace_back(source_type);
  if (target == nullptr) ctx.missing_types.emplace_back(target_type);
  if (source == nullptr || target == nullptr) return false;

  // Re-enter through the cache-aware path so nested pairs get memoized
  // plans of their own (the dynamic proxy asks for them when wrapping
  // returned objects).
  ++ctx.depth;
  const CheckResult inner = check_with_ctx(*source, *target, ctx);
  --ctx.depth;
  for (const auto& m : inner.missing_types) ctx.missing_types.push_back(m);
  return inner.conformant;
}

bool ConformanceChecker::explicitly_conforms(const TypeDescription& source,
                                             const TypeDescription& target, Ctx& ctx) {
  // Breadth-first walk of the nominal ancestry (superclass chain plus all
  // transitively implemented interfaces), matching by resolved identity or
  // case-insensitive qualified name.
  std::vector<const TypeDescription*> frontier{&source};
  std::unordered_set<util::InternedName> visited;
  while (!frontier.empty()) {
    const TypeDescription* current = frontier.back();
    frontier.pop_back();
    if (!visited.insert(current->name_id()).second) continue;

    if (current != &source) {
      if (!current->guid().is_nil() && current->guid() == target.guid()) return true;
      if (current->name_id() == target.name_id()) return true;
    }

    const auto visit_ref = [&](const std::string& ref) {
      if (ref.empty()) return;
      if (reflect::canonical_primitive(ref) == reflect::kObjectType) return;
      const TypeDescription* resolved = resolver_.resolve(ref, current->namespace_name());
      if (resolved == nullptr) {
        ctx.missing_types.push_back(ref);
        return;
      }
      frontier.push_back(resolved);
    };
    visit_ref(current->superclass());
    for (const auto& itf : current->interfaces()) visit_ref(itf);
  }
  return false;
}

bool ConformanceChecker::check_supertypes(const TypeDescription& source,
                                          const TypeDescription& target, Ctx& ctx,
                                          std::vector<std::string>& failures) {
  // Superclass: the target's superclass (if meaningful) must be matched by
  // the source's superclass, implicit-structurally.
  const std::string& tgt_super = target.superclass();
  const bool tgt_super_trivial =
      tgt_super.empty() ||
      reflect::canonical_primitive(tgt_super) == reflect::kObjectType;
  if (!tgt_super_trivial) {
    if (source.superclass().empty()) {
      push_failure(failures, "supertype aspect: target expects superclass '" + tgt_super +
                                 "' but source has none");
      return false;
    }
    if (!ref_conforms(source.superclass(), source.namespace_name(), tgt_super,
                      target.namespace_name(), ctx)) {
      push_failure(failures, "supertype aspect: superclass '" + source.superclass() +
                                 "' does not conform to '" + tgt_super + "'");
      return false;
    }
  }

  // Interfaces: every target interface must be covered by some source
  // interface.
  for (const auto& tgt_itf : target.interfaces()) {
    bool covered = false;
    for (const auto& src_itf : source.interfaces()) {
      if (ref_conforms(src_itf, source.namespace_name(), tgt_itf,
                       target.namespace_name(), ctx)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      push_failure(failures, "supertype aspect: no source interface conforms to '" +
                                 tgt_itf + "'");
      return false;
    }
  }
  return true;
}

bool ConformanceChecker::check_fields(const TypeDescription& source,
                                      const TypeDescription& target, Ctx& ctx,
                                      ConformancePlan& plan,
                                      std::vector<std::string>& failures) {
  for (const auto& tgt_field : target.fields()) {
    std::vector<const FieldDescription*> candidates;
    for (const auto& src_field : source.fields()) {
      if (!member_name_conforms(src_field.name, tgt_field.name)) continue;
      if (src_field.is_static != tgt_field.is_static) continue;
      if (!ref_conforms(src_field.type_name, source.namespace_name(), tgt_field.type_name,
                        target.namespace_name(), ctx)) {
        continue;
      }
      candidates.push_back(&src_field);
    }
    if (candidates.empty()) {
      push_failure(failures, "field aspect: no source field conforms to '" +
                                 tgt_field.name + ":" + tgt_field.type_name + "'");
      return false;
    }
    if (candidates.size() > 1 && options_.ambiguity == AmbiguityPolicy::Error) {
      push_failure(failures, "field aspect: " + std::to_string(candidates.size()) +
                                 " source fields match '" + tgt_field.name + "'");
      return false;
    }
    const FieldDescription* chosen = candidates.front();
    if (options_.ambiguity == AmbiguityPolicy::PreferExactName) {
      for (const FieldDescription* c : candidates) {
        if (util::iequals(c->name, tgt_field.name)) {
          chosen = c;
          break;
        }
      }
    }
    plan.add_field(FieldMapping{tgt_field.name, chosen->name, tgt_field.type_name,
                                chosen->type_name});
  }
  return true;
}

std::optional<std::vector<std::size_t>> ConformanceChecker::find_argument_permutation(
    const std::vector<ParamDescription>& source_params, std::string_view source_ns,
    const std::vector<ParamDescription>& target_params, std::string_view target_ns,
    Ctx& ctx) {
  const std::size_t n = source_params.size();
  if (n != target_params.size()) return std::nullopt;
  if (n == 0) return std::vector<std::size_t>{};

  // Contravariance (Fig. 2, aspect iv, case (2)): the *target's* argument
  // type must conform to the *source's* parameter type — the received
  // object's method will be fed values produced against the target
  // signature.
  std::vector<std::vector<bool>> compat(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!options_.allow_permutations && i != j) continue;
      compat[i][j] = ref_conforms(target_params[j].type_name, target_ns,
                                  source_params[i].type_name, source_ns, ctx);
    }
  }

  // Fast path: identity permutation.
  bool identity_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!compat[i][i]) {
      identity_ok = false;
      break;
    }
  }
  if (identity_ok) {
    std::vector<std::size_t> id(n);
    for (std::size_t i = 0; i < n; ++i) id[i] = i;
    return id;
  }
  if (!options_.allow_permutations) return std::nullopt;

  // General case: perfect bipartite matching (Kuhn's augmenting paths);
  // polynomial, so wide signatures cannot blow up factorially.
  std::vector<std::size_t> target_owner(n, static_cast<std::size_t>(-1));
  const auto try_augment = [&](std::size_t i, auto&& self, std::vector<bool>& seen) -> bool {
    for (std::size_t j = 0; j < n; ++j) {
      if (!compat[i][j] || seen[j]) continue;
      seen[j] = true;
      if (target_owner[j] == static_cast<std::size_t>(-1) ||
          self(target_owner[j], self, seen)) {
        target_owner[j] = i;
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bool> seen(n, false);
    if (!try_augment(i, try_augment, seen)) return std::nullopt;
  }
  std::vector<std::size_t> perm(n, 0);
  for (std::size_t j = 0; j < n; ++j) perm[target_owner[j]] = j;
  return perm;
}

bool ConformanceChecker::check_methods(const TypeDescription& source,
                                       const TypeDescription& target, Ctx& ctx,
                                       ConformancePlan& plan,
                                       std::vector<std::string>& failures) {
  for (const auto& tgt_method : target.methods()) {
    struct Candidate {
      const MethodDescription* method;
      std::vector<std::size_t> permutation;
    };
    std::vector<Candidate> candidates;

    for (const auto& src_method : source.methods()) {
      if (src_method.arity() != tgt_method.arity()) continue;
      if (!member_name_conforms(src_method.name, tgt_method.name)) continue;
      if (options_.require_same_modifiers &&
          (src_method.visibility != tgt_method.visibility ||
           src_method.is_static != tgt_method.is_static)) {
        continue;
      }
      // Covariant return (Fig. 2, aspect iv, case (1)): the source's return
      // value is consumed where a target return value is expected.
      if (!ref_conforms(src_method.return_type, source.namespace_name(),
                        tgt_method.return_type, target.namespace_name(), ctx)) {
        continue;
      }
      auto perm = find_argument_permutation(src_method.params, source.namespace_name(),
                                            tgt_method.params, target.namespace_name(), ctx);
      if (!perm.has_value()) continue;
      candidates.push_back(Candidate{&src_method, std::move(*perm)});
    }

    if (candidates.empty()) {
      push_failure(failures, "method aspect: no source method conforms to '" +
                                 tgt_method.signature_string() + "'");
      return false;
    }
    if (candidates.size() > 1 && options_.ambiguity == AmbiguityPolicy::Error) {
      push_failure(failures, "method aspect: " + std::to_string(candidates.size()) +
                                 " source methods match '" +
                                 tgt_method.signature_string() + "'");
      return false;
    }
    const Candidate* chosen = &candidates.front();
    if (options_.ambiguity == AmbiguityPolicy::PreferExactName) {
      for (const Candidate& c : candidates) {
        if (util::iequals(c.method->name, tgt_method.name)) {
          chosen = &c;
          break;
        }
      }
    }

    MethodMapping mapping;
    mapping.target_name = tgt_method.name;
    mapping.source_name = chosen->method->name;
    mapping.arity = tgt_method.arity();
    mapping.arg_permutation = chosen->permutation;
    mapping.target_return_type = tgt_method.return_type;
    mapping.source_return_type = chosen->method->return_type;
    mapping.candidate_count = candidates.size();
    plan.add_method(std::move(mapping));
  }
  return true;
}

bool ConformanceChecker::check_constructors(const TypeDescription& source,
                                            const TypeDescription& target, Ctx& ctx,
                                            ConformancePlan& plan,
                                            std::vector<std::string>& failures) {
  for (const auto& tgt_ctor : target.constructors()) {
    struct Candidate {
      const ConstructorDescription* ctor;
      std::vector<std::size_t> permutation;
    };
    std::vector<Candidate> candidates;

    for (const auto& src_ctor : source.constructors()) {
      if (src_ctor.arity() != tgt_ctor.arity()) continue;
      if (options_.require_same_modifiers &&
          src_ctor.visibility != tgt_ctor.visibility) {
        continue;
      }
      auto perm = find_argument_permutation(src_ctor.params, source.namespace_name(),
                                            tgt_ctor.params, target.namespace_name(), ctx);
      if (!perm.has_value()) continue;
      candidates.push_back(Candidate{&src_ctor, std::move(*perm)});
    }

    if (candidates.empty()) {
      push_failure(failures, "constructor aspect: no source constructor conforms to '" +
                                 tgt_ctor.signature_string() + "'");
      return false;
    }
    if (candidates.size() > 1 && options_.ambiguity == AmbiguityPolicy::Error) {
      push_failure(failures, "constructor aspect: " + std::to_string(candidates.size()) +
                                 " source constructors match '" +
                                 tgt_ctor.signature_string() + "'");
      return false;
    }
    CtorMapping mapping;
    mapping.arity = tgt_ctor.arity();
    mapping.arg_permutation = candidates.front().permutation;
    mapping.candidate_count = candidates.size();
    plan.add_ctor(std::move(mapping));
  }
  return true;
}

}  // namespace pti::conform
