// Baseline matchers the paper compares against conceptually (Section 2).
//
// * ExactMatcher          — .NET CTS / plain Java RMI behaviour: a type is
//                           usable only as exactly itself (same identity).
// * NominalMatcher        — explicit conformance only: identity or declared
//                           subtyping (CORBA/Java RMI with shared
//                           hierarchies).
// * TaggedStructuralMatcher — "Safe Structural Conformance for Java"
//                           [Läufer, Baumgartner, Russo 96]: structural
//                           matching, but only between types explicitly
//                           tagged as structurally conformant, with exact
//                           member names and signatures (no renames, no
//                           permutations, shared hierarchy assumed).
//
// All three implement Matcher so the benchmarks and the application layers
// (TPS, borrow/lend) can swap the conformance relation.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "conform/conformance_checker.hpp"
#include "reflect/type_description.hpp"
#include "reflect/type_registry.hpp"

namespace pti::conform {

/// A binary "may source stand in for target?" relation.
class Matcher {
 public:
  virtual ~Matcher() = default;
  [[nodiscard]] virtual bool matches(const reflect::TypeDescription& source,
                                     const reflect::TypeDescription& target) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Identity only (GUID equality).
class ExactMatcher final : public Matcher {
 public:
  [[nodiscard]] bool matches(const reflect::TypeDescription& source,
                             const reflect::TypeDescription& target) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "exact"; }
};

/// Identity or declared (nominal) subtyping.
class NominalMatcher final : public Matcher {
 public:
  explicit NominalMatcher(reflect::TypeResolver& resolver);
  [[nodiscard]] bool matches(const reflect::TypeDescription& source,
                             const reflect::TypeDescription& target) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "nominal"; }

 private:
  ConformanceChecker checker_;
};

/// Läufer et al.-style tagged structural conformance: both types must carry
/// the structural tag; matching is method-set inclusion with *exact* names
/// and signatures.
class TaggedStructuralMatcher final : public Matcher {
 public:
  explicit TaggedStructuralMatcher(reflect::TypeResolver& resolver);
  [[nodiscard]] bool matches(const reflect::TypeDescription& source,
                             const reflect::TypeDescription& target) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "tagged-structural";
  }

 private:
  reflect::TypeResolver& resolver_;
};

/// The paper's full implicit structural conformance as a Matcher.
class ImplicitStructuralMatcher final : public Matcher {
 public:
  explicit ImplicitStructuralMatcher(reflect::TypeResolver& resolver,
                                     ConformanceOptions options = {},
                                     ConformanceCache* cache = nullptr);
  [[nodiscard]] bool matches(const reflect::TypeDescription& source,
                             const reflect::TypeDescription& target) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "implicit-structural";
  }
  [[nodiscard]] ConformanceChecker& checker() noexcept { return checker_; }

 private:
  ConformanceChecker checker_;
};

}  // namespace pti::conform
