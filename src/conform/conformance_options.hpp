// Tunable knobs of the implicit structural conformance relation.
//
// Defaults implement the paper's rules exactly (Section 4.2, Fig. 2):
// case-insensitive names with Levenshtein distance 0, all aspects checked,
// argument permutations considered. The non-default settings exist for the
// extensions the paper sketches (wildcards, relaxed names) and for the E7
// ablation benchmarks — including the "weaker rule" (name-only) that the
// paper explicitly warns breaks type safety.
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace pti::conform {

/// What to do when one target member is matched by several source members.
enum class AmbiguityPolicy : std::uint8_t {
  First,      ///< pick the first declared match (paper: programmer's choice)
  PreferExactName,  ///< prefer an exact (case-insensitive) name match, then first
  Error,      ///< refuse: report the ambiguity as a failure
};

/// How *member* (method/field) names are compared. Type names always use
/// the Levenshtein rule the paper states; for members the paper's formula
/// is lenient enough to let `getName` interoperate with `getPersonName`
/// (its own motivating example), which we reconstruct as token-subset
/// matching. Exact and Contains exist for the E7 ablation.
enum class MemberNameRule : std::uint8_t {
  TokenSubset,  ///< camelCase tokens of one name include the other's (default)
  Contains,     ///< case-insensitive substring either way
  Exact,        ///< Levenshtein within max_name_distance (0 == equality)
};

struct ConformanceOptions {
  // --- name aspect (i) ----------------------------------------------------
  /// Maximum Levenshtein distance between (case-folded) names; the paper
  /// uses 0.
  std::uint32_t max_name_distance = 0;
  /// Allow '*'/'?' wildcards in *target* names (paper: "wildcards could be
  /// allowed but this is not the aim of this paper").
  bool allow_wildcards = false;
  /// Member (method/field) name comparison; see MemberNameRule.
  MemberNameRule member_name_rule = MemberNameRule::TokenSubset;

  // --- aspect toggles (for the ablation; all true == the paper's rule) ----
  bool check_name = true;
  bool check_fields = true;
  bool check_supertypes = true;
  bool check_methods = true;
  bool check_constructors = true;

  // --- method aspect (iv) --------------------------------------------------
  /// Consider argument permutations, as Fig. 2's Perm(...) does.
  bool allow_permutations = true;
  /// Require identical visibility/static modifiers ("the modifiers of the
  /// methods are supposed to be the same").
  bool require_same_modifiers = true;

  // --- extensions beyond the paper (default off) ---------------------------
  /// Widening primitive conformance: int32 ≼ int64 ≼ float64.
  bool allow_numeric_widening = false;

  AmbiguityPolicy ambiguity = AmbiguityPolicy::First;

  /// Stable fingerprint used in conformance-cache keys.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    std::uint64_t h = util::fnv1a64("conformance-options");
    const auto mix = [&h](std::uint64_t v) { h = util::hash_combine(h, v); };
    mix(max_name_distance);
    mix(allow_wildcards);
    mix(static_cast<std::uint64_t>(member_name_rule));
    mix(check_name);
    mix(check_fields);
    mix(check_supertypes);
    mix(check_methods);
    mix(check_constructors);
    mix(allow_permutations);
    mix(require_same_modifiers);
    mix(allow_numeric_widening);
    mix(static_cast<std::uint64_t>(ambiguity));
    return h;
  }

  bool operator==(const ConformanceOptions&) const = default;
};

}  // namespace pti::conform
