#include "conform/baselines.hpp"

#include "util/string_util.hpp"

namespace pti::conform {

using reflect::MethodDescription;
using reflect::TypeDescription;

bool ExactMatcher::matches(const TypeDescription& source, const TypeDescription& target) {
  return !source.guid().is_nil() && source.guid() == target.guid();
}

NominalMatcher::NominalMatcher(reflect::TypeResolver& resolver)
    : checker_(resolver,
               [] {
                 // Disable every structural aspect: what remains of the
                 // checker pipeline is identity, equivalence and the
                 // explicit (nominal) walk. Equivalence is harmless here —
                 // structurally equal types are renamed copies, which
                 // nominal systems would reject — so gate on kind below.
                 return ConformanceOptions{};
               }()) {}

bool NominalMatcher::matches(const TypeDescription& source, const TypeDescription& target) {
  const CheckResult r = checker_.check(source, target);
  if (!r.conformant) return false;
  return r.plan.kind() == ConformanceKind::Identity ||
         r.plan.kind() == ConformanceKind::Explicit;
}

TaggedStructuralMatcher::TaggedStructuralMatcher(reflect::TypeResolver& resolver)
    : resolver_(resolver) {}

bool TaggedStructuralMatcher::matches(const TypeDescription& source,
                                      const TypeDescription& target) {
  if (!source.guid().is_nil() && source.guid() == target.guid()) return true;
  // Only types that opted in may match structurally — the restriction the
  // paper lifts ("legacy interfaces can never be used with structural
  // conformance").
  if (!source.structural_tag() || !target.structural_tag()) return false;

  // Method-set inclusion with exact signatures: every target method must
  // exist in the source with the same name, parameter types and return
  // type (type references compared by name, case-sensitively — the Java
  // model).
  for (const MethodDescription& tm : target.methods()) {
    bool found = false;
    for (const MethodDescription& sm : source.methods()) {
      if (sm.name != tm.name || sm.arity() != tm.arity() ||
          sm.return_type != tm.return_type) {
        continue;
      }
      bool params_equal = true;
      for (std::size_t i = 0; i < sm.params.size(); ++i) {
        if (sm.params[i].type_name != tm.params[i].type_name) {
          params_equal = false;
          break;
        }
      }
      if (params_equal) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

ImplicitStructuralMatcher::ImplicitStructuralMatcher(reflect::TypeResolver& resolver,
                                                     ConformanceOptions options,
                                                     ConformanceCache* cache)
    : checker_(resolver, options, cache) {}

bool ImplicitStructuralMatcher::matches(const TypeDescription& source,
                                        const TypeDescription& target) {
  return checker_.conforms(source, target);
}

}  // namespace pti::conform
