// Memoization of conformance verdicts.
//
// The paper measures ~12.66 ms per 1000 checks on simple types and calls
// it "a lower bound" for real types — which is exactly why a per-peer
// cache matters: a type's structure is immutable once registered, so a
// completed verdict (with its plan) never changes. Results whose check
// encountered unresolved type references are NOT cached; they may flip
// once the missing descriptions are downloaded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "conform/conformance_plan.hpp"

namespace pti::conform {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CachedVerdict {
  bool conformant = false;
  ConformancePlan plan;
};

class ConformanceCache {
 public:
  /// Key: (source qualified name, target qualified name, options
  /// fingerprint); names are case-folded.
  [[nodiscard]] const CachedVerdict* lookup(std::string_view source,
                                            std::string_view target,
                                            std::uint64_t options_fingerprint) noexcept;

  void insert(std::string_view source, std::string_view target,
              std::uint64_t options_fingerprint, CachedVerdict verdict);

  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  [[nodiscard]] static std::string make_key(std::string_view source, std::string_view target,
                                            std::uint64_t options_fingerprint);

  std::unordered_map<std::string, CachedVerdict> entries_;
  CacheStats stats_;
};

}  // namespace pti::conform
