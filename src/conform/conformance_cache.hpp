// Memoization of conformance verdicts.
//
// The paper measures ~12.66 ms per 1000 checks on simple types and calls
// it "a lower bound" for real types — which is exactly why a per-peer
// cache matters: a type's structure is immutable once registered, so a
// completed verdict (with its plan) never changes. Results whose check
// encountered unresolved type references are NOT cached; they may flip
// once the missing descriptions are downloaded.
//
// Keys are (source name id, target name id, options fingerprint): the
// interned ids are case-folded once at TypeDescription construction, so a
// lookup is a hash-combine of three integers and an open probe — no string
// building, no case folding, zero heap allocations.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "conform/conformance_plan.hpp"
#include "reflect/type_description.hpp"
#include "util/hash.hpp"
#include "util/interning.hpp"

namespace pti::conform {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CachedVerdict {
  bool conformant = false;
  ConformancePlan plan;
};

class ConformanceCache {
 public:
  /// Key: (source qualified-name id, target qualified-name id, options
  /// fingerprint). Interned ids already encode the case-folded names.
  struct Key {
    util::InternedName source;
    util::InternedName target;
    std::uint64_t options_fingerprint = 0;

    bool operator==(const Key&) const noexcept = default;
  };

  [[nodiscard]] const CachedVerdict* lookup(util::InternedName source,
                                            util::InternedName target,
                                            std::uint64_t options_fingerprint) noexcept;

  [[nodiscard]] const CachedVerdict* lookup(const reflect::TypeDescription& source,
                                            const reflect::TypeDescription& target,
                                            std::uint64_t options_fingerprint) noexcept {
    return lookup(source.name_id(), target.name_id(), options_fingerprint);
  }

  /// lookup() that records a hit when found but nothing on a miss — for
  /// fast paths that fall through to a full check on miss, where that
  /// check's own lookup records the single authoritative miss. Keeps each
  /// logical check at exactly one hit or one miss in the stats.
  [[nodiscard]] const CachedVerdict* probe(const reflect::TypeDescription& source,
                                           const reflect::TypeDescription& target,
                                           std::uint64_t options_fingerprint) noexcept;

  void insert(util::InternedName source, util::InternedName target,
              std::uint64_t options_fingerprint, CachedVerdict verdict);

  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(util::hash_combine(
          util::pair_key(k.source, k.target) * 0x9E3779B97F4A7C15ULL,
          k.options_fingerprint));
    }
  };

  std::unordered_map<Key, CachedVerdict, KeyHash> entries_;
  CacheStats stats_;
};

}  // namespace pti::conform
