// Memoization of conformance verdicts.
//
// The paper measures ~12.66 ms per 1000 checks on simple types and calls
// it "a lower bound" for real types — which is exactly why a per-peer
// cache matters: a type's structure is immutable once registered, so a
// completed verdict (with its plan) never changes. Results whose check
// encountered unresolved type references are NOT cached; they may flip
// once the missing descriptions are downloaded.
//
// Keys are (source name id, target name id, options fingerprint): the
// interned ids are case-folded once at TypeDescription construction, so a
// lookup is a hash-combine of three integers and an open probe — no string
// building, no case folding, zero heap allocations.
//
// Thread safety: the cache is sharded 16 ways by key hash. Each shard
// keeps a node-based map as the authoritative store (writers take the
// shard's mutex) plus an open-addressing read index of atomic
// (tag, entry*) slots published release/acquire — so lookup()/probe() are
// LOCK-FREE: a cached-verdict hit costs a hash, a couple of atomic loads
// and a key compare, the same order of magnitude as the single-threaded
// cache of PR 1. Entry pointers are stable map nodes (never erased during
// concurrent operation), which is what makes publishing them to lock-free
// readers sound; a reader racing an index grow may transiently miss a
// fresh key, which only costs a benign recompute + idempotent re-insert.
// Per-shard hit/miss/insertion counters are atomics.
//
// Reclamation: plain clear() requires external quiescence (no concurrent
// readers holding pointers). The epoch-era paths — evict_cold() and
// clear(EpochManager&) — are safe against concurrent readers that bracket
// their lookups in an EpochManager::Pin: evicted map nodes and replaced
// read-index tables are retired, not freed, and only reclaimed once every
// pin that could reference them has released. evict_cold() REBUILDS the
// shard's read index after extracting cold entries, so post-eviction
// probes can never hit an evicted key (important: keys hold interned ids,
// and an evicted id may be recycled for a different name).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "conform/conformance_plan.hpp"
#include "reflect/type_description.hpp"
#include "util/hash.hpp"
#include "util/interning.hpp"

namespace pti::conform {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct CachedVerdict {
  bool conformant = false;
  ConformancePlan plan;
};

class ConformanceCache {
 public:
  /// Key: (source qualified-name id, target qualified-name id, options
  /// fingerprint). Interned ids already encode the case-folded names.
  struct Key {
    util::InternedName source;
    util::InternedName target;
    std::uint64_t options_fingerprint = 0;

    bool operator==(const Key&) const noexcept = default;
  };

  /// Lock-free probe of one shard's read index; the returned pointer is
  /// stable (entries are node-based and never erased outside clear()).
  [[nodiscard]] const CachedVerdict* lookup(util::InternedName source,
                                            util::InternedName target,
                                            std::uint64_t options_fingerprint) noexcept;

  [[nodiscard]] const CachedVerdict* lookup(const reflect::TypeDescription& source,
                                            const reflect::TypeDescription& target,
                                            std::uint64_t options_fingerprint) noexcept {
    return lookup(source.name_id(), target.name_id(), options_fingerprint);
  }

  /// lookup() that records a hit when found but nothing on a miss — for
  /// fast paths that fall through to a full check on miss, where that
  /// check's own lookup records the single authoritative miss. Keeps each
  /// logical check at exactly one hit or one miss in the stats.
  [[nodiscard]] const CachedVerdict* probe(const reflect::TypeDescription& source,
                                           const reflect::TypeDescription& target,
                                           std::uint64_t options_fingerprint) noexcept;

  /// Batched lock-free probe: pass 1 hashes every key and prefetches its
  /// shard's index slot, pass 2 probes — the independent shard/slot cache
  /// lines are fetched in parallel instead of serially per lookup, which
  /// is what amortizes cache-shard traffic for bulk conformance queries.
  /// out[i] receives the verdict for keys[i] (nullptr when not cached).
  /// Hit accounting matches probe(): hits count, misses do not (the
  /// caller's fallback full check records the authoritative miss).
  void probe_batch(std::span<const Key> keys, const CachedVerdict** out) noexcept;

  /// Exclusive-locks one shard. Idempotent re-insertion of an equal
  /// verdict (two threads completing the same check) is benign.
  void insert(util::InternedName source, util::InternedName target,
              std::uint64_t options_fingerprint, CachedVerdict verdict);

  /// Erases every entry. NOT safe concurrently with readers that may still
  /// hold pointers returned by lookup()/probe(); quiesce first.
  void clear() noexcept;

  /// Epoch-era clear: erases every entry but retires the map nodes and
  /// index tables through `em` instead of freeing them, so readers that
  /// hold an EpochManager::Pin around their lookup()/probe() may run
  /// concurrently — pointers they already obtained stay valid until their
  /// pin releases and the epoch advances.
  void clear(util::EpochManager& em);

  /// Advances the usage clock one tick and returns the new tick. Lookup
  /// hits stamp their entry; evict_cold() measures idleness in ticks.
  std::uint32_t advance_tick() noexcept;

  /// Evicts up to `max_evict` entries not hit for at least
  /// `min_idle_ticks` ticks. Safe against concurrent PINNED readers (see
  /// clear(em)); shards whose entries were evicted get a freshly rebuilt
  /// read index, with the old table and the evicted nodes retired through
  /// `em`. Returns the number of entries evicted.
  std::size_t evict_cold(util::EpochManager& em, std::uint32_t min_idle_ticks,
                         std::size_t max_evict);

  [[nodiscard]] std::size_t size() const noexcept;

  /// Aggregated counters across all shards (by value: shards tick their
  /// own atomic counters, so there is no single struct to reference).
  [[nodiscard]] CacheStats stats() const noexcept;

  /// Per-shard counters — the observability hook for load-balance checks
  /// and a future eviction/epoch story.
  [[nodiscard]] CacheStats shard_stats(std::size_t shard) const noexcept;
  [[nodiscard]] static constexpr std::size_t shard_count() noexcept { return kShardCount; }

  void reset_stats() noexcept;

  ConformanceCache() = default;
  ~ConformanceCache();
  ConformanceCache(const ConformanceCache&) = delete;
  ConformanceCache& operator=(const ConformanceCache&) = delete;

 private:
  static constexpr std::size_t kShardCount = 16;
  static constexpr std::size_t kInitialSlots = 256;  // per shard, power of two

  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(util::hash_combine(
          util::pair_key(k.source, k.target) * 0x9E3779B97F4A7C15ULL,
          k.options_fingerprint));
    }
  };

  struct ShardStats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  // Map node payload: the verdict plus its recency stamp. The stamp is
  // mutable+atomic so lock-free read hits can refresh it; nodes are never
  // moved once emplaced (node-based map), so the atomic never relocates.
  struct Node {
    explicit Node(CachedVerdict v) : verdict(std::move(v)) {}
    CachedVerdict verdict;
    mutable std::atomic<std::uint32_t> last_use{0};
  };

  using MapEntry = std::pair<const Key, Node>;
  using EntryMap = std::unordered_map<Key, Node, KeyHash>;

  // One slot of the lock-free read index. The writer stores `entry` first,
  // then publishes `tag` with release; a reader that observes the tag
  // (acquire) therefore observes a fully written entry. tag==0 means
  // empty, which terminates a reader's linear probe (no deletions).
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<const MapEntry*> entry{nullptr};
  };

  struct Table {
    explicit Table(std::size_t capacity) : mask(capacity - 1), slots(capacity) {}
    std::size_t mask;
    std::vector<Slot> slots;
    std::size_t used = 0;  // writer-only, guarded by the shard mutex
  };

  struct Shard {
    mutable std::shared_mutex mutex;  // writers exclusive; size() shared
    EntryMap entries;
    std::atomic<Table*> table{nullptr};
    // Tables replaced by growth; still probe-able by in-flight readers, so
    // they are only reclaimed at clear()/destruction or handed to the
    // EpochManager by the epoch-era paths (bounded: doubling means all
    // retired tables together are smaller than the live one).
    std::vector<Table*> retired;
    ShardStats stats;
  };

  [[nodiscard]] static std::size_t shard_of(std::size_t h) noexcept {
    // Use the high bits of a rescrambled hash: the low bits pick the index
    // slot, so reusing them for shard choice would correlate the two.
    // Widened first so the shift is defined even where size_t is 32 bits.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(h) * 0x9E3779B97F4A7C15ULL) >> 60) &
           (kShardCount - 1);
  }
  [[nodiscard]] static std::uint64_t tag_of(std::size_t h) noexcept {
    return h == 0 ? 1 : static_cast<std::uint64_t>(h);
  }

  /// Lock-free read of the shard's index; counts a hit when found, and a
  /// miss only when `count_miss`.
  [[nodiscard]] const CachedVerdict* read(Shard& shard, const Key& key, std::size_t h,
                                          bool count_miss) noexcept;

  /// Writer-side publication into the index (shard mutex held).
  static void publish(Table& table, const MapEntry* entry) noexcept;

  /// Swaps in `fresh` (may be nullptr) as the shard's read index and
  /// retires the old and previously retired tables through `em` (shard
  /// mutex held).
  static void swap_index_locked(Shard& shard, Table* fresh, util::EpochManager& em);

  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint32_t> tick_{1};
};

}  // namespace pti::conform
