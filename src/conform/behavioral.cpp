#include "conform/behavioral.hpp"

#include <optional>
#include <vector>

#include "conform/conform_error.hpp"
#include "reflect/primitives.hpp"
#include "util/rng.hpp"

namespace pti::conform {

using reflect::DynObject;
using reflect::MethodDescription;
using reflect::NativeType;
using reflect::TypeDescription;
using reflect::Value;

namespace {

/// Random value of a primitive type; nullopt for non-primitive names.
std::optional<Value> random_primitive(std::string_view type_name, util::Rng& rng) {
  const std::string_view canonical = reflect::canonical_primitive(type_name);
  if (canonical == reflect::kBoolType) return Value(rng.next_bool(0.5));
  if (canonical == reflect::kInt32Type) {
    return Value(static_cast<std::int32_t>(rng.next_below(2001)) - 1000);
  }
  if (canonical == reflect::kInt64Type) {
    return Value(static_cast<std::int64_t>(rng.next_below(1u << 20)) - (1 << 19));
  }
  if (canonical == reflect::kFloat64Type) {
    return Value(rng.next_double() * 100.0 - 50.0);
  }
  if (canonical == reflect::kStringType) {
    std::string s;
    const std::size_t len = rng.next_below(8);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    return Value(std::move(s));
  }
  return std::nullopt;
}

[[nodiscard]] bool primitive_only(const std::vector<reflect::ParamDescription>& params) {
  for (const auto& p : params) {
    if (!reflect::is_primitive_name(p.type_name) ||
        reflect::canonical_primitive(p.type_name) == reflect::kObjectType ||
        reflect::canonical_primitive(p.type_name) == reflect::kListType) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] bool primitive_result(std::string_view return_type) {
  const std::string_view canonical = reflect::canonical_primitive(return_type);
  return reflect::is_primitive_name(return_type) &&
         canonical != reflect::kObjectType && canonical != reflect::kListType;
}

}  // namespace

BehavioralReport probe_behavioral_conformance(const reflect::Domain& domain,
                                              const TypeDescription& source,
                                              const TypeDescription& target,
                                              const ConformancePlan& plan,
                                              const BehavioralOptions& options) {
  const NativeType* source_native = domain.find_native(source.qualified_name());
  const NativeType* target_native = domain.find_native(target.qualified_name());
  if (source_native == nullptr || target_native == nullptr) {
    throw ConformError(
        "behavioral probing needs both types loaded (executable) locally: '" +
        source.qualified_name() + "' and '" + target.qualified_name() + "'");
  }

  BehavioralReport report;

  // Testable method mappings: primitive-only parameters and results on the
  // *target* signature (the contract being probed).
  struct Probe {
    const MethodMapping* mapping;
    const MethodDescription* target_method;
  };
  std::vector<Probe> probes;
  for (const MethodMapping& mapping : plan.methods()) {
    const MethodDescription* tm = target.find_method(mapping.target_name, mapping.arity);
    if (tm == nullptr) continue;
    if (primitive_only(tm->params) && primitive_result(tm->return_type)) {
      probes.push_back(Probe{&mapping, tm});
      ++report.methods_testable;
    } else {
      ++report.methods_skipped;
    }
  }
  if (probes.empty()) return report;  // nothing exercisable

  // Constructor: prefer a plan-mapped primitive-argument constructor so
  // both instances start from identical state.
  const CtorMapping* ctor_mapping = nullptr;
  const reflect::ConstructorDescription* target_ctor = nullptr;
  for (const CtorMapping& c : plan.ctors()) {
    for (const auto& tc : target.constructors()) {
      if (tc.arity() == c.arity && primitive_only(tc.params)) {
        ctor_mapping = &c;
        target_ctor = &tc;
        break;
      }
    }
    if (ctor_mapping != nullptr) break;
  }

  util::Rng rng(options.seed);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    ++report.trials_run;

    std::shared_ptr<DynObject> target_obj;
    std::shared_ptr<DynObject> source_obj;
    if (ctor_mapping != nullptr) {
      std::vector<Value> target_args;
      for (const auto& p : target_ctor->params) {
        target_args.push_back(*random_primitive(p.type_name, rng));
      }
      std::vector<Value> source_args(target_args.size());
      for (std::size_t i = 0; i < target_args.size(); ++i) {
        source_args[i] = target_args[ctor_mapping->arg_permutation[i]];
      }
      target_obj = target_native->instantiate(
          reflect::Args(target_args.data(), target_args.size()));
      source_obj = source_native->instantiate(
          reflect::Args(source_args.data(), source_args.size()));
    } else {
      target_obj = target_native->instantiate_raw();
      source_obj = source_native->instantiate_raw();
    }

    for (std::size_t call = 0; call < options.calls_per_trial; ++call) {
      const Probe& probe = probes[rng.next_below(probes.size())];
      std::vector<Value> target_args;
      for (const auto& p : probe.target_method->params) {
        target_args.push_back(*random_primitive(p.type_name, rng));
      }
      std::vector<Value> source_args(target_args.size());
      for (std::size_t i = 0; i < target_args.size(); ++i) {
        source_args[i] = target_args[probe.mapping->arg_permutation[i]];
      }

      const Value expected = target_native->invoke(
          *target_obj, probe.target_method->name,
          reflect::Args(target_args.data(), target_args.size()));
      const Value actual = source_native->invoke(
          *source_obj, probe.mapping->source_name,
          reflect::Args(source_args.data(), source_args.size()));
      ++report.calls_made;

      if (!(expected == actual)) {
        report.equivalent = false;
        report.counterexample =
            "trial " + std::to_string(trial) + ", call " + std::to_string(call) + ": " +
            target.qualified_name() + "." + probe.target_method->name + " -> " +
            expected.to_debug_string() + " but " + source.qualified_name() + "." +
            probe.mapping->source_name + " -> " + actual.to_debug_string();
        return report;
      }
    }
  }
  return report;
}

}  // namespace pti::conform
