#pragma once

#include "util/error.hpp"

namespace pti::conform {

class ConformError : public Error {
 public:
  using Error::Error;
};

/// Raised when AmbiguityPolicy::Error is selected and a target member
/// matches several source members (the case the paper leaves "up to the
/// programmer to decide").
class AmbiguityError : public ConformError {
 public:
  using ConformError::ConformError;
};

}  // namespace pti::conform
