#include "conform/conformance_plan.hpp"

#include "util/string_util.hpp"

namespace pti::conform {

std::string_view to_string(ConformanceKind kind) noexcept {
  switch (kind) {
    case ConformanceKind::Identity: return "identity";
    case ConformanceKind::Equivalent: return "equivalent";
    case ConformanceKind::Explicit: return "explicit";
    case ConformanceKind::ImplicitStructural: return "implicit-structural";
  }
  return "?";
}

const MethodMapping* ConformancePlan::find_method(std::string_view target_name,
                                                  std::size_t arity) const noexcept {
  for (const auto& m : methods()) {
    if (m.arity == arity && util::iequals(m.target_name, target_name)) return &m;
  }
  return nullptr;
}

const FieldMapping* ConformancePlan::find_field(
    std::string_view target_field) const noexcept {
  for (const auto& f : fields()) {
    if (util::iequals(f.target_field, target_field)) return &f;
  }
  return nullptr;
}

bool ConformancePlan::has_ambiguities() const noexcept {
  for (const auto& m : methods()) {
    if (m.candidate_count > 1) return true;
  }
  for (const auto& c : ctors()) {
    if (c.candidate_count > 1) return true;
  }
  return false;
}

}  // namespace pti::conform
