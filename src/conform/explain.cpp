#include "conform/explain.hpp"

#include <sstream>

namespace pti::conform {

namespace {

void render_permutation(std::ostringstream& out, const std::vector<std::size_t>& perm) {
  bool identity = true;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) {
      identity = false;
      break;
    }
  }
  if (identity) return;
  out << " [args:";
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out << ' ' << i << "<-" << perm[i];
  }
  out << ']';
}

}  // namespace

std::string render_plan(const ConformancePlan& plan) {
  std::ostringstream out;
  out << plan.source_type() << " as " << plan.target_type() << " ("
      << to_string(plan.kind()) << ")\n";
  if (plan.is_passthrough()) {
    out << "  passthrough: no adaptation required\n";
    return out.str();
  }
  for (const MethodMapping& m : plan.methods()) {
    out << "  method " << m.target_name << "/" << m.arity << " -> " << m.source_name;
    render_permutation(out, m.arg_permutation);
    if (m.candidate_count > 1) {
      out << " (AMBIGUOUS: " << m.candidate_count << " candidates)";
    }
    out << '\n';
  }
  for (const FieldMapping& f : plan.fields()) {
    out << "  field  " << f.target_field << ":" << f.target_type << " -> "
        << f.source_field << ":" << f.source_type << '\n';
  }
  for (const CtorMapping& c : plan.ctors()) {
    out << "  ctor   /" << c.arity;
    render_permutation(out, c.arg_permutation);
    if (c.candidate_count > 1) {
      out << " (AMBIGUOUS: " << c.candidate_count << " candidates)";
    }
    out << '\n';
  }
  return out.str();
}

std::string explain(const CheckResult& result) {
  std::ostringstream out;
  out << "verdict: " << (result.conformant ? "CONFORMANT" : "NOT CONFORMANT");
  if (result.needs_more_types()) out << " (provisional: missing descriptions)";
  out << '\n';
  if (result.conformant) {
    out << render_plan(result.plan);
  }
  for (const std::string& failure : result.failures) {
    out << "  failure: " << failure << '\n';
  }
  for (const std::string& missing : result.missing_types) {
    out << "  missing description: " << missing << '\n';
  }
  return out.str();
}

}  // namespace pti::conform
