// Human-readable rendering of conformance verdicts and plans.
//
// The paper leaves ambiguity resolution "up to the programmer to decide" —
// which presupposes the programmer can *see* what matched what. These
// helpers turn a CheckResult into the report a tool or log would print:
// the conformance kind, every method/field/constructor mapping (with
// permutations and candidate counts), failures and unresolved types.
#pragma once

#include <string>

#include "conform/conformance_checker.hpp"
#include "conform/conformance_plan.hpp"

namespace pti::conform {

/// Multi-line rendering of a full check result.
[[nodiscard]] std::string explain(const CheckResult& result);

/// Multi-line rendering of a plan's member mappings.
[[nodiscard]] std::string render_plan(const ConformancePlan& plan);

}  // namespace pti::conform
