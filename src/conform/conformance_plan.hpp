// ConformancePlan — the *witness* of a successful conformance check.
//
// Knowing that T conforms to T' is not enough to use a T where a T' is
// expected: the dynamic proxy must know which source method realizes each
// target method and how the arguments were permuted. The checker produces
// this plan as a by-product; the proxy executes it.
//
// Plans are copy-on-write: a completed plan is immutable in practice (the
// checker builds it once, then it is cached, copied into CheckResults and
// held by proxies), so copies share one refcounted payload and cost a
// pointer bump — returning a cached verdict allocates nothing. The rare
// mutation of a shared plan clones first.
//
// Thread safety: the payload refcount is a std::atomic, so distinct plan
// objects sharing one payload may be copied, read and destroyed from any
// number of threads concurrently — this is what lets many threads pull the
// same cached verdict out of the (shared) ConformanceCache at once.
// Mutating a *given* plan object (add_method etc.) is not synchronized and
// must stay confined to one thread; the checker only mutates plans it has
// not yet published.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pti::conform {

/// How conformance was established, from strongest to weakest.
enum class ConformanceKind : std::uint8_t {
  Identity,            ///< same type identity (GUID)
  Equivalent,          ///< structurally equal descriptions
  Explicit,            ///< nominal subtyping (paper's explicit conformance)
  ImplicitStructural,  ///< the paper's rule (vi)
};

[[nodiscard]] std::string_view to_string(ConformanceKind kind) noexcept;

/// Maps one target method onto a source method.
struct MethodMapping {
  std::string target_name;
  std::string source_name;
  std::size_t arity = 0;
  /// arg_permutation[i] = index of the *target-side* argument that feeds
  /// source parameter i. Identity permutation == {0, 1, ..., n-1}.
  std::vector<std::size_t> arg_permutation;
  /// Return/argument type names, used by the proxy to decide whether
  /// results need recursive wrapping.
  std::string target_return_type;
  std::string source_return_type;
  /// Number of equally acceptable source candidates found (> 1 == the
  /// ambiguous case the paper leaves to the programmer).
  std::size_t candidate_count = 1;

  [[nodiscard]] bool is_identity_permutation() const noexcept {
    for (std::size_t i = 0; i < arg_permutation.size(); ++i) {
      if (arg_permutation[i] != i) return false;
    }
    return true;
  }
};

struct FieldMapping {
  std::string target_field;
  std::string source_field;
  std::string target_type;
  std::string source_type;
};

struct CtorMapping {
  std::size_t arity = 0;
  std::vector<std::size_t> arg_permutation;
  std::size_t candidate_count = 1;
};

class ConformancePlan {
 public:
  ConformancePlan() = default;
  ConformancePlan(std::string source_type, std::string target_type, ConformanceKind kind)
      : data_(new Data(std::move(source_type), std::move(target_type), kind)) {}

  ConformancePlan(const ConformancePlan& other) noexcept : data_(other.data_) {
    if (data_ != nullptr) data_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  ConformancePlan(ConformancePlan&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)) {}
  ConformancePlan& operator=(const ConformancePlan& other) noexcept {
    if (other.data_ != nullptr) other.data_->refs.fetch_add(1, std::memory_order_relaxed);
    release();
    data_ = other.data_;
    return *this;
  }
  ConformancePlan& operator=(ConformancePlan&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }
  ~ConformancePlan() { release(); }

  [[nodiscard]] const std::string& source_type() const noexcept {
    return data().source_type;
  }
  [[nodiscard]] const std::string& target_type() const noexcept {
    return data().target_type;
  }
  [[nodiscard]] ConformanceKind kind() const noexcept { return data().kind; }

  void add_method(MethodMapping m) { mutable_data().methods.push_back(std::move(m)); }
  void add_field(FieldMapping f) { mutable_data().fields.push_back(std::move(f)); }
  void add_ctor(CtorMapping c) { mutable_data().ctors.push_back(std::move(c)); }

  [[nodiscard]] const std::vector<MethodMapping>& methods() const noexcept {
    return data().methods;
  }
  [[nodiscard]] const std::vector<FieldMapping>& fields() const noexcept {
    return data().fields;
  }
  [[nodiscard]] const std::vector<CtorMapping>& ctors() const noexcept {
    return data().ctors;
  }

  /// Lookup used on every proxied invocation (case-insensitive name).
  [[nodiscard]] const MethodMapping* find_method(std::string_view target_name,
                                                 std::size_t arity) const noexcept;
  [[nodiscard]] const FieldMapping* find_field(std::string_view target_field) const noexcept;

  /// True when any member mapping had several candidates.
  [[nodiscard]] bool has_ambiguities() const noexcept;

  /// Identity/equivalent/explicit plans need no adaptation at all: the
  /// proxy can pass calls straight through.
  [[nodiscard]] bool is_passthrough() const noexcept {
    return data().kind != ConformanceKind::ImplicitStructural;
  }

 private:
  /// Intrusive refcounted payload. The count is atomic so plan copies may
  /// be created/destroyed concurrently across threads; the payload fields
  /// themselves are immutable once the plan is shared (COW clones first).
  struct Data {
    Data() = default;
    Data(std::string source, std::string target, ConformanceKind k)
        : source_type(std::move(source)), target_type(std::move(target)), kind(k) {}
    Data(const Data& other)
        : source_type(other.source_type),
          target_type(other.target_type),
          kind(other.kind),
          methods(other.methods),
          fields(other.fields),
          ctors(other.ctors) {}

    std::atomic<std::uint32_t> refs{1};
    std::string source_type;
    std::string target_type;
    ConformanceKind kind = ConformanceKind::Identity;
    std::vector<MethodMapping> methods;
    std::vector<FieldMapping> fields;
    std::vector<CtorMapping> ctors;
  };

  void release() noexcept {
    // acq_rel: the final decrement must observe every other thread's last
    // use of the payload before deleting it.
    if (data_ != nullptr && data_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete data_;
    }
    data_ = nullptr;
  }

  [[nodiscard]] static const Data& empty_data() noexcept {
    static const Data empty;
    return empty;
  }
  [[nodiscard]] const Data& data() const noexcept {
    return data_ != nullptr ? *data_ : empty_data();
  }
  /// Clones before writing when the payload is shared (or absent). A count
  /// of 1 means this object is the sole owner (acquire pairs with the
  /// releasing decrement of the other owners), so in-place mutation is safe.
  [[nodiscard]] Data& mutable_data() {
    if (data_ == nullptr) {
      data_ = new Data;
    } else if (data_->refs.load(std::memory_order_acquire) > 1) {
      Data* clone = new Data(*data_);
      release();
      data_ = clone;
    }
    return *data_;
  }

  Data* data_ = nullptr;
};

}  // namespace pti::conform
