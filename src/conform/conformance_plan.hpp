// ConformancePlan — the *witness* of a successful conformance check.
//
// Knowing that T conforms to T' is not enough to use a T where a T' is
// expected: the dynamic proxy must know which source method realizes each
// target method and how the arguments were permuted. The checker produces
// this plan as a by-product; the proxy executes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pti::conform {

/// How conformance was established, from strongest to weakest.
enum class ConformanceKind : std::uint8_t {
  Identity,            ///< same type identity (GUID)
  Equivalent,          ///< structurally equal descriptions
  Explicit,            ///< nominal subtyping (paper's explicit conformance)
  ImplicitStructural,  ///< the paper's rule (vi)
};

[[nodiscard]] std::string_view to_string(ConformanceKind kind) noexcept;

/// Maps one target method onto a source method.
struct MethodMapping {
  std::string target_name;
  std::string source_name;
  std::size_t arity = 0;
  /// arg_permutation[i] = index of the *target-side* argument that feeds
  /// source parameter i. Identity permutation == {0, 1, ..., n-1}.
  std::vector<std::size_t> arg_permutation;
  /// Return/argument type names, used by the proxy to decide whether
  /// results need recursive wrapping.
  std::string target_return_type;
  std::string source_return_type;
  /// Number of equally acceptable source candidates found (> 1 == the
  /// ambiguous case the paper leaves to the programmer).
  std::size_t candidate_count = 1;

  [[nodiscard]] bool is_identity_permutation() const noexcept {
    for (std::size_t i = 0; i < arg_permutation.size(); ++i) {
      if (arg_permutation[i] != i) return false;
    }
    return true;
  }
};

struct FieldMapping {
  std::string target_field;
  std::string source_field;
  std::string target_type;
  std::string source_type;
};

struct CtorMapping {
  std::size_t arity = 0;
  std::vector<std::size_t> arg_permutation;
  std::size_t candidate_count = 1;
};

class ConformancePlan {
 public:
  ConformancePlan() = default;
  ConformancePlan(std::string source_type, std::string target_type, ConformanceKind kind)
      : source_type_(std::move(source_type)),
        target_type_(std::move(target_type)),
        kind_(kind) {}

  [[nodiscard]] const std::string& source_type() const noexcept { return source_type_; }
  [[nodiscard]] const std::string& target_type() const noexcept { return target_type_; }
  [[nodiscard]] ConformanceKind kind() const noexcept { return kind_; }

  void add_method(MethodMapping m) { methods_.push_back(std::move(m)); }
  void add_field(FieldMapping f) { fields_.push_back(std::move(f)); }
  void add_ctor(CtorMapping c) { ctors_.push_back(std::move(c)); }

  [[nodiscard]] const std::vector<MethodMapping>& methods() const noexcept { return methods_; }
  [[nodiscard]] const std::vector<FieldMapping>& fields() const noexcept { return fields_; }
  [[nodiscard]] const std::vector<CtorMapping>& ctors() const noexcept { return ctors_; }

  /// Lookup used on every proxied invocation (case-insensitive name).
  [[nodiscard]] const MethodMapping* find_method(std::string_view target_name,
                                                 std::size_t arity) const noexcept;
  [[nodiscard]] const FieldMapping* find_field(std::string_view target_field) const noexcept;

  /// True when any member mapping had several candidates.
  [[nodiscard]] bool has_ambiguities() const noexcept;

  /// Identity/equivalent/explicit plans need no adaptation at all: the
  /// proxy can pass calls straight through.
  [[nodiscard]] bool is_passthrough() const noexcept {
    return kind_ != ConformanceKind::ImplicitStructural;
  }

 private:
  std::string source_type_;
  std::string target_type_;
  ConformanceKind kind_ = ConformanceKind::Identity;
  std::vector<MethodMapping> methods_;
  std::vector<FieldMapping> fields_;
  std::vector<CtorMapping> ctors_;
};

}  // namespace pti::conform
