// ConformanceChecker — implements the paper's conformance rules (Fig. 2).
//
// `check(source, target)` decides whether `source ≼ target`, i.e. whether
// an instance of `source` can safely be used where a `target` is expected,
// trying in order:
//   1. identity            — same type GUID (platform type identity),
//   2. equivalence         — structurally equal descriptions,
//   3. explicit            — nominal subtyping via the supertype closure,
//   4. implicit structural — rule (vi): name (i) + fields (ii) +
//      supertypes (iii) + methods (iv) + constructors (v).
//
// Methods use covariant returns and contravariant arguments, with argument
// permutations (Fig. 2's Perm) searched via bipartite matching. Recursive
// type references are handled coinductively: a pair already under test is
// assumed conformant, the standard algorithm for structural subtyping of
// recursive types.
//
// The checker works purely on TypeDescriptions obtained through a
// TypeResolver — never on implementations — which is what allows a peer to
// check conformance *before* downloading any code (the optimistic
// protocol's whole point). References to types the resolver cannot supply
// are reported in CheckResult::missing_types so the transport layer can
// fetch them and retry.
//
// Thread safety: a ConformanceChecker keeps all per-check state on the
// stack (the Ctx of each top-level check), so concurrent check() /
// conforms() calls on one shared checker are safe provided its resolver
// is — a plain TypeRegistry is fully thread-safe; a Peer's
// network-fetching resolver is not, so protocol-driven checks stay on
// the peer's thread. The optional ConformanceCache is sharded with
// lock-free reads and may be shared by any number of checkers/threads;
// two threads racing the same uncached pair simply compute the same
// verdict and the cache keeps one canonical entry (first write wins).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "conform/conformance_cache.hpp"
#include "conform/conformance_options.hpp"
#include "conform/conformance_plan.hpp"
#include "reflect/type_description.hpp"
#include "reflect/type_registry.hpp"

namespace pti::conform {

struct CheckResult {
  bool conformant = false;
  ConformancePlan plan;  ///< meaningful only when conformant
  /// Type names referenced during the check that the resolver could not
  /// supply. Non-empty means the verdict is provisional: fetch these and
  /// re-check.
  std::vector<std::string> missing_types;
  /// Human-readable reasons for failure (capped).
  std::vector<std::string> failures;

  [[nodiscard]] bool needs_more_types() const noexcept { return !missing_types.empty(); }
};

class ConformanceChecker {
 public:
  /// The resolver supplies descriptions for referenced type names; the
  /// optional cache memoizes verdicts across checks.
  explicit ConformanceChecker(reflect::TypeResolver& resolver,
                              ConformanceOptions options = {},
                              ConformanceCache* cache = nullptr);

  [[nodiscard]] const ConformanceOptions& options() const noexcept { return options_; }

  /// Full check with plan. `source ≼ target`?
  [[nodiscard]] CheckResult check(const reflect::TypeDescription& source,
                                  const reflect::TypeDescription& target);

  /// Check by (possibly unqualified) type names, resolved via the resolver.
  [[nodiscard]] CheckResult check(std::string_view source_name,
                                  std::string_view target_name);

  /// Convenience verdict-only form. On a cache hit this is the cheapest
  /// entry point: the verdict is returned straight from the interned-key
  /// cache without materializing a CheckResult (zero heap allocations).
  [[nodiscard]] bool conforms(const reflect::TypeDescription& source,
                              const reflect::TypeDescription& target);

  /// A (source, target) pair of an all-pairs verdict query. Null
  /// descriptions are simply non-conformant.
  using DescPair =
      std::pair<const reflect::TypeDescription*, const reflect::TypeDescription*>;

  /// Batched verdict-only checks: cached pairs are answered through one
  /// shard-aware batched cache probe (ConformanceCache::probe_batch) with
  /// zero allocations; misses fall back to full check()s. `out` must hold
  /// at least pairs.size() verdicts.
  void conforms_batch(std::span<const DescPair> pairs, std::span<bool> out);

  /// The paper's `equals()`: equivalence only (identity or structural
  /// equality), no subtyping, no implicit rule.
  [[nodiscard]] static bool equivalent(const reflect::TypeDescription& source,
                                       const reflect::TypeDescription& target) noexcept;

 private:
  struct Ctx;

  CheckResult compute(const reflect::TypeDescription& source,
                      const reflect::TypeDescription& target, Ctx& ctx);
  CheckResult check_with_ctx(const reflect::TypeDescription& source,
                             const reflect::TypeDescription& target, Ctx& ctx);

  /// Recursive conformance on *referenced* type names (field types,
  /// parameter types, supertypes). Appends to ctx missing/failure lists.
  bool ref_conforms(std::string_view source_type, std::string_view source_ns,
                    std::string_view target_type, std::string_view target_ns, Ctx& ctx);

  bool name_conforms(std::string_view source_name, std::string_view target_name) const;
  bool member_name_conforms(std::string_view source_name,
                            std::string_view target_name) const;
  bool explicitly_conforms(const reflect::TypeDescription& source,
                           const reflect::TypeDescription& target, Ctx& ctx);

  bool check_supertypes(const reflect::TypeDescription& source,
                        const reflect::TypeDescription& target, Ctx& ctx,
                        std::vector<std::string>& failures);
  bool check_fields(const reflect::TypeDescription& source,
                    const reflect::TypeDescription& target, Ctx& ctx,
                    ConformancePlan& plan, std::vector<std::string>& failures);
  bool check_methods(const reflect::TypeDescription& source,
                     const reflect::TypeDescription& target, Ctx& ctx,
                     ConformancePlan& plan, std::vector<std::string>& failures);
  bool check_constructors(const reflect::TypeDescription& source,
                          const reflect::TypeDescription& target, Ctx& ctx,
                          ConformancePlan& plan, std::vector<std::string>& failures);

  /// Finds a permutation assigning each source parameter a compatible
  /// target argument (contravariant), preferring the identity permutation.
  /// Returns empty optional when no perfect matching exists.
  std::optional<std::vector<std::size_t>> find_argument_permutation(
      const std::vector<reflect::ParamDescription>& source_params,
      std::string_view source_ns,
      const std::vector<reflect::ParamDescription>& target_params,
      std::string_view target_ns, Ctx& ctx);

  reflect::TypeResolver& resolver_;
  ConformanceOptions options_;
  /// options_.fingerprint() hashed once at construction; part of every
  /// cache key.
  std::uint64_t options_fp_;
  ConformanceCache* cache_;
};

}  // namespace pti::conform
