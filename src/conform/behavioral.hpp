// Implicit *behavioral* conformance probing — the paper's Section 4.1
// "future work" case, implemented for the fragment the paper itself deems
// feasible: "that should be feasible for types dealing only with primitive
// types, but for more complex types it is rather tricky".
//
// Structural conformance guarantees signatures line up; it cannot tell
// whether `getName` mapped onto `getReversedName` *means* the same thing.
// The probe runs differential tests: construct one instance of the source
// and one of the target with identical (plan-permuted) random primitive
// arguments, then drive both through the plan's method mappings with
// identical random inputs, comparing every result. A divergence is a
// counterexample; absence of divergence over N trials is (only)
// probabilistic evidence — exactly why the paper calls full behavioral
// conformance "very difficult to analyse".
//
// Methods whose signature involves object types are skipped and counted.
#pragma once

#include <cstdint>
#include <string>

#include "conform/conformance_plan.hpp"
#include "reflect/domain.hpp"

namespace pti::conform {

struct BehavioralOptions {
  std::size_t trials = 32;        ///< independent state/argument sequences
  std::size_t calls_per_trial = 8;  ///< method invocations per sequence
  std::uint64_t seed = 7;
};

struct BehavioralReport {
  /// No counterexample found (probabilistic, not a proof).
  bool equivalent = true;
  std::size_t trials_run = 0;
  std::size_t calls_made = 0;
  std::size_t methods_testable = 0;
  std::size_t methods_skipped = 0;  ///< non-primitive signatures
  std::string counterexample;       ///< human-readable, empty if none

  [[nodiscard]] bool exercised_anything() const noexcept {
    return methods_testable > 0 && calls_made > 0;
  }
};

/// Differential-tests `source` against `target` through `plan`. Both types
/// must be loaded (executable) in `domain`; the plan must be the result of
/// a successful structural check of source -> target. Throws ConformError
/// on misuse (unloaded types, passthrough-less plan mismatch).
[[nodiscard]] BehavioralReport probe_behavioral_conformance(
    const reflect::Domain& domain, const reflect::TypeDescription& source,
    const reflect::TypeDescription& target, const ConformancePlan& plan,
    const BehavioralOptions& options = {});

}  // namespace pti::conform
