#include "conform/conformance_cache.hpp"

#include "util/string_util.hpp"

namespace pti::conform {

std::string ConformanceCache::make_key(std::string_view source, std::string_view target,
                                       std::uint64_t options_fingerprint) {
  std::string key;
  key.reserve(source.size() + target.size() + 20);
  key += util::to_lower(source);
  key += '\x1f';
  key += util::to_lower(target);
  key += '\x1f';
  key += std::to_string(options_fingerprint);
  return key;
}

const CachedVerdict* ConformanceCache::lookup(std::string_view source,
                                              std::string_view target,
                                              std::uint64_t options_fingerprint) noexcept {
  const auto it = entries_.find(make_key(source, target, options_fingerprint));
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void ConformanceCache::insert(std::string_view source, std::string_view target,
                              std::uint64_t options_fingerprint, CachedVerdict verdict) {
  entries_[make_key(source, target, options_fingerprint)] = std::move(verdict);
  ++stats_.insertions;
}

}  // namespace pti::conform
