#include "conform/conformance_cache.hpp"

namespace pti::conform {

const CachedVerdict* ConformanceCache::lookup(util::InternedName source,
                                              util::InternedName target,
                                              std::uint64_t options_fingerprint) noexcept {
  const auto it = entries_.find(Key{source, target, options_fingerprint});
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const CachedVerdict* ConformanceCache::probe(const reflect::TypeDescription& source,
                                             const reflect::TypeDescription& target,
                                             std::uint64_t options_fingerprint) noexcept {
  const auto it =
      entries_.find(Key{source.name_id(), target.name_id(), options_fingerprint});
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  return &it->second;
}

void ConformanceCache::insert(util::InternedName source, util::InternedName target,
                              std::uint64_t options_fingerprint, CachedVerdict verdict) {
  entries_[Key{source, target, options_fingerprint}] = std::move(verdict);
  ++stats_.insertions;
}

}  // namespace pti::conform
