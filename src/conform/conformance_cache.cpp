#include "conform/conformance_cache.hpp"

#include <mutex>

#include "util/epoch.hpp"

namespace pti::conform {

ConformanceCache::~ConformanceCache() {
  for (Shard& shard : shards_) {
    delete shard.table.load(std::memory_order_relaxed);
    for (Table* t : shard.retired) delete t;
  }
}

const CachedVerdict* ConformanceCache::read(Shard& shard, const Key& key, std::size_t h,
                                            bool count_miss) noexcept {
  const Table* table = shard.table.load(std::memory_order_acquire);
  if (table != nullptr) {
    const std::uint64_t tag = tag_of(h);
    for (std::size_t i = h & table->mask, probes = 0; probes <= table->mask;
         i = (i + 1) & table->mask, ++probes) {
      const std::uint64_t slot_tag = table->slots[i].tag.load(std::memory_order_acquire);
      if (slot_tag == 0) break;  // empty slot ends the probe chain
      if (slot_tag != tag) continue;
      const MapEntry* entry = table->slots[i].entry.load(std::memory_order_acquire);
      if (entry != nullptr && entry->first == key) {
        shard.stats.hits.fetch_add(1, std::memory_order_relaxed);
        // Refresh the recency stamp, but only when it moved: repeat hits
        // within one tick stay pure loads so the node's cache line keeps
        // shared state across reader cores.
        const std::uint32_t tick = tick_.load(std::memory_order_relaxed);
        if (entry->second.last_use.load(std::memory_order_relaxed) != tick) {
          entry->second.last_use.store(tick, std::memory_order_relaxed);
        }
        return &entry->second.verdict;
      }
    }
  }
  if (count_miss) shard.stats.misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

const CachedVerdict* ConformanceCache::lookup(util::InternedName source,
                                              util::InternedName target,
                                              std::uint64_t options_fingerprint) noexcept {
  const Key key{source, target, options_fingerprint};
  const std::size_t h = KeyHash{}(key);
  return read(shards_[shard_of(h)], key, h, /*count_miss=*/true);
}

const CachedVerdict* ConformanceCache::probe(const reflect::TypeDescription& source,
                                             const reflect::TypeDescription& target,
                                             std::uint64_t options_fingerprint) noexcept {
  const Key key{source.name_id(), target.name_id(), options_fingerprint};
  const std::size_t h = KeyHash{}(key);
  return read(shards_[shard_of(h)], key, h, /*count_miss=*/false);
}

void ConformanceCache::probe_batch(std::span<const Key> keys,
                                   const CachedVerdict** out) noexcept {
  // Blocked two-pass probe: hash + prefetch first, then read. The prefetch
  // pass issues the (independent) shard-table and slot loads for the whole
  // block before any probe needs them, so distinct shards' cache lines
  // stream in parallel.
  constexpr std::size_t kBlock = 64;
  std::size_t hashes[kBlock];
  for (std::size_t base = 0; base < keys.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, keys.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t h = KeyHash{}(keys[base + i]);
      hashes[i] = h;
      if (const Table* table = shards_[shard_of(h)].table.load(std::memory_order_acquire)) {
        __builtin_prefetch(&table->slots[h & table->mask], /*rw=*/0, /*locality=*/1);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t h = hashes[i];
      out[base + i] = read(shards_[shard_of(h)], keys[base + i], h, /*count_miss=*/false);
    }
  }
}

void ConformanceCache::publish(Table& table, const MapEntry* entry) noexcept {
  const std::size_t h = KeyHash{}(entry->first);
  for (std::size_t i = h & table.mask;; i = (i + 1) & table.mask) {
    if (table.slots[i].tag.load(std::memory_order_relaxed) == 0) {
      // Entry first, tag second (release): a reader that sees the tag sees
      // the entry pointer and the fully built map node behind it.
      table.slots[i].entry.store(entry, std::memory_order_relaxed);
      table.slots[i].tag.store(tag_of(h), std::memory_order_release);
      return;
    }
  }
}

void ConformanceCache::insert(util::InternedName source, util::InternedName target,
                              std::uint64_t options_fingerprint, CachedVerdict verdict) {
  const Key key{source, target, options_fingerprint};
  const std::size_t h = KeyHash{}(key);
  Shard& shard = shards_[shard_of(h)];
  std::unique_lock lock(shard.mutex);
  // First write wins: verdicts are deterministic for a key, and leaving an
  // existing entry untouched keeps pointers other threads obtained from
  // lookup() pointing at stable data.
  const auto [it, inserted] = shard.entries.try_emplace(key, std::move(verdict));
  if (!inserted) return;
  shard.stats.insertions.fetch_add(1, std::memory_order_relaxed);
  Table* table = shard.table.load(std::memory_order_relaxed);
  // Grow (or first-create) at ~60% occupancy so probe chains stay short.
  if (table == nullptr || (table->used + 1) * 5 > (table->mask + 1) * 3) {
    const std::size_t capacity =
        table == nullptr ? kInitialSlots : 2 * (table->mask + 1);
    Table* bigger = new Table(capacity);
    for (const MapEntry& entry : shard.entries) publish(*bigger, &entry);
    bigger->used = shard.entries.size();
    shard.table.store(bigger, std::memory_order_release);
    if (table != nullptr) shard.retired.push_back(table);
  } else {
    publish(*table, &*it);
    ++table->used;
  }
}

void ConformanceCache::swap_index_locked(Shard& shard, Table* fresh,
                                         util::EpochManager& em) {
  Table* old = shard.table.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) em.retire(old);
  for (Table* t : shard.retired) em.retire(t);
  shard.retired.clear();
}

void ConformanceCache::clear(util::EpochManager& em) {
  using NodeHandle = EntryMap::node_type;
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mutex);
    // Unpublish the index first so no reader entering after the swap can
    // reach a node we are about to retire; readers already probing the old
    // table are pinned and keep it (and the nodes) alive until reclaim.
    swap_index_locked(shard, nullptr, em);
    while (!shard.entries.empty()) {
      auto handle = shard.entries.extract(shard.entries.begin());
      em.retire(new NodeHandle(std::move(handle)));
      shard.stats.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::uint32_t ConformanceCache::advance_tick() noexcept {
  return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::size_t ConformanceCache::evict_cold(util::EpochManager& em,
                                         std::uint32_t min_idle_ticks,
                                         std::size_t max_evict) {
  using NodeHandle = EntryMap::node_type;
  const std::uint32_t tick = tick_.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  for (Shard& shard : shards_) {
    if (evicted >= max_evict) break;
    std::unique_lock lock(shard.mutex);
    std::size_t shard_evicted = 0;
    for (auto it = shard.entries.begin();
         it != shard.entries.end() && evicted < max_evict;) {
      const std::uint32_t idle =
          tick - it->second.last_use.load(std::memory_order_relaxed);
      if (idle < min_idle_ticks) {
        ++it;
        continue;
      }
      const auto next = std::next(it);
      em.retire(new NodeHandle(shard.entries.extract(it)));
      it = next;
      ++shard_evicted;
      ++evicted;
    }
    if (shard_evicted == 0) continue;
    shard.stats.evictions.fetch_add(shard_evicted, std::memory_order_relaxed);
    // Rebuild the read index over the survivors: the old table still
    // references the extracted nodes, so it must be replaced wholesale
    // (tags have no tombstones) — and a rebuilt index is also what makes
    // a recycled interned id unable to alias an evicted key.
    Table* fresh = nullptr;
    if (!shard.entries.empty()) {
      std::size_t capacity = kInitialSlots;
      while (shard.entries.size() * 5 > capacity * 3) capacity *= 2;
      fresh = new Table(capacity);
      for (const MapEntry& entry : shard.entries) publish(*fresh, &entry);
      fresh->used = shard.entries.size();
    }
    swap_index_locked(shard, fresh, em);
  }
  return evicted;
}

void ConformanceCache::clear() noexcept {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mutex);
    shard.entries.clear();
    // Documented contract: clear() runs quiesced, so no reader still holds
    // the old table and it can be reclaimed along with the retired ones.
    delete shard.table.exchange(nullptr, std::memory_order_relaxed);
    for (Table* t : shard.retired) delete t;
    shard.retired.clear();
  }
}

std::size_t ConformanceCache::size() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

CacheStats ConformanceCache::stats() const noexcept {
  CacheStats out;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    const CacheStats s = shard_stats(i);
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
  }
  return out;
}

CacheStats ConformanceCache::shard_stats(std::size_t shard) const noexcept {
  CacheStats out;
  if (shard >= kShardCount) return out;
  const ShardStats& s = shards_[shard].stats;
  out.hits = s.hits.load(std::memory_order_relaxed);
  out.misses = s.misses.load(std::memory_order_relaxed);
  out.insertions = s.insertions.load(std::memory_order_relaxed);
  out.evictions = s.evictions.load(std::memory_order_relaxed);
  return out;
}

void ConformanceCache::reset_stats() noexcept {
  for (Shard& shard : shards_) {
    shard.stats.hits.store(0, std::memory_order_relaxed);
    shard.stats.misses.store(0, std::memory_order_relaxed);
    shard.stats.insertions.store(0, std::memory_order_relaxed);
    shard.stats.evictions.store(0, std::memory_order_relaxed);
  }
}

}  // namespace pti::conform
