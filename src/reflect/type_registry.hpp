// TypeRegistry — the per-peer universe of known type descriptions.
//
// A peer knows (a) the types of its locally loaded assemblies and (b) any
// descriptions it has downloaded from other peers via the optimistic
// protocol. Lookups are case-insensitive. The registry implements
// TypeResolver, the interface through which the conformance checker
// resolves member-type references (field types, parameter types) — which
// is exactly where the protocol may need to fetch further descriptions
// from the network (Peer overrides the resolver to do so).
//
// Thread safety: the registry is append-only and sharded. The id-keyed
// description maps are split across 8 shards, each behind its own
// std::shared_mutex, so resolve()/find_by_id() from concurrent checker
// threads shared-lock one shard and never serialize against each other;
// add() exclusive-locks only the target shard (plus a registry-wide aux
// lock for the guid/simple-name indexes). Descriptions are stored in
// node-based maps and never erased, so every returned TypeDescription*
// stays valid for the registry's lifetime regardless of later add() calls.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "reflect/type_description.hpp"
#include "util/guid.hpp"
#include "util/interning.hpp"
#include "util/string_util.hpp"

namespace pti::reflect {

/// Resolves a type reference (possibly unqualified) into a description.
/// `referrer_namespace` is the namespace of the description containing the
/// reference, used to qualify bare names. Returns nullptr when unknown.
class TypeResolver {
 public:
  virtual ~TypeResolver() = default;
  [[nodiscard]] virtual const TypeDescription* resolve(
      std::string_view type_name, std::string_view referrer_namespace) = 0;
};

class TypeRegistry final : public TypeResolver {
 public:
  /// A fresh registry pre-populated with the primitive types.
  TypeRegistry();

  /// Registers a description under its qualified name. Re-registering a
  /// structurally equal description is a no-op; a conflicting structure
  /// under the same name throws ReflectError. Safe to call concurrently
  /// with any other member (exclusive only within one shard).
  const TypeDescription& add(TypeDescription description);

  [[nodiscard]] bool contains(std::string_view qualified_name) const noexcept;

  /// Resolution order: canonical primitive -> exact qualified name ->
  /// referrer-namespace-qualified -> unique simple-name match. All paths
  /// are allocation-free: names are probed against the shared SymbolTable
  /// (folding on the fly), and a name that was never interned is known to
  /// be absent without touching the maps.
  [[nodiscard]] const TypeDescription* resolve(std::string_view type_name,
                                               std::string_view referrer_namespace) override;

  /// resolve() with an empty referrer namespace.
  [[nodiscard]] const TypeDescription* find(std::string_view type_name);

  /// Identity lookup by interned qualified-name id (the fastest path; used
  /// by layers that already hold a description).
  [[nodiscard]] const TypeDescription* find_by_id(util::InternedName id) const noexcept;

  /// Identity lookup.
  [[nodiscard]] const TypeDescription* find_by_guid(const util::Guid& guid) const noexcept;

  /// True when the interned id is referenced by any registered description
  /// — as its qualified-name key or its simple-name index entry. This is
  /// the eviction veto the resource governor passes to
  /// SymbolTable::evict_cold(): a registry name may never be evicted (the
  /// registry is append-only and keys its maps by id), while a transient
  /// intern nothing references may.
  [[nodiscard]] bool references(util::InternedName id) const noexcept;

  /// All registered non-primitive descriptions, in registration order.
  [[nodiscard]] std::vector<const TypeDescription*> user_types() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// Number of name shards (compile-time constant, exposed for tests).
  [[nodiscard]] static constexpr std::size_t shard_count() noexcept { return kShardCount; }

 private:
  static constexpr std::size_t kShardBits = 3;
  static constexpr std::size_t kShardCount = 1u << kShardBits;

  // unordered_map is node-based, so description addresses are stable across
  // rehash: descriptions are referred to by pointer across the library
  // (and across threads — entries are never erased).
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<util::InternedName, TypeDescription> by_name;
  };

  [[nodiscard]] static std::size_t shard_of(util::InternedName id) noexcept {
    // Top bits of the Fibonacci scramble: ids are sequential per symbol
    // shard, so low bits would clump.
    return static_cast<std::size_t>(
        (id.value() * 0x9E3779B97F4A7C15ULL) >> (64 - kShardBits));
  }

  std::array<Shard, kShardCount> shards_;

  // Secondary indexes, guarded together by aux_mutex_. Lock order is
  // always shard -> aux (only add() holds both); readers take exactly one.
  mutable std::shared_mutex aux_mutex_;
  std::unordered_map<util::Guid, const TypeDescription*> by_guid_;
  std::unordered_map<util::InternedName, std::vector<const TypeDescription*>>
      by_simple_name_;
  std::vector<const TypeDescription*> insertion_order_;
  std::atomic<std::size_t> size_{0};
};

/// Builds the description of a primitive type (kind Primitive, shared
/// deterministic GUID).
[[nodiscard]] TypeDescription make_primitive_description(std::string_view canonical_name);

}  // namespace pti::reflect
