// TypeRegistry — the per-peer universe of known type descriptions.
//
// A peer knows (a) the types of its locally loaded assemblies and (b) any
// descriptions it has downloaded from other peers via the optimistic
// protocol. Lookups are case-insensitive. The registry implements
// TypeResolver, the interface through which the conformance checker
// resolves member-type references (field types, parameter types) — which
// is exactly where the protocol may need to fetch further descriptions
// from the network (Peer overrides the resolver to do so).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "reflect/type_description.hpp"
#include "util/guid.hpp"
#include "util/interning.hpp"
#include "util/string_util.hpp"

namespace pti::reflect {

/// Resolves a type reference (possibly unqualified) into a description.
/// `referrer_namespace` is the namespace of the description containing the
/// reference, used to qualify bare names. Returns nullptr when unknown.
class TypeResolver {
 public:
  virtual ~TypeResolver() = default;
  [[nodiscard]] virtual const TypeDescription* resolve(
      std::string_view type_name, std::string_view referrer_namespace) = 0;
};

class TypeRegistry final : public TypeResolver {
 public:
  /// A fresh registry pre-populated with the primitive types.
  TypeRegistry();

  /// Registers a description under its qualified name. Re-registering a
  /// structurally equal description is a no-op; a conflicting structure
  /// under the same name throws ReflectError.
  const TypeDescription& add(TypeDescription description);

  [[nodiscard]] bool contains(std::string_view qualified_name) const noexcept;

  /// Resolution order: canonical primitive -> exact qualified name ->
  /// referrer-namespace-qualified -> unique simple-name match. All paths
  /// are allocation-free: names are probed against the shared SymbolTable
  /// (folding on the fly), and a name that was never interned is known to
  /// be absent without touching the maps.
  [[nodiscard]] const TypeDescription* resolve(std::string_view type_name,
                                               std::string_view referrer_namespace) override;

  /// resolve() with an empty referrer namespace.
  [[nodiscard]] const TypeDescription* find(std::string_view type_name);

  /// Identity lookup by interned qualified-name id (the fastest path; used
  /// by layers that already hold a description).
  [[nodiscard]] const TypeDescription* find_by_id(util::InternedName id) const noexcept;

  /// Identity lookup.
  [[nodiscard]] const TypeDescription* find_by_guid(const util::Guid& guid) const noexcept;

  /// All registered non-primitive descriptions, in registration order.
  [[nodiscard]] std::vector<const TypeDescription*> user_types() const;

  [[nodiscard]] std::size_t size() const noexcept { return by_name_.size(); }

 private:
  // unordered_map is node-based, so description addresses are stable across
  // rehash: descriptions are referred to by pointer across the library.
  std::unordered_map<util::InternedName, TypeDescription> by_name_;
  std::unordered_map<util::Guid, const TypeDescription*> by_guid_;
  std::unordered_map<util::InternedName, std::vector<const TypeDescription*>>
      by_simple_name_;
  std::vector<const TypeDescription*> insertion_order_;
};

/// Builds the description of a primitive type (kind Primitive, shared
/// deterministic GUID).
[[nodiscard]] TypeDescription make_primitive_description(std::string_view canonical_name);

}  // namespace pti::reflect
