// Domain — the per-peer runtime context (the analogue of a .NET AppDomain).
//
// A Domain owns the peer's TypeRegistry (descriptions it knows) and the
// set of loaded Assemblies (code it can execute). Loading an assembly
// introspects every contained NativeType and registers the resulting
// descriptions; only then can instances of those types be created and
// invoked locally.
//
// Thread safety: fully thread-safe. The registry is internally sharded
// (PR 2); the assembly/native maps sit behind one shared_mutex —
// load_assembly takes it exclusively, every lookup takes it shared. The
// maps are append-only, so NativeType pointers handed out stay valid; two
// threads racing to load the same assembly resolve to one load (the loser
// sees the idempotent re-load and returns empty). instantiate()/invoke()
// run concurrently; mutating one *given* DynObject stays the caller's
// single-threaded business.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "reflect/assembly.hpp"
#include "reflect/type_registry.hpp"
#include "util/interning.hpp"

namespace pti::reflect {

class Domain {
 public:
  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  [[nodiscard]] TypeRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const TypeRegistry& registry() const noexcept { return registry_; }

  /// Loads an assembly: registers it as executable code and registers a
  /// description (with provenance) for each contained type. Idempotent for
  /// the same assembly name. Returns the registered descriptions in the
  /// assembly's type order (empty on the idempotent re-load), so callers
  /// building handles need not re-resolve the names.
  std::vector<const TypeDescription*> load_assembly(
      std::shared_ptr<const Assembly> assembly, std::string_view download_path = {});

  [[nodiscard]] bool has_assembly(std::string_view name) const noexcept;
  [[nodiscard]] const Assembly* find_assembly(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<const Assembly*> assemblies() const;

  /// The native (executable) type for a qualified name; nullptr when the
  /// code has not been loaded (description-only knowledge).
  [[nodiscard]] const NativeType* find_native(std::string_view qualified_name) const noexcept;

  /// Id-keyed native lookup — the handle-based fast path: a single integer
  /// hash probe, no case folding, no string compare.
  [[nodiscard]] const NativeType* find_native(util::InternedName qualified_id) const noexcept;

  /// True when instances of the type can be created/invoked locally.
  [[nodiscard]] bool is_loaded(std::string_view qualified_name) const noexcept {
    return find_native(qualified_name) != nullptr;
  }

  /// Creates an instance of a loaded type. Throws ReflectError when the
  /// type's code is not available.
  [[nodiscard]] std::shared_ptr<DynObject> instantiate(std::string_view qualified_name,
                                                       Args args = {}) const;

  /// instantiate() keyed on an already-resolved description (interned-id
  /// native lookup; never re-hashes the name).
  [[nodiscard]] std::shared_ptr<DynObject> instantiate(const TypeDescription& type,
                                                       Args args = {}) const;

  /// Invokes a method on an object whose type is loaded in this domain.
  Value invoke(DynObject& object, std::string_view method_name, Args args = {}) const;

  /// Recursively default-fills declared-but-missing fields of every object
  /// in the graph whose type is loaded here. Lossy serializers (the
  /// public-fields-only XML mechanism) drop private state; after code
  /// download, the declared shape is restored with default values — the
  /// XmlSerializer deserialization semantics.
  void fill_missing_fields(DynObject& root) const;

 private:
  TypeRegistry registry_;
  /// Guards the three maps below; they are append-only, so the NativeType
  /// and Assembly pointers handed out survive the lock's release.
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<const Assembly>, util::ICaseLess> assemblies_;
  std::map<std::string, const NativeType*, util::ICaseLess> natives_;
  /// Same natives keyed by interned qualified-name id (handle fast path).
  std::unordered_map<util::InternedName, const NativeType*> natives_by_id_;
};

}  // namespace pti::reflect
