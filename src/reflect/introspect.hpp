// Introspection: deriving a TypeDescription from a NativeType.
//
// This is the C++ stand-in for the CLR reflection walk the paper performs
// when "the reflective capabilities of the object-oriented platform are
// used" to create a type description (Section 5). The cost of this walk —
// linear in the number of members — is what benchmark E2 measures together
// with XML serialization.
#pragma once

#include <string_view>

#include "reflect/assembly.hpp"
#include "reflect/type_description.hpp"

namespace pti::reflect {

/// Walks the native type's members and produces the wire-format metadata.
/// `download_path` is the location from which the implementing assembly
/// can be fetched (empty when unknown/local-only).
[[nodiscard]] TypeDescription introspect(const NativeType& type,
                                         std::string_view assembly_name = {},
                                         std::string_view download_path = {});

}  // namespace pti::reflect
