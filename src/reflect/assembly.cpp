#include "reflect/assembly.hpp"

#include "reflect/primitives.hpp"
#include "reflect/reflect_error.hpp"
#include "util/string_util.hpp"

namespace pti::reflect {

NativeType::NativeType(std::string namespace_name, std::string simple_name, TypeKind kind,
                       util::Guid guid, std::string superclass,
                       std::vector<std::string> interfaces,
                       std::vector<FieldDescription> fields,
                       std::vector<NativeMethodDef> methods,
                       std::vector<NativeCtorDef> constructors, bool structural_tag)
    : namespace_(std::move(namespace_name)),
      name_(std::move(simple_name)),
      kind_(kind),
      guid_(guid),
      superclass_(std::move(superclass)),
      interfaces_(std::move(interfaces)),
      fields_(std::move(fields)),
      methods_(std::move(methods)),
      constructors_(std::move(constructors)),
      structural_tag_(structural_tag) {
  qualified_name_ = namespace_.empty() ? name_ : namespace_ + "." + name_;
}

std::shared_ptr<DynObject> NativeType::instantiate_raw() const {
  if (kind_ == TypeKind::Interface) {
    throw ReflectError("cannot instantiate interface '" + qualified_name_ + "'");
  }
  auto obj = DynObject::make(qualified_name_, guid_);
  for (const auto& f : fields_) {
    obj->set(f.name, default_value_for(f.type_name));
  }
  return obj;
}

std::shared_ptr<DynObject> NativeType::instantiate(Args args) const {
  auto obj = instantiate_raw();
  if (constructors_.empty() && args.empty()) {
    return obj;  // implicit default constructor
  }
  for (const auto& c : constructors_) {
    if (c.signature.arity() == args.size()) {
      if (c.body) c.body(*obj, args);
      return obj;
    }
  }
  throw ReflectError("no constructor of '" + qualified_name_ + "' takes " +
                     std::to_string(args.size()) + " argument(s)");
}

const NativeMethodDef* NativeType::find_method(std::string_view name,
                                               std::size_t arity) const noexcept {
  for (const auto& m : methods_) {
    if (m.signature.arity() == arity && util::iequals(m.signature.name, name)) {
      return &m;
    }
  }
  return nullptr;
}

Value NativeType::invoke(DynObject& self, std::string_view method_name, Args args) const {
  const NativeMethodDef* def = find_method(method_name, args.size());
  if (def == nullptr) {
    throw ReflectError("type '" + qualified_name_ + "' has no method '" +
                       std::string(method_name) + "' with arity " +
                       std::to_string(args.size()));
  }
  if (!def->body) {
    throw ReflectError("method '" + def->signature.signature_string() + "' of '" +
                       qualified_name_ + "' has no body (abstract/interface method)");
  }
  return def->body(self, args);
}

void Assembly::add_type(std::shared_ptr<const NativeType> type) {
  types_.push_back(std::move(type));
}

const NativeType* Assembly::find_type(std::string_view type_name) const noexcept {
  for (const auto& t : types_) {
    if (util::iequals(t->qualified_name(), type_name) || util::iequals(t->name(), type_name)) {
      return t.get();
    }
  }
  return nullptr;
}

std::size_t Assembly::simulated_code_size() const noexcept {
  // Deterministic proxy for compiled-code volume. Constants are chosen so
  // that an assembly is one to two orders of magnitude larger than the XML
  // type description of its types, which is the relationship the optimistic
  // protocol exploits (descriptions cheap, code expensive).
  std::size_t size = 512;  // manifest / headers
  for (const auto& t : types_) {
    size += 256 + 4 * t->qualified_name().size();
    size += 96 * t->fields().size();
    for (const auto& m : t->methods()) {
      size += 160 + 48 * m.signature.params.size() + 2 * m.signature.name.size();
    }
    for (const auto& c : t->constructors()) {
      size += 128 + 48 * c.signature.params.size();
    }
  }
  return size;
}

}  // namespace pti::reflect
