#include "reflect/dyn_object.hpp"

#include "reflect/reflect_error.hpp"

namespace pti::reflect {

const Value& DynObject::get(std::string_view field_name) const {
  const auto it = fields_.find(field_name);
  if (it == fields_.end()) {
    throw ReflectError("object of type '" + type_name_ + "' has no field '" +
                       std::string(field_name) + "'");
  }
  return it->second;
}

Value DynObject::get_or_null(std::string_view field_name) const {
  const auto it = fields_.find(field_name);
  return it == fields_.end() ? Value() : it->second;
}

void DynObject::set(std::string_view field_name, Value value) {
  const auto it = fields_.find(field_name);
  if (it == fields_.end()) {
    fields_.emplace(std::string(field_name), std::move(value));
  } else {
    it->second = std::move(value);
  }
}

bool DynObject::has_field(std::string_view field_name) const noexcept {
  return fields_.find(field_name) != fields_.end();
}

bool DynObject::same_state(const DynObject& other) const noexcept {
  // Field names compare case-insensitively (map keys keep their original
  // spelling, so std::map::operator== would be too strict).
  if (type_guid_ != other.type_guid_ || fields_.size() != other.fields_.size()) {
    return false;
  }
  for (const auto& [name, value] : fields_) {
    const auto it = other.fields_.find(name);
    if (it == other.fields_.end() || !(it->second == value)) return false;
  }
  return true;
}

std::string DynObject::to_debug_string() const {
  std::string out = type_name_ + "@{";
  bool first = true;
  for (const auto& [name, value] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += name + "=" + value.to_debug_string();
  }
  return out + "}";
}

}  // namespace pti::reflect
