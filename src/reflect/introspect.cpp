#include "reflect/introspect.hpp"

namespace pti::reflect {

TypeDescription introspect(const NativeType& type, std::string_view assembly_name,
                           std::string_view download_path) {
  TypeDescription d(type.namespace_name(), type.name(), type.kind());
  d.set_guid(type.guid());
  d.set_superclass(type.superclass());
  d.set_structural_tag(type.structural_tag());
  for (const auto& itf : type.interfaces()) {
    d.add_interface(itf);
  }
  for (const auto& f : type.fields()) {
    d.add_field(FieldDescription{f.name, f.type_name, f.visibility, f.is_static});
  }
  for (const auto& m : type.methods()) {
    MethodDescription sig;
    sig.name = m.signature.name;
    sig.return_type = m.signature.return_type;
    sig.visibility = m.signature.visibility;
    sig.is_static = m.signature.is_static;
    sig.params.reserve(m.signature.params.size());
    for (const auto& p : m.signature.params) {
      sig.params.push_back(ParamDescription{p.name, p.type_name});
    }
    d.add_method(std::move(sig));
  }
  for (const auto& c : type.constructors()) {
    ConstructorDescription sig;
    sig.visibility = c.signature.visibility;
    sig.params.reserve(c.signature.params.size());
    for (const auto& p : c.signature.params) {
      sig.params.push_back(ParamDescription{p.name, p.type_name});
    }
    d.add_constructor(std::move(sig));
  }
  d.set_assembly_name(std::string(assembly_name));
  d.set_download_path(std::string(download_path));
  return d;
}

}  // namespace pti::reflect
