#include "reflect/value.hpp"

#include "reflect/dyn_object.hpp"
#include "reflect/reflect_error.hpp"

namespace pti::reflect {

std::string_view to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::Null: return "null";
    case ValueKind::Bool: return "bool";
    case ValueKind::Int32: return "int32";
    case ValueKind::Int64: return "int64";
    case ValueKind::Float64: return "float64";
    case ValueKind::String: return "string";
    case ValueKind::Object: return "object";
    case ValueKind::List: return "list";
  }
  return "?";
}

ValueKind Value::kind() const noexcept {
  return static_cast<ValueKind>(data_.index());
}

namespace {

[[noreturn]] void kind_mismatch(ValueKind expected, ValueKind actual) {
  throw ReflectError("value kind mismatch: expected " + std::string(to_string(expected)) +
                     ", got " + std::string(to_string(actual)));
}

}  // namespace

bool Value::as_bool() const {
  if (const bool* p = std::get_if<bool>(&data_)) return *p;
  kind_mismatch(ValueKind::Bool, kind());
}

std::int32_t Value::as_int32() const {
  if (const auto* p = std::get_if<std::int32_t>(&data_)) return *p;
  kind_mismatch(ValueKind::Int32, kind());
}

std::int64_t Value::as_int64() const {
  if (const auto* p = std::get_if<std::int64_t>(&data_)) return *p;
  if (const auto* p = std::get_if<std::int32_t>(&data_)) return *p;  // widening
  kind_mismatch(ValueKind::Int64, kind());
}

double Value::as_float64() const {
  if (const auto* p = std::get_if<double>(&data_)) return *p;
  kind_mismatch(ValueKind::Float64, kind());
}

const std::string& Value::as_string() const {
  if (const auto* p = std::get_if<std::string>(&data_)) return *p;
  kind_mismatch(ValueKind::String, kind());
}

const std::shared_ptr<DynObject>& Value::as_object() const {
  if (const auto* p = std::get_if<std::shared_ptr<DynObject>>(&data_)) return *p;
  kind_mismatch(ValueKind::Object, kind());
}

const Value::List& Value::as_list() const {
  if (const auto* p = std::get_if<List>(&data_)) return *p;
  kind_mismatch(ValueKind::List, kind());
}

Value::List& Value::as_list() {
  if (auto* p = std::get_if<List>(&data_)) return *p;
  kind_mismatch(ValueKind::List, kind());
}

double Value::to_float64() const {
  switch (kind()) {
    case ValueKind::Int32: return static_cast<double>(as_int32());
    case ValueKind::Int64: return static_cast<double>(std::get<std::int64_t>(data_));
    case ValueKind::Float64: return as_float64();
    default: kind_mismatch(ValueKind::Float64, kind());
  }
}

bool Value::operator==(const Value& other) const noexcept {
  return data_ == other.data_;
}

std::string Value::to_debug_string() const {
  switch (kind()) {
    case ValueKind::Null: return "null";
    case ValueKind::Bool: return as_bool() ? "true" : "false";
    case ValueKind::Int32: return std::to_string(as_int32());
    case ValueKind::Int64: return std::to_string(std::get<std::int64_t>(data_));
    case ValueKind::Float64: return std::to_string(as_float64());
    case ValueKind::String: return '"' + as_string() + '"';
    case ValueKind::Object: {
      const auto& obj = as_object();
      return obj ? obj->to_debug_string() : "object(null)";
    }
    case ValueKind::List: {
      std::string out = "[";
      const List& items = as_list();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += items[i].to_debug_string();
      }
      return out + "]";
    }
  }
  return "?";
}

}  // namespace pti::reflect
