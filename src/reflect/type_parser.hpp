// A small textual type-declaration language.
//
// The Renaissance system the paper compares against (Section 2.6) relied
// on an explicit type-definition language ("lingua franca"); the paper's
// approach deliberately does not. This parser exists for the cases where a
// *description* — not an implementation — is all that is needed: declaring
// interest types, interfaces, or conformance scenarios in tests and tools
// without writing builder code. It produces plain TypeDescriptions;
// executable types still come from TypeBuilder.
//
// Grammar (';'-terminated members, '//' comments):
//
//   file       := (namespace | type)*
//   namespace  := "namespace" qname ";"      // applies until the next one
//   type       := ("class" | "interface") NAME
//                 (":" typeref)? ("implements" typeref ("," typeref)*)?
//                 ("tagged")? "{" member* "}"
//   member     := field | method | ctor
//   field      := modifiers typeref NAME ";"
//   method     := modifiers typeref NAME "(" params? ")" ";"
//   ctor       := modifiers NAME "(" params? ")" ";"       // NAME == type
//   params     := typeref NAME ("," typeref NAME)*
//   modifiers  := ("public" | "protected" | "private")? "static"?
//
// Defaults mirror the builder: fields private, methods/ctors public.
//
// Example:
//
//   namespace teamA;
//   interface INamed { string getName(); }
//   class Person : object implements INamed {
//     private string name;
//     Person(string name);
//     string getName();
//     void setName(string name);
//   }
#pragma once

#include <string_view>
#include <vector>

#include "reflect/type_description.hpp"
#include "reflect/type_registry.hpp"

namespace pti::reflect {

/// Parses a declaration file into descriptions (GUIDs derived from the
/// qualified names). Throws ReflectError with line/column on bad input.
[[nodiscard]] std::vector<TypeDescription> parse_type_declarations(std::string_view text);

/// Convenience: parse and register everything; returns how many types were
/// added.
std::size_t declare_types(TypeRegistry& registry, std::string_view text);

}  // namespace pti::reflect
