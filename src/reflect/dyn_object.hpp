// DynObject — the runtime representation of an instance whose type may
// have been introduced into the system at runtime (the paper's "new events
// of new types"). It carries its type's qualified name and identity plus a
// bag of named field values; behaviour lives in the NativeType of the
// assembly that implements the type (assembly.hpp).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "reflect/value.hpp"
#include "util/guid.hpp"
#include "util/string_util.hpp"

namespace pti::reflect {

class DynObject {
 public:
  DynObject(std::string type_qualified_name, util::Guid type_guid)
      : type_name_(std::move(type_qualified_name)), type_guid_(type_guid) {}

  [[nodiscard]] const std::string& type_name() const noexcept { return type_name_; }
  [[nodiscard]] const util::Guid& type_guid() const noexcept { return type_guid_; }

  /// Field read; throws ReflectError when the field does not exist.
  [[nodiscard]] const Value& get(std::string_view field_name) const;
  /// Field read returning null for missing fields (deserializer tolerance).
  [[nodiscard]] Value get_or_null(std::string_view field_name) const;
  /// Field write; creates the field when absent (the deserializer and
  /// constructors populate objects this way).
  void set(std::string_view field_name, Value value);
  [[nodiscard]] bool has_field(std::string_view field_name) const noexcept;

  /// Field names are matched case-insensitively, consistent with the
  /// conformance rules.
  [[nodiscard]] const std::map<std::string, Value, util::ICaseLess>& fields() const noexcept {
    return fields_;
  }

  /// Structural equality of type identity + all fields (object-valued
  /// fields compare by identity, see Value::operator==).
  [[nodiscard]] bool same_state(const DynObject& other) const noexcept;

  [[nodiscard]] std::string to_debug_string() const;

  [[nodiscard]] static std::shared_ptr<DynObject> make(std::string type_qualified_name,
                                                       util::Guid type_guid) {
    return std::make_shared<DynObject>(std::move(type_qualified_name), type_guid);
  }

 private:
  std::string type_name_;
  util::Guid type_guid_;
  std::map<std::string, Value, util::ICaseLess> fields_;
};

}  // namespace pti::reflect
