#pragma once

#include "util/error.hpp"

namespace pti::reflect {

/// Errors raised by the reflection substrate: unknown types, missing
/// members, arity/kind mismatches on dynamic access.
class ReflectError : public Error {
 public:
  using Error::Error;
};

}  // namespace pti::reflect
