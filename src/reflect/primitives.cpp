#include "reflect/primitives.hpp"

#include "util/string_util.hpp"

namespace pti::reflect {

std::string_view canonical_primitive(std::string_view type_name) noexcept {
  using util::iequals;
  if (iequals(type_name, "int") || iequals(type_name, "integer") ||
      iequals(type_name, kInt32Type)) {
    return kInt32Type;
  }
  if (iequals(type_name, "long") || iequals(type_name, kInt64Type)) return kInt64Type;
  if (iequals(type_name, "double") || iequals(type_name, "float") ||
      iequals(type_name, kFloat64Type)) {
    return kFloat64Type;
  }
  if (iequals(type_name, "boolean") || iequals(type_name, kBoolType)) return kBoolType;
  if (iequals(type_name, kStringType)) return kStringType;
  if (iequals(type_name, kVoidType)) return kVoidType;
  if (iequals(type_name, kObjectType)) return kObjectType;
  if (iequals(type_name, kListType)) return kListType;
  return type_name;
}

bool is_primitive_name(std::string_view type_name) noexcept {
  const std::string_view c = canonical_primitive(type_name);
  return c == kVoidType || c == kBoolType || c == kInt32Type || c == kInt64Type ||
         c == kFloat64Type || c == kStringType || c == kObjectType || c == kListType;
}

std::optional<std::string_view> primitive_for(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::Null: return kObjectType;
    case ValueKind::Bool: return kBoolType;
    case ValueKind::Int32: return kInt32Type;
    case ValueKind::Int64: return kInt64Type;
    case ValueKind::Float64: return kFloat64Type;
    case ValueKind::String: return kStringType;
    case ValueKind::List: return kListType;
    case ValueKind::Object: return std::nullopt;
  }
  return std::nullopt;
}

Value default_value_for(std::string_view type_name) {
  const std::string_view c = canonical_primitive(type_name);
  if (c == kBoolType) return Value(false);
  if (c == kInt32Type) return Value(std::int32_t{0});
  if (c == kInt64Type) return Value(std::int64_t{0});
  if (c == kFloat64Type) return Value(0.0);
  if (c == kStringType) return Value(std::string{});
  if (c == kListType) return Value(Value::List{});
  return Value();  // objects and void default to null
}

}  // namespace pti::reflect
