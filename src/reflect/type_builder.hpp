// Fluent construction of NativeTypes.
//
// In the paper's setting programmers write ordinary C# classes and the
// platform supplies the metadata. Without compiler support, TypeBuilder is
// how "a programmer writes a type" in this library: declare fields,
// methods with signatures and bodies, constructors — then build() yields
// the immutable NativeType.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "reflect/assembly.hpp"

namespace pti::reflect {

class TypeBuilder {
 public:
  TypeBuilder(std::string namespace_name, std::string simple_name,
              TypeKind kind = TypeKind::Class);

  TypeBuilder& superclass(std::string name);
  TypeBuilder& implements(std::string interface_name);

  TypeBuilder& field(std::string name, std::string type_name,
                     Visibility visibility = Visibility::Private, bool is_static = false);

  /// Declares a method with parameters {{name, type}, ...} and a body.
  /// Interface methods pass a default-constructed (empty) body.
  TypeBuilder& method(std::string name, std::string return_type,
                      std::vector<ParamDescription> params, NativeMethod body = {},
                      Visibility visibility = Visibility::Public, bool is_static = false);

  TypeBuilder& constructor(std::vector<ParamDescription> params, NativeCtor body = {},
                           Visibility visibility = Visibility::Public);

  /// Overrides the deterministic name-derived GUID (e.g. to model two
  /// *distinct* identities that happen to share a name).
  TypeBuilder& guid(util::Guid g);

  /// Marks the type for the tagged-structural-conformance baseline.
  TypeBuilder& structural_tag(bool enabled = true);

  [[nodiscard]] std::shared_ptr<const NativeType> build() const;

 private:
  std::string namespace_;
  std::string name_;
  TypeKind kind_;
  util::Guid guid_;
  std::string superclass_;
  std::vector<std::string> interfaces_;
  std::vector<FieldDescription> fields_;
  std::vector<NativeMethodDef> methods_;
  std::vector<NativeCtorDef> ctors_;
  bool structural_tag_ = false;
};

}  // namespace pti::reflect
