// The primitive type model shared by every peer.
//
// Primitives terminate the recursion of the structural conformance rules:
// `int32 ≼is int32` holds by name identity, and a primitive never conforms
// to a different primitive (the paper's rules would otherwise let any two
// empty-structured types collapse into one).
#pragma once

#include <optional>
#include <string_view>

#include "reflect/value.hpp"

namespace pti::reflect {

inline constexpr std::string_view kVoidType = "void";
inline constexpr std::string_view kBoolType = "bool";
inline constexpr std::string_view kInt32Type = "int32";
inline constexpr std::string_view kInt64Type = "int64";
inline constexpr std::string_view kFloat64Type = "float64";
inline constexpr std::string_view kStringType = "string";
inline constexpr std::string_view kObjectType = "object";  ///< root of all classes
inline constexpr std::string_view kListType = "list";

/// True for the built-in names above (case-insensitive, alias-aware).
[[nodiscard]] bool is_primitive_name(std::string_view type_name) noexcept;

/// Canonicalizes aliases: "int"/"integer" -> int32, "long" -> int64,
/// "double"/"float" -> float64, "boolean" -> bool. Returns the input when
/// it is not a primitive alias.
[[nodiscard]] std::string_view canonical_primitive(std::string_view type_name) noexcept;

/// The primitive type name describing a value's dynamic kind; objects map
/// to their own type (resolved elsewhere), so this returns nullopt for
/// ValueKind::Object.
[[nodiscard]] std::optional<std::string_view> primitive_for(ValueKind kind) noexcept;

/// Default value for a primitive type name (0, false, "", empty list);
/// object types default to null.
[[nodiscard]] Value default_value_for(std::string_view type_name);

}  // namespace pti::reflect
