// Dynamic value model.
//
// C++ has no runtime reflection, so objects whose types arrive over the
// network at runtime (the paper's central scenario) cannot be native C++
// objects. `Value` is the tagged dynamic value used for fields, method
// arguments and return values; `DynObject` (dyn_object.hpp) is the bag of
// named fields playing the role of a CLR object instance.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pti::reflect {

class DynObject;

/// Discriminator for Value. Names align with the primitive type names used
/// in type descriptions (see primitives.hpp).
enum class ValueKind : std::uint8_t {
  Null,
  Bool,
  Int32,
  Int64,
  Float64,
  String,
  Object,
  List,
};

[[nodiscard]] std::string_view to_string(ValueKind kind) noexcept;

class Value {
 public:
  using List = std::vector<Value>;

  Value() noexcept : data_(std::monostate{}) {}
  Value(std::nullptr_t) noexcept : data_(std::monostate{}) {}
  Value(bool b) noexcept : data_(b) {}
  Value(std::int32_t i) noexcept : data_(i) {}
  Value(std::int64_t i) noexcept : data_(i) {}
  Value(double d) noexcept : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) noexcept : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(std::shared_ptr<DynObject> o) noexcept : data_(std::move(o)) {}
  Value(List items) noexcept : data_(std::move(items)) {}

  [[nodiscard]] ValueKind kind() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return kind() == ValueKind::Null; }
  [[nodiscard]] bool is_numeric() const noexcept {
    const ValueKind k = kind();
    return k == ValueKind::Int32 || k == ValueKind::Int64 || k == ValueKind::Float64;
  }

  /// Checked accessors; throw ReflectError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int32_t as_int32() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] double as_float64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::shared_ptr<DynObject>& as_object() const;
  [[nodiscard]] const List& as_list() const;
  [[nodiscard]] List& as_list();

  /// Widening numeric read: Int32/Int64/Float64 all convert; anything else
  /// throws. Used by arithmetic in example method bodies.
  [[nodiscard]] double to_float64() const;

  /// Structural equality. Objects compare by *identity* (shared pointer),
  /// which is what reference semantics dictate; lists compare element-wise.
  [[nodiscard]] bool operator==(const Value& other) const noexcept;

  /// Debug rendering ("null", "42", "\"abc\"", "Person@{...}").
  [[nodiscard]] std::string to_debug_string() const;

 private:
  std::variant<std::monostate, bool, std::int32_t, std::int64_t, double, std::string,
               std::shared_ptr<DynObject>, List>
      data_;
};

using Args = std::span<const Value>;

}  // namespace pti::reflect
